#!/usr/bin/env python
"""Quickstart: simulate one benchmark under a few mechanisms.

This is the five-minute tour of the library: build the Table 1 machine,
run the ``swim`` stand-in (a streaming stencil — the prefetcher showcase)
under the baseline and three prefetchers, and print what happened.

Run:  python examples/quickstart.py
"""

from repro import run_benchmark

TRACE_LENGTH = 20_000


def main() -> None:
    print(f"Simulating 'swim' ({TRACE_LENGTH} instructions) on the "
          "Table 1 machine\n")

    base = run_benchmark("swim", "Base", n_instructions=TRACE_LENGTH)
    print(f"{'mechanism':<10} {'IPC':>7} {'speedup':>8} {'L1 miss':>8} "
          f"{'L2 miss':>8} {'prefetches':>11} {'useful':>7}")
    print(f"{'Base':<10} {base.ipc:>7.3f} {'1.000':>8} "
          f"{base.l1_miss_rate:>8.1%} {base.l2_miss_rate:>8.1%} "
          f"{'-':>11} {'-':>7}")

    for name in ("TP", "SP", "GHB"):
        result = run_benchmark("swim", name, n_instructions=TRACE_LENGTH)
        print(f"{name:<10} {result.ipc:>7.3f} "
              f"{result.speedup_over(base):>8.3f} "
              f"{result.l1_miss_rate:>8.1%} {result.l2_miss_rate:>8.1%} "
              f"{result.prefetches_issued:>11.0f} "
              f"{result.useful_prefetches:>7.0f}")

    print(
        "\nEven 1982's tagged prefetching covers a unit-stride stream;\n"
        "the interesting comparisons start when strides skip cache lines\n"
        "(try 'apsi') or when the access pattern has no stride at all\n"
        "(try 'gzip' with 'Markov').  See examples/compare_mechanisms.py."
    )


if __name__ == "__main__":
    main()
