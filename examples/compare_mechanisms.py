#!/usr/bin/env python
"""The paper's core exercise: a fair comparison across all 12 mechanisms.

Runs every mechanism of Table 2 on a representative benchmark slice and
prints the speedup matrix plus the overall ranking — a miniature Figure 4.
Each benchmark exercises a different memory personality, so you can watch
each mechanism win on its home turf and do nothing (or harm) elsewhere:

* ``swim``  — unit-stride streaming: every prefetcher's best case;
* ``apsi``  — line-skipping strides: stride prefetchers only;
* ``gzip``  — repeating non-arithmetic sequence: Markov territory;
* ``art``   — L1 set conflicts: the victim-cache family;
* ``twolf`` — clean pointer chains: content-directed prefetching;
* ``mcf``   — decoy-laden pointer graph: CDP's failure mode;
* ``crafty``— cache-resident: nothing should matter (low sensitivity).

Run:  python examples/compare_mechanisms.py  [--full]
(--full uses all 26 benchmarks; several minutes.)
"""

import sys

from repro import ComparisonSuite
from repro.core.selection import rank_mechanisms
from repro.workloads.registry import ALL_BENCHMARKS

SLICE = ("swim", "apsi", "gzip", "art", "twolf", "mcf", "crafty")
TRACE_LENGTH = 20_000


def main() -> None:
    benchmarks = ALL_BENCHMARKS if "--full" in sys.argv else SLICE
    print(f"Sweeping 13 configurations x {len(benchmarks)} benchmarks "
          f"({TRACE_LENGTH} instructions each)...\n")
    suite = ComparisonSuite(benchmarks=benchmarks,
                            n_instructions=TRACE_LENGTH)
    results = suite.run()

    header = f"{'':8}" + "".join(f"{b:>8}" for b in benchmarks)
    print(header)
    for mechanism in results.mechanisms:
        if mechanism == "Base":
            continue
        row = "".join(
            f"{results.speedup(mechanism, b):>8.3f}" for b in benchmarks
        )
        print(f"{mechanism:<8}{row}")

    print("\nRanking by mean speedup (the Figure 4 view):")
    for position, (name, score) in enumerate(rank_mechanisms(results), 1):
        bar = "#" * max(0, int((score - 1.0) * 200))
        print(f"  {position:>2}. {name:<8} {score:.3f}  {bar}")


if __name__ == "__main__":
    main()
