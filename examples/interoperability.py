#!/usr/bin/env python
"""Interoperability both ways — the Section 4 federation story.

MicroLib's pitch was never just "here are twelve mechanisms": it was that
simulator *components* should cross project boundaries through wrappers.
This example shows both directions:

1. **Export** — drive a MicroLib hierarchy (with a library mechanism
   attached) through a SimpleScalar-style ``cache_access`` call, the
   interface a 1990s host simulator would use.
2. **Import** — take a "foreign" prefetcher written against the common
   standalone interface (``train(pc, addr, hit) -> [addresses]``), wrap it
   as a native mechanism, and let the comparison harness race it against
   the catalogue — no rewrite.

Run:  python examples/interoperability.py
"""

from repro import run_benchmark, run_trace
from repro.mechanisms.registry import create
from repro.workloads.registry import build
from repro.wrappers import (
    CACHE_READ,
    CACHE_WRITE,
    ForeignPrefetcherAdapter,
    SimpleScalarCacheShim,
)


def export_direction() -> None:
    print("=" * 64)
    print("1. MicroLib models behind the SimpleScalar interface")
    print("=" * 64)
    shim = SimpleScalarCacheShim(mechanism=create("TP"))
    now = 0
    for i in range(64):
        latency = shim.cache_access(CACHE_READ, 0x100000 + i * 64, 32, now)
        now += latency + 30
    shim.cache_access(CACHE_WRITE, 0x100000, 32, now, value=42)
    print(f"  64 sequential reads + 1 write through cache_access():")
    print(f"  hits={shim.hits:.0f} misses={shim.misses:.0f} "
          f"prefetches={shim.hierarchy.st_prefetches_issued.value:.0f} "
          f"(tagged prefetching working underneath)")


class DeltaPrefetcher:
    """A 'foreign' model: global last-delta prefetching in ten lines."""

    name = "Delta"
    table_bytes = 16

    def __init__(self):
        self.last_addr = None
        self.last_delta = 0

    def train(self, pc, addr, hit):
        out = []
        if self.last_addr is not None:
            delta = addr - self.last_addr
            if delta and delta == self.last_delta:
                out = [addr + delta]
            self.last_delta = delta
        self.last_addr = addr
        return out


def import_direction() -> None:
    print()
    print("=" * 64)
    print("2. A foreign prefetcher raced against the catalogue")
    print("=" * 64)
    trace_length = 15_000
    print(f"{'benchmark':<10} {'Delta':>8} {'SP':>8} {'GHB':>8}")
    for benchmark in ("swim", "apsi", "gzip"):
        trace, image = build(benchmark, trace_length)
        base = run_trace(trace, None, image=image, benchmark=benchmark)
        foreign = run_trace(
            trace, ForeignPrefetcherAdapter(DeltaPrefetcher()),
            image=image, benchmark=benchmark,
        )
        row = [foreign.speedup_over(base)]
        for rival in ("SP", "GHB"):
            result = run_benchmark(benchmark, rival,
                                   n_instructions=trace_length)
            row.append(result.speedup_over(base))
        print(f"{benchmark:<10}" + "".join(f"{s:>8.3f}" for s in row))
    print("\n  One global delta vs per-PC tables: the wrapper makes the "
          "comparison\n  a one-liner, which is the whole point.")


def main() -> None:
    export_direction()
    import_direction()


if __name__ == "__main__":
    main()
