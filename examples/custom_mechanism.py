#!/usr/bin/env python
"""Write your own mechanism and compare it fairly — the MicroLib vision.

The paper's whole argument is that anyone should be able to implement a
data-cache idea against a shared machine model and get a fair, apples-to-
apples comparison.  This example does exactly that: it defines a new
mechanism (a *next-N-lines* prefetcher, a naive generalisation of tagged
prefetching) in ~30 lines against the plug-in interface, then races it
against the library's catalogue.

Run:  python examples/custom_mechanism.py
"""

from typing import List

from repro import run_benchmark, run_trace
from repro.mechanisms.base import Mechanism, StructureSpec
from repro.workloads.registry import build


class NextNLinesPrefetcher(Mechanism):
    """On every L2 miss, prefetch the next N sequential lines.

    More aggressive than TP (no tag bit, fixed degree); the comparison
    shows what that buys on streams and costs everywhere else.
    """

    LEVEL = "l2"
    ACRONYM = "NextN"
    YEAR = 2026
    QUEUE_SIZE = 32
    DEGREE = 4

    def on_miss(self, pc: int, block: int, time: int) -> None:
        self.count_table_access()
        for k in range(1, self.DEGREE + 1):
            target = self.cache.addr_of(block + k)
            if not self.cache.contains(target):
                self.emit_prefetch(target, time)

    def structures(self) -> List[StructureSpec]:
        return [StructureSpec("nextn_queue", size_bytes=self.QUEUE_SIZE * 8)]


def main() -> None:
    trace_length = 20_000
    print("A home-grown mechanism vs the catalogue "
          f"({trace_length}-instruction traces)\n")
    print(f"{'benchmark':<10} {'NextN':>8} {'TP':>8} {'SP':>8} {'GHB':>8}")
    for benchmark in ("swim", "apsi", "gzip", "mcf"):
        trace, image = build(benchmark, trace_length)
        base = run_trace(trace, None, image=image, benchmark=benchmark)
        ours = run_trace(trace, NextNLinesPrefetcher(), image=image,
                         benchmark=benchmark)
        row = [ours.speedup_over(base)]
        for rival in ("TP", "SP", "GHB"):
            result = run_benchmark(rival and benchmark, rival,
                                   n_instructions=trace_length)
            row.append(result.speedup_over(base))
        print(f"{benchmark:<10}" + "".join(f"{s:>8.3f}" for s in row))

    print(
        "\nBlind aggression happens to pay on streams and dense node "
        "arrays —\nand does so by spending several times the bandwidth "
        "of SP or GHB,\nwhich Figure 5's power model would charge it "
        "for.  Exactly the kind\nof trade-off the paper argues should be "
        "measured, not asserted —\nand implementing the mechanism took "
        "one class and zero simulator\nchanges."
    )


if __name__ == "__main__":
    main()
