#!/usr/bin/env python
"""The methodology study in miniature: how easily conclusions flip.

Reproduces three of the paper's Section 3 demonstrations on a small scale:

1. **Benchmark selection** — find a benchmark subset that crowns a
   mechanism which is mediocre on average (Table 6's cherry-picking).
2. **Memory-model precision** — the same mechanism, measured under the
   SimpleScalar-style constant-latency memory vs the detailed SDRAM
   (Figure 8).
3. **Second-guessing** — TCP with the prefetch queue sized 1 vs 128, the
   implementation detail its article never stated (Figure 10).

Run:  python examples/methodology_pitfalls.py
"""

from repro import ComparisonSuite, run_benchmark
from repro.core.config import MEMORY_CONSTANT, baseline_config
from repro.core.selection import find_winning_subset, rank_mechanisms

BENCHMARKS = ("swim", "apsi", "gzip", "art", "twolf", "mcf", "lucas",
              "crafty", "vpr", "equake")
TRACE_LENGTH = 20_000


def cherry_picking(results) -> None:
    print("=" * 64)
    print("1. Benchmark selection (Table 6): pick your own winner")
    print("=" * 64)
    ranked = rank_mechanisms(results)
    print("Honest ranking over", len(results.benchmarks), "benchmarks:",
          " > ".join(name for name, _ in ranked[:5]), "...")
    for underdog in ("Markov", "VC", "CDP"):
        largest = None
        for size in range(1, len(results.benchmarks) + 1):
            subset = find_winning_subset(results, underdog, size)
            if subset is None:
                break
            largest = subset
        rank = [n for n, _ in ranked].index(underdog) + 1
        if largest is None:
            print(f"  {underdog:<7} (rank {rank}) cannot be crowned on "
                  "this slice")
        else:
            print(f"  {underdog:<7} (rank {rank}) still wins a "
                  f"{len(largest)}-benchmark selection: {', '.join(largest)}")


def memory_model(benchmark="swim", mechanism="GHB") -> None:
    print()
    print("=" * 64)
    print("2. Memory-model precision (Figure 8)")
    print("=" * 64)
    for label, config in (
        ("constant 70-cycle (SimpleScalar-style)",
         baseline_config().with_memory_model(MEMORY_CONSTANT)),
        ("detailed SDRAM (Table 1 timings)", baseline_config()),
    ):
        base = run_benchmark(benchmark, "Base", config=config,
                             n_instructions=TRACE_LENGTH)
        run = run_benchmark(benchmark, mechanism, config=config,
                            n_instructions=TRACE_LENGTH)
        print(f"  {mechanism} on {benchmark} under {label}: "
              f"speedup {run.speedup_over(base):.3f}")
    print("  The imprecise model inflates the benefit: bandwidth is free.")


def second_guessing() -> None:
    print()
    print("=" * 64)
    print("3. Second-guessing the authors (Figure 10): TCP queue size")
    print("=" * 64)
    for benchmark in ("crafty", "gzip", "vpr", "mgrid"):
        base = run_benchmark(benchmark, "Base", n_instructions=TRACE_LENGTH)
        small = run_benchmark(benchmark, "TCP", n_instructions=TRACE_LENGTH,
                              mechanism_kwargs={"queue_size": 1})
        large = run_benchmark(benchmark, "TCP", n_instructions=TRACE_LENGTH,
                              mechanism_kwargs={"queue_size": 128})
        print(f"  {benchmark:<8} queue=1: {small.speedup_over(base):.3f}   "
              f"queue=128: {large.speedup_over(base):.3f}")
    print("  One unstated buffer size; per-benchmark outcomes move both "
          "ways.")


def main() -> None:
    print(f"Sweeping {len(BENCHMARKS)} benchmarks x 13 configurations "
          f"({TRACE_LENGTH} instructions each)...\n")
    results = ComparisonSuite(benchmarks=BENCHMARKS,
                              n_instructions=TRACE_LENGTH).run()
    cherry_picking(results)
    memory_model()
    second_guessing()


if __name__ == "__main__":
    main()
