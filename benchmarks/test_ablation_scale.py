"""Ablation — trace-length sensitivity of the reproduction itself.

DESIGN.md scales the paper's 500M-instruction traces down ~10^4x.  This
ablation measures how the headline comparison moves with trace length, so
EXPERIMENTS.md can state which conclusions are scale-stable (prefetchers
win streaming; CDP hurts mcf) and which drift (correlation mechanisms need
enough laps to train — their speedups grow with length).
"""

from conftest import record

from repro.core.simulation import run_benchmark
from repro.harness.experiments import ExperimentResult

PAIRS = (
    ("swim", "GHB"),
    ("gzip", "Markov"),
    ("mcf", "CDP"),
    ("art", "VC"),
)


def test_ablation_scale(benchmark, bench_n):
    lengths = (max(4000, bench_n // 4), bench_n, bench_n * 2)

    def run():
        rows = []
        for benchmark_name, mechanism in PAIRS:
            row = {"benchmark": benchmark_name, "mechanism": mechanism}
            for n in lengths:
                base = run_benchmark(benchmark_name, "Base", n_instructions=n)
                mech = run_benchmark(benchmark_name, mechanism,
                                     n_instructions=n)
                row[f"n{n}"] = mech.speedup_over(base)
            rows.append(row)
        return ExperimentResult(
            exhibit="Ablation scale",
            title="Speedup vs trace length (scale stability)",
            rows=rows,
            notes=f"lengths: {lengths}",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(result)
    by_pair = {(r["benchmark"], r["mechanism"]): r for r in result.rows}
    calibrated = f"n{lengths[1]}"
    # Streaming-prefetch wins are stable at every measured length.
    for key in (f"n{n}" for n in lengths):
        assert by_pair[("swim", "GHB")][key] > 1.05
    # The calibrated-scale claims hold at the calibrated scale; the longer
    # run is recorded so EXPERIMENTS.md can report the drift honestly.
    assert by_pair[("mcf", "CDP")][calibrated] < 1.0
    assert by_pair[("gzip", "Markov")][calibrated] > 1.0
    assert by_pair[("art", "VC")][calibrated] > 1.05
