"""Figure 3 — fixing the DBCP reverse-engineered implementation.

Paper: the initial DBCP build (unprehashed signatures aliasing the
correlation table, half the correct entry count, no confidence decay) was
38% off the fixed one on average, and the fixed DBCP outperformed TK —
opposite to the ranking in the TK article.  Shape target: the two builds
measurably diverge and fixed >= initial on average; the fixed build is at
least competitive with TK.
"""

from conftest import record

from repro.harness import fig3_dbcp_fix
from repro.workloads.registry import ALL_BENCHMARKS


def test_fig3_dbcp_fix(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: fig3_dbcp_fix(benchmarks=ALL_BENCHMARKS,
                              n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    assert result.summary["avg_initial_vs_fixed_gap_pct"] >= 0.0
    assert (
        result.summary["fixed_dbcp_mean_speedup"]
        >= result.summary["tk_mean_speedup"] - 0.02
    )
