"""Figure 1 — MicroLib cache model vs a SimpleScalar-like cache model.

Paper: an average 6.8% IPC difference between the hybrid
SimpleScalar+MicroLib model and original SimpleScalar, caused by the finite
MSHR, pipeline stalls, LSQ back-pressure and refill-port accounting.  This
bench regenerates the per-benchmark IPC differences; shape target: the
imprecise model is consistently optimistic and the average difference is
material (ours runs larger than 6.8% because the synthetic workloads are
more memory-intense per instruction — see EXPERIMENTS.md).
"""

from conftest import record

from repro.harness import fig1_model_validation


def test_fig1_model_validation(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: fig1_model_validation(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    assert result.summary["avg_abs_ipc_diff_pct"] > 1.0
    # The imprecise model is optimistic on the clear majority of benchmarks.
    optimistic = sum(
        1 for row in result.rows
        if row["ipc_simplescalar_like"] >= row["ipc_microlib"]
    )
    assert optimistic >= len(result.rows) * 0.7
