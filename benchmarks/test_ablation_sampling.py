"""Ablation — SMARTS systematic sampling vs full-trace simulation.

The paper cites SMARTS (Wunderlich et al.) as the statistically rigorous
sampling alternative in its trace-selection discussion (Section 3.5).
This ablation measures how well a handful of systematic windows estimates
the full-trace IPC, per benchmark — the estimator the original authors
would have used had they sampled.
"""

from conftest import record

from repro.core.simulation import run_trace
from repro.harness.experiments import ExperimentResult
from repro.trace.smarts import sampled_ipc
from repro.workloads.registry import build


def test_ablation_sampling(benchmark, bench_n):
    def run():
        rows = []
        for benchmark_name in ("mesa", "swim", "gzip", "mcf", "gcc"):
            trace, image = build(benchmark_name, bench_n)
            full = run_trace(trace, None, image=image,
                             benchmark=benchmark_name)
            estimate = sampled_ipc(
                trace, n_windows=8, window=max(400, bench_n // 40),
                warmup=max(800, bench_n // 20), image=image,
            )
            rows.append({
                "benchmark": benchmark_name,
                "full_ipc": full.ipc,
                "sampled_ipc": estimate.mean_ipc,
                "ci_half_width": estimate.half_width,
                "abs_error_pct": 100 * abs(estimate.mean_ipc - full.ipc)
                                 / full.ipc,
            })
        return ExperimentResult(
            exhibit="Ablation sampling",
            title="SMARTS systematic sampling vs full-trace simulation",
            rows=rows,
            notes="8 windows with functional-warming prefixes",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(result)
    errors = [row["abs_error_pct"] for row in result.rows]
    # Sampling estimates track the full runs within tens of percent at this
    # tiny scale (the paper quotes 15-18% for SimPoint at full scale).
    assert sum(errors) / len(errors) < 60.0
    assert all(row["sampled_ipc"] > 0 for row in result.rows)
