"""Table 5 — which mechanism the original articles compared against.

Static data rendered by the harness (no simulation): few articles compare
beyond one or two prior mechanisms, and comparisons happen mostly when
"almost compulsory" (GHB vs SP, its own ancestor).
"""

from conftest import record

from repro.harness import table5_prior_comparisons
from repro.mechanisms.registry import ALL_MECHANISMS


def test_table5_prior_comparisons(benchmark):
    result = benchmark.pedantic(
        table5_prior_comparisons, rounds=1, iterations=1,
    )
    record(result)
    pairs = {(row["newer"], row["compared_against"]) for row in result.rows}

    assert ("GHB", "SP") in pairs
    assert ("TKVC", "VC") in pairs
    assert ("TK", "DBCP") in pairs and ("TCP", "DBCP") in pairs
    assert ("DBCP", "Markov") in pairs
    # Every name in the table is a catalogued mechanism.
    for newer, older in pairs:
        assert newer in ALL_MECHANISMS and older in ALL_MECHANISMS
    # Sparse: far fewer comparisons than mechanism pairs.
    assert len(pairs) < 10
