"""Figure 6 — benchmark sensitivity to mechanisms.

Paper: some benchmarks (wupwise, bzip2, crafty, eon, perlbmk, vortex) are
barely sensitive to any data-cache optimization, while others (apsi,
equake, fma3d, mgrid, swim, gap) will dominate any assessment.  Shape
target: the designed low-sensitivity six all fall in the bottom half of
the spread ranking, and the spread range is wide.
"""

from conftest import record

from repro.harness import fig6_sensitivity
from repro.workloads.registry import HIGH_SENSITIVITY, LOW_SENSITIVITY


def test_fig6_sensitivity(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: fig6_sensitivity(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    order = [row["benchmark"] for row in result.rows]  # most sensitive first
    half = len(order) // 2

    for name in LOW_SENSITIVITY:
        assert order.index(name) >= half - 2, f"{name} unexpectedly sensitive"
    # At least four of the designed high-sensitivity six land in the top half.
    top = sum(1 for name in HIGH_SENSITIVITY if order.index(name) < half)
    assert top >= 4
    # The spread between extremes is an order of magnitude.
    assert result.summary["max_spread"] > 5 * max(
        result.summary["min_spread"], 0.01
    )
