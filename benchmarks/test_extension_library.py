"""Library extensions — the paper's Section 4 vision, enacted.

MicroLib's stated goal is that researchers keep contributing models to the
library.  This bench runs the two extensions shipped with this
reproduction against the paper's catalogue on their home-turf workloads:

* **SB** (stream buffers, Jouppi 1990 — the other half of the victim-cache
  paper) on streaming workloads;
* **EW** (eager writeback, Lee/Tyson/Farrens 2000) — which the paper
  explicitly could not evaluate "for lack of memory-bandwidth bound
  programs"; our ``swim``/``lucas`` provide them.
"""

from conftest import record

from repro.core.simulation import run_benchmark
from repro.harness.experiments import ExperimentResult


def test_extension_library(benchmark, bench_n):
    def run():
        rows = []
        for benchmark_name in ("swim", "lucas", "art", "gzip", "crafty"):
            base = run_benchmark(benchmark_name, "Base",
                                 n_instructions=bench_n)
            row = {"benchmark": benchmark_name}
            for mechanism in ("SB", "EW", "TP", "VC"):
                result = run_benchmark(benchmark_name, mechanism,
                                       n_instructions=bench_n)
                row[mechanism] = result.speedup_over(base)
            rows.append(row)
        return ExperimentResult(
            exhibit="Extension library",
            title="Library extensions (SB, EW) vs catalogue mechanisms",
            rows=rows,
            notes="EW is the mechanism the paper excluded for lack of "
                  "bandwidth-bound benchmarks (Section 1)",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(result)
    rows = {row["benchmark"]: row for row in result.rows}

    # Stream buffers cover streaming like their 1990 sibling mechanisms.
    assert rows["swim"]["SB"] > 1.03
    # Eager writeback pays exactly where its article claims: bandwidth-
    # bound store streams; and it is harmless on cache-resident code.
    assert rows["swim"]["EW"] > 1.01
    assert abs(rows["crafty"]["EW"] - 1.0) < 0.05
    # Extensions never corrupt the baseline comparisons.
    for row in result.rows:
        for name in ("SB", "EW"):
            assert row[name] > 0.8
