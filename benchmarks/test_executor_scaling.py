"""Executor scaling check: serial vs parallel wall time for one grid.

Records the timings to ``benchmarks/out/executor_scaling.txt`` so later
performance PRs (sharding, remote workers, larger traces) have a
trajectory to compare against.  No speed assertion is made — CI boxes
can be single-core, where the pool only adds overhead — but serial and
parallel results must match exactly.
"""

import dataclasses
import os
import time

from conftest import LEDGER_PATH, OUT_DIR

from repro.exec import Executor
from repro.obs.ledger import Ledger, make_record
from repro.workloads.registry import build as build_workload

GRID_BENCHMARKS = ("swim", "gzip", "art", "mcf", "equake", "crafty")
GRID_MECHANISMS = ("Base", "TP", "SP", "GHB")
PARALLEL_JOBS = 2


def _timed_sweep(jobs: int, n: int):
    executor = Executor(jobs=jobs)
    start = time.perf_counter()
    grid = executor.run_sweep(
        benchmarks=GRID_BENCHMARKS,
        mechanisms=GRID_MECHANISMS,
        n_instructions=n,
    )
    return time.perf_counter() - start, grid


def test_executor_scaling(benchmark, bench_n):
    n = min(bench_n, 8000)
    # Pre-build every trace so both timings measure simulation, not trace
    # generation (forked workers inherit the parent's warm trace cache).
    for benchmark_name in GRID_BENCHMARKS:
        build_workload(benchmark_name, n)
    serial_seconds, serial_grid = _timed_sweep(1, n)
    parallel_seconds, parallel_grid = benchmark.pedantic(
        lambda: _timed_sweep(PARALLEL_JOBS, n),
        rounds=1, iterations=1,
    )

    # Parallel execution must be a pure throughput change: every cell of
    # the grid identical to the serial run.
    for mechanism in GRID_MECHANISMS:
        for benchmark_name in GRID_BENCHMARKS:
            s = serial_grid.get(mechanism, benchmark_name)
            p = parallel_grid.get(mechanism, benchmark_name)
            assert dataclasses.asdict(s) == dataclasses.asdict(p)

    runs = len(GRID_BENCHMARKS) * len(GRID_MECHANISMS)
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    OUT_DIR.mkdir(exist_ok=True)
    lines = [
        f"grid: {len(GRID_MECHANISMS)} mechanisms x "
        f"{len(GRID_BENCHMARKS)} benchmarks = {runs} runs, "
        f"n_instructions={n}",
        f"host cpus: {os.cpu_count()}",
        f"serial (jobs=1):   {serial_seconds:.3f}s "
        f"({serial_seconds / runs:.3f}s/run)",
        f"parallel (jobs={PARALLEL_JOBS}): {parallel_seconds:.3f}s "
        f"({parallel_seconds / runs:.3f}s/run)",
        f"parallel speedup:  {speedup:.2f}x",
    ]
    text = "\n".join(lines)
    (OUT_DIR / "executor_scaling.txt").write_text(text + "\n")
    ledger = Ledger(LEDGER_PATH)
    for label, seconds, jobs in (
        ("executor_scaling_serial", serial_seconds, 1),
        ("executor_scaling_parallel", parallel_seconds, PARALLEL_JOBS),
    ):
        ledger.append(make_record(
            label=label,
            wall_seconds=seconds,
            instructions=runs * n,
            n_instructions=n,
            metrics={"runs_simulated": float(runs), "jobs": float(jobs)},
        ))
    print()
    print(text)

    assert serial_seconds > 0 and parallel_seconds > 0
