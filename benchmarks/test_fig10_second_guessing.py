"""Figure 10 — the effect of second-guessing unstated details
(TCP's prefetch request queue: 1 entry vs 128 entries).

Paper: "All possible cases are found": for some benchmarks (crafty, eon)
the difference is tiny, for others (lucas, mgrid, art) it is dramatic — a
large buffer "always contains pending prefetch requests and will seize the
bus whenever it is available", delaying normal misses.  Shape targets:
per-benchmark differences span from negligible to visible, and the
low-sensitivity benchmarks sit at the negligible end.
"""

from conftest import record

from repro.harness import fig10_second_guessing
from repro.workloads.registry import LOW_SENSITIVITY


def test_fig10_second_guessing(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: fig10_second_guessing(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    diff = {row["benchmark"]: abs(row["queue_128"] - row["queue_1"])
            for row in result.rows}

    # Both extremes exist.
    assert min(diff.values()) < 0.005
    assert max(diff.values()) >= result.summary["avg_abs_speedup_diff"]
    # Low-sensitivity benchmarks are (as in the paper) barely affected.
    for name in LOW_SENSITIVITY:
        assert diff[name] < 0.02
