"""Ablation — the DRAM controller design choices the paper mentions.

Section 3.3: "Our model uses a bank interleaving scheme [20, 30] which
allows the DRAM controller to hide the access latency", and the authors
"implemented several schedule schemes proposed by Green et al. [8] and
retained one that significantly reduces conflicts in row buffers".  This
bench quantifies both retained choices on our substrate:

* permutation vs linear bank interleaving, on the row-buffer-hostile
  ``lucas`` (whose long strides revisit conflicting rows);
* open-page vs closed-page row policy, on the row-friendly ``swim``.
"""

import dataclasses

from conftest import record

from repro.core.config import baseline_config
from repro.core.simulation import run_benchmark
from repro.harness.experiments import ExperimentResult


def test_ablation_dram(benchmark, bench_n):
    def run():
        rows = []
        for benchmark_name in ("lucas", "swim", "gzip"):
            row = {"benchmark": benchmark_name}
            for label, overrides in (
                ("permutation_open", {}),
                ("linear_open", {"dram_interleave": "linear"}),
                ("permutation_closed", {"dram_page_policy": "closed"}),
            ):
                config = dataclasses.replace(baseline_config(), **overrides)
                result = run_benchmark(benchmark_name, "Base", config=config,
                                       n_instructions=bench_n)
                row[label] = result.ipc
                row[label + "_lat"] = result.avg_memory_latency
            rows.append(row)
        return ExperimentResult(
            exhibit="Ablation DRAM",
            title="Bank interleaving scheme and row-buffer policy",
            rows=rows,
            notes="the retained configuration is permutation + open page",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(result)
    rows = {row["benchmark"]: row for row in result.rows}
    # Permutation interleaving (the retained scheme) is never materially
    # worse than linear, and helps the row-conflict-prone streams.
    for name, row in rows.items():
        assert row["permutation_open"] >= row["linear_open"] * 0.97
        assert row["permutation_open_lat"] <= row["linear_open_lat"] * 1.03
    # The page-policy trade-off goes both ways, as it does in hardware:
    # open page keeps latency lower on the row-friendly stream...
    swim = rows["swim"]
    assert swim["permutation_open_lat"] <= swim["permutation_closed_lat"]
    # ...while eager precharge pays off when nearly every access opens a
    # new row (lucas) — our synthetic suite is more row-hostile than SPEC,
    # a scale artifact recorded in EXPERIMENTS.md.
    lucas = rows["lucas"]
    assert lucas["permutation_closed_lat"] <= lucas["permutation_open_lat"]
