"""Figure 7 — speedups on high- and low-sensitivity benchmark subsets.

Paper: evaluating on the 6 most sensitive benchmarks inflates every
mechanism and reshuffles the ranking; on the 6 least sensitive ones the
mechanisms are nearly indistinguishable.
"""

from conftest import record

from repro.harness import fig7_sensitivity_subsets
from repro.mechanisms.registry import BASELINE


def test_fig7_sensitivity_subsets(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: fig7_sensitivity_subsets(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    rows = {row["subset"]: row for row in result.rows}

    def best_gain(label):
        return max(
            value - 1.0 for key, value in rows[label].items()
            if key not in ("subset", BASELINE) and isinstance(value, float)
        )

    # High-sensitivity subsets inflate the best mechanism's apparent gain.
    assert best_gain("high_sensitivity") > 1.5 * best_gain("all")
    # Low-sensitivity subsets flatten everything.
    assert best_gain("low_sensitivity") < 0.5 * best_gain("all")
