"""Shared infrastructure for the figure/table regeneration benches.

Every bench runs one paper exhibit at full scale (all 26 benchmarks,
``REPRO_BENCH_N`` instructions per run — default 30000), prints the
paper-style rows, and saves them under ``benchmarks/out/`` for
EXPERIMENTS.md.  Sweeps are memoised process-wide, so the exhibits that
share the Figure 4 grid pay for it once.

Alongside the human-readable text, :func:`record` appends one
machine-readable entry per exhibit to the benchmark ledger
(``BENCH_obs.json`` at the repo root, or ``$REPRO_LEDGER``): wall-clock
charged to that exhibit, simulations run, trace records per second —
the trajectory ``python -m repro.obs diff`` compares across commits.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to watch the
tables stream by).  ``REPRO_BENCH_N=8000`` gives a quick pass.
"""

import os
from pathlib import Path

import pytest

from repro.exec import get_default_executor
from repro.obs.ledger import Ledger, make_record

#: Trace length per simulation in the benches.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "30000"))

OUT_DIR = Path(__file__).parent / "out"

#: The repo-root ledger (``$REPRO_LEDGER`` still wins when set).
LEDGER_PATH = os.environ.get(
    "REPRO_LEDGER", str(Path(__file__).parent.parent / "BENCH_obs.json")
)

#: Telemetry snapshot at the previous :func:`record` call, so each
#: exhibit's ledger entry charges only its own share of the process-wide
#: executor's counters.
_seen = {"wall": 0.0, "simulated": 0, "results": 0}


def record(result) -> str:
    """Print and persist one exhibit's rendered rows; return the text.

    Also appends the exhibit's execution accounting to the ledger.
    """
    OUT_DIR.mkdir(exist_ok=True)
    text = result.render()
    slug = result.exhibit.lower().replace(" ", "_")
    (OUT_DIR / f"{slug}.txt").write_text(text + "\n")
    _ledger_entry(slug)
    print()
    print(text)
    return text


def _ledger_entry(slug: str) -> None:
    telemetry = get_default_executor().telemetry
    wall = telemetry.wall_time - _seen["wall"]
    simulated = telemetry.simulated - _seen["simulated"]
    results = telemetry.results_returned - _seen["results"]
    _seen.update(
        wall=telemetry.wall_time, simulated=telemetry.simulated,
        results=telemetry.results_returned,
    )
    Ledger(LEDGER_PATH).append(make_record(
        label=slug,
        wall_seconds=wall,
        instructions=simulated * BENCH_N,
        n_instructions=BENCH_N,
        metrics={
            "runs_simulated": float(simulated),
            "results_returned": float(results),
        },
    ))


@pytest.fixture(scope="session")
def bench_n():
    return BENCH_N
