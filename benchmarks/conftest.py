"""Shared infrastructure for the figure/table regeneration benches.

Every bench runs one paper exhibit at full scale (all 26 benchmarks,
``REPRO_BENCH_N`` instructions per run — default 30000), prints the
paper-style rows, and saves them under ``benchmarks/out/`` for
EXPERIMENTS.md.  Sweeps are memoised process-wide, so the exhibits that
share the Figure 4 grid pay for it once.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to watch the
tables stream by).  ``REPRO_BENCH_N=8000`` gives a quick pass.
"""

import os
from pathlib import Path

import pytest

#: Trace length per simulation in the benches.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "30000"))

OUT_DIR = Path(__file__).parent / "out"


def record(result) -> str:
    """Print and persist one exhibit's rendered rows; return the text."""
    OUT_DIR.mkdir(exist_ok=True)
    text = result.render()
    slug = result.exhibit.lower().replace(" ", "_")
    (OUT_DIR / f"{slug}.txt").write_text(text + "\n")
    print()
    print(text)
    return text


@pytest.fixture(scope="session")
def bench_n():
    return BENCH_N
