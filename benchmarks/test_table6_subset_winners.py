"""Table 6 — which mechanism can be the best with N benchmarks?

Paper: for every selection size up to 23 there is more than one possible
winner; even mechanisms that are poor on average can be made to win
sizeable selections (FVC up to 12 benchmarks, Markov up to 9) — the
quantitative case against cherry-picking.
"""

from conftest import record

from repro.harness import table6_subset_winners


def test_table6_subset_winners(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: table6_subset_winners(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    by_size = {row["n_benchmarks"]: row for row in result.rows}

    # Small selections can crown many different winners.
    assert by_size[1]["count"] >= 4
    # Multiple winners persist well past half the suite.
    assert result.summary["max_size_with_multiple_winners"] >= 13
    # The full suite has exactly one winner.
    assert by_size[26]["count"] == 1
    # Winner sets shrink (weakly) as selections grow.
    counts = [by_size[size]["count"] for size in sorted(by_size)]
    assert counts[0] >= counts[-1]
