"""Figure 5 — power and cost (area) ratios per mechanism.

Paper: Markov and DBCP are enormous (megabyte-scale tables); TP, SP and
GHB add almost no area; GHB is nevertheless power-hungry (repeated table
walks, up to 4 requests per miss) while SP stays as efficient as TP; when
all three axes are combined, SP looks like the overall winner.
"""

from conftest import record

from repro.harness import fig5_cost_power


def test_fig5_cost_power(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: fig5_cost_power(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    rows = {row["mechanism"]: row for row in result.rows}

    # Cost extremes: table monsters vs nearly-free logic.
    for heavy in ("Markov", "DBCP"):
        for light in ("TP", "SP", "GHB", "VC"):
            assert (rows[heavy]["cost_ratio"] - 1) > 10 * (
                rows[light]["cost_ratio"] - 1
            )
    # GHB's activity makes it thirstier than SP despite similar area.
    assert rows["GHB"]["power_ratio"] > rows["SP"]["power_ratio"]
    # SP: top-tier speedup at near-zero cost — the paper's best trade-off.
    assert rows["SP"]["cost_ratio"] < 1.05
    assert rows["SP"]["mean_speedup"] > 1.03
