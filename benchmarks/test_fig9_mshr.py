"""Figure 9 — effect of cache-model accuracy (finite vs infinite MSHR).

Paper: "for many mechanisms, the MSHR has a limited but sometimes peculiar
effect on performance, and it can affect ranking" — TCP beat TK with an
infinite MSHR but not with a finite one.  Shape targets: effects are
mostly small, prefetch-heavy mechanisms benefit from the infinite MSHR
(their prefetches are never dropped), and at least some per-mechanism
numbers move.
"""

from conftest import record

from repro.harness import fig9_mshr


def test_fig9_mshr(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: fig9_mshr(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    rows = {row["mechanism"]: row for row in result.rows}

    # The effect exists but is bounded ("limited but peculiar").
    deltas = [abs(row["infinite_mshr"] - row["finite_mshr"])
              for row in result.rows]
    assert max(deltas) > 0.0005
    assert max(deltas) < 0.25
    # Prefetchers do not *lose* from an infinite MSHR.
    for name in ("GHB", "SP", "TP"):
        assert rows[name]["infinite_mshr"] >= rows[name]["finite_mshr"] - 0.01
