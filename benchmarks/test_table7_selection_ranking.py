"""Table 7 — influence of benchmark selection on ranking.

Paper: DBCP ranks 9th over all 26 benchmarks but 3rd on its own article's
selection; GHB ranks 1st over all 26 and 2nd on its article's selection
(where SP overtakes it).  Shape target: rankings genuinely move between
selections, and DBCP does not rank worse on its own selection.
"""

from conftest import record

from repro.harness import table7_selection_ranking


def test_table7_selection_ranking(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: table7_selection_ranking(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    rows = {row["selection"]: row for row in result.rows}

    all_ranks = {k: v for k, v in rows["all"].items() if k != "selection"}
    dbcp_ranks = {k: v for k, v in rows["DBCP_article"].items()
                  if k != "selection"}
    # Selections move the ranking.
    moved = sum(1 for name in all_ranks if all_ranks[name] != dbcp_ranks[name])
    assert moved >= 4
    # Article selections do not materially hurt their own mechanism (our
    # DBCP sits in a near-tied cluster around 1.0, so one rank of noise is
    # tolerated; the paper's DBCP gained six places on its own selection —
    # a magnitude our scaled DBCP cannot reproduce, see EXPERIMENTS.md).
    assert dbcp_ranks["DBCP"] <= all_ranks["DBCP"] + 1
    # GHB stays top-3 everywhere (it is simply strong).
    assert all_ranks["GHB"] <= 3
