"""Tables 1-4 (configuration renderers) and the full speedup matrix.

The configuration tables are printed from the live objects so they cannot
drift from the implementation; the matrix is the 13 x 26 grid every figure
projects.
"""

from conftest import record

from repro.harness.matrix import speedup_matrix
from repro.harness.tables import (
    table1_configuration,
    table2_mechanisms,
    table3_parameters,
    table4_benchmarks,
)


def test_configuration_tables(benchmark):
    def run():
        return [
            table1_configuration(),
            table2_mechanisms(),
            table3_parameters(),
            table4_benchmarks(),
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for result in results:
        record(result)
    table1, table2, table3, table4 = results

    values = {row["parameter"]: row["value"] for row in table1.rows}
    assert "128-RUU, 128-LSQ" in values["instruction window"]
    assert table2.summary["n_mechanisms"] == 12.0
    queue_by_name = {row["acronym"]: row["request_queue"]
                     for row in table3.rows}
    assert queue_by_name["TP"] == 16
    assert queue_by_name["SP"] == 1
    assert queue_by_name["GHB"] == 4
    assert queue_by_name["CDPSP"] == "1/128"
    selections = {row["mechanism"]: row["n_benchmarks"] for row in table4.rows}
    assert selections["DBCP"] == 5 and selections["GHB"] == 12


def test_speedup_matrix(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: speedup_matrix(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    mech_rows = [row for row in result.rows if row["mechanism"] != "Base(IPC)"]
    assert len(mech_rows) == 12
    for row in mech_rows:
        assert len([k for k in row if k not in ("mechanism", "MEAN")]) == 26
        assert row["MEAN"] > 0.8
    base = next(row for row in result.rows if row["mechanism"] == "Base(IPC)")
    assert all(0 < v < 8 for k, v in base.items() if k != "mechanism")
