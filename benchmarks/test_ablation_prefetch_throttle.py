"""Ablation — the prefetch-issue policy (Section 3.4's buried detail).

The paper observes that prefetch requests are typically "buffered in a
queue until the bus is idle" — an implementation choice most articles never
state.  Our hierarchy gates prefetch issue on memory-controller headroom;
this ablation turns the gate off and measures what unrestrained prefetch
contention does to the bandwidth-hungry mechanisms on memory-bound
benchmarks.
"""

import dataclasses

from conftest import record

from repro.core.config import baseline_config
from repro.core.simulation import run_benchmark
from repro.harness.experiments import ExperimentResult


def test_ablation_prefetch_throttle(benchmark, bench_n):
    def run():
        unthrottled = dataclasses.replace(
            baseline_config(), prefetch_throttle=False
        )
        rows = []
        for benchmark_name in ("lucas", "swim", "mcf"):
            base = run_benchmark(benchmark_name, "Base",
                                 n_instructions=bench_n)
            for mechanism in ("GHB", "TP"):
                with_gate = run_benchmark(benchmark_name, mechanism,
                                          n_instructions=bench_n)
                without_gate = run_benchmark(
                    benchmark_name, mechanism, config=unthrottled,
                    n_instructions=bench_n,
                )
                rows.append({
                    "benchmark": benchmark_name,
                    "mechanism": mechanism,
                    "throttled": with_gate.speedup_over(base),
                    "unthrottled": without_gate.ipc / base.ipc,
                    "extra_traffic": (
                        without_gate.memory_accesses
                        - with_gate.memory_accesses
                    ),
                })
        return ExperimentResult(
            exhibit="Ablation prefetch throttle",
            title="Prefetch issue gated on memory headroom vs unrestrained",
            rows=rows,
            notes="the gate is the 'wait until the bus is idle' policy of "
                  "Section 3.4",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(result)
    # Unrestrained prefetching adds traffic somewhere...
    assert any(row["extra_traffic"] > 0 for row in result.rows)
    # ...and never helps by more than noise on these memory-bound runs.
    for row in result.rows:
        assert row["unthrottled"] <= row["throttled"] + 0.05
