"""Figure 2 — validation error of reverse-engineered TK / TCP / TKVC.

Paper: 5% average speedup error against the original articles' graphs
(70-cycle constant memory), with large outliers on individual benchmarks
and occasional sign flips.  Here the reference build stands in for the
article numbers and the ``reverse_engineered`` build for the first-attempt
misreadings.
"""

from conftest import record

from repro.harness import fig2_reveng_error


def test_fig2_reveng_error(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: fig2_reveng_error(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    assert result.summary["avg_error_pct"] >= 0.0
    # Misreadings are not free: somewhere the error is visible.
    assert max(row["error_pct"] for row in result.rows) > 0.5
