"""Figure 11 — effect of trace selection (arbitrary window vs SimPoint).

Paper: comparing "skip 1 billion, simulate 2 billion" windows against
SimPoint-selected traces, average performance differs significantly and
"most mechanisms appear to perform better with an arbitrary 2-billion
trace, with the notable exception of TP" — trace selection alone can flip
research decisions.  Shape targets: the two selections disagree, and for a
majority of mechanisms the arbitrary window is the flattering one (our
workloads put their streaming-initialisation phase early, which arbitrary
windows over-sample).
"""

from conftest import record

from repro.harness import fig11_trace_selection


def test_fig11_trace_selection(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: fig11_trace_selection(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    diffs = [abs(row["arbitrary_window"] - row["simpoint"])
             for row in result.rows]

    # The selections measurably disagree for several mechanisms.
    assert sum(1 for d in diffs if d > 0.005) >= 3
    # A majority of mechanisms look at least as good on arbitrary windows.
    at_least_as_good = sum(
        1 for row in result.rows
        if row["arbitrary_window"] >= row["simpoint"] - 0.005
    )
    assert at_least_as_good >= result.summary["n_mechanisms"] * 0.5
