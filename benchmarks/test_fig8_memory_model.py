"""Figure 8 — effect of the memory model on speedups and ranking.

Paper: moving from the SimpleScalar-style 70-cycle constant memory to the
detailed SDRAM cuts speedups by ~58% on average; GHB (which "increases
memory pressure") loses more than SP; the baseline's average SDRAM latency
varies enormously per benchmark (87 cycles for gzip, 389 for lucas).
Shape targets: constant-model gains exceed SDRAM gains on average, GHB's
reduction exceeds SP's, and per-benchmark SDRAM latency spans a wide range
with lucas at the top.
"""

from conftest import record

from repro.harness import fig8_memory_model


def test_fig8_memory_model(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: fig8_memory_model(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    mech_rows = {row["mechanism"]: row for row in result.rows
                 if "mechanism" in row}
    latency = {row["benchmark"]: row["avg_sdram_latency"]
               for row in result.rows if "benchmark" in row}

    # Speedups shrink under the detailed model, on average.
    assert result.summary["avg_speedup_reduction_pct"] > 10.0
    # GHB is punished harder than SP by realistic memory (relative loss).
    ghb_loss = (result.summary["ghb_constant_gain"]
                - result.summary["ghb_sdram_gain"])
    sp_loss = (result.summary["sp_constant_gain"]
               - result.summary["sp_sdram_gain"])
    assert ghb_loss > sp_loss - 0.02
    # Per-benchmark latency varies strongly; lucas sits near the top.
    assert max(latency.values()) > 2 * min(v for v in latency.values() if v)
    ordered = sorted(latency, key=latency.get, reverse=True)
    assert ordered.index("lucas") < len(ordered) // 4
