"""Figure 4 — the headline comparison: average speedup of all mechanisms.

Paper: GHB (2004) best, then SP (1992); TK strong; the venerable TP
performs "quite well"; FVC disappoints under IPC; CDP poor on average; the
1982-2004 trend is strikingly irregular.  Shape targets checked here: a
stride prefetcher (GHB/SP/TP family) on top, GHB in the top two, CDP and
Markov in the bottom half, and old mechanisms interleaved with new ones
(the irregular-progress observation).
"""

from conftest import record

from repro.harness import fig4_speedup


def test_fig4_speedup(benchmark, bench_n):
    result = benchmark.pedantic(
        lambda: fig4_speedup(n_instructions=bench_n),
        rounds=1, iterations=1,
    )
    record(result)
    order = [row["mechanism"] for row in result.rows]
    speedups = {row["mechanism"]: row["mean_speedup"] for row in result.rows}

    assert order[0] in ("GHB", "TP", "SP")
    assert order.index("GHB") <= 2
    # Prefetchers that track strides clearly beat the baseline.
    for name in ("GHB", "SP", "TP"):
        assert speedups[name] > 1.03
    # CDP and Markov sit in the bottom half, as in the paper.
    assert order.index("Markov") > len(order) // 2 - 1
    # Progress is irregular: at least one pre-1995 mechanism out-ranks at
    # least one post-2000 mechanism.
    years = {row["mechanism"]: row["year"] for row in result.rows}
    old_best = min(order.index(m) for m in order if 0 < years[m] <= 1995)
    new_worst = max(order.index(m) for m in order if years[m] >= 2000)
    assert old_best < new_worst
