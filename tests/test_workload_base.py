"""Tests for the synthetic workload builder."""

import pytest

from repro.isa.instr import ADDR, DEP, EXTRA, OP, PC, Op
from repro.workloads.base import PatternMix, SyntheticWorkload, WorkloadSpec

KB = 1 << 10


def _spec(**overrides):
    fields = dict(
        name="toy", suite="int", description="test workload",
        patterns=(
            PatternMix("stride", 0.5, (("stride", 8), ("working_set", 4 * KB))),
            PatternMix("hot", 0.5, (("working_set", 2 * KB),)),
        ),
        mem_fraction=0.4, branch_fraction=0.1, seed=5,
    )
    fields.update(overrides)
    return WorkloadSpec(**fields)


def _mix_counts(trace):
    counts = {"mem": 0, "branch": 0, "alu": 0}
    for record in trace:
        if record[OP] in (Op.LOAD, Op.STORE):
            counts["mem"] += 1
        elif record[OP] == Op.BRANCH:
            counts["branch"] += 1
        else:
            counts["alu"] += 1
    return counts


def test_build_is_deterministic():
    workload = SyntheticWorkload(_spec())
    trace1, _ = workload.build(2000)
    trace2, _ = SyntheticWorkload(_spec()).build(2000)
    assert trace1 == trace2


def test_instruction_mix_matches_fractions():
    trace, _ = SyntheticWorkload(_spec()).build(10000)
    counts = _mix_counts(trace)
    assert abs(counts["mem"] / 10000 - 0.4) < 0.03
    assert abs(counts["branch"] / 10000 - 0.1) < 0.02


def test_trace_length():
    trace, _ = SyntheticWorkload(_spec()).build(1234)
    assert len(trace) == 1234


def test_store_values_written_to_image():
    trace, image = SyntheticWorkload(_spec(store_fraction=0.5)).build(4000)
    stores = [r for r in trace if r[OP] == Op.STORE]
    assert stores
    # The image reflects the last store to each word.
    last = {}
    for record in stores:
        last[record[ADDR] & ~7] = record[EXTRA]
    mismatches = sum(
        1 for addr, value in last.items() if image.read(addr) != value
    )
    assert mismatches == 0


def test_dependences_are_bounded_and_backwards():
    trace, _ = SyntheticWorkload(_spec()).build(5000)
    for i, record in enumerate(trace):
        assert 0 <= record[DEP] <= min(i, 499)


def test_loads_have_addresses_and_alu_ops_do_not():
    trace, _ = SyntheticWorkload(_spec()).build(3000)
    for record in trace:
        if record[OP] in (Op.LOAD, Op.STORE):
            assert record[ADDR] > 0
        else:
            assert record[ADDR] == 0


def test_pattern_pcs_are_stable_per_engine():
    """Stride prefetchers need each engine's loads to share a PC."""
    trace, _ = SyntheticWorkload(_spec()).build(5000)
    load_pcs = {r[PC] for r in trace if r[OP] == Op.LOAD}
    assert len(load_pcs) <= 2  # one load PC per engine


def test_phases_shift_the_engine_mix():
    spec = _spec(phases=((0.5, (1.0, 0.0)), (0.5, (0.0, 1.0))))
    trace, _ = SyntheticWorkload(spec).build(8000)
    half = len(trace) // 2
    first_pcs = {r[PC] for r in trace[:half] if r[OP] == Op.LOAD}
    second_pcs = {r[PC] for r in trace[half + 100:] if r[OP] == Op.LOAD}
    assert first_pcs and second_pcs
    assert first_pcs != second_pcs


def test_mispredict_rate_reflected_in_branches():
    spec = _spec(mispredict_rate=0.5, branch_fraction=0.3)
    trace, _ = SyntheticWorkload(spec).build(10000)
    branches = [r for r in trace if r[OP] == Op.BRANCH]
    mispredicted = sum(1 for r in branches if r[EXTRA])
    assert 0.35 < mispredicted / len(branches) < 0.65


class TestSpecValidation:
    def test_rejects_bad_suite(self):
        with pytest.raises(ValueError):
            _spec(suite="web")

    def test_rejects_empty_patterns(self):
        with pytest.raises(ValueError):
            _spec(patterns=())

    def test_rejects_out_of_range_fractions(self):
        with pytest.raises(ValueError):
            _spec(mem_fraction=0.0)
        with pytest.raises(ValueError):
            _spec(branch_fraction=1.5)

    def test_rejects_mismatched_phase_multipliers(self):
        with pytest.raises(ValueError):
            _spec(phases=((1.0, (1.0,)),))

    def test_rejects_unknown_pattern_kind(self):
        spec = _spec(patterns=(PatternMix("bogus", 1.0, ()),))
        with pytest.raises(ValueError):
            SyntheticWorkload(spec).build(100)
