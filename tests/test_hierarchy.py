"""Tests for the two-level memory hierarchy."""

import pytest

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import (
    MEMORY_CONSTANT,
    baseline_config,
)
from repro.mechanisms.registry import create
from repro.workloads.image import MemoryImage


def _hierarchy(mechanism=None, config=None, image=None):
    return MemoryHierarchy(config or baseline_config(), mechanism=mechanism,
                           image=image)


def test_cold_load_goes_to_memory_then_hits_everywhere():
    h = _hierarchy()
    ready = h.load(pc=1, addr=0x4000, time=0)
    assert ready > 50  # DRAM round trip
    assert h.classify(0x4000).level == "l1"
    second = h.load(pc=1, addr=0x4000, time=ready + 1)
    assert second <= ready + 4  # L1 hit


def test_l2_hit_faster_than_memory_slower_than_l1():
    h = _hierarchy()
    t = h.load(1, 0x4000, 0)
    # Evict from L1 (direct-mapped, 32 KB apart collides) but stay in L2.
    t2 = h.load(1, 0x4000 + (32 << 10), t + 1)
    l2_hit = h.load(1, 0x4000, t2 + 1)
    assert h.classify(0x4000 + (32 << 10)).level in ("l1", "l2")
    cold = t - 0
    assert l2_hit - (t2 + 1) < cold  # L2 hit cheaper than DRAM trip


def test_store_updates_functional_image():
    image = MemoryImage()
    h = _hierarchy(image=image)
    h.store(pc=1, addr=0x8000, value=77, time=0)
    assert image.read(0x8000) == 77


def test_constant_memory_model_fixed_latency():
    config = baseline_config().with_memory_model(MEMORY_CONSTANT)
    h = _hierarchy(config=config)
    first = h.load(1, 0x4000, 0)
    h_2 = _hierarchy(config=config)
    second = h_2.load(1, 0x14000, 0)
    assert first == second  # identical path length regardless of address


def test_classify_levels():
    h = _hierarchy()
    assert h.classify(0x4000).level == "memory"
    t = h.load(1, 0x4000, 0)
    assert h.classify(0x4000).level == "l1"
    h.load(1, 0x4000 + (32 << 10), t + 1)  # evict L1 line; L2 retains it
    assert h.classify(0x4000).level == "l2"


def test_mechanism_attaches_to_its_level():
    vc = create("VC")
    h = _hierarchy(mechanism=vc)
    assert h.l1d.mechanism is vc
    tp = create("TP")
    h2 = _hierarchy(mechanism=tp)
    assert h2.l2.mechanism is tp


def test_prefetch_drain_issues_queued_requests():
    tp = create("TP")
    h = _hierarchy(mechanism=tp)
    t = h.load(1, 0x4000, 0)             # L2 miss -> TP queues next line
    assert len(tp.queue) == 1
    h.load(1, 0x9000, t + 50)            # next access drains the queue
    # The first prefetch issued (the new miss queued a fresh one).
    assert h.st_prefetches_issued.value >= 1
    assert h.l2.contains(0x4040)         # next 64-byte line landed in L2


def test_l1_prefetch_l2_only_gate():
    tk = create("TK")
    h = _hierarchy(mechanism=tk)
    # Queue a prefetch for a line that is nowhere in the hierarchy.
    tk.emit_prefetch(0xABC000, 0)
    h.load(1, 0x4000, 10)
    assert h.st_prefetches_issued.value == 0
    assert h.st_prefetches_redundant.value == 1


def test_read_line_values_uses_image():
    image = MemoryImage()
    image.write(0x4000, 11)
    image.write(0x4008, 22)
    h = _hierarchy(image=image)
    words = h.read_line_values(0x4004, 32)
    assert words[0] == 11 and words[1] == 22
    assert _hierarchy().read_line_values(0x4000, 32) == ()  # no image


def test_writeback_propagates_to_l2():
    h = _hierarchy()
    t = h.store(1, 0x4000, 1, 0)
    l2_writes_before = h.l2.st_writes.value
    # Conflict eviction of the dirty line (32 KB apart in direct-mapped L1).
    h.load(1, 0x4000 + (32 << 10), t + 1)
    assert h.l2.st_writes.value > l2_writes_before


def test_deferred_events_run_on_advance():
    h = _hierarchy()
    fired = []
    h.sim.schedule(100, fired.append, "tick")
    h.load(1, 0x4000, 200)
    assert fired == ["tick"]


def test_reset():
    h = _hierarchy()
    h.load(1, 0x4000, 0)
    h.reset()
    assert h.classify(0x4000).level == "memory"
    assert h.st_loads.value == 0


def test_unknown_memory_model_rejected():
    import dataclasses
    config = dataclasses.replace(baseline_config(), memory_model="weird")
    with pytest.raises(ValueError):
        MemoryHierarchy(config)
