"""Tests for SMARTS-style systematic sampling."""

import pytest

from repro.isa.instr import Op, make_load, make_op
from repro.trace.smarts import SampledEstimate, sampled_ipc, systematic_sample, _z_value
from repro.workloads.registry import build


def _trace(n=12000):
    records = []
    for i in range(n):
        if i % 4 == 0:
            records.append(make_load(0x400, 0x100000 + (i % 512) * 8))
        else:
            records.append(make_op(Op.INT_ALU, 0x410 + (i % 16) * 4))
    return records


class TestSystematicSample:
    def test_window_count_and_length(self):
        samples = systematic_sample(_trace(), n_windows=5, window=500,
                                    warmup=1000)
        assert len(samples) == 5
        # First window has no room for warm-up.
        first_slice, first_from = samples[0]
        assert first_from == 0 and len(first_slice) == 500
        # Later windows carry their warm-up prefix.
        later_slice, later_from = samples[2]
        assert later_from == 1000
        assert len(later_slice) == 1500

    def test_windows_are_evenly_spaced(self):
        trace = list(range(1000))
        samples = systematic_sample(trace, n_windows=4, window=10, warmup=0)
        starts = [s[0][0] for s in samples]
        assert starts == [0, 250, 500, 750]

    def test_rejects_oversized_request(self):
        with pytest.raises(ValueError):
            systematic_sample(_trace(1000), n_windows=10, window=500)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            systematic_sample(_trace(), n_windows=0, window=10)


class TestSampledIPC:
    def test_estimate_structure(self):
        estimate = sampled_ipc(_trace(), n_windows=6, window=400, warmup=400)
        assert isinstance(estimate, SampledEstimate)
        assert estimate.n_windows == 6
        assert len(estimate.window_ipcs) == 6
        assert estimate.mean_ipc > 0
        assert estimate.half_width >= 0

    def test_estimate_tracks_the_full_run(self):
        """The sampled mean approximates the full-trace IPC."""
        from repro.core.simulation import run_trace
        trace = _trace(16000)
        full = run_trace(trace, warmup_fraction=0.1)
        estimate = sampled_ipc(trace, n_windows=8, window=600, warmup=800)
        assert abs(estimate.mean_ipc - full.ipc) < 0.5 * full.ipc

    def test_homogeneous_trace_has_tight_interval(self):
        estimate = sampled_ipc(_trace(), n_windows=8, window=500, warmup=500)
        assert estimate.relative_error < 0.5

    def test_on_real_workload(self):
        trace, image = build("mesa", 12000)
        estimate = sampled_ipc(trace, n_windows=5, window=600, warmup=600,
                               image=image)
        assert estimate.mean_ipc > 0

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            sampled_ipc(_trace(), confidence=1.5)


def test_z_value_matches_known_quantiles():
    assert _z_value(0.95) == pytest.approx(1.9599, abs=2e-3)
    assert _z_value(0.99) == pytest.approx(2.5758, abs=2e-3)
