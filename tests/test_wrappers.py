"""Tests for the interoperability wrappers (Section 4's federation goal)."""

import pytest

from repro.core.config import baseline_config
from repro.core.simulation import run_trace
from repro.isa.instr import make_load
from repro.mechanisms.registry import create
from repro.wrappers import (
    CACHE_READ,
    CACHE_WRITE,
    ForeignPrefetcherAdapter,
    SimpleScalarCacheShim,
)
from repro.workloads.image import MemoryImage


class TestSimpleScalarShim:
    def test_read_miss_then_hit_latencies(self):
        shim = SimpleScalarCacheShim()
        miss_lat = shim.cache_access(CACHE_READ, 0x4000, 32, now=0)
        hit_lat = shim.cache_access(CACHE_READ, 0x4000, 32, now=miss_lat + 10)
        assert miss_lat > 50      # DRAM round trip
        assert hit_lat <= 4       # L1 hit
        assert shim.hits == 1 and shim.misses == 1

    def test_write_path_and_stats(self):
        image = MemoryImage()
        shim = SimpleScalarCacheShim(image=image)
        shim.cache_access(CACHE_WRITE, 0x8000, 32, now=0, value=5)
        assert image.read(0x8000) == 5
        # Thrash the set to force the dirty writeback.
        t = 1000
        for i in range(1, 4):
            shim.cache_access(CACHE_READ, 0x8000 + i * (32 << 10), 32, now=t)
            t += 500
        assert shim.writebacks >= 1

    def test_unknown_command_rejected(self):
        with pytest.raises(ValueError):
            SimpleScalarCacheShim().cache_access("Flush", 0, 32, now=0)

    def test_hosts_a_library_mechanism(self):
        """The original direction: MicroLib model behind the classic API."""
        shim = SimpleScalarCacheShim(mechanism=create("TP"))
        t = 0
        for i in range(200):
            latency = shim.cache_access(CACHE_READ, 0x100000 + i * 64, 32,
                                        now=t)
            t += latency + 20
        assert shim.hierarchy.st_prefetches_issued.value > 20


class _ToyNextLine:
    """A 'foreign' prefetcher in the common standalone shape."""

    name = "ToyNL"
    table_bytes = 64

    def __init__(self):
        self.trained = 0

    def train(self, pc, addr, hit):
        self.trained += 1
        if not hit:
            return [addr + 64]
        return []


class TestForeignAdapter:
    def test_rejects_models_without_train(self):
        with pytest.raises(TypeError):
            ForeignPrefetcherAdapter(object())

    def test_rejects_bad_level(self):
        with pytest.raises(ValueError):
            ForeignPrefetcherAdapter(_ToyNextLine(), level="l3")

    def test_adapted_model_prefetches_through_the_harness(self):
        model = _ToyNextLine()
        adapter = ForeignPrefetcherAdapter(model, level="l2")
        trace = []
        from repro.isa.instr import Op, make_op
        for i in range(300):
            trace.append(make_load(0x400, 0x100000 + i * 64))
            for k in range(19):  # sparse misses: the bus has idle headroom
                trace.append(make_op(Op.INT_ALU, 0x410 + 4 * k))
        base = run_trace(trace)
        result = run_trace(trace, adapter)
        assert model.trained > 0
        assert result.useful_prefetches > 50
        assert result.ipc > base.ipc

    def test_cost_model_prices_the_foreign_table(self):
        from repro.core.simulation import build_machine
        from repro.costmodel.cacti import CactiModel
        adapter = ForeignPrefetcherAdapter(_ToyNextLine())
        build_machine(mechanism=adapter)
        assert CactiModel().cost_ratio(adapter) > 1.0
