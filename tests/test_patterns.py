"""Tests for the address-pattern engines."""

import random

import pytest

from repro.workloads.image import MemoryImage
from repro.workloads.patterns import (
    ConflictEngine,
    FREQUENT_VALUES,
    HotZipfEngine,
    LoopSequenceEngine,
    PointerChaseEngine,
    RandomEngine,
    StrideEngine,
)

BASE = 0x1000_0000


def _rng():
    return random.Random(42)


class TestStrideEngine:
    def test_walks_with_fixed_stride_and_wraps(self):
        engine = StrideEngine(BASE, _rng(), working_set=64, stride=16)
        addrs = [engine.next() for _ in range(6)]
        assert addrs == [BASE, BASE + 16, BASE + 32, BASE + 48, BASE, BASE + 16]

    def test_rejects_zero_stride(self):
        with pytest.raises(ValueError):
            StrideEngine(BASE, _rng(), working_set=64, stride=0)

    def test_setup_initialises_region(self):
        image = MemoryImage()
        engine = StrideEngine(BASE, _rng(), working_set=256, stride=8)
        engine.setup(image, value_locality=1.0)
        assert image.read(BASE) in FREQUENT_VALUES


class TestRandomEngine:
    def test_addresses_stay_in_region_and_aligned(self):
        engine = RandomEngine(BASE, _rng(), working_set=1024)
        for _ in range(200):
            addr = engine.next()
            assert BASE <= addr < BASE + 1024
            assert addr % 8 == 0


class TestHotZipfEngine:
    def test_skew_concentrates_accesses(self):
        engine = HotZipfEngine(BASE, _rng(), working_set=8192, skew=0.8)
        counts = {}
        for _ in range(2000):
            addr = engine.next()
            counts[addr] = counts.get(addr, 0) + 1
        top = sorted(counts.values(), reverse=True)
        # The hottest 8 of 1024 words take a vastly super-uniform share.
        assert sum(top[:8]) > 0.2 * 2000
        assert sum(top[:64]) > 0.55 * 2000

    def test_rejects_bad_skew(self):
        with pytest.raises(ValueError):
            HotZipfEngine(BASE, _rng(), working_set=1024, skew=0.4)


class TestLoopSequenceEngine:
    def test_sequence_repeats_exactly_without_noise(self):
        engine = LoopSequenceEngine(BASE, _rng(), working_set=8192,
                                    sequence_length=16, noise=0.0)
        lap1 = [engine.next() for _ in range(16)]
        lap2 = [engine.next() for _ in range(16)]
        assert lap1 == lap2

    def test_conflict_sets_collide_in_l1(self):
        engine = LoopSequenceEngine(BASE, _rng(), working_set=8192,
                                    sequence_length=64, noise=0.0,
                                    conflict_sets=8, way_span=32 << 10)
        addrs = {engine.next() for _ in range(64)}
        l1_sets = {(addr >> 5) & 1023 for addr in addrs}
        # 8 conflict slots of 64 bytes -> at most 16 distinct L1 sets.
        assert len(l1_sets) <= 16
        ways = {addr // (32 << 10) for addr in addrs}
        assert len(ways) >= 4  # several colliding ways


class TestConflictEngine:
    def test_rotates_ways_within_same_l1_set(self):
        engine = ConflictEngine(BASE, _rng(), n_ways=2, set_stride=32 << 10,
                                n_sets_used=1)
        a, b, c = engine.next(), engine.next(), engine.next()
        assert a != b and a == c
        assert ((a >> 5) & 1023) == ((b >> 5) & 1023)  # same L1 set


class TestPointerChaseEngine:
    def _engine(self, **kwargs):
        image = MemoryImage()
        engine = PointerChaseEngine(BASE, _rng(), n_nodes=64, node_size=64,
                                    next_offset=0, n_chains=1, **kwargs)
        engine.setup(image, value_locality=0.3)
        return engine, image

    def test_requires_setup(self):
        engine = PointerChaseEngine(BASE, _rng(), n_nodes=8)
        with pytest.raises(RuntimeError):
            engine.next()

    def test_traversal_follows_stored_pointers(self):
        engine, image = self._engine()
        addr1 = engine.next()
        addr2 = engine.next()
        # The second address is the pointer stored at the first.
        assert addr2 == image.read(addr1) + 0  # next_offset == 0

    def test_chain_is_a_permutation_cycle(self):
        engine, _ = self._engine()
        seen = [engine.next() for _ in range(64)]
        assert len(set(seen)) == 64  # visits every node once per cycle
        again = [engine.next() for _ in range(64)]
        assert seen == again

    def test_heap_range_registered_for_cdp(self):
        _, image = self._engine()
        assert image.heap_lo == BASE
        assert image.heap_hi == BASE + 64 * 64

    def test_ammp_pathology_next_offset_beyond_line(self):
        """CDP prefetches the pointer target's base line, but with the next
        pointer 88 bytes into a 96-byte node the demand access always lands
        in a *different* 64-byte line — the prefetch is systematically
        useless (Section 3.1)."""
        image = MemoryImage()
        engine = PointerChaseEngine(BASE, _rng(), n_nodes=16, node_size=96,
                                    next_offset=88, n_chains=1)
        engine.setup(image, value_locality=0.3)
        for _ in range(16):
            addr = engine.next()          # demand address: node + 88
            node = addr - 88
            target = image.read(addr)     # pointer value: next node base
            # CDP would prefetch line(target); the demand will touch
            # line(target + 88) — always a different 64-byte line.
            assert (target + 88) // 64 != target // 64
            assert (node - BASE) % 96 == 0  # nodes are 96-byte slots

    def test_payload_pointers_produce_decoys(self):
        image = MemoryImage()
        engine = PointerChaseEngine(BASE, _rng(), n_nodes=32, node_size=64,
                                    next_offset=0, n_chains=1,
                                    payload_pointers=1.0)
        engine.setup(image, value_locality=0.3)
        addr = engine.next()
        node = addr  # next_offset == 0
        words = image.read_line(node & ~63, 64)
        pointer_like = [w for w in words if image.looks_like_pointer(w)]
        assert len(pointer_like) >= 4  # next pointer plus decoys

    def test_opaque_hops_still_traverse(self):
        image = MemoryImage()
        engine = PointerChaseEngine(BASE, _rng(), n_nodes=32, node_size=64,
                                    next_offset=0, n_chains=1,
                                    opaque_hops=1.0)
        engine.setup(image, value_locality=0.3)
        addrs = [engine.next() for _ in range(50)]
        assert all(BASE <= a < BASE + 32 * 64 for a in addrs)

    def test_n_next_validation(self):
        with pytest.raises(ValueError):
            PointerChaseEngine(BASE, _rng(), node_size=16, next_offset=8,
                               n_next=2)
        with pytest.raises(ValueError):
            PointerChaseEngine(BASE, _rng(), n_next=0)

    def test_branching_chains_have_multiple_pointers(self):
        image = MemoryImage()
        engine = PointerChaseEngine(BASE, _rng(), n_nodes=32, node_size=64,
                                    next_offset=0, n_chains=1, n_next=2)
        engine.setup(image, value_locality=0.3)
        addr = engine.next()
        node = addr - (addr - BASE) % 64
        first = image.read(node)
        second = image.read(node + 8)
        assert image.looks_like_pointer(first)
        assert image.looks_like_pointer(second)
