"""White-box tests for mechanism internals that black-box runs can miss."""

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import baseline_config
from repro.mechanisms.registry import create


def _hierarchy(mech):
    return MemoryHierarchy(baseline_config(), mechanism=mech)


class TestGHBInternals:
    def test_buffer_wraparound_keeps_chains_sane(self):
        """After >256 misses the circular buffer wraps; stale links must
        never produce out-of-range walks or crashes."""
        ghb = create("GHB")
        h = _hierarchy(ghb)
        t = 0
        for i in range(600):  # > 2x GHB_ENTRIES, two PCs interleaved
            pc = 0x400 if i % 2 else 0x500
            t = h.load(pc, 0x100000 + i * 4096, t + 40)
        assert ghb._head < ghb.GHB_ENTRIES
        for addr, prev in ghb._buffer:
            assert -1 <= prev < ghb.GHB_ENTRIES

    def test_index_table_capacity_is_bounded(self):
        ghb = create("GHB")
        h = _hierarchy(ghb)
        t = 0
        for i in range(300):  # 300 distinct PCs > IT_ENTRIES
            t = h.load(0x1000 + i * 4, 0x100000 + i * 8192, t + 40)
        assert len(ghb._index) <= ghb.IT_ENTRIES


class TestTCPInternals:
    def test_reverse_engineered_key_aliases_across_sets(self):
        reference = create("TCP")
        misread = create("TCP", reverse_engineered=True)
        # Same tag pair in two different sets: the misread key collides.
        assert misread._pattern_key(3, 7, 9) == misread._pattern_key(4, 7, 9)
        assert reference._pattern_key(3, 7, 9) != reference._pattern_key(4, 7, 9)

    def test_pht_capacity_bounded(self):
        tcp = create("TCP")
        h = _hierarchy(tcp)
        t = 0
        for i in range(1500):
            t = h.load(0x400, 0x10000000 + i * (1 << 19), t + 30)
        assert len(tcp._pht) <= tcp.pht_capacity


class TestMarkovInternals:
    def test_table_capacity_bounded(self):
        markov = create("Markov")
        h = _hierarchy(markov)
        # The 1 MB table holds ~26k entries; we can't fill it in test time,
        # but the cap logic is the same dict-eviction path as a small cap.
        markov._table["sentinel"] = [1]
        assert markov.table_capacity > 20_000

    def test_probe_miss_leaves_buffer_untouched(self):
        markov = create("Markov")
        h = _hierarchy(markov)
        markov._buffer[1234] = 10
        assert markov.probe(99, 0) is None
        assert 1234 in markov._buffer


class TestSPInternals:
    def test_zero_delta_is_ignored(self):
        sp = create("SP")
        h = _hierarchy(sp)
        t = h.load(0x400, 0x100000, 0)
        t = h.load(0x400, 0x100000, t + 50)  # same address: delta 0
        entry = sp._table[0x400]
        assert entry[1] == 0  # stride never trained to zero


class TestVCInternals:
    def test_recapture_updates_dirty_union(self):
        vc = create("VC")
        h = _hierarchy(vc)
        block = h.l1d.block_of(0x100000)
        assert vc.on_evict(block, dirty=False, live=True, time=0)
        assert vc.on_evict(block, dirty=True, live=True, time=1)
        assert vc._entries[block] is True  # dirty sticks


class TestFVCInternals:
    def test_frequent_value_table_is_capped_at_seven(self):
        fvc = create("FVC")
        fvc._counts.update(range(100))
        assert len(fvc.frequent_values()) <= fvc.N_FREQUENT


class TestCDPSPForwarding:
    def test_hooks_reach_both_halves(self):
        cdpsp = create("CDPSP")
        h = _hierarchy(cdpsp)
        t = h.load(0x400, 0x100000, 0)
        h.load(0x400, 0x100000 + 4096, t + 50)
        # SP trained (per-PC table) even though CDPSP owns the hook slot.
        assert 0x400 in cdpsp.sp._table
