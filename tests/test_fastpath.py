"""Trace-speculation fast path: bit-identity, guards, and abort paths.

The fast path (:mod:`repro.cpu.fastpath`) is only allowed to exist because
it is *provably invisible*: the golden-fingerprint test here runs every
registered mechanism on the same trace with the fast path on and off and
requires identical ``stats_report()`` output (plus the headline result
fields).  The unit tests then poke each guard directly — a miss
mid-replay, a prefetch queued mid-replay, a kernel event coming due — and
check the abort is taken, is side-effect-free, and lands on a slow path
that produces the same answer.
"""

import pytest

from repro.core import run_benchmark
from repro.core.config import baseline_config
from repro.core.simulation import build_machine, run_trace
from repro.cpu.fastpath import TraceSpeculator
from repro.exec import RunSpec
from repro.mechanisms.base import Mechanism
from repro.mechanisms.registry import ALL_MECHANISMS, EXTENSIONS, create
from repro.workloads.registry import build as build_workload

_N = 3000


@pytest.fixture(scope="module")
def swim_trace():
    return build_workload("swim", _N)


# -- golden fingerprint --------------------------------------------------------

@pytest.mark.parametrize("mechanism", ALL_MECHANISMS + EXTENSIONS)
def test_fast_and_slow_paths_fingerprint_identically(mechanism, swim_trace):
    trace, image = swim_trace
    results = {}
    for fast in (True, False):
        results[fast] = run_trace(
            list(trace), create(mechanism), image=image, benchmark="swim",
            mechanism_name=mechanism, fast=fast,
        )
    fast_r, slow_r = results[True], results[False]
    assert fast_r.stats == slow_r.stats, (
        f"{mechanism}: stats_report diverged between fast and slow paths"
    )
    assert fast_r.ipc == slow_r.ipc
    assert fast_r.cycles == slow_r.cycles
    assert fast_r.l1_miss_rate == slow_r.l1_miss_rate
    assert fast_r.l2_miss_rate == slow_r.l2_miss_rate
    assert fast_r.avg_load_latency == slow_r.avg_load_latency
    assert fast_r.prefetches_issued == slow_r.prefetches_issued
    assert fast_r.useful_prefetches == slow_r.useful_prefetches


def test_fast_knob_flows_through_run_benchmark():
    fast_r = run_benchmark("art", "GHB", n_instructions=2000)
    slow_r = run_benchmark("art", "GHB", n_instructions=2000, fast=False)
    assert fast_r.stats == slow_r.stats
    assert fast_r.ipc == slow_r.ipc


def test_speculation_counters_stay_out_of_stats(swim_trace):
    trace, image = swim_trace
    core, hierarchy = build_machine(None, create("GHB"), image)
    core.run(list(trace))
    sp = core.speculation
    assert sp is not None and sp.commits > 0
    report = hierarchy.stats_report()
    assert not any("commit" in key or "abort" in key for key in report)


def test_slow_path_records_no_speculator(swim_trace):
    trace, image = swim_trace
    core, _ = build_machine(None, None, image)
    core.run(list(trace), fast=False)
    assert core.speculation is None


# -- the guards, one by one ----------------------------------------------------

def _machine(mechanism=None):
    core, hierarchy = build_machine(baseline_config(), mechanism)
    speculator = TraceSpeculator(hierarchy)
    return core, hierarchy, speculator


def test_replay_commits_on_a_resident_line():
    _, hierarchy, sp = _machine()
    slow_ready = hierarchy.load(0x100, 0x4000, 10)   # miss: installs the line
    assert sp.commits == 0
    fast_ready = sp.replay_load(0x100, 0x4000, slow_ready + 5)
    assert fast_ready is not None
    assert sp.commits == 1 and sp.aborts == 0


def test_miss_mid_replay_aborts_without_side_effects():
    _, hierarchy, sp = _machine()
    l1d = hierarchy.l1d
    before = (list(l1d._tags), list(l1d._flags),
              l1d.st_reads.value, l1d.st_read_misses.value,
              hierarchy.st_loads.value)
    assert sp.replay_load(0x100, 0x9000, 10) is None  # cold cache: a miss
    assert sp.abort_reasons()["miss"] == 1
    after = (list(l1d._tags), list(l1d._flags),
              l1d.st_reads.value, l1d.st_read_misses.value,
              hierarchy.st_loads.value)
    assert before == after, "an aborted replay must leave no trace"
    # The slow path then answers, and a retry of the replay commits.
    ready = hierarchy.load(0x100, 0x9000, 10)
    assert sp.replay_load(0x100, 0x9000, ready + 4) is not None


def test_prefetch_insert_mid_replay_aborts_to_the_drain():
    class Pusher(Mechanism):
        LEVEL = "l1"
        QUEUE_SIZE = 4

    mech = Pusher()
    _, hierarchy, sp = _machine(mech)
    hierarchy.load(0x100, 0x4000, 10)                # line now resident
    assert sp.replay_load(0x100, 0x4000, 20) is not None
    # A prefetch lands in the queue mid-run (as a hook would emit it).
    assert mech.emit_prefetch(0x8000, time=20)
    assert sp.replay_load(0x100, 0x4000, 25) is None
    assert sp.abort_reasons()["queued_prefetch"] == 1
    # The slow path drains the queue; replays resume committing after.
    hierarchy.load(0x100, 0x4000, 30)
    assert len(mech.queue) == 0
    assert sp.replay_load(0x100, 0x4000, 40) is not None


def test_due_kernel_event_is_drained_then_replay_commits():
    fired = []
    _, hierarchy, sp = _machine()
    hierarchy.load(0x100, 0x4000, 10)
    hierarchy.sim.schedule(100, fired.append, "later")
    # Event still in the future: advance() would not fire it either.
    assert sp.replay_load(0x100, 0x4000, 50) is not None
    assert sp.event_drains == 0
    # At its due time the replay first runs the kernel drain — the same
    # run_until the slow path's advance() performs — then commits.
    assert sp.replay_load(0x100, 0x4000, 100) is not None
    assert sp.event_drains == 1
    assert fired == ["later"]
    assert hierarchy.sim.now == 100


def test_ifetch_replay_skips_mechanism_hooks():
    class Spy(Mechanism):
        LEVEL = "l1"
        QUEUE_SIZE = 4

        def __init__(self):
            super().__init__()
            self.seen = []

        def on_access(self, pc, block, hit, was_prefetched, time):
            self.seen.append(pc)

    mech = Spy()
    _, hierarchy, sp = _machine(mech)
    hierarchy.fetch_instruction(0x4000, 5)           # install in L1I
    assert sp.replay_ifetch(0x4000, 0x4000, 10) is not None
    assert mech.seen == []                           # ifetch is invisible
    hierarchy.load(0x200, 0x4000, 15)                # data access is not
    assert mech.seen != []


# -- spec hashing --------------------------------------------------------------

def test_fast_knob_is_part_of_run_identity():
    fast_spec = RunSpec("swim", "GHB", n_instructions=2000)
    slow_spec = RunSpec("swim", "GHB", n_instructions=2000, fast=False)
    assert fast_spec.fast is True
    assert fast_spec.describe()["fast"] is True
    assert fast_spec.content_hash != slow_spec.content_hash
