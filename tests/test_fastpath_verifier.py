"""SIM8xx guard-completeness verifier: proofs about the *emitted* fast path.

The headline property: for every machine shape the emitters can produce,
deleting ANY single guard from the emitted source is caught as SIM801.
The golden replay tests show the fast path agrees with the slow path on
the traces they run; these tests show the guard structure that makes the
agreement *necessary* cannot silently erode.
"""

import ast

import pytest

from repro.analysis.fastpath import (
    ArtifactShape,
    iter_guard_mutations,
    iter_tree_artifacts,
    shape_of,
    verify_source,
)
from repro.core.simulation import build_machine
from repro.cpu import codecache
from repro.cpu.fastpath import (
    EMITTER_VERSION,
    GUARDS,
    STATE_OF_BINDING,
    emit_replay_source,
)
from repro.mechanisms.registry import create
from repro.workloads.image import MemoryImage

#: (label, source, artifacts) for every shape the emitters produce —
#: computed once; building ~17 machines per parametrized test would
#: dominate the suite's runtime.
ARTIFACTS = list(iter_tree_artifacts())
LABELS = [label for label, _, _ in ARTIFACTS]


# -- the verifier accepts what the emitters produce ----------------------------

@pytest.mark.parametrize("label", LABELS)
def test_emitted_source_verifies_clean(label):
    _, source, artifacts = next(a for a in ARTIFACTS if a[0] == label)
    assert verify_source(source, artifacts) == []


def test_all_registered_shapes_are_covered():
    # Three closures + the run loop per machine; at least the baseline,
    # every mechanism, and the imprecise variants must appear.
    machines = {label.rsplit("/", 1)[0] for label in LABELS}
    assert "baseline" in machines
    assert "baseline-imprecise" in machines
    assert {"GHB", "TK", "TKVC", "SB"} <= machines
    for machine in machines:
        kinds = {label.rsplit("/", 1)[1] for label in LABELS
                 if label.rsplit("/", 1)[0] == machine}
        assert kinds == {"load", "store", "ifetch", "loop"}


# -- THE mutation test: every guard, every shape -------------------------------

@pytest.mark.parametrize("label", LABELS)
def test_dropping_any_guard_is_flagged(label):
    """Delete each guard from the emitted source; SIM801 must fire."""
    _, source, artifacts = next(a for a in ARTIFACTS if a[0] == label)
    mutations = list(iter_guard_mutations(source))
    assert mutations, f"{label}: no guards found to mutate"
    # Every emitted artifact carries an event drain and a residency probe.
    names = {name for name, _ in mutations}
    assert {"event-drain", "resident"} <= names
    for guard, mutated in mutations:
        ast.parse(mutated)  # the mutant must stay syntactically valid
        findings = verify_source(mutated, artifacts)
        assert any(rule == "SIM801" for rule, _, _ in findings), (
            f"{label}: dropping the {guard} guard went undetected"
        )


def test_queue_guard_mutations_exist_for_prefetchers():
    label = "GHB/load"
    _, source, artifacts = next(a for a in ARTIFACTS if a[0] == label)
    names = [name for name, _ in iter_guard_mutations(source)]
    assert "queued-prefetch" in names


# -- targeted synthetic breakage ----------------------------------------------

def _baseline_load():
    return next(a for a in ARTIFACTS if a[0] == "baseline/load")


def test_reordered_commit_writes_fire_sim802():
    _, source, artifacts = _baseline_load()
    mutated = source.replace(
        "    flags[base] = line_flags\n    touch[base] = t\n",
        "    touch[base] = t\n    flags[base] = line_flags\n",
    )
    assert mutated != source
    assert {rule for rule, _, _ in verify_source(mutated, artifacts)} \
        == {"SIM802"}


def test_dropped_commit_write_fires_sim802():
    _, source, artifacts = _baseline_load()
    mutated = source.replace("    touch[base] = t\n", "")
    assert mutated != source
    findings = verify_source(mutated, artifacts)
    assert any(rule == "SIM802" for rule, _, _ in findings)


def test_stale_baked_constant_fires_sim803():
    _, source, artifacts = _baseline_load()
    for needle, patch in (
        ("addr >> 5", "addr >> 6"),          # line bits
        ("count >= 4", "count >= 2"),        # port count
        ("> 8192", "> 16"),                  # ledger prune threshold
    ):
        mutated = source.replace(needle, patch)
        assert mutated != source, needle
        assert {rule for rule, _, _ in verify_source(mutated, artifacts)} \
            == {"SIM803"}, needle


def test_dirty_marking_in_load_replay_fires_sim803():
    _, source, artifacts = _baseline_load()
    mutated = source.replace(
        "    flags[base] = line_flags\n",
        "    line_flags |= 1\n    flags[base] = line_flags\n", 1,
    )
    findings = verify_source(mutated, artifacts)
    assert {rule for rule, _, _ in findings} == {"SIM803"}


def test_store_replay_without_dirty_marking_fires_sim803():
    _, source, artifacts = next(
        a for a in ARTIFACTS if a[0] == "baseline/store"
    )
    mutated = source.replace(" |= 1\n", " |= 0 + 1\n")
    assert mutated != source
    findings = verify_source(mutated, artifacts)
    assert any(rule == "SIM803" for rule, _, _ in findings)


def test_early_state_write_fires_sim801():
    _, source, artifacts = _baseline_load()
    mutated = source.replace(
        "    block = addr >> 5\n",
        "    block = addr >> 5\n    touch[0] = time\n", 1,
    )
    findings = verify_source(mutated, artifacts)
    assert any(
        rule == "SIM801" and "before the last abort point" in message
        for rule, _, message in findings
    )


def test_unknown_binding_fires_sim801():
    _, source, artifacts = _baseline_load()
    mutated = source.replace(
        "    counts_[0] += 1\n",
        "    mystery.value += 1\n    counts_[0] += 1\n", 1,
    )
    findings = verify_source(mutated, artifacts)
    assert any(
        rule == "SIM801" and "mystery" in message
        for rule, _, message in findings
    )


def test_emitter_metadata_is_coherent():
    # Guard specs protect disjoint, non-empty state sets, and every
    # canonical state referenced by a binding is either protected by some
    # guard or declared invariant.
    from repro.cpu.fastpath import INVARIANT_STATES

    protected = set()
    for spec in GUARDS:
        assert spec.protects
        protected.update(spec.protects)
    for state in STATE_OF_BINDING.values():
        assert state in protected or state in INVARIANT_STATES \
            or state == "speculation.counters", state


# -- shape extraction ----------------------------------------------------------

def test_shape_of_reflects_the_machine():
    # TK is an L1-level prefetcher: its hook hangs off l1d, so the store
    # shape must carry both the hook and the prefetch queue.  (L2-level
    # mechanisms like GHB leave l1d.mechanism None — no hook baked.)
    _, hierarchy = build_machine(None, create("TK"), MemoryImage())
    shape = shape_of(hierarchy, "store")
    assert shape.write and shape.image and shape.hook
    assert shape.queues == len(hierarchy._mech_queues) > 0
    _, l2_machine = build_machine(None, create("GHB"), MemoryImage())
    assert not shape_of(l2_machine, "store").hook
    assert shape.assoc == hierarchy.l1d.assoc
    ifetch = shape_of(hierarchy, "ifetch")
    assert not ifetch.hook and not ifetch.write
    assert ifetch.line_bits == hierarchy.l1i.line_bits


def test_verify_rejects_unparseable_source():
    shape = shape_of(build_machine(None, None, MemoryImage())[1], "load")
    findings = verify_source("def replay(:\n", {"": shape})
    assert any(rule == "SIM801" for rule, _, _ in findings)


# -- codecache versioning (satellite: emitter version in the SHA key) ----------

def test_codecache_version_partitions_the_key(tmp_path, monkeypatch):
    monkeypatch.setattr(codecache, "cache_dir", lambda: tmp_path)
    codecache._MEMO.clear()
    source = "def f():\n    return 41\n"
    code_v0 = codecache.load_or_compile(source, "<test>", version=0)
    code_v1 = codecache.load_or_compile(source, "<test>", version=1)
    assert codecache._path_for(source, 0) != codecache._path_for(source, 1)
    assert (0, source) in codecache._MEMO and (1, source) in codecache._MEMO
    ns0, ns1 = {}, {}
    exec(code_v0, ns0)
    exec(code_v1, ns1)
    assert ns0["f"]() == ns1["f"]() == 41


def test_speculator_compiles_under_current_emitter_version():
    _, hierarchy = build_machine(None, None, MemoryImage())
    source, _ = emit_replay_source(hierarchy, "load")
    codecache.load_or_compile(
        source, "<repro.cpu.fastpath>", version=EMITTER_VERSION
    )
    assert (EMITTER_VERSION, source) in codecache._MEMO


# -- the standalone marker ----------------------------------------------------

def test_marker_shape_round_trip():
    from repro.analysis.fastpath import _marker_shape

    text = (
        "# sim-fastpath: kind=store queues=2 hook=1 precise=0 image=1 "
        "line_bits=6 set_mask=255 assoc=4 n_ports=2 latency=3 "
        "prune_every=128\n"
    )
    shape = _marker_shape(text)
    assert shape == ArtifactShape(
        kind="store", queues=2, hook=True, write=True, image=True,
        precise=False, line_bits=6, set_mask=255, assoc=4, n_ports=2,
        latency=3, prune_every=128,
    )
    assert _marker_shape("# no marker here\n") is None
