"""Fault tolerance: retry policy, fault injection, degraded grids, chaos runs.

The injection schedule is a pure function of (seed, kind, spec hash,
attempt), so these tests compute the *expected* fault pattern with the
same :meth:`FaultPlan.decide` the executor consults and assert exact
counters against it — no flakiness, no sleeps beyond the watchdog tests.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import baseline_config
from repro.core.results import ResultSet
from repro.exec import (
    Executor,
    FailedRun,
    FaultPlan,
    ResultStore,
    RetryPolicy,
    RunSpec,
    SpecExhausted,
    active_plan,
    parse_fault_spec,
    set_active_plan,
)
from repro.exec.faults import (
    InjectedCrash,
    InjectedHang,
    inject_attempt_faults,
    maybe_corrupt_store_entry,
    stable_fraction,
)
from repro.exec.telemetry import SOURCE_FAILED, Telemetry
from repro.harness.experiments import fig10_second_guessing
from repro.harness.matrix import speedup_matrix
from repro.mechanisms.registry import ALL_MECHANISMS, BASELINE
from repro.obs.ledger import LedgerRecord, diff_records, make_record
from repro.obs.metrics import MetricsRegistry, executor_summary_line

REPO = Path(__file__).resolve().parent.parent

N = 2000
GRID_BENCHMARKS = ("swim", "gzip")
GRID_MECHANISMS = ("Base", "TP")

#: No backoff sleeps in unit tests; retry semantics are unchanged.
_NO_WAIT = dict(backoff_base=0.0)


def _grid_specs():
    return [
        RunSpec(benchmark, mechanism, n_instructions=N)
        for mechanism in GRID_MECHANISMS
        for benchmark in GRID_BENCHMARKS
    ]


def _as_dicts(results):
    return [dataclasses.asdict(r) for r in results]


def _find_seed(predicate, limit=500):
    """The first seed whose deterministic schedule satisfies ``predicate``."""
    for seed in range(limit):
        if predicate(seed):
            return seed
    raise AssertionError("no suitable fault seed found; widen the search")


def _expected_retries(plan, kind, hashes, max_attempts):
    """Retries the executor must record for an eventually-clean run."""
    total = 0
    for spec_hash in hashes:
        attempt = 1
        while attempt < max_attempts and plan.decide(kind, spec_hash, attempt):
            total += 1
            attempt += 1
    return total


# -- the REPRO_FAULTS grammar --------------------------------------------------

def test_empty_spec_parses_to_none():
    assert parse_fault_spec("") is None
    assert parse_fault_spec("   ") is None


def test_full_grammar_round_trips():
    plan = parse_fault_spec("crash:0.1,hang:0.05,die:0.2,corrupt-store:0.02,seed=9")
    assert plan == FaultPlan(crash=0.1, hang=0.05, die=0.2,
                             corrupt_store=0.02, seed=9)
    assert plan.armed
    assert plan.describe() == "die:0.2,hang:0.05,crash:0.1,corrupt-store:0.02,seed=9"


@pytest.mark.parametrize("text", [
    "explode:0.5",          # unknown kind
    "crash",                # no rate
    "crash:lots",           # malformed rate
    "crash:1.5",            # out of range
    "crash:-0.1",           # out of range
    "seed=often",           # malformed seed
])
def test_malformed_specs_raise(text):
    with pytest.raises(ValueError):
        parse_fault_spec(text)


def test_rates_of_zero_leave_the_plan_unarmed():
    plan = parse_fault_spec("crash:0,seed=3")
    assert plan is not None and not plan.armed


def test_set_active_plan_installs_and_restores():
    plan = FaultPlan(crash=0.5, seed=3)
    old = set_active_plan(plan)
    try:
        assert active_plan() is plan
        assert Executor(jobs=1).faults is plan
    finally:
        set_active_plan(old)
    assert active_plan() is old


# -- schedule determinism ------------------------------------------------------

def test_stable_fraction_is_deterministic_and_bounded():
    values = [stable_fraction(f"key-{i}") for i in range(200)]
    assert values == [stable_fraction(f"key-{i}") for i in range(200)]
    assert all(0.0 <= v < 1.0 for v in values)


def test_decide_is_pure_and_rate_faithful():
    plan = FaultPlan(crash=0.5, seed=11)
    decisions = [plan.decide("crash", f"hash{i}", 1) for i in range(400)]
    assert decisions == [plan.decide("crash", f"hash{i}", 1) for i in range(400)]
    assert 100 < sum(decisions) < 300  # ~50% of 400, generously bracketed
    never = FaultPlan(crash=0.0)
    always = FaultPlan(crash=1.0)
    assert not any(never.decide("crash", f"hash{i}", 1) for i in range(50))
    assert all(always.decide("crash", f"hash{i}", 1) for i in range(50))


def test_injection_flavours():
    inject_attempt_faults(None, "h", 1, in_process=True)  # no plan, no-op
    with pytest.raises(InjectedCrash):
        inject_attempt_faults(FaultPlan(crash=1.0), "h", 1, in_process=True)
    with pytest.raises(InjectedCrash):  # in-process die degrades to a crash
        inject_attempt_faults(FaultPlan(die=1.0), "h", 1, in_process=True)
    with pytest.raises(InjectedHang):   # in-process hang degrades to a raise
        inject_attempt_faults(FaultPlan(hang=1.0), "h", 1, in_process=True)


def test_corrupt_store_injection_truncates(tmp_path):
    path = tmp_path / "entry.json"
    path.write_text("x" * 300)
    assert not maybe_corrupt_store_entry(None, path, "h", 1)
    assert maybe_corrupt_store_entry(FaultPlan(corrupt_store=1.0), path, "h", 1)
    assert len(path.read_text()) == 100


# -- RetryPolicy ---------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0)
    assert RetryPolicy(retries=3).max_attempts == 4


def test_backoff_is_deterministic_exponential_and_capped():
    policy = RetryPolicy(retries=5, backoff_base=0.05, backoff_cap=0.4, seed=1)
    delays = [policy.backoff_delay("abc", a) for a in range(1, 7)]
    assert delays == [policy.backoff_delay("abc", a) for a in range(1, 7)]
    assert all(d <= 0.4 for d in delays)
    assert 0.05 <= delays[0] <= 0.1          # base * (1 + jitter in [0,1))
    assert delays[-1] == 0.4                  # deep attempts hit the cap
    assert RetryPolicy(backoff_base=0.0).backoff_delay("abc", 1) == 0.0
    # Jitter differs across spec hashes (no thundering herd).
    assert policy.backoff_delay("abc", 1) != policy.backoff_delay("xyz", 1)


def test_failed_run_round_trips_and_ignores_unknown_keys():
    failure = FailedRun(spec_hash="deadbeef", benchmark="swim", mechanism="TP",
                        attempts=3, error="InjectedCrash('x')", elapsed=1.5,
                        kind="timeout")
    payload = failure.describe()
    payload["future_field"] = "ignored"
    assert FailedRun.from_dict(payload) == failure
    assert "swim/TP" in failure.summary()
    assert "3 attempts" in failure.summary()
    assert "timeout" in failure.summary()


# -- retries: faulted runs converge to the clean answer ------------------------

def test_serial_crash_retries_are_bit_identical_to_clean(capsys):
    specs = _grid_specs()
    hashes = [s.content_hash for s in specs]
    retries = 2

    def eventually_clean(seed):
        plan = FaultPlan(crash=0.5, seed=seed)
        crashed = [plan.decide("crash", h, 1) for h in hashes]
        survives = all(
            not all(plan.decide("crash", h, a) for a in range(1, retries + 2))
            for h in hashes
        )
        return any(crashed) and survives

    seed = _find_seed(eventually_clean)
    plan = FaultPlan(crash=0.5, seed=seed)
    clean = Executor(jobs=1).run(specs)
    faulted_ex = Executor(
        jobs=1, policy=RetryPolicy(retries=retries, **_NO_WAIT), faults=plan
    )
    faulted = faulted_ex.run(specs)
    assert json.dumps(_as_dicts(faulted), sort_keys=True) == \
        json.dumps(_as_dicts(clean), sort_keys=True)
    expected = _expected_retries(plan, "crash", hashes, retries + 1)
    assert expected > 0
    assert faulted_ex.telemetry.retries == expected
    assert faulted_ex.telemetry.failures == 0


def test_pool_crash_retries_are_bit_identical_to_clean():
    specs = _grid_specs()
    hashes = [s.content_hash for s in specs]
    retries = 2

    def eventually_clean(seed):
        plan = FaultPlan(crash=0.5, seed=seed)
        return (
            any(plan.decide("crash", h, 1) for h in hashes)
            and all(
                not all(plan.decide("crash", h, a) for a in range(1, retries + 2))
                for h in hashes
            )
        )

    seed = _find_seed(eventually_clean)
    plan = FaultPlan(crash=0.5, seed=seed)
    clean = Executor(jobs=1).run(specs)
    faulted_ex = Executor(
        jobs=2, policy=RetryPolicy(retries=retries, **_NO_WAIT), faults=plan
    )
    faulted = faulted_ex.run(specs)
    assert json.dumps(_as_dicts(faulted), sort_keys=True) == \
        json.dumps(_as_dicts(clean), sort_keys=True)
    assert faulted_ex.telemetry.retries == \
        _expected_retries(plan, "crash", hashes, retries + 1)


# -- exhaustion: strict raises, lenient leaves annotated holes -----------------

def test_strict_mode_raises_spec_exhausted_serial():
    with pytest.raises(SpecExhausted) as excinfo:
        Executor(jobs=1, faults=FaultPlan(crash=1.0)).run(_grid_specs())
    failure = excinfo.value.failure
    assert failure.benchmark in GRID_BENCHMARKS
    assert failure.attempts == 1
    assert "InjectedCrash" in failure.error


def test_strict_mode_raises_spec_exhausted_pool():
    executor = Executor(
        jobs=2, policy=RetryPolicy(retries=0, strict=True, **_NO_WAIT),
        faults=FaultPlan(crash=1.0),
    )
    with pytest.raises(SpecExhausted):
        executor.run(_grid_specs())


def test_lenient_mode_resolves_failures_in_position(capsys):
    specs = _grid_specs()
    executor = Executor(
        jobs=1, policy=RetryPolicy(retries=1, strict=False, **_NO_WAIT),
        faults=FaultPlan(crash=1.0),
    )
    results = executor.run(specs)
    assert all(isinstance(r, FailedRun) for r in results)
    assert [(r.mechanism, r.benchmark) for r in results] == \
        [(s.mechanism, s.benchmark) for s in specs]
    assert all(r.attempts == 2 and r.kind == "error" for r in results)
    telemetry = executor.telemetry
    assert telemetry.failures == len(specs)
    assert telemetry.retries == len(specs)
    assert telemetry.failed == len(specs)
    assert all(r.source == SOURCE_FAILED for r in telemetry.records)
    assert "giving up" in capsys.readouterr().err


def test_serial_hang_is_accounted_as_timeout():
    spec = RunSpec("swim", n_instructions=N)
    executor = Executor(
        jobs=1, policy=RetryPolicy(retries=0, strict=False, **_NO_WAIT),
        faults=FaultPlan(hang=1.0),
    )
    (failure,) = executor.run([spec])
    assert isinstance(failure, FailedRun)
    assert failure.kind == "timeout"
    assert executor.telemetry.timeouts == 1


# -- the watchdog and pool recovery --------------------------------------------

def test_watchdog_kills_hung_workers_and_records_timeouts():
    specs = _grid_specs()[:2]
    executor = Executor(
        jobs=2,
        policy=RetryPolicy(retries=0, strict=False, timeout=0.4, **_NO_WAIT),
        faults=FaultPlan(hang=1.0),
    )
    results = executor.run(specs)
    assert all(isinstance(r, FailedRun) for r in results)
    assert all(r.kind == "timeout" for r in results)
    assert executor.telemetry.timeouts == len(specs)
    assert executor.telemetry.pool_rebuilds >= 1


def test_pool_death_recovers_and_stays_bit_identical():
    specs = _grid_specs()
    hashes = [s.content_hash for s in specs]

    def one_death_then_clean(seed):
        plan = FaultPlan(die=0.5, seed=seed)
        died = [plan.decide("die", h, 1) for h in hashes]
        return sum(died) == 1 and not any(
            plan.decide("die", h, 2) for h in hashes
        )

    seed = _find_seed(one_death_then_clean)
    plan = FaultPlan(die=0.5, seed=seed)
    clean = Executor(jobs=1).run(specs)
    executor = Executor(
        jobs=2, policy=RetryPolicy(retries=1, strict=False, **_NO_WAIT),
        faults=plan,
    )
    results = executor.run(specs)
    assert not any(isinstance(r, FailedRun) for r in results)
    assert json.dumps(_as_dicts(results), sort_keys=True) == \
        json.dumps(_as_dicts(clean), sort_keys=True)
    assert executor.telemetry.pool_rebuilds >= 1


def test_repeated_pool_deaths_degrade_to_in_process(capsys):
    specs = _grid_specs()
    policy = RetryPolicy(retries=0, strict=False, **_NO_WAIT)
    executor = Executor(jobs=2, policy=policy, faults=FaultPlan(die=1.0))
    results = executor.run(specs)
    # Every attempt kills its worker, so the pool dies until the rebuild
    # cap trips; the serial fallback then converts the die into a crash
    # and, with no retries left, every spec resolves to a FailedRun.
    assert all(isinstance(r, FailedRun) for r in results)
    assert executor.telemetry.pool_rebuilds == policy.max_pool_rebuilds + 1
    assert "in-process" in capsys.readouterr().err


# -- degraded grids ------------------------------------------------------------

def _sweep_spec_hashes(benchmarks, mechanisms):
    """The spec hashes run_sweep will submit for this grid."""
    config = baseline_config()
    return {
        (mechanism, benchmark): RunSpec(
            benchmark, mechanism, config=config, n_instructions=N
        ).content_hash
        for mechanism in mechanisms
        for benchmark in benchmarks
    }


def test_sweep_with_holes_round_trips_and_densifies(capsys):
    mechanisms = list(GRID_MECHANISMS)
    cells = _sweep_spec_hashes(GRID_BENCHMARKS, mechanisms)

    def partial(seed):
        plan = FaultPlan(crash=0.5, seed=seed)
        failed = {cell for cell, h in cells.items()
                  if plan.decide("crash", h, 1)}
        holed = {benchmark for _, benchmark in failed}
        return len(failed) == 1 and len(holed) == 1

    seed = _find_seed(partial)
    plan = FaultPlan(crash=0.5, seed=seed)
    expected_failed = {cell for cell, h in cells.items()
                       if plan.decide("crash", h, 1)}
    executor = Executor(
        jobs=1, policy=RetryPolicy(retries=0, strict=False, **_NO_WAIT),
        faults=plan,
    )
    grid = executor.run_sweep(benchmarks=GRID_BENCHMARKS,
                              mechanisms=mechanisms, n_instructions=N)
    assert not grid.complete
    assert {(f.mechanism, f.benchmark) for f in grid.failures} == expected_failed
    (holed_benchmark,) = {b for _, b in expected_failed}
    assert grid.incomplete_benchmarks() == [holed_benchmark]

    # dense() drops exactly the holed benchmark and is itself complete.
    dense = grid.dense()
    assert dense.complete
    assert holed_benchmark not in dense.benchmarks
    assert set(dense.benchmarks) == set(GRID_BENCHMARKS) - {holed_benchmark}

    # get() on a hole raises with the failure's story attached.
    (mechanism, benchmark) = next(iter(expected_failed))
    with pytest.raises(KeyError, match="failed after"):
        grid.get(mechanism, benchmark)
    assert grid.failure_for(mechanism, benchmark) is not None

    # Holes survive the JSON round trip.
    revived = ResultSet.from_json(grid.to_json())
    assert {(f.mechanism, f.benchmark) for f in revived.failures} == expected_failed
    assert revived.failures[0] == grid.failures[0]
    assert len(revived) == len(grid)

    # subset() carries matching holes along.
    narrowed = revived.subset([holed_benchmark])
    assert not narrowed.complete


def test_add_failure_conflicts_are_rejected():
    grid = Executor(jobs=1).run_sweep(
        benchmarks=("swim",), mechanisms=("Base",), n_instructions=N
    )
    failure = FailedRun(spec_hash="x", benchmark="swim", mechanism="Base",
                        attempts=1, error="boom")
    with pytest.raises(ValueError, match="already has a result"):
        grid.add_failure(failure)
    other = FailedRun(spec_hash="y", benchmark="gzip", mechanism="TP",
                      attempts=1, error="boom")
    grid.add_failure(other)
    with pytest.raises(ValueError, match="duplicate failure"):
        grid.add_failure(other)
    with pytest.raises(ValueError, match="recorded as failed"):
        grid.add(Executor(jobs=1).run(
            [RunSpec("gzip", "TP", n_instructions=N)]
        )[0])


def test_matrix_renders_failed_cells_in_place():
    cells = _sweep_spec_hashes(GRID_BENCHMARKS, list(ALL_MECHANISMS))

    def one_mechanism_cell(seed):
        plan = FaultPlan(crash=0.04, seed=seed)
        failed = {cell for cell, h in cells.items()
                  if plan.decide("crash", h, 1)}
        return len(failed) == 1 and next(iter(failed))[0] != BASELINE

    seed = _find_seed(one_mechanism_cell)
    plan = FaultPlan(crash=0.04, seed=seed)
    ((mechanism, benchmark),) = [cell for cell, h in cells.items()
                                 if plan.decide("crash", h, 1)]
    executor = Executor(
        jobs=1, policy=RetryPolicy(retries=0, strict=False, **_NO_WAIT),
        faults=plan,
    )
    exhibit = speedup_matrix(benchmarks=GRID_BENCHMARKS, n_instructions=N,
                             executor=executor)
    row = next(r for r in exhibit.rows if r["mechanism"] == mechanism)
    assert row[benchmark] == "FAILED"
    other = next(b for b in GRID_BENCHMARKS if b != benchmark)
    assert isinstance(row[other], float)
    assert isinstance(row["MEAN"], float)  # mean over surviving benchmarks
    assert exhibit.notes.startswith("DEGRADED")
    assert "FAILED" in exhibit.render()


def test_experiment_driver_degrades_per_benchmark():
    benchmarks = ("swim", "art")
    specs = []
    for benchmark in benchmarks:
        specs.append(RunSpec(benchmark, BASELINE, n_instructions=N))
        specs.append(RunSpec(benchmark, "TCP", n_instructions=N,
                             mechanism_kwargs={"queue_size": 1}))
        specs.append(RunSpec(benchmark, "TCP", n_instructions=N,
                             mechanism_kwargs={"queue_size": 128}))
    hashes = {s: s.content_hash for s in specs}

    def kills_only_swim(seed):
        plan = FaultPlan(crash=0.5, seed=seed)
        failed = {s.benchmark for s, h in hashes.items()
                  if plan.decide("crash", h, 1)}
        return failed == {"swim"}

    seed = _find_seed(kills_only_swim)
    executor = Executor(
        jobs=1, policy=RetryPolicy(retries=0, strict=False, **_NO_WAIT),
        faults=FaultPlan(crash=0.5, seed=seed),
    )
    exhibit = fig10_second_guessing(benchmarks=benchmarks, n_instructions=N,
                                    executor=executor)
    assert [row["benchmark"] for row in exhibit.rows] == ["art"]
    assert "DEGRADED" in exhibit.notes and "swim" in exhibit.notes


def test_all_groups_failed_raises_a_clear_error():
    executor = Executor(
        jobs=1, policy=RetryPolicy(retries=0, strict=False, **_NO_WAIT),
        faults=FaultPlan(crash=1.0),
    )
    with pytest.raises(RuntimeError, match="nothing to render"):
        fig10_second_guessing(benchmarks=("swim",), n_instructions=N,
                              executor=executor)


# -- corrupt-store chaos -------------------------------------------------------

def test_corrupt_store_injection_is_counted_and_resimulated(tmp_path, capsys):
    specs = _grid_specs()
    store = ResultStore(tmp_path)
    first = Executor(jobs=1, store=store, faults=FaultPlan(corrupt_store=1.0))
    originals = first.run(specs)

    replay = Executor(jobs=1, store=store)
    replayed = replay.run(specs)
    assert replay.telemetry.simulated == len(specs)   # every entry was torn
    assert replay.telemetry.store_hits == 0
    assert replay.telemetry.store_corrupt == len(specs)
    assert store.corrupt_reads == len(specs)
    assert _as_dicts(replayed) == _as_dicts(originals)
    assert "read as a miss" in capsys.readouterr().err

    # The replay rewrote clean entries; a third executor gets pure hits.
    third = Executor(jobs=1, store=store)
    third.run(specs)
    assert third.telemetry.store_hits == len(specs)
    assert third.telemetry.store_corrupt == 0


# -- observability plumbing ----------------------------------------------------

def test_summary_line_appends_fault_counters_only_when_nonzero():
    clean = executor_summary_line(Telemetry(), MetricsRegistry())
    for noun in ("retries", "timeouts", "pool rebuilds", "FAILED", "corrupt"):
        assert noun not in clean
    noisy = executor_summary_line(
        Telemetry(retries=2, failures=1, timeouts=3, pool_rebuilds=4,
                  store_corrupt=5),
        MetricsRegistry(),
    )
    assert noisy.startswith("executor: 0 results")
    assert "2 retries" in noisy
    assert "3 timeouts" in noisy
    assert "4 pool rebuilds" in noisy
    assert "1 FAILED" in noisy
    assert "5 corrupt store entries" in noisy


def test_ledger_records_and_diffs_fault_accounting():
    a = make_record("chaos", wall_seconds=1.0)
    b = make_record("chaos", wall_seconds=1.0, retries=3, failures=1)
    assert (a.retries, a.failures) == (0, 0)
    assert (b.retries, b.failures) == (3, 1)
    metrics = {row.metric for row in diff_records(a, b)}
    assert {"retries", "failures"} <= metrics
    # Two clean records: no fault rows, exactly the historical layout.
    clean = {row.metric for row in diff_records(a, a)}
    assert "retries" not in clean and "failures" not in clean
    # Old ledger lines (no fault fields) still parse.
    payload = dataclasses.asdict(a)
    del payload["retries"], payload["failures"]
    assert LedgerRecord.from_dict(payload).retries == 0


# -- the CLI under chaos -------------------------------------------------------

def _cli_env(tmp_path, faults=None, ledger=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    env["REPRO_CACHE_DIR"] = str(tmp_path / ("cache-" + (faults or "clean")))
    # Armed fault plans auto-append to the ledger; keep test litter out
    # of the repo-root BENCH_obs.json.
    env["REPRO_LEDGER"] = str(ledger or tmp_path / "scratch-ledger.json")
    if faults:
        env["REPRO_FAULTS"] = faults
    return env


def _run_cli(env, *args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=REPO,
    )


#: Pinned: with seed=7 and crash:0.3, the fig10 swim/art specs see four
#: crashes across attempts but every spec succeeds within --retries 3.
#: (The schedule hashes each spec's content_hash, so this count re-pins
#: whenever RunSpec identity gains a field.)
_CHAOS_SPEC = "crash:0.3,seed=7"
_CHAOS_RETRIES = 4

_FIG10_ARGS = ("fig10", "--n", "2000", "--benchmarks", "swim,art",
               "--jobs", "2", "--retries", "3")


def test_cli_chaos_run_is_bit_identical_and_ledgered(tmp_path):
    ledger_path = tmp_path / "ledger.json"
    clean = _run_cli(_cli_env(tmp_path), *_FIG10_ARGS)
    assert clean.returncode == 0, clean.stderr
    chaos = _run_cli(
        _cli_env(tmp_path, faults=_CHAOS_SPEC, ledger=ledger_path),
        *_FIG10_ARGS, "--timeout", "60",
    )
    assert chaos.returncode == 0, chaos.stderr
    assert chaos.stdout == clean.stdout   # retried runs converge bit-identically
    assert f"{_CHAOS_RETRIES} retries" in chaos.stderr

    from repro.obs.ledger import Ledger

    records = Ledger(ledger_path).read()
    assert len(records) == 1
    assert records[0].label == "cli-fig10"
    assert records[0].retries == _CHAOS_RETRIES
    assert records[0].failures == 0


def test_cli_strict_chaos_run_exits_nonzero(tmp_path):
    proc = _run_cli(
        _cli_env(tmp_path, faults="crash:1.0,seed=1"),
        "fig10", "--n", "2000", "--benchmarks", "swim", "--jobs", "1",
        "--strict",
    )
    assert proc.returncode == 1
    assert "FAILED (strict)" in proc.stderr


def test_cli_run_command_reports_failed_spec(tmp_path):
    proc = _run_cli(
        _cli_env(tmp_path, faults="crash:1.0,seed=1"),
        "run", "swim", "TP", "--n", "2000",
    )
    assert proc.returncode == 1
    assert "FAILED:" in proc.stderr
    assert "swim" in proc.stderr


def test_cli_bad_fault_spec_fails_loudly(tmp_path):
    proc = _run_cli(
        _cli_env(tmp_path, faults="explode:0.5"),
        "run", "swim", "--n", "2000",
    )
    assert proc.returncode != 0
    assert "unknown fault kind" in proc.stderr
