"""Behavioural tests for the victim-cache family: VC, TKVC, FVC."""

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import baseline_config
from repro.core.simulation import run_trace
from repro.isa.instr import make_load
from repro.mechanisms.registry import create
from repro.workloads.image import MemoryImage
from repro.workloads.patterns import FREQUENT_VALUES

L1_SPAN = 32 << 10  # addresses this far apart share a direct-mapped L1 set


def _conflict_trace(n, ways=2, pc=0x400, base=0x100000):
    """Round-robin over `ways` lines colliding in one L1 set."""
    return [make_load(pc, base + (i % ways) * L1_SPAN) for i in range(n)]


def _hierarchy(mechanism, image=None):
    return MemoryHierarchy(baseline_config(), mechanism=mechanism, image=image)


class TestVictimCache:
    def test_absorbs_conflict_misses(self):
        trace = _conflict_trace(2500)
        base = run_trace(trace)
        vc = run_trace(trace, create("VC"))
        assert vc.ipc > base.ipc * 1.05
        assert vc.stats["memory.l1d.aux_hits"] > 500

    def test_swap_semantics(self):
        vc = create("VC")
        h = _hierarchy(vc)
        t = h.load(1, 0x100000, 0)
        t = h.load(1, 0x100000 + L1_SPAN, t + 10)  # evicts first into VC
        assert len(vc) == 1
        t = h.load(1, 0x100000, t + 10)            # VC hit, swap back
        assert vc.st_probe_hits.value == 1
        assert h.l1d.contains(0x100000)

    def test_capacity_is_sixteen_lines(self):
        vc = create("VC")
        h = _hierarchy(vc)
        assert vc.capacity == 16  # 512 B / 32 B lines
        t = 0
        for i in range(40):      # force > 16 captures
            t = h.load(1, 0x100000 + (i % 20) * L1_SPAN, t + 60) + 1
        assert len(vc) <= 16

    def test_dirty_victims_written_back_on_vc_eviction(self):
        vc = create("VC")
        h = _hierarchy(vc)
        t = h.store(1, 0x100000, 7, 0)
        # Push 20 victims through the same set to age the dirty one out.
        for i in range(1, 21):
            t = h.load(1, 0x100000 + i * L1_SPAN, t + 60) + 1
        assert vc.st_writebacks.value >= 1

    def test_useless_for_streaming(self):
        trace = [make_load(1, 0x100000 + i * 64) for i in range(1500)]
        vc = create("VC")
        run_trace(trace, vc)
        assert vc.st_probe_hits.value == 0


class TestTimekeepingVictimCache:
    def test_captures_live_victims_only(self):
        tkvc = create("TKVC")
        h = _hierarchy(tkvc)
        # Conflict pair: evictions happen shortly after use (live victims).
        t = 0
        for i in range(40):
            t = h.load(1, 0x100000 + (i % 2) * L1_SPAN, t + 20) + 1
        live_captures = tkvc.st_captures.value
        assert live_captures > 0

    def test_bypasses_dead_victims(self):
        tkvc = create("TKVC")
        h = _hierarchy(tkvc)
        t = h.load(1, 0x100000, 0)
        # A very long idle gap: the line is dead when finally evicted.
        h.load(1, 0x100000 + L1_SPAN, t + 50_000)
        assert tkvc.st_bypassed.value >= 1

    def test_reverse_engineered_variant_inverts_filter(self):
        normal = create("TKVC")
        inverted = create("TKVC", reverse_engineered=True)
        assert normal.should_capture(live=True)
        assert not normal.should_capture(live=False)
        assert not inverted.should_capture(live=True)
        assert inverted.should_capture(live=False)


class TestFrequentValueCache:
    def _value_local_image(self, addrs):
        image = MemoryImage()
        for addr in addrs:
            for off in range(0, 32, 8):
                image.write(addr + off, FREQUENT_VALUES[0])
        return image

    def test_captures_compressible_victims(self):
        addrs = [0x100000, 0x100000 + L1_SPAN]
        image = self._value_local_image(addrs)
        fvc = create("FVC")
        h = _hierarchy(fvc, image=image)
        t = 0
        for i in range(60):
            t = h.load(1, addrs[i % 2], t + 30) + 1
        assert fvc.st_captures.value > 0
        assert fvc.st_probe_hits.value > 0

    def test_rejects_incompressible_victims(self):
        # Many distinct lines of unique garbage: no small value set covers
        # them, so the frequent-value filter rejects (almost) all of them.
        image = MemoryImage()  # untouched lines read as unique garbage
        fvc = create("FVC")
        h = _hierarchy(fvc, image=image)
        t = 0
        for i in range(300):
            addr = 0x100000 + (i % 39) * 64 + (i % 2) * L1_SPAN
            t = h.load(1, addr, t + 30) + 1
        assert fvc.st_incompressible.value > 0
        assert fvc.st_captures.value < fvc.st_incompressible.value

    def test_frequent_value_table_freezes_after_warmup(self):
        image = self._value_local_image([0x100000])
        fvc = create("FVC")
        h = _hierarchy(fvc, image=image)
        t = 0
        for i in range(fvc.WARMUP_SAMPLES // 4 + 64):
            t = h.load(1, 0x100000 + (i % 2) * L1_SPAN, t + 30) + 1
        assert fvc._frequent is not None
        assert len(fvc.frequent_values()) <= fvc.N_FREQUENT

    def test_needs_an_image(self):
        fvc = create("FVC")
        h = _hierarchy(fvc, image=None)
        t = 0
        for i in range(10):
            t = h.load(1, 0x100000 + (i % 2) * L1_SPAN, t + 30) + 1
        assert fvc.st_captures.value == 0
