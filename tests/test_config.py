"""Tests for the Table 1 machine configuration."""

import dataclasses

import pytest

from repro.core.config import (
    CacheConfig,
    MEMORY_CONSTANT,
    MEMORY_SDRAM,
    MEMORY_SDRAM_FAST,
    SDRAMConfig,
    baseline_config,
    sdram70_config,
)


class TestTable1Values:
    """The baseline must match the paper's Table 1 exactly."""

    def test_core(self):
        core = baseline_config().core
        assert core.ruu_size == 128
        assert core.lsq_size == 128
        assert core.fetch_width == 8
        assert core.issue_width == 8
        assert core.commit_width == 8
        assert (core.int_alu, core.int_mul) == (8, 3)
        assert (core.fp_alu, core.fp_mul) == (6, 2)
        assert core.lsu == 4

    def test_l1_data_cache(self):
        l1d = baseline_config().l1d
        assert l1d.size == 32 << 10
        assert l1d.assoc == 1          # direct-mapped
        assert l1d.line_size == 32
        assert l1d.latency == 1
        assert l1d.ports == 4
        assert l1d.mshr_entries == 8
        assert l1d.mshr_reads == 4
        assert l1d.writeback and l1d.allocate_on_write

    def test_l2_cache(self):
        l2 = baseline_config().l2
        assert l2.size == 1 << 20
        assert l2.assoc == 4
        assert l2.line_size == 64
        assert l2.latency == 12
        assert l2.ports == 1
        assert l2.mshr_entries == 8

    def test_buses(self):
        config = baseline_config()
        assert config.l1_l2_bus.width_bytes == 32
        assert config.l1_l2_bus.cpu_cycles_per_transfer == 1
        assert config.memory_bus.width_bytes == 64
        # 2 GHz core / 400 MHz bus = 5 CPU cycles per transfer.
        assert config.memory_bus.cpu_cycles_per_transfer == 5

    def test_sdram_timings(self):
        sdram = baseline_config().sdram
        assert sdram.banks == 4
        assert sdram.rows == 8192
        assert sdram.columns == 1024
        assert sdram.ras_to_ras == 20
        assert sdram.ras_active == 80
        assert sdram.ras_to_cas == 30
        assert sdram.cas_latency == 30
        assert sdram.ras_precharge == 30
        assert sdram.ras_cycle == 110
        assert sdram.queue_entries == 32


class TestCacheConfig:
    def test_derived_geometry(self):
        cache = CacheConfig("t", size=32 << 10, assoc=1, line_size=32, latency=1)
        assert cache.n_sets == 1024
        assert cache.n_lines == 1024

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig("t", size=1000, assoc=1, line_size=32, latency=1)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig("t", size=96 << 10, assoc=1, line_size=32, latency=1)


class TestVariants:
    def test_memory_model_selector(self):
        config = baseline_config()
        assert config.memory_model == MEMORY_SDRAM
        assert config.with_memory_model(MEMORY_CONSTANT).memory_model == MEMORY_CONSTANT
        assert config.with_memory_model(MEMORY_SDRAM_FAST).memory_model == MEMORY_SDRAM_FAST
        with pytest.raises(ValueError):
            config.with_memory_model("bogus")

    def test_infinite_mshr_variant(self):
        config = baseline_config().with_infinite_mshr()
        assert config.infinite_mshr
        assert config.precise_cache  # still otherwise precise

    def test_simplescalar_cache_variant(self):
        config = baseline_config().with_simplescalar_cache()
        assert not config.precise_cache
        assert config.infinite_mshr

    def test_variants_do_not_mutate_the_original(self):
        config = baseline_config()
        config.with_infinite_mshr()
        assert not config.infinite_mshr


class TestSDRAMScaling:
    def test_scaled_reduces_all_timings(self):
        scaled = SDRAMConfig().scaled(1 / 3)
        original = SDRAMConfig()
        for name in ("ras_to_cas", "cas_latency", "ras_precharge",
                     "ras_cycle", "ras_active", "ras_to_ras"):
            assert getattr(scaled, name) < getattr(original, name)
            assert getattr(scaled, name) >= 1

    def test_sdram70_is_roughly_a_third(self):
        fast = sdram70_config()
        assert fast.cas_latency == 10
        assert fast.ras_cycle == round(110 / 3)

    def test_geometry_untouched_by_scaling(self):
        scaled = SDRAMConfig().scaled(0.5)
        assert scaled.banks == 4
        assert scaled.rows == 8192
