"""System-level property tests: invariants that must hold for any input."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SDRAMConfig, baseline_config
from repro.core.simulation import run_trace
from repro.dram.sdram import SDRAM
from repro.isa.instr import Op, make_branch, make_load, make_op, make_store


@st.composite
def small_traces(draw):
    """Random well-formed traces mixing all operation classes."""
    n = draw(st.integers(min_value=10, max_value=300))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    records = []
    for i in range(n):
        r = rng.random()
        pc = 0x400 + (i % 32) * 4
        if r < 0.3:
            addr = 0x100000 + rng.randrange(1 << 12) * 8
            records.append(make_load(pc, addr, dep=rng.randrange(0, min(i + 1, 8))))
        elif r < 0.4:
            addr = 0x100000 + rng.randrange(1 << 12) * 8
            records.append(make_store(pc, addr, rng.randrange(1 << 20)))
        elif r < 0.5:
            records.append(make_branch(pc, mispredicted=rng.random() < 0.2))
        else:
            op = rng.choice([Op.INT_ALU, Op.INT_MUL, Op.FP_ALU, Op.FP_MUL])
            records.append(make_op(op, pc, dep=rng.randrange(0, min(i + 1, 8))))
    return records


@settings(max_examples=25, deadline=None)
@given(small_traces())
def test_core_timing_invariants(trace):
    result = run_trace(trace, warmup_fraction=0.0)
    # The machine is 8-wide: cycles cannot undercut instructions / 8.
    assert result.cycles >= len(trace) / 8 - 1
    assert 0 <= result.l1_miss_rate <= 1
    assert 0 <= result.l2_miss_rate <= 1
    assert result.instructions == len(trace)
    assert result.avg_load_latency >= 0


@settings(max_examples=10, deadline=None)
@given(small_traces())
def test_simulation_is_deterministic(trace):
    a = run_trace(trace, warmup_fraction=0.0)
    b = run_trace(trace, warmup_fraction=0.0)
    assert a.cycles == b.cycles
    assert a.ipc == b.ipc


@settings(max_examples=25, deadline=None)
@given(
    addrs=st.lists(st.integers(min_value=0, max_value=1 << 26), min_size=1,
                   max_size=80),
)
def test_sdram_timing_invariants(addrs):
    """Data is never ready before presentation plus CAS latency, and
    activates to one bank always respect tRC."""
    config = SDRAMConfig()
    sdram = SDRAM(config)
    time = 0
    activates = {}
    for addr in addrs:
        ready = sdram.access(addr, time)
        assert ready >= time + config.cas_latency
        bank_idx, _ = sdram.mapping.map(addr)
        bank = sdram.banks[bank_idx]
        if bank_idx in activates and bank.activate_time != activates[bank_idx]:
            assert bank.activate_time - activates[bank_idx] >= config.ras_cycle
        activates[bank_idx] = bank.activate_time
        time += 3


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    mech=st.sampled_from(["TP", "SP", "GHB", "VC", "Markov", "TK"]),
)
def test_mechanisms_never_corrupt_cache_invariants(seed, mech):
    """Any mechanism, any random traffic: per-set occupancy stays legal."""
    from repro.mechanisms.registry import create
    rng = random.Random(seed)
    trace = []
    for i in range(200):
        addr = 0x100000 + rng.randrange(1 << 10) * 32
        trace.append(make_load(0x400 + (i % 8) * 4, addr))
    mechanism = create(mech)
    result = run_trace(trace, mechanism, warmup_fraction=0.0)
    cache = mechanism.cache
    for set_lines in cache._sets:
        assert len(set_lines) <= cache.config.assoc
        tags = [line.tag for line in set_lines]
        assert len(tags) == len(set(tags))
    assert result.instructions == 200
