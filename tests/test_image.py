"""Tests for the functional memory image."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.image import WORD_BYTES, MemoryImage


def test_write_then_read_round_trip():
    image = MemoryImage()
    image.write(0x1000, 99)
    assert image.read(0x1000) == 99


def test_subword_addresses_alias_to_the_word():
    image = MemoryImage()
    image.write(0x1000, 7)
    assert image.read(0x1004) == 7  # same 8-byte word
    image.write(0x1001, 8)
    assert image.read(0x1000) == 8


def test_uninitialised_reads_are_deterministic_garbage():
    image = MemoryImage()
    first = image.read(0x5000)
    second = image.read(0x5000)
    assert first == second
    assert first != 0
    # Different addresses give different garbage (overwhelmingly).
    others = {image.read(0x5000 + 8 * i) for i in range(16)}
    assert len(others) > 8


def test_uninitialised_values_never_look_like_pointers():
    image = MemoryImage()
    image.note_heap(0, 1 << 40)  # absurdly wide heap
    for i in range(64):
        value = image.read(0x9000 + 8 * i)
        assert not image.looks_like_pointer(value)  # odd by construction


def test_read_line_returns_all_words():
    image = MemoryImage()
    for i in range(4):
        image.write(0x2000 + i * WORD_BYTES, i + 1)
    assert image.read_line(0x2000, 32) == (1, 2, 3, 4)


def test_read_line_mixes_written_and_garbage_words():
    image = MemoryImage()
    image.write(0x3000, 5)
    words = image.read_line(0x3000, 32)
    assert words[0] == 5
    assert all(w != 0 for w in words[1:])


def test_pointer_detection_requires_heap_range_and_alignment():
    image = MemoryImage()
    image.note_heap(0x1000, 0x2000)
    assert image.looks_like_pointer(0x1008)
    assert not image.looks_like_pointer(0x1009)   # unaligned
    assert not image.looks_like_pointer(0x3000)   # outside heap
    assert not image.looks_like_pointer(0)
    assert not image.looks_like_pointer(-8)


def test_note_heap_extends_range():
    image = MemoryImage()
    image.note_heap(0x1000, 0x2000)
    image.note_heap(0x8000, 0x9000)
    assert image.looks_like_pointer(0x1008)
    assert image.looks_like_pointer(0x8008)


def test_contains_and_len():
    image = MemoryImage()
    assert 0x1000 not in image
    image.write(0x1000, 1)
    assert 0x1000 in image
    assert 0x1004 in image  # same word
    assert len(image) == 1


@settings(max_examples=50, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=1 << 20),
                  st.integers(min_value=0, max_value=1 << 62)),
        min_size=1, max_size=50,
    )
)
def test_last_write_wins(writes):
    """Property: reading a word returns its most recent write."""
    image = MemoryImage()
    last = {}
    for addr, value in writes:
        image.write(addr, value)
        last[addr & ~7] = value
    for word_addr, value in last.items():
        assert image.read(word_addr) == value
