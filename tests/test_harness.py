"""Tests for the experiment harness (small-scale driver runs).

These use tiny traces and benchmark subsets so the whole file stays fast;
the benchmarks/ directory runs the same drivers at full scale.
"""

import pytest

from repro.harness import (
    fig1_model_validation,
    fig2_reveng_error,
    fig3_dbcp_fix,
    fig4_speedup,
    fig5_cost_power,
    fig6_sensitivity,
    fig7_sensitivity_subsets,
    fig8_memory_model,
    fig9_mshr,
    fig10_second_guessing,
    fig11_trace_selection,
    main_sweep,
    table5_prior_comparisons,
    table6_subset_winners,
    table7_selection_ranking,
)
from repro.exec import reset_default_executor

SMALL = ("swim", "gzip", "art", "crafty")
N = 4000


@pytest.fixture(autouse=True, scope="module")
def _fresh_executor():
    reset_default_executor()
    yield
    reset_default_executor()


def test_main_sweep_is_memoised():
    first = main_sweep(benchmarks=SMALL, n_instructions=N,
                       mechanisms=("Base", "TP"))
    second = main_sweep(benchmarks=SMALL, n_instructions=N,
                        mechanisms=("Base", "TP"))
    assert first is second


def test_main_sweep_distinct_configs_do_not_collide():
    """Regression: the old sweep cache was keyed by a caller-chosen label,
    so two different MachineConfigs submitted under the same label shared
    one ResultSet.  Identity now comes from the RunSpec content hash."""
    from repro.core.config import baseline_config

    precise = main_sweep(config=baseline_config(), benchmarks=SMALL[:1],
                         n_instructions=N, mechanisms=("Base",))
    imprecise = main_sweep(
        config=baseline_config().with_simplescalar_cache(),
        benchmarks=SMALL[:1], n_instructions=N, mechanisms=("Base",),
    )
    assert precise is not imprecise
    assert precise.ipc("Base", SMALL[0]) != imprecise.ipc("Base", SMALL[0])


def test_fig1_reports_model_difference():
    result = fig1_model_validation(benchmarks=SMALL[:2], n_instructions=N)
    assert result.exhibit == "Figure 1"
    assert len(result.rows) == 2
    assert result.summary["avg_abs_ipc_diff_pct"] > 0
    assert "Figure 1" in result.render()


def test_fig2_reveng_error_structure():
    result = fig2_reveng_error(benchmarks=SMALL[:2], n_instructions=N)
    mechanisms = {row["mechanism"] for row in result.rows}
    assert mechanisms == {"TK", "TCP", "TKVC"}
    assert result.summary["avg_error_pct"] >= 0


def test_fig3_dbcp_variants():
    result = fig3_dbcp_fix(benchmarks=("art", "gzip"), n_instructions=N)
    for row in result.rows:
        assert {"benchmark", "initial", "fixed", "tk"} <= set(row)
    assert "fixed_dbcp_mean_speedup" in result.summary


def test_fig4_ranking():
    result = fig4_speedup(benchmarks=SMALL, n_instructions=N)
    assert len(result.rows) == 13
    speedups = [row["mean_speedup"] for row in result.rows]
    assert speedups == sorted(speedups, reverse=True)
    assert result.rows[0]["mechanism"] == result.summary["winner"]


def test_fig5_cost_power_rows():
    result = fig5_cost_power(benchmarks=SMALL, n_instructions=N)
    by_name = {row["mechanism"]: row for row in result.rows}
    assert by_name["Markov"]["cost_ratio"] > by_name["SP"]["cost_ratio"]
    assert all(row["power_ratio"] >= 1.0 for row in result.rows)


def test_table5_static():
    result = table5_prior_comparisons()
    pairs = {(row["newer"], row["compared_against"]) for row in result.rows}
    assert ("GHB", "SP") in pairs
    assert ("TK", "DBCP") in pairs


def test_table6_winner_search():
    result = table6_subset_winners(benchmarks=SMALL, n_instructions=N,
                                   sizes=(1, 2))
    assert {row["n_benchmarks"] for row in result.rows} == {1, 2}
    for row in result.rows:
        assert row["count"] >= 1


def test_table7_selection_ranking():
    result = table7_selection_ranking(benchmarks=SMALL, n_instructions=N)
    labels = {row["selection"] for row in result.rows}
    assert "all" in labels


def test_fig6_and_fig7_sensitivity():
    result6 = fig6_sensitivity(benchmarks=SMALL, n_instructions=N)
    spreads = [row["speedup_spread"] for row in result6.rows]
    assert spreads == sorted(spreads, reverse=True)
    result7 = fig7_sensitivity_subsets(benchmarks=SMALL, n_instructions=N,
                                       k=2)
    assert {row["subset"] for row in result7.rows} == {
        "all", "high_sensitivity", "low_sensitivity"
    }


def test_fig8_memory_models():
    result = fig8_memory_model(benchmarks=SMALL[:2], n_instructions=N)
    mech_rows = [row for row in result.rows if "mechanism" in row]
    assert all({"constant70", "sdram", "sdram70"} <= set(row)
               for row in mech_rows)
    latency_rows = [row for row in result.rows if "benchmark" in row]
    assert latency_rows  # per-benchmark SDRAM latency reported


def test_fig9_mshr():
    result = fig9_mshr(benchmarks=SMALL[:2], n_instructions=N)
    assert all({"finite_mshr", "infinite_mshr"} <= set(row)
               for row in result.rows)


def test_fig10_tcp_queue():
    result = fig10_second_guessing(benchmarks=SMALL[:2], n_instructions=N)
    assert all({"queue_1", "queue_128"} <= set(row) for row in result.rows)
    assert result.summary["max_abs_speedup_diff"] >= 0


def test_fig11_trace_selection():
    result = fig11_trace_selection(
        benchmarks=SMALL[:2], n_instructions=2000,
        mechanisms=("Base", "TP", "SP"),
    )
    assert {row["mechanism"] for row in result.rows} == {"TP", "SP"}
    assert result.summary["n_mechanisms"] == 2.0


def test_render_produces_readable_text():
    result = table5_prior_comparisons()
    text = result.render()
    assert text.startswith("== Table 5")
    assert "GHB" in text
