"""Tests for the EXPERIMENTS.md report generator."""

from pathlib import Path

from repro.harness.report import EXHIBITS, build_report, main


def test_every_paper_exhibit_is_covered():
    stems = {stem for stem, _, _ in EXHIBITS}
    for figure in range(1, 12):
        assert f"figure_{figure}" in stems
    for table in (5, 6, 7):
        assert f"table_{table}" in stems


def test_build_report_with_missing_outputs(tmp_path):
    text = build_report(tmp_path)
    assert "not yet measured" in text
    assert "paper vs. measured" in text
    assert text.count("**Paper:**") == len(EXHIBITS)


def test_build_report_embeds_measured_rows(tmp_path):
    (tmp_path / "figure_4.txt").write_text(
        "== Figure 4: Average IPC speedup ==\n  mechanism=GHB  x=1.2\n"
    )
    text = build_report(tmp_path)
    assert "mechanism=GHB" in text
    assert "## Figure 4: Average IPC speedup" in text


def test_main_writes_file(tmp_path):
    out = tmp_path / "EXP.md"
    assert main(["--out", str(out), "--bench-out", str(tmp_path)]) == 0
    assert out.exists()
    assert "paper vs. measured" in out.read_text()
