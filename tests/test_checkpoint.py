"""Mid-run checkpointing: bit-identical resume, durability, chaos, fsck.

The contract under test (see :mod:`repro.exec.checkpoint`): a run that
is interrupted and resumed from a mid-run snapshot must finish with a
result **bit-identical** to an uninterrupted run — for every registered
mechanism, on both the interpreted reference loop and the generated
fast path — and the disabled path must cost nothing (its emitted source
is byte-identical to a checkpoint-free build).  On top of the in-memory
protocol, the durable layer is exercised end to end: atomic files,
corrupt-tail fallback to the next-older snapshot, executor crash-resume
under ``kill-midrun`` chaos, a fleet worker resuming another worker's
snapshot across real process deaths, and the ``fsck`` audit.
"""

import os
import pickle
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.simulation import run_trace
from repro.exec import Executor, ResultStore, RetryPolicy, RunSpec
from repro.exec.checkpoint import (
    Checkpointer,
    audit_checkpoints,
    checkpoint_path,
    load_latest,
    write_checkpoint,
)
from repro.exec.faults import (
    KILL_WORKER_EXIT,
    FaultPlan,
    maybe_corrupt_checkpoint,
    parse_fault_spec,
    set_active_plan,
    should_kill_midrun,
)
from repro.mechanisms.registry import ALL_MECHANISMS, EXTENSIONS, create
from repro.workloads.registry import build as build_workload

REPO = Path(__file__).resolve().parent.parent

_N = 3000
_EVERY = 700


@pytest.fixture(scope="module")
def swim_trace():
    return build_workload("swim", _N)


class _MemCheckpointer:
    """In-memory double for :class:`Checkpointer`: same duck type.

    Cuts are stored *pickled*, so the test proves every snapshot is
    serializable exactly as the durable layer requires, and byte-level
    comparisons between attempts are meaningful.
    """

    def __init__(self, every, stash=None):
        self.every = every
        self.stash = stash       # (index, state) to resume from
        self.cuts = []           # [(index, pickled state), ...]
        self.resumed = 0

    def cut(self, index, state):
        self.cuts.append(
            (index, pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
        )

    def load(self):
        if self.stash is None:
            return None
        self.resumed = 1
        return self.stash


def _run(swim_trace, mechanism, fast, checkpoint=None):
    trace, image = swim_trace
    return run_trace(
        list(trace), create(mechanism), image=image, benchmark="swim",
        mechanism_name=mechanism, fast=fast, checkpoint=checkpoint,
    )


def _assert_same(left, right, context):
    assert left.stats == right.stats, f"{context}: stats diverged"
    assert left.ipc == right.ipc, context
    assert left.cycles == right.cycles, context
    assert left.l1_miss_rate == right.l1_miss_rate, context
    assert left.avg_load_latency == right.avg_load_latency, context
    assert left.prefetches_issued == right.prefetches_issued, context


# -- the golden contract: resume == uninterrupted, every mechanism -------------

@pytest.mark.parametrize("mechanism", ALL_MECHANISMS + EXTENSIONS)
def test_resume_is_bit_identical_for_every_mechanism(mechanism, swim_trace):
    for fast in (True, False):
        label = f"{mechanism} fast={fast}"
        clean = _run(swim_trace, mechanism, fast)

        writer = _MemCheckpointer(_EVERY)
        with_ckpt = _run(swim_trace, mechanism, fast, checkpoint=writer)
        _assert_same(with_ckpt, clean, f"{label}: checkpointing enabled")
        assert [i for i, _blob in writer.cuts] == [700, 1400, 2100, 2800], (
            f"{label}: unexpected cut schedule"
        )

        # Resume from the *middle* snapshot and finish the run.
        index, blob = writer.cuts[2]
        resumer = _MemCheckpointer(_EVERY, stash=(index, pickle.loads(blob)))
        resumed = _run(swim_trace, mechanism, fast, checkpoint=resumer)
        assert resumer.resumed == 1
        _assert_same(resumed, clean, f"{label}: resumed from {index}")

        # The resumed attempt's own cut at 2800 is byte-identical to the
        # uninterrupted attempt's — the machine state converged exactly.
        assert resumer.cuts == [writer.cuts[3]], (
            f"{label}: post-resume snapshot diverged from the "
            "uninterrupted attempt's"
        )


# -- zero-cost when disabled ---------------------------------------------------

def test_disabled_fast_loop_source_is_checkpoint_free(swim_trace):
    """No checkpointer → the emitted source never mentions checkpoints.

    Byte-identical disabled source means the codecache entry is shared
    with checkpoint-free builds: the feature costs literally nothing
    until armed (the same guarantee the tracer's disabled path makes).
    """
    from repro.core.simulation import build_machine
    from repro.cpu.fastpath import TraceSpeculator

    _trace, image = swim_trace
    core, _hierarchy = build_machine(None, create("GHB"), image)
    speculator = TraceSpeculator(core.hierarchy)
    plain, _bind = core._emit_fast_loop(speculator.counts, None)
    assert "ckpt" not in plain and "resume" not in plain

    writer = _MemCheckpointer(_EVERY)
    cut = core._checkpoint_cut(writer, speculator)
    armed, _bind = core._emit_fast_loop(
        speculator.counts, None, ckpt_cut=cut, ckpt_every=_EVERY)
    assert "ckpt_cut" in armed and armed != plain


def test_disabled_overhead_under_two_percent(swim_trace):
    """The disabled path adds no per-record work at all.

    The checkpoint check is compiled out of the fast path and guarded by
    a never-true sentinel comparison in the interpreted loop — the same
    `index >= threshold` shape the sampler already pays.  Measure that
    one comparison and bound it against the 2% budget the tracer's
    disabled path is held to.
    """
    clean = _run(swim_trace, "TK", True)  # warm trace + code caches
    start = time.perf_counter()
    _run(swim_trace, "TK", True)
    run_wall = time.perf_counter() - start
    assert clean is not None

    sentinel = 1 << 62
    reps = 200_000
    start = time.perf_counter()
    index = 0
    for _ in range(reps):
        if index >= sentinel:
            pass  # pragma: no cover - sentinel is never reached
        index += 1
    per_check = (time.perf_counter() - start) / reps

    estimated = _N * per_check
    assert estimated < 0.02 * run_wall, (
        f"estimated disabled-path overhead {estimated * 1e3:.3f}ms "
        f"exceeds 2% of the {run_wall * 1e3:.1f}ms reference run"
    )


# -- the durable layer ---------------------------------------------------------

def test_checkpointer_disk_roundtrip_and_discard(tmp_path, swim_trace):
    spec_hash = "a" * 16
    writer = Checkpointer(tmp_path, spec_hash, _EVERY)
    with_ckpt = _run(swim_trace, "GHB", True, checkpoint=writer)
    assert writer.cuts == 4
    files = sorted((tmp_path / spec_hash).glob("*.ckpt"))
    assert [f.name for f in files] == [
        f"{i:012d}.ckpt" for i in (700, 1400, 2100, 2800)
    ]

    reader = Checkpointer(tmp_path, spec_hash, _EVERY)
    resumed = _run(swim_trace, "GHB", True, checkpoint=reader)
    assert reader.resumed == 1
    _assert_same(resumed, with_ckpt, "disk resume")

    assert reader.discard() >= 4
    assert not (tmp_path / spec_hash).exists()


def test_corrupt_newest_falls_back_to_older_snapshot(tmp_path, swim_trace):
    spec_hash = "b" * 16
    writer = Checkpointer(tmp_path, spec_hash, _EVERY)
    clean = _run(swim_trace, "GHB", True, checkpoint=writer)

    newest = checkpoint_path(tmp_path / spec_hash, 2800)
    blob = newest.read_bytes()
    newest.write_bytes(blob[: len(blob) * 2 // 3])  # torn payload

    loaded = load_latest(tmp_path / spec_hash, spec_hash)
    assert loaded is not None and loaded[0] == 2100

    resumed = _run(swim_trace, "GHB", True,
                   checkpoint=Checkpointer(tmp_path, spec_hash, _EVERY))
    _assert_same(resumed, clean, "resume past a torn snapshot")

    # Every snapshot defective -> start from scratch, same answer.
    for path in (tmp_path / spec_hash).glob("*.ckpt"):
        path.write_bytes(b"not a checkpoint\n")
    fresh = Checkpointer(tmp_path, spec_hash, _EVERY)
    scratch = _run(swim_trace, "GHB", True, checkpoint=fresh)
    assert fresh.resumed == 0
    _assert_same(scratch, clean, "all snapshots torn")


def test_wrong_spec_hash_is_never_served(tmp_path):
    write_checkpoint(tmp_path / "dir", "c" * 16, 100, {"x": 1})
    # The directory name is the identity fsck cross-checks; a reader
    # asking for a different spec must not get this snapshot.
    assert load_latest(tmp_path / "dir", "d" * 16) is None


# -- fault kinds ---------------------------------------------------------------

def test_parse_fault_spec_accepts_checkpoint_kinds():
    plan = parse_fault_spec(
        "kill-midrun:0.5,corrupt-checkpoint:0.25,seed=3")
    assert plan.kill_midrun == 0.5
    assert plan.corrupt_checkpoint == 0.25


def test_should_kill_midrun_is_deterministic_and_rate_bound():
    always = FaultPlan(kill_midrun=1.0, seed=9)
    never = FaultPlan(kill_midrun=0.0, seed=9)
    assert should_kill_midrun(always, "f" * 16)
    assert not should_kill_midrun(never, "f" * 16)
    some = FaultPlan(kill_midrun=0.5, seed=9)
    first = [should_kill_midrun(some, f"{i:016x}") for i in range(32)]
    again = [should_kill_midrun(some, f"{i:016x}") for i in range(32)]
    assert first == again and any(first) and not all(first)


def test_maybe_corrupt_checkpoint_truncates_first_attempt_only(tmp_path):
    plan = FaultPlan(corrupt_checkpoint=1.0, seed=4)
    path = write_checkpoint(tmp_path, "e" * 16, 700, {"big": list(range(64))})
    whole = path.stat().st_size
    assert not maybe_corrupt_checkpoint(plan, path, "e" * 16, 700, attempt=2)
    assert path.stat().st_size == whole
    assert maybe_corrupt_checkpoint(plan, path, "e" * 16, 700, attempt=1)
    assert path.stat().st_size < whole
    with pytest.raises(Exception):
        from repro.exec.checkpoint import read_checkpoint
        read_checkpoint(path, expected_spec="e" * 16)


# -- executor: crash mid-run, retry resumes, result unchanged ------------------

def test_executor_kill_midrun_resumes_bit_identical(tmp_path):
    specs = [RunSpec("swim", m, n_instructions=_N) for m in ("GHB", "TK")]
    clean = Executor(jobs=1).run([RunSpec("swim", m, n_instructions=_N)
                                  for m in ("GHB", "TK")])

    old = set_active_plan(FaultPlan(kill_midrun=1.0, seed=5))
    try:
        executor = Executor(
            jobs=1, store=ResultStore(tmp_path),
            policy=RetryPolicy(retries=1), checkpoint_every=1000,
        )
        results = executor.run(specs)
    finally:
        set_active_plan(old)

    for crashed, baseline in zip(results, clean):
        _assert_same(crashed, baseline, "kill-midrun + resume")
    telemetry = executor.telemetry
    assert telemetry.retries == 2          # every first attempt was killed
    assert telemetry.resumed_from_ckpt == 2
    assert telemetry.checkpoints > 0
    assert "resumed-from-ckpt" in telemetry.summary_line()
    # Durable results retire their snapshots.
    assert list((tmp_path / "ckpt").rglob("*.ckpt")) == []


def test_clean_summary_line_has_no_checkpoint_counters():
    executor = Executor(jobs=1)
    executor.run([RunSpec("swim", n_instructions=2000)])
    line = executor.telemetry.summary_line()
    assert "checkpoint" not in line and "ckpt" not in line


# -- fleet worker: die mid-run for real, another process resumes ---------------

def _worker_cmd(cache, every):
    return [
        sys.executable, "-m", "repro.serve", "worker",
        "--cache-dir", str(cache), "--ttl", "0.5",
        "--drain", "--idle-timeout", "10",
        "--checkpoint-every", str(every),
    ]


def test_serve_worker_resumes_anothers_snapshot(tmp_path):
    from repro.serve.fleet import Fleet
    from repro.serve.protocol import spec_payload

    spec = RunSpec("swim", "GHB", n_instructions=_N)
    clean = Executor(jobs=1).run([spec])[0]

    store = ResultStore(tmp_path)
    Fleet(store.serve_dir, ttl=0.5).enqueue(
        {spec.content_hash: spec_payload(spec)})
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_FAULTS"] = "kill-midrun:1.0,seed=11"

    first = subprocess.run(_worker_cmd(tmp_path, 1000), env=env, text=True,
                           capture_output=True, timeout=120)
    assert first.returncode == KILL_WORKER_EXIT, first.stderr
    cuts = list((store.ckpt_root / spec.content_hash).glob("*.ckpt"))
    assert cuts, "the dying worker left no snapshot to resume from"

    second = subprocess.run(_worker_cmd(tmp_path, 1000), env=env, text=True,
                            capture_output=True, timeout=120)
    assert second.returncode == 0, second.stderr

    result = store.get(spec)
    assert result is not None
    _assert_same(result, clean, "fleet resume across process death")
    # mark_done retires the snapshots.
    assert list(store.ckpt_root.rglob("*.ckpt")) == []


# -- fsck ----------------------------------------------------------------------

def test_audit_checkpoints_reports_and_prunes(tmp_path):
    root = tmp_path / "ckpt"
    spec = "f" * 16
    write_checkpoint(root / spec, spec, 700, {"x": 1})
    newest = write_checkpoint(root / spec, spec, 1400, {"x": 2})
    torn = write_checkpoint(root / spec, spec, 2100, {"x": 3})
    torn.write_bytes(torn.read_bytes()[:-8])
    stray = root / spec / ".000000002800.ckpt.999999999.tmp"
    stray.write_bytes(b"partial")

    audit = audit_checkpoints(root)
    assert audit.scanned == 3 and audit.ok == 2
    assert [rel for rel, _why in audit.defective] == [f"{spec}/{torn.name}"]
    assert audit.superseded == [f"{spec}/000000000700.ckpt"]
    assert audit.stale_temps == [f"{spec}/{stray.name}"]
    assert not audit.clean and audit.pruned == []

    pruned = audit_checkpoints(root, prune=True)
    assert len(pruned.pruned) == 3
    assert sorted((root / spec).iterdir()) == [newest]


def test_fsck_cli_flags_then_prunes_checkpoints(tmp_path):
    store = ResultStore(tmp_path)
    spec = "9" * 16
    torn = write_checkpoint(store.ckpt_root / spec, spec, 700, {"x": 1})
    torn.write_bytes(torn.read_bytes()[:-4])

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    cmd = [sys.executable, "-m", "repro.exec", "fsck",
           "--cache-dir", str(tmp_path)]
    flagged = subprocess.run(cmd, env=env, text=True, capture_output=True,
                             timeout=120)
    assert flagged.returncode == 1, flagged.stdout
    assert "checkpoints: 1 scanned" in flagged.stdout
    assert "torn payload" in flagged.stdout

    repaired = subprocess.run(cmd + ["--prune"], env=env, text=True,
                              capture_output=True, timeout=120)
    assert repaired.returncode == 0, repaired.stdout
    assert not (store.ckpt_root / spec).exists()

    clean = subprocess.run(cmd, env=env, text=True, capture_output=True,
                           timeout=120)
    assert clean.returncode == 0, clean.stdout


# -- the SIM9xx lint guards the protocol ---------------------------------------

def test_sim901_catches_a_mutated_declaration(tmp_path):
    """Drop one field from a declaring class -> the lint must object."""
    from repro.analysis import analyze_paths

    snippet = tmp_path / "mutant.py"
    snippet.write_text(
        "class Table:\n"
        '    SNAPSHOT_FIELDS = ("_rows",)\n'
        '    SNAPSHOT_EXEMPT = ("width",)\n'
        "\n"
        "    def __init__(self, width):\n"
        "        self.width = width\n"
        "        self._rows = []\n"
        "        self._dirty = set()\n"   # the forgotten field
    )
    violations = analyze_paths([snippet])
    assert [v.rule for v in violations] == ["SIM901"]
    assert "_dirty" in violations[0].message

    # Declaring it heals the tree.
    snippet.write_text(snippet.read_text().replace(
        '("_rows",)', '("_rows", "_dirty")'))
    assert analyze_paths([snippet]) == []


def test_sim902_catches_a_phantom_declaration(tmp_path):
    from repro.analysis import analyze_paths

    snippet = tmp_path / "phantom.py"
    snippet.write_text(
        "class Table:\n"
        '    SNAPSHOT_FIELDS = ("_rows", "_gone")\n'
        "\n"
        "    def __init__(self):\n"
        "        self._rows = []\n"
    )
    violations = analyze_paths([snippet])
    assert [v.rule for v in violations] == ["SIM902"]
    assert "_gone" in violations[0].message


def test_sim901_resolves_inheritance_across_modules(tmp_path):
    """A subclass inherits its base's exemptions, wherever the base lives."""
    from repro.analysis import analyze_paths

    base = tmp_path / "basemod.py"
    base.write_text(
        "class Base:\n"
        '    SNAPSHOT_FIELDS = ("_state",)\n'
        '    SNAPSHOT_EXEMPT = ("config",)\n'
        "\n"
        "    def __init__(self, config):\n"
        "        self.config = config\n"
        "        self._state = 0\n"
    )
    child = tmp_path / "childmod.py"
    child.write_text(
        "class Child(Base):\n"
        '    SNAPSHOT_FIELDS = ("_extra",)\n'
        "\n"
        "    def __init__(self, config):\n"
        "        self.config = config\n"      # exempt via the base
        "        self._extra = []\n"
        "        self.stat = self.add_stat('hits')\n"  # auto-exempt
    )
    assert analyze_paths([base, child]) == []
