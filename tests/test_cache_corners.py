"""Corner-case tests for the cache model's less-travelled paths."""

from repro.cache.cache import Cache
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import CacheConfig, baseline_config
from repro.mechanisms.base import Mechanism, ProbeResult
from repro.mechanisms.registry import create


def _cache(**kwargs):
    defaults = dict(size=1024, assoc=2, line_size=32, latency=1, ports=2,
                    mshr_entries=4, mshr_reads=2)
    defaults.update(kwargs)
    config = CacheConfig("t", **defaults)
    cache = Cache(config)
    cache.fetch_next = lambda addr, time, pc, is_prefetch: time + 50
    cache.writeback_next = lambda addr, time: None
    return cache


class _AlwaysProbe(Mechanism):
    """A mechanism whose side structure claims every missing line."""

    LEVEL = "l1"
    ACRONYM = "ALWAYS"

    def probe(self, block, time):
        return ProbeResult(latency=2, dirty=True)


def test_probe_hit_installs_into_a_full_set():
    cache = _cache()
    mech = _AlwaysProbe()
    mech.cache = cache
    cache.mechanism = mech
    t = 0
    # Fill set 0 (blocks 0 and 32 map to set 0 with 16 sets... use spacing
    # of n_sets * line = 16 * 32 = 512 bytes).
    for addr in (0x0, 0x200, 0x400):
        t = cache.access(1, addr, t + 5, False)
    # Probe hits installed all three; the set still holds only two lines.
    set0 = cache._sets[0]
    assert len(set0) <= 2
    # Probe-installed lines carry the probe's dirty state.
    assert any(line.dirty for line in set0)
    assert cache.st_aux_hits.value == 3


def test_write_to_merged_in_flight_line_sets_dirty():
    cache = _cache()
    cache.access(1, 0x100, 0, is_write=False)         # miss, in flight
    cache.access(1, 0x110, 2, is_write=True)          # merges, writes
    line = cache.peek(0x100)
    assert line is not None
    assert line.dirty


def test_instruction_cache_stats_are_separate():
    h = MemoryHierarchy(baseline_config())
    h.fetch_instruction(0x400, 0)
    assert h.l1i.st_reads.value == 1
    assert h.l1d.st_reads.value == 0


def test_instruction_fills_do_not_train_data_mechanisms():
    tp = create("TP")
    h = MemoryHierarchy(baseline_config(), mechanism=tp)
    # A cold instruction fetch misses L1I and the L2.
    h.fetch_instruction(0x123400, 0)
    assert h.l2.st_read_misses.value == 1
    assert tp.st_prefetches.value == 0  # invisible to the data mechanism


def test_data_misses_do_train_mechanisms():
    tp = create("TP")
    h = MemoryHierarchy(baseline_config(), mechanism=tp)
    h.load(0x400, 0x123400, 0)
    assert tp.st_prefetches.value == 1


def test_prefetch_insert_respects_mshr_budget():
    cache = _cache(mshr_entries=2)
    assert cache.insert_prefetch(0x1000, ready=100, time=0)
    assert cache.insert_prefetch(0x2000, ready=100, time=0)
    # Both MSHRs busy: the third prefetch is refused without side effects.
    assert not cache.insert_prefetch(0x3000, ready=100, time=0)
    assert not cache.contains(0x3000)
    # After the fills complete, capacity frees up again.
    assert cache.insert_prefetch(0x3000, ready=220, time=150)


def test_can_accept_prefetch_reflects_occupancy():
    cache = _cache(mshr_entries=1)
    assert cache.can_accept_prefetch(0)
    cache.access(1, 0x100, 0, False)
    assert not cache.can_accept_prefetch(1)
    assert cache.can_accept_prefetch(10_000)


def test_imprecise_cache_always_accepts_prefetches():
    config = CacheConfig("t", size=1024, assoc=2, line_size=32, latency=1,
                         ports=2, mshr_entries=1, mshr_reads=2)
    cache = Cache(config, precise=False, infinite_mshr=True)
    cache.fetch_next = lambda addr, time, pc, is_prefetch: time + 50
    for i in range(10):
        assert cache.can_accept_prefetch(0)
        assert cache.insert_prefetch(0x1000 * (i + 1), ready=100, time=0)
