"""Tests for the miss-status-holding-register file."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.cache.mshr import MSHRFile


def test_lookup_merges_secondary_miss():
    mshr = MSHRFile(capacity=4, reads_per_entry=4)
    mshr.insert(10, ready_time=100)
    assert mshr.lookup(10, 5) == 100
    assert mshr.merges == 1


def test_lookup_misses_unknown_block():
    mshr = MSHRFile(capacity=4)
    assert mshr.lookup(99, 0) is None


def test_merge_budget_exhaustion_is_flagged():
    mshr = MSHRFile(capacity=4, reads_per_entry=2)
    mshr.insert(10, ready_time=100)
    assert mshr.lookup(10, 0) == 100   # second read: merges
    assert mshr.lookup(10, 0) == 100   # third read: rejected but completes
    assert mshr.merge_rejects == 1


def test_entry_expires_after_ready_time():
    mshr = MSHRFile(capacity=4)
    mshr.insert(10, ready_time=50)
    assert mshr.lookup(10, 51) is None
    assert mshr.occupancy(51) == 0


def test_allocate_time_stalls_when_full():
    mshr = MSHRFile(capacity=2)
    mshr.insert(1, ready_time=100)
    mshr.insert(2, ready_time=60)
    assert mshr.allocate_time(10) == 60   # waits for the earliest completion
    assert mshr.full_stalls == 1


def test_allocate_time_immediate_with_space():
    mshr = MSHRFile(capacity=2)
    mshr.insert(1, ready_time=100)
    assert mshr.allocate_time(10) == 10


def test_infinite_capacity_never_stalls_or_rejects():
    mshr = MSHRFile(capacity=None)
    for block in range(100):
        mshr.insert(block, ready_time=1000)
    assert mshr.allocate_time(0) == 0
    for _ in range(10):
        assert mshr.lookup(5, 0) == 1000
    assert mshr.merge_rejects == 0


def test_occupancy_counts_only_in_flight_entries():
    mshr = MSHRFile(capacity=8)
    mshr.insert(1, ready_time=20)
    mshr.insert(2, ready_time=40)
    assert mshr.occupancy(10) == 2
    assert mshr.occupancy(30) == 1
    assert mshr.occupancy(50) == 0


def test_reinserted_block_uses_fresh_completion():
    mshr = MSHRFile(capacity=8)
    mshr.insert(1, ready_time=20)
    assert mshr.occupancy(25) == 0
    mshr.insert(1, ready_time=60)
    assert mshr.lookup(1, 30) == 60


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        MSHRFile(capacity=0)
    with pytest.raises(ValueError):
        MSHRFile(capacity=4, reads_per_entry=0)


def test_reset():
    mshr = MSHRFile(capacity=2)
    mshr.insert(1, ready_time=100)
    mshr.reset()
    assert mshr.occupancy(0) == 0
    assert mshr.lookup(1, 0) is None


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    misses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=30),    # block
                  st.integers(min_value=1, max_value=50)),   # latency
        min_size=1, max_size=60,
    ),
)
def test_occupancy_never_exceeds_capacity(capacity, misses):
    """Property: allocate_time + insert keep occupancy within capacity."""
    mshr = MSHRFile(capacity=capacity, reads_per_entry=4)
    time = 0
    for block, latency in misses:
        time += 1
        if mshr.lookup(block, time) is not None:
            continue
        when = mshr.allocate_time(time)
        assert when >= time
        mshr.insert(block, when + latency)
        assert mshr.occupancy(when) <= capacity
