"""Behavioural tests for the eager-writeback library extension."""

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import baseline_config
from repro.core.simulation import run_benchmark
from repro.mechanisms.registry import ALL_MECHANISMS, EXTENSIONS, create

L1_SPAN = 32 << 10


def test_registered_as_extension_only():
    assert "EW" in EXTENSIONS
    assert "EW" not in ALL_MECHANISMS
    ew = create("EW")
    assert ew.LEVEL == "l1"


def test_quiet_dirty_line_is_written_back_early():
    ew = create("EW")
    h = MemoryHierarchy(baseline_config(), mechanism=ew)
    t = h.store(1, 0x100000, 7, 0)
    # Let the quiet clock expire with unrelated traffic far in the future.
    h.load(1, 0x500040, t + ew.QUIET_CYCLES * 3)
    assert ew.st_eager_writebacks.value == 1
    line = h.l1d.peek(0x100000)
    assert line is not None and not line.dirty
    # The later eviction is then free.
    h.load(1, 0x100000 + L1_SPAN, t + ew.QUIET_CYCLES * 4)
    assert ew.st_free_evictions.value == 1


def test_rewrite_rearms_the_clock():
    ew = create("EW")
    h = MemoryHierarchy(baseline_config(), mechanism=ew)
    t = h.store(1, 0x100000, 7, 0)
    # Re-write just before the quiet threshold: no eager writeback yet.
    t2 = h.store(1, 0x100000, 8, t + ew.QUIET_CYCLES - 50)
    h.load(1, 0x500040, t2 + 100)
    assert ew.st_eager_writebacks.value == 0


def test_data_integrity_preserved():
    """Eager cleaning must never lose the value: the L2 copy is current."""
    ew = create("EW")
    h = MemoryHierarchy(baseline_config(), mechanism=ew)
    t = h.store(1, 0x100000, 7, 0)
    h.load(1, 0x500040, t + ew.QUIET_CYCLES * 3)     # eager writeback fires
    assert ew.st_eager_writebacks.value == 1
    # The line reached L2 via a real writeback access.
    assert h.l2.st_writes.value >= 1


def test_helps_bandwidth_bound_streaming():
    base = run_benchmark("swim", "Base", n_instructions=15000)
    ew = run_benchmark("swim", "EW", n_instructions=15000)
    assert ew.ipc > base.ipc


def test_harmless_on_cache_resident_workloads():
    base = run_benchmark("perlbmk", "Base", n_instructions=12000)
    ew = run_benchmark("perlbmk", "EW", n_instructions=12000)
    assert abs(ew.ipc - base.ipc) / base.ipc < 0.03
