"""The sweep service: protocol, fleet leases, dedupe, chaos convergence.

The headline assertions here are the service's contract, stated as
invariants over the WALs rather than over timing:

* **exactly-once** — however many clients submit a hash, the queue WAL
  carries at most one ``enqueue``, one ``lease`` and one ``done`` record
  for it (a healthy fleet never simulates a spec twice);
* **bit-identical** — every result a client receives equals the result
  of executing the spec locally, field for field (specs are pure, the
  store is content-addressed, so *who* simulated is unobservable);
* **convergence** — a worker killed mid-lease by ``kill-worker`` chaos
  leaves a lease that expires and is reclaimed with count 2, and
  count-2 leases never consult the kill schedule, so the sweep always
  finishes.
"""

import dataclasses
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exec import ResultStore, RunSpec
from repro.exec.faults import FaultPlan, should_kill_worker
from repro.exec.telemetry import RunRecord, Telemetry
from repro.serve import (
    Fleet,
    ProtocolError,
    SweepClient,
    SweepServer,
    Worker,
    spec_from_payload,
    spec_payload,
)
from repro.serve import wal
from repro.serve.fleet import (
    KIND_DONE,
    KIND_ENQUEUE,
    KIND_EXPIRE,
    KIND_LEASE,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    payload_hash,
)

REPO = Path(__file__).resolve().parent.parent

N = 2000


def _spec(mechanism="TP", benchmark="swim"):
    return RunSpec(benchmark, mechanism, n_instructions=N)


def _as_dict(result):
    return dataclasses.asdict(result)


# -- protocol ------------------------------------------------------------------

def test_spec_payload_round_trips_content_hash():
    specs = [
        _spec("Base"),
        _spec("TP"),
        RunSpec("gzip", "VC", n_instructions=N,
                mechanism_kwargs=(("entries", 8),)),
    ]
    for spec in specs:
        payload = spec_payload(spec)
        # The wire hash agrees with the spec's own identity...
        assert payload_hash(payload) == spec.content_hash
        # ...and survives an actual JSON round trip (the wire format).
        wire = json.loads(json.dumps(payload))
        rebuilt = spec_from_payload(wire)
        assert rebuilt.content_hash == spec.content_hash
        assert rebuilt == spec


def test_bad_spec_payloads_are_rejected():
    with pytest.raises(ProtocolError):
        spec_from_payload("not an object")
    with pytest.raises(ProtocolError):
        spec_from_payload({"benchmark": "swim"})  # missing everything else
    # A payload whose reconstruction hashes differently is a lie about
    # identity: smuggle in a field the hash was not computed over.
    payload = spec_payload(_spec())
    payload["smuggled"] = True
    with pytest.raises(ProtocolError):
        spec_from_payload(payload)


def test_messages_are_versioned_json_lines():
    line = encode_message("result", spec="abc", seconds=0.5)
    assert line.endswith(b"\n") and line.count(b"\n") == 1
    record = decode_message(line)
    assert record["kind"] == "result"
    assert record["v"] == PROTOCOL_VERSION
    # A message from a newer protocol is rejected, not mis-parsed.
    newer = json.dumps({"v": PROTOCOL_VERSION + 1, "kind": "result"})
    with pytest.raises(ProtocolError):
        decode_message(newer.encode())
    with pytest.raises(ProtocolError):
        decode_message(b"[1, 2, 3]\n")
    with pytest.raises(ProtocolError):
        decode_message(b"{\"v\": 1}\n")  # no kind


# -- the WAL primitives --------------------------------------------------------

def test_wal_append_replay_round_trip(tmp_path):
    path = tmp_path / "queue.jsonl"
    wal.append_record(path, "enqueue", spec="h1")
    wal.append_record(path, "done", spec="h1", seconds=0.5)
    records, corrupt = wal.replay(path)
    assert [r["kind"] for r in records] == ["enqueue", "done"]
    assert corrupt == 0
    # A missing file is an empty log, not an error.
    assert wal.replay(tmp_path / "absent.jsonl") == ([], 0)


def test_wal_replay_tolerates_corruption(tmp_path):
    path = tmp_path / "queue.jsonl"
    wal.append_record(path, "enqueue", spec="h1")
    with open(path, "a") as handle:
        handle.write("{torn garbage\n")
    wal.append_record(path, "done", spec="h1")
    records, corrupt = wal.replay(path)
    assert [r["kind"] for r in records] == ["enqueue", "done"]
    assert corrupt == 1


def test_read_tail_consumes_only_complete_lines(tmp_path):
    path = tmp_path / "queue.jsonl"
    wal.append_record(path, "enqueue", spec="h1")
    # A worker mid-append: the final line has no newline yet.
    with open(path, "a") as handle:
        handle.write('{"v": 1, "kind": "done", "spec": "h1"')
    records, offset = wal.read_tail(path, 0)
    assert [r["kind"] for r in records] == ["enqueue"]
    # Completing the line makes it visible from the returned offset.
    with open(path, "a") as handle:
        handle.write(', "seconds": 0.5}\n')
    records, offset2 = wal.read_tail(path, offset)
    assert [r["kind"] for r in records] == ["done"]
    assert offset2 > offset
    # Nothing new: same offset back, no records.
    assert wal.read_tail(path, offset2) == ([], offset2)


# -- fleet leases --------------------------------------------------------------

def _payloads(*hashes):
    return {h: {"benchmark": "swim", "fake": h} for h in hashes}


def test_lease_lifecycle_and_exactly_one_claimant(tmp_path):
    fleet = Fleet(tmp_path, ttl=30.0)
    assert fleet.enqueue(_payloads("a" * 64, "b" * 64)) == \
        ["a" * 64, "b" * 64]
    # Re-submitting shared work must not grow the queue — and the
    # caller learns exactly which hashes the fleet already owned.
    assert fleet.enqueue(_payloads("a" * 64)) == []

    first = fleet.claim("w1")
    second = fleet.claim("w2")
    assert {first.spec_hash, second.spec_hash} == {"a" * 64, "b" * 64}
    assert first.lease_count == 1 and second.lease_count == 1
    # Both specs leased: a third worker finds nothing claimable.
    assert fleet.claim("w3") is None

    fleet.mark_done(first.spec_hash, "w1", 0.5)
    fleet.mark_done(second.spec_hash, "w2", 0.5)
    snap = fleet.snapshot()
    assert snap.drained
    assert set(snap.done) == {"a" * 64, "b" * 64}
    # Resolved specs are never re-leased.
    assert fleet.claim("w1") is None


def test_expired_lease_is_reclaimed_with_higher_count(tmp_path):
    fleet = Fleet(tmp_path, ttl=0.05)
    fleet.enqueue(_payloads("a" * 64))
    first = fleet.claim("w1")
    assert first.lease_count == 1
    # The abandoned lease blocks the spec only until it expires.
    assert fleet.claim("w2") is None
    time.sleep(0.1)
    reclaimed = fleet.claim("w2")
    assert reclaimed is not None
    assert reclaimed.spec_hash == "a" * 64
    assert reclaimed.lease_count == 2
    # The reclaim is durable and auditable: an expire record was logged.
    records, _ = wal.replay(fleet.lease_path)
    kinds = [r["kind"] for r in records]
    assert KIND_EXPIRE in kinds
    assert kinds.count(KIND_LEASE) == 2


def test_renew_extends_only_the_holders_live_lease(tmp_path):
    fleet = Fleet(tmp_path, ttl=0.4)
    fleet.enqueue(_payloads("a" * 64))
    assert fleet.claim("w1") is not None
    # The holder can keep the lease alive past its original TTL...
    for _ in range(3):
        time.sleep(0.2)
        assert fleet.renew("a" * 64, "w1") is not None
        assert fleet.claim("w2") is None
    # ...while a non-holder's heartbeat is refused outright.
    assert fleet.renew("a" * 64, "w2") is None
    # Once the lease lapses and w2 reclaims, the old holder's renew is
    # refused too — it must not stretch the reclaimant's deadline.
    time.sleep(0.5)
    reclaimed = fleet.claim("w2")
    assert reclaimed is not None and reclaimed.lease_count == 2
    assert fleet.renew("a" * 64, "w1") is None
    holder, _count, expires = fleet.snapshot().leases["a" * 64]
    assert holder == "w2"
    # Replay enforces the same rule for records already on disk: a
    # forged renew from the wrong worker changes nothing.
    wal.append_record(fleet.lease_path, "renew", spec="a" * 64,
                      worker="w1", expires=expires + 9999.0)
    assert fleet.snapshot().leases["a" * 64] == (holder, 2, expires)


def test_requeue_reopens_resolved_specs_but_not_pending_ones(tmp_path):
    fleet = Fleet(tmp_path, ttl=30.0)
    fleet.enqueue(_payloads("a" * 64, "b" * 64))
    claim = fleet.claim("w1")
    assert claim.spec_hash == "a" * 64
    fleet.mark_done(claim.spec_hash, "w1", 0.1)
    # Resolved specs are not pending, and enqueue cannot revive them.
    assert fleet.enqueue(_payloads("a" * 64)) == []
    assert fleet.snapshot().pending() == ["b" * 64]
    # requeue erases the resolution; the still-pending spec is skipped
    # (re-opening in-flight work would double-simulate it).
    assert fleet.requeue(_payloads("a" * 64, "b" * 64)) == ["a" * 64]
    snap = fleet.snapshot()
    assert snap.pending() == ["a" * 64, "b" * 64]
    assert "a" * 64 not in snap.done
    # The reopened spec is claimable again and its lease pedigree
    # continues — a count-2 lease never consults the chaos schedule.
    reclaimed = fleet.claim("w2")
    assert reclaimed.spec_hash == "a" * 64
    assert reclaimed.lease_count == 2


def test_failed_specs_resolve_the_queue(tmp_path):
    fleet = Fleet(tmp_path, ttl=30.0)
    fleet.enqueue(_payloads("a" * 64))
    claim = fleet.claim("w1")
    from repro.exec.policy import FailedRun
    fleet.mark_failed(FailedRun(
        spec_hash=claim.spec_hash, benchmark="swim", mechanism="TP",
        attempts=1, error="boom"), "w1")
    snap = fleet.snapshot()
    assert snap.drained
    assert claim.spec_hash in snap.failures
    assert snap.failures[claim.spec_hash].error == "boom"


def test_fleet_snapshot_tolerates_corrupt_wal_lines(tmp_path):
    fleet = Fleet(tmp_path, ttl=30.0)
    fleet.enqueue(_payloads("a" * 64))
    with open(fleet.queue_path, "a") as handle:
        handle.write("not json at all\n")
    snap = fleet.snapshot()
    assert list(snap.enqueued) == ["a" * 64]
    assert snap.corrupt_lines == 1


# -- the worker ----------------------------------------------------------------

def test_worker_simulates_stores_then_resolves(tmp_path):
    store = ResultStore(tmp_path / "cache")
    fleet = Fleet(store.serve_dir, ttl=60.0)
    spec = _spec()
    fleet.enqueue({spec.content_hash: spec_payload(spec)})
    worker = Worker(fleet, store, "w1", plan=FaultPlan())
    assert worker.run_one()
    assert worker.completed == 1
    # The result in the shared store is the spec's own, bit for bit.
    assert _as_dict(store.get(spec)) == _as_dict(spec.execute())
    snap = fleet.snapshot()
    assert snap.drained and spec.content_hash in snap.done
    # Nothing left: the next claim attempt reports no work.
    assert not worker.run_one()


def test_worker_resolves_unreconstructible_payload_as_failure(tmp_path):
    store = ResultStore(tmp_path / "cache")
    fleet = Fleet(store.serve_dir, ttl=60.0)
    fleet.enqueue({"f" * 64: {"benchmark": "swim", "garbage": True}})
    worker = Worker(fleet, store, "w1", plan=FaultPlan())
    assert worker.run_one()
    assert worker.failed == 1
    snap = fleet.snapshot()
    assert snap.drained
    failure = snap.failures["f" * 64]
    assert "ProtocolError" in failure.error


def test_kill_worker_schedule_is_deterministic_and_first_lease_only(tmp_path):
    plan = FaultPlan(seed=7, kill_worker=1.0)
    assert should_kill_worker(None, "a" * 64) is False
    # Purely a function of (seed, kind, hash): the same plan makes the
    # same decision everywhere, forever — including a fresh process.
    assert should_kill_worker(plan, "a" * 64) is True
    assert should_kill_worker(plan, "a" * 64) is True
    assert should_kill_worker(FaultPlan(seed=7, kill_worker=1.0),
                              "a" * 64) is True
    # Convergence is the worker's gate, not the schedule's: a reclaimed
    # lease (count > 1) never consults the plan, so _maybe_die returns
    # instead of dying even at rate 1.0.
    from repro.serve.fleet import Claim
    store = ResultStore(tmp_path / "cache")
    worker = Worker(Fleet(store.serve_dir), store, "w1", plan=plan)
    worker._maybe_die(Claim(spec_hash="a" * 64, payload={},
                            lease_count=2, expires=0.0))


def test_worker_heartbeat_outlasts_a_slow_simulation(tmp_path, monkeypatch):
    """A simulation slower than the TTL keeps its lease via renewal."""
    store = ResultStore(tmp_path / "cache")
    fleet = Fleet(store.serve_dir, ttl=0.4)
    spec = _spec()
    fleet.enqueue({spec.content_hash: spec_payload(spec)})

    class Slow:
        def __init__(self, inner):
            self._inner = inner

        def __getattr__(self, name):
            return getattr(self._inner, name)

        def execute(self):
            time.sleep(1.0)
            return self._inner.execute()

    monkeypatch.setattr(
        "repro.serve.worker.spec_from_payload",
        lambda payload: Slow(spec_from_payload(payload)),
    )
    worker = Worker(fleet, store, "w1", plan=FaultPlan())
    thread = threading.Thread(target=worker.run_one)
    thread.start()
    try:
        # Well past the original 0.4 s deadline the lease is still live
        # (renewed at ttl/2), so no one else can steal the spec.
        time.sleep(0.7)
        assert fleet.claim("w2") is None
    finally:
        thread.join(timeout=30.0)
    assert worker.completed == 1
    snap = fleet.snapshot()
    assert snap.drained and spec.content_hash in snap.done
    # Exactly one lease ever granted, kept alive by renew heartbeats.
    records, _ = wal.replay(fleet.lease_path)
    kinds = [r["kind"] for r in records]
    assert kinds.count(KIND_LEASE) == 1
    assert "renew" in kinds
    assert KIND_EXPIRE not in kinds


# -- the service end to end (in process) ---------------------------------------

class _Service:
    """A live server on a unix socket plus optional worker threads."""

    def __init__(self, tmp_path, ttl=60.0, max_line=None):
        import asyncio

        self.store = ResultStore(tmp_path / "cache")
        self.fleet = Fleet(self.store.serve_dir, ttl=ttl)
        self.socket_path = str(tmp_path / "serve.sock")
        extra = {} if max_line is None else {"max_line": max_line}
        self.server = SweepServer(
            self.store, self.fleet,
            socket_path=Path(self.socket_path), watch_seconds=0.02,
            **extra,
        )
        self.loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self.loop.run_forever, daemon=True)
        self._serve_future = None
        self._stop = threading.Event()
        self._worker_threads = []

    def start(self):
        import asyncio

        self._loop_thread.start()
        self._serve_future = asyncio.run_coroutine_threadsafe(
            self.server.serve(), self.loop)
        deadline = time.monotonic() + 10.0
        while not Path(self.socket_path).exists():
            if time.monotonic() > deadline:
                raise RuntimeError("server socket never appeared")
            if self._serve_future.done():
                self._serve_future.result()  # surface the startup error
            time.sleep(0.01)
        return self

    def start_worker(self, worker_id):
        worker = Worker(self.fleet, self.store, worker_id, plan=FaultPlan())

        def loop():
            while not self._stop.is_set():
                if not worker.run_one():
                    time.sleep(0.01)

        thread = threading.Thread(target=loop, daemon=True)
        thread.start()
        self._worker_threads.append(thread)
        return worker

    def client(self, client_id):
        return SweepClient(socket_path=self.socket_path,
                           client_id=client_id, timeout=120.0)

    def close(self):
        self._stop.set()
        for thread in self._worker_threads:
            thread.join(timeout=5.0)
        if self._serve_future is not None:
            self._serve_future.cancel()
        time.sleep(0.05)  # let the cancellation's cleanup run
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._loop_thread.join(timeout=5.0)
        self.loop.close()


@pytest.fixture
def service(tmp_path):
    svc = _Service(tmp_path).start()
    try:
        yield svc
    finally:
        svc.close()


def _queue_kind_counts(fleet, kind):
    records, _ = wal.replay(fleet.queue_path)
    counts = {}
    for record in records:
        if record.get("kind") == kind:
            spec = record.get("spec")
            counts[spec] = counts.get(spec, 0) + 1
    return counts


def test_store_answers_skip_the_fleet_entirely(service):
    # Pre-populate the store: a finished sweep from any client, any time.
    spec = _spec()
    service.store.put(spec, spec.execute())
    outcome = service.client("warm").submit([spec])
    assert outcome.store_hits == 1
    assert outcome.leased == 0 and outcome.shared == 0
    assert outcome.sources[spec.content_hash] == "store"
    assert _as_dict(outcome.results[spec.content_hash]) == \
        _as_dict(spec.execute())
    # Nothing was ever enqueued: the fleet never heard of this spec.
    assert _queue_kind_counts(service.fleet, KIND_ENQUEUE) == {}


def test_submission_lines_beyond_asyncios_default_limit_work(service):
    """Regression: a batch past ~44 specs used to kill the handler.

    Without ``limit=`` the asyncio streams cap buffered lines at 64 KiB
    and ``readline`` raises, so the client saw a bare closed stream.
    The duplicates dedupe to one store-answered hash, keeping the test
    cheap while the submit line itself stays genuinely oversized.
    """
    from repro.serve.protocol import submit_message

    spec = _spec()
    service.store.put(spec, spec.execute())
    specs = [spec] * 1000
    assert len(submit_message(list(specs), "bulk")) > (64 << 10)
    outcome = service.client("bulk").submit(specs)
    assert outcome.store_hits == 1
    assert _as_dict(outcome.results[spec.content_hash]) == \
        _as_dict(spec.execute())


def test_over_limit_submission_is_refused_with_an_error(tmp_path):
    from repro.serve import ServeUnavailable

    svc = _Service(tmp_path, max_line=1024).start()
    try:
        with pytest.raises(ServeUnavailable) as excinfo:
            svc.client("hog").submit([_spec()] * 50)
        # A protocol error, not a bare "server closed the stream".
        assert "limit" in str(excinfo.value)
    finally:
        svc.close()


def test_resolved_failure_in_the_queue_wal_streams_not_hangs(service):
    """A hash whose ``failed`` record predates the subscription.

    ``enqueue`` skips it (already in the queue WAL) and the watcher has
    long consumed its resolution, so without snapshot adoption every
    subscriber would hang until the socket timeout.
    """
    from repro.exec.policy import FailedRun

    spec = _spec()
    service.fleet.enqueue({spec.content_hash: spec_payload(spec)})
    claim = service.fleet.claim("w1")
    service.fleet.mark_failed(FailedRun(
        spec_hash=claim.spec_hash, benchmark=spec.benchmark,
        mechanism=spec.mechanism, attempts=1, error="boom"), "w1")
    time.sleep(0.1)  # let the watcher pass the failed record

    outcome = service.client("late").submit([spec])
    assert outcome.failures[spec.content_hash].error == "boom"
    assert outcome.leased == 0 and outcome.shared == 1
    assert outcome.store_hits == 0


def test_pruned_store_entry_behind_a_done_record_is_requeued(service):
    """A ``done`` record whose store entry was pruned must re-simulate.

    The fleet's promise broke; the server requeues the spec instead of
    leaving subscribers waiting on a resolution that can never replay.
    """
    spec = _spec()
    service.fleet.enqueue({spec.content_hash: spec_payload(spec)})
    worker = Worker(service.fleet, service.store, "w1", plan=FaultPlan())
    assert worker.run_one()
    time.sleep(0.1)  # let the watcher pass the done record
    service.store.shard_path(spec.content_hash).unlink()

    service.start_worker("w2")
    outcome = service.client("late").submit([spec])
    assert _as_dict(outcome.results[spec.content_hash]) == \
        _as_dict(spec.execute())
    assert outcome.sources[spec.content_hash] == "simulated"
    assert outcome.leased == 1 and outcome.shared == 0
    assert outcome.store_hits == 0
    # The WAL tells the full story: requeue, then a second done record.
    records, _ = wal.replay(service.fleet.queue_path)
    kinds = [r["kind"] for r in records]
    assert "requeue" in kinds
    assert kinds.count(KIND_DONE) == 2
    # And the store's promise holds again.
    assert service.store.get(spec) is not None


def test_pending_fleet_spec_is_adopted_as_shared_work(service):
    """A hash already pending on the queue (no live subscription) is
    shared, not re-enqueued, and its eventual resolution streams."""
    spec = _spec()
    service.fleet.enqueue({spec.content_hash: spec_payload(spec)})

    outcomes = {}

    def submit():
        outcomes["late"] = service.client("late").submit([spec])

    thread = threading.Thread(target=submit)
    thread.start()
    deadline = time.monotonic() + 10.0
    while spec.content_hash not in service.server._inflight:
        assert time.monotonic() < deadline, "submission never registered"
        assert thread.is_alive(), "client died before the worker started"
        time.sleep(0.01)
    service.start_worker("w1")
    thread.join(timeout=120.0)
    assert not thread.is_alive()

    outcome = outcomes["late"]
    assert _as_dict(outcome.results[spec.content_hash]) == \
        _as_dict(spec.execute())
    assert outcome.leased == 0 and outcome.shared == 1
    # Exactly one enqueue and one done record fleet-wide.
    assert _queue_kind_counts(service.fleet, KIND_ENQUEUE) == \
        {spec.content_hash: 1}
    assert _queue_kind_counts(service.fleet, KIND_DONE) == \
        {spec.content_hash: 1}


def test_load_entry_falls_through_to_the_flat_layout(service, monkeypatch):
    """A shard entry that verifies but fails to read is not a miss.

    The flat-layout entry must still be probed — returning None would
    surface a WAL-promised result as a spurious failure.
    """
    spec = _spec()
    service.store.put(spec, spec.execute())
    os.replace(service.store.shard_path(spec.content_hash),
               service.store.flat_path(spec.content_hash))
    # Make verify pass for both paths: the shard read now fails (the
    # file is gone) and must fall through to the flat entry.
    monkeypatch.setattr(service.store, "verify_entry", lambda path: None)
    entry = service.server._load_entry(spec.content_hash)
    assert entry is not None
    assert entry["result"]


def test_two_clients_share_inflight_work_exactly_once(service):
    """The tentpole invariant: overlap is shared, never re-simulated.

    Both clients submit before any worker exists, so the overlap is
    deterministically in-flight (not a store hit); then one worker
    drains the union and every subscriber gets bit-identical results.
    """
    specs_a = [_spec("Base"), _spec("TP"), _spec("VC")]
    specs_b = [_spec("TP"), _spec("VC"), _spec("SP")]
    overlap = 2
    union = {s.content_hash: s for s in specs_a + specs_b}

    outcomes = {}

    def submit(name, specs):
        outcomes[name] = service.client(name).submit(specs)

    thread_a = threading.Thread(target=submit, args=("a", specs_a))
    thread_a.start()
    # Client b subscribes only after a's reservation is fully in place,
    # so its accounting is deterministic: the overlap is in-flight.
    deadline = time.monotonic() + 10.0
    while len(service.fleet.snapshot().enqueued) < len(specs_a):
        assert time.monotonic() < deadline, "client a never enqueued"
        time.sleep(0.01)
    thread_b = threading.Thread(target=submit, args=("b", specs_b))
    thread_b.start()
    while len(service.fleet.snapshot().enqueued) < len(union):
        assert time.monotonic() < deadline, "client b never enqueued"
        time.sleep(0.01)

    service.start_worker("w1")
    thread_a.join(timeout=120.0)
    thread_b.join(timeout=120.0)
    assert not thread_a.is_alive() and not thread_b.is_alive()

    a, b = outcomes["a"], outcomes["b"]
    assert a.leased == 3 and a.shared == 0 and a.store_hits == 0
    assert b.leased == 1 and b.shared == overlap and b.store_hits == 0

    # Exactly-once, as WAL facts: one enqueue, one lease, one done per
    # unique hash across both submissions.
    assert _queue_kind_counts(service.fleet, KIND_ENQUEUE) == \
        {h: 1 for h in union}
    assert _queue_kind_counts(service.fleet, KIND_DONE) == \
        {h: 1 for h in union}
    lease_records, _ = wal.replay(service.fleet.lease_path)
    leases = [r["spec"] for r in lease_records if r["kind"] == KIND_LEASE]
    assert sorted(leases) == sorted(union)

    # Every client got every spec it asked for, bit-identical to a
    # local serial execution of the same spec.
    for name, specs in (("a", specs_a), ("b", specs_b)):
        outcome = outcomes[name]
        for spec in specs:
            remote = outcome.results[spec.content_hash]
            assert _as_dict(remote) == _as_dict(spec.execute()), \
                f"client {name}: {spec.mechanism} result drifted"

    # The shared results both clients saw are the same object value.
    for spec in specs_b[:overlap]:
        assert _as_dict(a.results[spec.content_hash]) == \
            _as_dict(b.results[spec.content_hash])

    # The server's lifetime accounting agrees with the clients'.
    assert service.server.leased_total == 4
    assert service.server.shared_total == overlap
    # And the store now holds the union, fsck-clean.
    report = service.store.fsck()
    assert report.scanned == len(union) and report.clean


# -- executor integration ------------------------------------------------------

def test_summary_line_renders_lease_parts_only_when_nonzero():
    telemetry = Telemetry()
    telemetry.record(RunRecord("h1", "swim", "TP", "simulated", 0.25))
    telemetry.record_batch(1, 1, 0.5)
    clean = telemetry.summary_line()
    # The clean line is byte-identical to what it always was.
    assert clean == ("executor: 1 results, 1 simulated, 0 cache hits "
                     "(0 memo, 0 store, 0 deduped), wall 0.50s, "
                     "avg 0.250s/sim")
    telemetry.leased = 3
    telemetry.shared = 2
    assert telemetry.summary_line() == clean + ", 3 leased, 2 shared"


# -- chaos: the convergence proof (subprocess) ---------------------------------

def _cli_env(tmp_path, cache, faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    env["REPRO_LEDGER"] = str(tmp_path / "ledger.json")
    env["REPRO_CACHE_DIR"] = str(tmp_path / cache)
    if faults:
        env["REPRO_FAULTS"] = faults
    return env


_FIG10_ARGS = ("fig10", "--n", "2000", "--benchmarks", "swim", "--jobs", "1")

#: Pinned: with seed=7 at rate 0.5 at least one of the fig10/swim spec
#: hashes draws an injected worker kill on its first lease; the
#: reclaimed lease (count 2) never consults the schedule, so the fleet
#: provably converges after the TTL.
_KILL_SPEC = "kill-worker:0.5,seed=7"


def test_cli_serve_kill_worker_chaos_converges_bit_identically(tmp_path):
    serial = subprocess.run(
        [sys.executable, "-m", "repro", *_FIG10_ARGS],
        capture_output=True, text=True,
        env=_cli_env(tmp_path, "cache-serial"), cwd=REPO, timeout=600,
    )
    assert serial.returncode == 0, serial.stderr

    env = _cli_env(tmp_path, "cache-fleet")
    cache = env["REPRO_CACHE_DIR"]
    socket_path = str(tmp_path / "serve.sock")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "server",
         "--socket", socket_path],
        env=env, cwd=REPO, stderr=subprocess.PIPE, text=True,
    )
    fleet_proc = None
    try:
        deadline = time.monotonic() + 30.0
        while not Path(socket_path).exists():
            assert server.poll() is None, "server died during startup"
            assert time.monotonic() < deadline, "server never listened"
            time.sleep(0.05)

        # Only the workers live under the chaos plan: the injected kill
        # is a worker death, not a client or server fault.
        fleet_proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "fleet", "--workers", "2",
             "--drain", "--ttl", "2", "--idle-timeout", "60"],
            env=_cli_env(tmp_path, "cache-fleet", faults=_KILL_SPEC),
            cwd=REPO, stderr=subprocess.PIPE, text=True,
        )

        clients = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", *_FIG10_ARGS,
                 "--serve", socket_path],
                env=_cli_env(tmp_path, "cache-fleet"), cwd=REPO,
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for _ in range(2)
        ]
        outs = [proc.communicate(timeout=600) for proc in clients]
        for proc, (out, err) in zip(clients, outs):
            assert proc.returncode == 0, err
            # Byte-identical to the serial single-process run: the
            # fleet is unobservable in the exhibit's stdout.
            assert out == serial.stdout
        fleet_out, fleet_err = fleet_proc.communicate(timeout=120)
        assert fleet_proc.returncode == 0, fleet_err

        # Chaos actually fired and was survived, not skipped.
        assert "injected worker kill" in fleet_err
        assert "respawning" in fleet_err

        # Exactly-once even under chaos: one done record per spec.
        fleet = Fleet(Path(cache) / "serve")
        done = _queue_kind_counts(fleet, KIND_DONE)
        assert done and all(count == 1 for count in done.values())
        assert fleet.snapshot().drained

        # The shared store passes the full integrity check.
        fsck = subprocess.run(
            [sys.executable, "-m", "repro.exec", "fsck",
             "--cache-dir", cache],
            capture_output=True, text=True, env=env, cwd=REPO, timeout=120,
        )
        assert fsck.returncode == 0, fsck.stdout + fsck.stderr
    finally:
        if fleet_proc is not None and fleet_proc.poll() is None:
            fleet_proc.kill()
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


# -- sharded store & migration -------------------------------------------------

def test_store_shards_new_entries_and_reads_flat_layout(tmp_path):
    store = ResultStore(tmp_path / "cache")
    spec = _spec()
    result = spec.execute()
    store.put(spec, result)
    sharded = store.shard_path(spec.content_hash)
    assert sharded.exists()
    assert sharded.parent.name == spec.content_hash[:2]
    # A flat (pre-shard) entry is read transparently.
    flat_spec = _spec("VC")
    store.put(flat_spec, flat_spec.execute())
    moved_to_flat = store.flat_path(flat_spec.content_hash)
    os.replace(store.shard_path(flat_spec.content_hash), moved_to_flat)
    assert store.get(flat_spec) is not None
    assert len(store) == 2


def test_fsck_migrate_is_idempotent_and_counts_flat_entries(tmp_path):
    store = ResultStore(tmp_path / "cache")
    spec = _spec()
    store.put(spec, spec.execute())
    os.replace(store.shard_path(spec.content_hash),
               store.flat_path(spec.content_hash))

    report = store.fsck()
    assert report.flat_entries == 1 and not report.problems

    report = store.fsck(migrate=True)
    assert report.migrated == 1 and report.flat_entries == 0
    assert store.shard_path(spec.content_hash).exists()
    assert not store.flat_path(spec.content_hash).exists()
    assert store.get(spec) is not None

    # Idempotent: a second migrate moves nothing and changes nothing.
    report = store.fsck(migrate=True)
    assert report.migrated == 0 and report.flat_entries == 0
    assert not report.problems


def test_misfiled_shard_entry_is_a_defect(tmp_path):
    store = ResultStore(tmp_path / "cache")
    spec = _spec()
    store.put(spec, spec.execute())
    good = store.shard_path(spec.content_hash)
    wrong_shard = store.root / ("00" if spec.content_hash[:2] != "00"
                                else "ff")
    wrong_shard.mkdir(parents=True, exist_ok=True)
    misfiled = wrong_shard / good.name
    misfiled.write_bytes(good.read_bytes())
    problem = store.verify_entry(misfiled)
    assert problem is not None and "misfiled" in problem
    report = store.fsck(prune=True)
    assert any("misfiled" in why for _name, why in report.problems)
    assert not misfiled.exists()
    assert good.exists()
