"""Tests for the CACTI-style area and XCACTI-style power models."""

import pytest

from repro.core.simulation import build_machine, run_benchmark
from repro.costmodel.cacti import CactiModel, area_mm2
from repro.costmodel.power import PowerModel, access_energy_nj
from repro.mechanisms.registry import ALL_MECHANISMS, BASELINE, create


class TestAreaModel:
    def test_area_grows_with_size(self):
        assert area_mm2(1 << 20) > area_mm2(64 << 10) > area_mm2(1 << 10)

    def test_ports_are_expensive(self):
        assert area_mm2(32 << 10, ports=4) > 2 * area_mm2(32 << 10, ports=1)

    def test_associativity_adds_overhead(self):
        assert area_mm2(32 << 10, assoc=8) > area_mm2(32 << 10, assoc=1)

    def test_floor_for_tiny_structures(self):
        assert area_mm2(0) > 0
        assert area_mm2(64) > 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            area_mm2(1024, assoc=0)
        with pytest.raises(ValueError):
            area_mm2(1024, ports=0)

    def test_baseline_hierarchy_dominated_by_l2(self):
        # The L2 is 32x larger, but the 4-ported L1's cells are ~12x
        # bigger (CACTI's port factor), so the gap narrows to ~2.5x.
        model = CactiModel()
        assert model.cache_area(model.config.l2) > 2 * model.cache_area(
            model.config.l1d
        )


class TestCostRatios:
    """Figure 5's qualitative structure must hold."""

    def _ratio(self, name):
        model = CactiModel()
        mechanism = create(name)
        build_machine(mechanism=mechanism)
        return model.cost_ratio(mechanism)

    def test_baseline_ratio_is_one(self):
        assert CactiModel().cost_ratio(None) == pytest.approx(1.0)

    def test_markov_and_dbcp_are_the_cost_extremes(self):
        ratios = {
            name: self._ratio(name)
            for name in ALL_MECHANISMS if name != BASELINE
        }
        heavy = {"Markov", "DBCP"}
        light = {"TP", "SP", "GHB", "VC", "CDP"}
        for h in heavy:
            for l in light:
                # Compare *added* area: megabyte tables vs near-free logic.
                assert (ratios[h] - 1) > (ratios[l] - 1) * 10

    def test_lightweight_mechanisms_nearly_free(self):
        for name in ("TP", "SP", "GHB", "VC", "CDP"):
            assert self._ratio(name) < 1.05

    def test_dbcp_initial_variant_is_smaller(self):
        assert (
            self._helper_ratio("DBCP", variant="initial")
            < self._helper_ratio("DBCP")
        )

    def _helper_ratio(self, name, **kwargs):
        model = CactiModel()
        mechanism = create(name, **kwargs)
        build_machine(mechanism=mechanism)
        return model.cost_ratio(mechanism)


class TestPowerModel:
    def test_energy_grows_with_size_and_ports(self):
        assert access_energy_nj(1 << 20) > access_energy_nj(1 << 10)
        assert access_energy_nj(1 << 10, ports=2) > access_energy_nj(1 << 10)

    def test_power_ratio_baseline_is_one(self):
        result = run_benchmark("swim", BASELINE, n_instructions=4000)
        assert PowerModel().power_ratio(None, result) == pytest.approx(1.0)

    def _power_ratio(self, name, benchmark="swim"):
        model = PowerModel()
        mechanism = create(name)
        result = run_benchmark(benchmark, name, n_instructions=6000)
        rebuilt = create(name)
        build_machine(mechanism=rebuilt)
        rebuilt.st_table_accesses.value = result.mechanism_table_accesses
        return model.power_ratio(rebuilt, result)

    def test_ghb_burns_more_power_than_sp(self):
        """The paper's headline power finding: GHB's repeated table walks
        and 4-deep bursts outweigh its tiny tables; SP's one lookup per
        access keeps it efficient."""
        assert self._power_ratio("GHB") > self._power_ratio("SP")

    def test_markov_power_exceeds_tp(self):
        assert self._power_ratio("Markov", "gzip") > self._power_ratio(
            "TP", "gzip"
        )

    def test_power_ratios_are_sane(self):
        for name in ("TP", "SP", "VC"):
            ratio = self._power_ratio(name)
            assert 1.0 <= ratio < 3.0
