"""Tests for the simulation front door (run_benchmark / run_trace)."""

import pytest

from repro.core.config import baseline_config
from repro.core.simulation import (
    RunResult,
    build_machine,
    run_benchmark,
    run_trace,
)
from repro.isa.instr import make_load
from repro.mechanisms.registry import create


def test_run_benchmark_end_to_end():
    result = run_benchmark("swim", "Base", n_instructions=3000)
    assert result.benchmark == "swim"
    assert result.mechanism == "Base"
    assert result.instructions == 2400  # 20% warm-up excluded
    assert 0 < result.ipc < 8
    assert 0 <= result.l1_miss_rate <= 1
    assert result.stats  # detailed stats attached


def test_run_benchmark_with_mechanism_kwargs():
    result = run_benchmark(
        "art", "TCP", n_instructions=2000,
        mechanism_kwargs={"queue_size": 1},
    )
    assert result.mechanism == "TCP"


def test_trace_window_simulates_a_slice():
    full = run_benchmark("gcc", "Base", n_instructions=4000)
    sliced = run_benchmark("gcc", "Base", n_instructions=4000,
                           trace_window=(1000, 2000))
    assert sliced.instructions == 1600  # 2000 minus warm-up
    assert sliced.cycles != full.cycles


def test_run_trace_custom():
    trace = [make_load(0x400, 0x100000 + i * 8) for i in range(500)]
    result = run_trace(trace, create("TP"), benchmark="unit")
    assert result.benchmark == "unit"
    assert result.mechanism == "TP"


def test_run_trace_no_warmup():
    trace = [make_load(0x400, 0x100000 + i * 8) for i in range(100)]
    result = run_trace(trace, warmup_fraction=0.0)
    assert result.instructions == 100


def test_speedup_over_guards_benchmark_mismatch():
    a = run_benchmark("swim", "Base", n_instructions=1000)
    b = run_benchmark("gcc", "Base", n_instructions=1000)
    with pytest.raises(ValueError):
        a.speedup_over(b)


def test_speedup_over_zero_base():
    zero = RunResult("x", "Base", 0.0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
    other = RunResult("x", "TP", 1.0, 10, 10, 0, 0, 0, 0, 0, 0, 0, 0)
    assert other.speedup_over(zero) == 0.0


def test_build_machine_shares_config():
    config = baseline_config()
    core, hierarchy = build_machine(config)
    assert core.config is config.core
    assert hierarchy.config is config


def test_identical_runs_are_deterministic():
    a = run_benchmark("vpr", "GHB", n_instructions=2500)
    b = run_benchmark("vpr", "GHB", n_instructions=2500)
    assert a.ipc == b.ipc
    assert a.cycles == b.cycles
