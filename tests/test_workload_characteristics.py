"""Measured workload characteristics: do the 26 stand-ins behave in class?

These run the *baseline* machine only (no mechanisms) and check that each
benchmark's measured memory behaviour matches the class its spec claims —
the calibration contract between `repro.workloads.spec2000` and DESIGN.md.
"""

import pytest

from repro.core.simulation import run_benchmark
from repro.workloads.registry import HIGH_SENSITIVITY, LOW_SENSITIVITY

N = 10_000


@pytest.fixture(scope="module")
def baselines():
    wanted = set(LOW_SENSITIVITY) | set(HIGH_SENSITIVITY) | {
        "mcf", "lucas", "gzip", "art", "mesa", "sixtrack",
    }
    return {name: run_benchmark(name, "Base", n_instructions=N)
            for name in wanted}


def test_low_sensitivity_benchmarks_miss_less_than_memory_bound(baselines):
    # At 10^4-instruction traces cold misses dominate every miss rate, so
    # the classes are checked relative to each other, not absolutely.
    worst_low = max(baselines[n].l1_miss_rate for n in LOW_SENSITIVITY)
    assert worst_low < baselines["mcf"].l1_miss_rate / 2
    assert worst_low < baselines["lucas"].l1_miss_rate / 2


def test_high_sensitivity_benchmarks_miss_substantially(baselines):
    for name in HIGH_SENSITIVITY:
        assert baselines[name].l1_miss_rate > 0.05, name


def test_memory_bound_benchmarks_have_low_ipc(baselines):
    cache_friendly_ipc = max(
        baselines[name].ipc for name in ("crafty", "perlbmk", "mesa")
    )
    for name in ("mcf", "lucas"):
        assert baselines[name].ipc < cache_friendly_ipc / 2, name


def test_mcf_loads_are_latency_bound(baselines):
    """Dependence-serialised pointer chasing shows up as load latency."""
    assert baselines["mcf"].avg_load_latency > (
        baselines["crafty"].avg_load_latency * 2
    )


def test_row_hostile_benchmarks_see_higher_dram_latency(baselines):
    """lucas' long strides open a new row nearly every access."""
    assert baselines["lucas"].avg_memory_latency > (
        baselines["sixtrack"].avg_memory_latency
    )


def test_every_baseline_is_deterministic(baselines):
    again = run_benchmark("mcf", "Base", n_instructions=N)
    assert again.ipc == baselines["mcf"].ipc
