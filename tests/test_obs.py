"""The observability subsystem: tracing, metrics, sampling, the ledger.

Covers the tentpole contracts:

* span nesting and Chrome ``trace_event`` export round-trip against the
  schema validator;
* metrics-harvest equivalence — every ``stats_report`` key a run records
  appears in the registry with the same value;
* the executor summary line renders identically through the registry;
* ledger append / selector resolution / diff / corrupt-line recovery;
* the disabled path costs under 2% of a reference run;
* the ``--trace`` CLI produces a valid trace spanning every layer and
  ``python -m repro.obs`` records and diffs ledger entries.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.simulation import run_benchmark
from repro.exec.telemetry import RunRecord, Telemetry
from repro.obs.ledger import (
    Ledger,
    LedgerRecord,
    diff_records,
    make_record,
    render_diff,
)
from repro.obs.metrics import (
    MetricsRegistry,
    derive_metrics,
    executor_summary_line,
    get_default_registry,
    harvest_result,
    reset_default_registry,
)
from repro.obs.tracing import (
    TRACER,
    Tracer,
    disable_tracing,
    enable_tracing,
    validate_trace,
    validate_trace_file,
)

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _quiet_tracer():
    """Every test starts and ends with the global tracer dark and empty."""
    disable_tracing()
    TRACER.clear()
    yield
    disable_tracing()
    TRACER.clear()


def _env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.update(extra)
    return env


# -- tracing core --------------------------------------------------------------

def _fake_clock():
    """A deterministic nanosecond clock advancing 1us per reading."""
    state = {"now": 0}

    def clock():
        state["now"] += 1000
        return state["now"]

    return clock


def test_span_nesting_and_export_roundtrip(tmp_path):
    tracer = Tracer(clock=_fake_clock())
    tracer.start()
    tracer.begin("outer", cat="a", x=1)
    tracer.begin("inner", cat="b")
    tracer.instant("mark", cat="c", k=2)
    tracer.counter("rates", {"ipc": 1.5, "mpki": 20.0})
    tracer.end()
    tracer.end(done=True)
    assert tracer.depth == 0

    path = tmp_path / "trace.json"
    tracer.export(str(path))
    assert validate_trace_file(str(path)) == []

    payload = json.loads(path.read_text("utf-8"))
    events = payload["traceEvents"]
    complete = {e["name"]: e for e in events if e["ph"] == "X"}
    outer, inner = complete["outer"], complete["inner"]
    # Proper nesting: the inner span's interval sits inside the outer's.
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
    # begin args and end args merge onto the completed event.
    assert outer["args"] == {"x": 1, "done": True}
    assert outer["cat"] == "a"
    counter = next(e for e in events if e["ph"] == "C")
    assert counter["args"] == {"ipc": 1.5, "mpki": 20.0}


def test_unmatched_end_is_ignored():
    tracer = Tracer(clock=_fake_clock())
    tracer.start()
    tracer.end()  # nothing open: must not raise, must not record
    assert [e for e in tracer.events if e["ph"] == "X"] == []


def test_stop_closes_open_spans():
    tracer = Tracer(clock=_fake_clock())
    tracer.start()
    tracer.begin("left.open")
    tracer.stop()
    assert tracer.depth == 0
    assert any(e["ph"] == "X" and e["name"] == "left.open"
               for e in tracer.events)
    assert not tracer.enabled


def test_disabled_tracer_records_nothing():
    tracer = Tracer(clock=_fake_clock())
    tracer.begin("never")
    tracer.instant("never")
    tracer.counter("never", {"v": 1.0})
    tracer.end()
    assert len(tracer) == 0


def test_validator_rejects_malformed_events():
    assert validate_trace([]) != []
    assert validate_trace({"traceEvents": "nope"}) != []
    bad = {"traceEvents": [
        {"ph": "Z", "name": "x", "pid": 1, "tid": 0, "ts": 0},
        {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": -1},
        {"ph": "C", "name": "x", "pid": 1, "tid": 0, "ts": 0},
    ]}
    problems = validate_trace(bad)
    assert len(problems) >= 3


def test_traced_run_equals_untraced_run():
    """Observation must never change a result (store identity depends on it)."""
    plain = run_benchmark("swim", "TK", n_instructions=2000)
    enable_tracing()
    traced = run_benchmark("swim", "TK", n_instructions=2000)
    disable_tracing()
    assert traced.ipc == plain.ipc
    assert traced.cycles == plain.cycles
    assert traced.stats == plain.stats
    # ... and the trace actually saw the simulation.
    cats = {e.get("cat") for e in TRACER.events}
    assert {"sim", "cpu", "cache", "kernel"} <= cats


# -- metrics pipeline ----------------------------------------------------------

def test_harvest_matches_stats_report():
    result = run_benchmark("swim", "GHB", n_instructions=2500)
    registry = MetricsRegistry()
    harvest_result(result, registry)
    assert result.stats, "run produced no stats"
    for key, value in result.stats.items():
        series = registry.get(key, benchmark="swim", mechanism="GHB")
        assert series is not None, f"stat {key} not harvested"
        assert series.latest == value, key


def test_derived_rates_are_consistent():
    result = run_benchmark("swim", "GHB", n_instructions=2500)
    derived = derive_metrics(result)
    assert derived["ipc"] == result.ipc
    kilo = result.instructions / 1000.0
    expected_l1 = (result.stats["memory.l1d.read_misses"]
                   + result.stats["memory.l1d.write_misses"]) / kilo
    assert derived["l1_mpki"] == pytest.approx(expected_l1)
    assert 0.0 <= derived["l1_l2_bus_occupancy"] <= 1.0
    assert 0.0 <= derived["memory_bus_occupancy"] <= 1.0
    # The bus counters exist because run_trace finalizes them into stats.
    assert "memory.l1_l2_bus_busy_cycles" in result.stats
    assert "memory.memory_bus_busy_cycles" in result.stats


def test_summary_line_format_is_preserved():
    telemetry = Telemetry()
    telemetry.record(RunRecord("h1", "swim", "GHB", "simulated", 0.25))
    telemetry.record(RunRecord("h2", "swim", "Base", "memo"))
    telemetry.record(RunRecord("h3", "gzip", "Base", "store"))
    telemetry.record_batch(4, 3, 0.5)
    line = telemetry.summary_line()
    assert line == (
        "executor: 4 results, 1 simulated, 3 cache hits "
        "(1 memo, 1 store, 1 deduped), wall 0.50s, avg 0.250s/sim"
    )


def test_summary_line_publishes_to_registry():
    registry = MetricsRegistry()
    telemetry = Telemetry()
    telemetry.record(RunRecord("h1", "swim", "GHB", "simulated", 0.25))
    telemetry.record_batch(1, 1, 0.25)
    executor_summary_line(telemetry, registry)
    assert registry.latest("executor.results") == 1.0
    assert registry.latest("executor.simulated") == 1.0
    assert registry.latest("executor.sim_seconds") == 0.25


def test_interval_sampler_publishes_series():
    reset_default_registry()
    enable_tracing()
    run_benchmark("swim", "GHB", n_instructions=3000)
    disable_tracing()
    registry = get_default_registry()
    series = registry.get("interval.ipc", benchmark="swim", mechanism="GHB")
    assert series is not None
    assert len(series) >= 5, "expected several interval samples"
    assert all(p.x is not None for p in series.points)
    # Counter events landed in the trace too.
    assert any(e["ph"] == "C" and e["name"] == "sim.interval"
               for e in TRACER.events)
    reset_default_registry()


# -- the disabled-path overhead guard ------------------------------------------

def test_disabled_overhead_under_two_percent():
    """Estimated guard cost of a reference run stays under the 2% budget.

    Direct A/B wall-clock comparison of two full runs is far too noisy
    for CI, so this measures the two factors separately: how many guard
    checks a run performs (counted from an enabled run's event total plus
    the per-record sampling test) and what one disabled check costs
    (microbenchmarked in a tight loop, loop overhead included — an
    overestimate).  Their product must stay under 2% of the run's wall.
    """
    n = 4000
    run_benchmark("swim", "TK", n_instructions=n)  # warm the trace cache
    start = time.perf_counter()
    run_benchmark("swim", "TK", n_instructions=n)
    run_wall = time.perf_counter() - start

    TRACER.clear()
    enable_tracing()
    run_benchmark("swim", "TK", n_instructions=n)
    events = len(TRACER)
    disable_tracing()
    TRACER.clear()

    # Each span is one begin + one end guard; instants and counters one
    # each; every trace record pays one sampling comparison.
    guards = 2 * events + n
    reps = 200_000
    start = time.perf_counter()
    for _ in range(reps):
        if TRACER.enabled:
            pass  # pragma: no cover - tracer is disabled here
    per_guard = (time.perf_counter() - start) / reps

    estimated = guards * per_guard
    assert estimated < 0.02 * run_wall, (
        f"estimated disabled-path overhead {estimated * 1e3:.3f}ms "
        f"exceeds 2% of the {run_wall * 1e3:.1f}ms reference run "
        f"({guards} guards at {per_guard * 1e9:.1f}ns)"
    )


# -- the ledger ----------------------------------------------------------------

def _record(label, wall, **kwargs):
    return make_record(label=label, wall_seconds=wall, **kwargs)


def test_ledger_append_and_resolve(tmp_path):
    ledger = Ledger(tmp_path / "BENCH_obs.json")
    ledger.append(_record("smoke", 1.0, instructions=8000))
    ledger.append(_record("bench", 2.0, instructions=8000))
    ledger.append(_record("smoke", 0.9, instructions=8000))
    records, problems = ledger.scan()
    assert problems == []
    assert [r.label for r in records] == ["smoke", "bench", "smoke"]
    assert ledger.resolve("latest").wall_seconds == 0.9
    assert ledger.resolve("prev").label == "bench"
    assert ledger.resolve("0").label == "smoke"
    assert ledger.resolve("-2").label == "bench"
    assert ledger.resolve("smoke").wall_seconds == 0.9
    assert ledger.resolve("smoke@-2").wall_seconds == 1.0
    with pytest.raises(LookupError):
        ledger.resolve("nonesuch")


def test_ledger_records_carry_host_and_rss(tmp_path):
    ledger = Ledger(tmp_path / "BENCH_obs.json")
    ledger.append(_record("smoke", 0.5, instructions=8000))
    record = ledger.resolve("latest")
    assert record.peak_rss_kb > 0
    assert record.events_per_second == pytest.approx(8000 / 0.5)
    assert set(record.host) >= {"platform", "python", "machine", "cpus", "node"}
    assert record.timestamp  # ISO stamp applied


def test_ledger_skips_corrupt_lines(tmp_path):
    path = tmp_path / "BENCH_obs.json"
    ledger = Ledger(path)
    ledger.append(_record("a", 1.0))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"label": "truncat\n')      # cut mid-write
        handle.write("[1, 2, 3]\n")               # not an object
    ledger.append(_record("b", 2.0))
    records, problems = ledger.scan()
    assert [r.label for r in records] == ["a", "b"]
    assert len(problems) == 2


def test_ledger_ignores_unknown_fields():
    record = LedgerRecord.from_dict(
        {"label": "x", "wall_seconds": 1.0, "from_the_future": True}
    )
    assert record.label == "x"
    assert record.wall_seconds == 1.0


def test_diff_flags_regressions():
    before = _record("bench", 1.0, instructions=8000)
    after = _record("bench", 1.5, instructions=8000)
    rows = {row.metric: row for row in diff_records(before, after)}
    assert rows["wall_seconds"].regression        # 50% slower
    assert rows["events_per_second"].regression   # and lower throughput
    report = render_diff(before, after)
    assert "<< regression" in report
    assert "wall_seconds" in report


def test_diff_accepts_improvements():
    before = _record("bench", 1.5, instructions=8000)
    after = _record("bench", 1.0, instructions=8000)
    assert not any(r.regression for r in diff_records(before, after))


# -- CLI integration -----------------------------------------------------------

def test_cli_trace_covers_every_layer(tmp_path):
    """--trace writes a valid Chrome trace with spans from each layer."""
    out = tmp_path / "trace.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", "swim", "TK",
         "--n", "1500", "--trace", str(out)],
        capture_output=True, text=True, env=_env(), cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "trace:" in proc.stderr
    assert "executor:" in proc.stderr  # summary printed for single runs too
    assert validate_trace_file(str(out)) == []
    payload = json.loads(out.read_text("utf-8"))
    cats = {e.get("cat") for e in payload["traceEvents"] if e.get("cat")}
    assert {"kernel", "cache", "cpu", "dram", "exec", "sim"} <= cats


def test_cli_obs_record_list_diff_report(tmp_path):
    ledger = str(tmp_path / "BENCH_obs.json")

    def obs(*args):
        return subprocess.run(
            [sys.executable, "-m", "repro.obs", "--ledger", ledger, *args],
            capture_output=True, text=True, env=_env(), cwd=REPO,
        )

    for _ in range(2):
        proc = obs("record", "--benchmark", "swim", "--mechanism", "GHB",
                   "--n", "1500", "--label", "ci-smoke")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "recorded ci-smoke" in proc.stdout

    proc = obs("list")
    assert proc.returncode == 0
    assert proc.stdout.count("ci-smoke") == 2

    proc = obs("diff", "prev", "latest")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ledger diff" in proc.stdout
    assert "wall_seconds" in proc.stdout
    assert "derived" not in proc.stdout or "ipc" in proc.stdout

    proc = obs("report")
    assert proc.returncode == 0
    assert "ci-smoke" in proc.stdout

    # Identical spec hashes: record both runs of the same cell.
    records = Ledger(ledger).read()
    assert records[0].spec_hash == records[1].spec_hash
    assert records[0].metrics.get("ipc") == records[1].metrics.get("ipc")


def test_cli_obs_diff_empty_ledger_errors(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs",
         "--ledger", str(tmp_path / "none.json"), "diff", "prev", "latest"],
        capture_output=True, text=True, env=_env(), cwd=REPO,
    )
    assert proc.returncode == 2
    assert "error:" in proc.stderr


def test_cli_obs_validate_trace(tmp_path):
    good = tmp_path / "good.json"
    tracer = Tracer(clock=_fake_clock())
    tracer.start()
    tracer.begin("x")
    tracer.end()
    tracer.export(str(good))
    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"ph": "Z"}]}')

    def validate(path):
        return subprocess.run(
            [sys.executable, "-m", "repro.obs", "validate-trace", str(path)],
            capture_output=True, text=True, env=_env(), cwd=REPO,
        )

    assert validate(good).returncode == 0
    assert validate(bad).returncode == 1
