"""Shared test configuration.

Registers a deterministic hypothesis profile (no wall-clock deadlines —
simulation-backed properties have variable runtimes) and keeps the
workload-trace cache from accumulating across the whole session.
"""

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True, scope="module")
def _bounded_trace_cache():
    """Traces are memoised per (benchmark, length); drop them per module so
    a long test session's memory stays flat."""
    yield
    from repro.workloads.registry import clear_cache
    clear_cache()
