"""Behavioural tests for the prefetching mechanisms: TP, SP, GHB, TCP."""

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import baseline_config
from repro.core.simulation import run_trace
from repro.isa.instr import Op, make_load, make_op
from repro.mechanisms.registry import create

L2_LINE = 64


def _stream_trace(n, stride, base=0x100000, pc=0x400, filler=3):
    """A strided load stream with realistic ALU filler between loads.

    The filler matters: a pure back-to-back miss stream saturates the
    memory controller, and prefetches (which wait for bus headroom,
    Section 3.4) would rightly never issue — as in a real machine.
    """
    records = []
    for i in range(n):
        records.append(make_load(pc, base + i * stride))
        records.append(make_op(Op.INT_ALU, pc + 8, dep=1))
        for k in range(filler - 1):
            records.append(make_op(Op.INT_ALU, pc + 12 + 4 * k))
    return records


def _hierarchy(mechanism):
    return MemoryHierarchy(baseline_config(), mechanism=mechanism)


class TestTaggedPrefetching:
    def test_covers_a_sequential_stream(self):
        base = run_trace(_stream_trace(3000, 8))
        tp = run_trace(_stream_trace(3000, 8), create("TP"))
        assert tp.ipc > base.ipc * 1.1
        assert tp.useful_prefetches > 100

    def test_tag_bit_keeps_exactly_one_line_ahead(self):
        tp = create("TP")
        h = _hierarchy(tp)
        t = h.load(1, 0x100000, 0)
        t2 = h.load(1, 0x100000 + L2_LINE, t + 200)  # hits the prefetch
        assert h.l2.contains(0x100000 + 2 * L2_LINE) or len(tp.queue)

    def test_useless_on_line_skipping_strides(self):
        # Stride 256 never touches the next line: TP only wastes fetches.
        base = run_trace(_stream_trace(1500, 256))
        tp = run_trace(_stream_trace(1500, 256), create("TP"))
        assert tp.useful_prefetches < 20
        assert tp.ipc <= base.ipc * 1.02


class TestStridePrefetching:
    def test_detects_large_strides_tp_cannot(self):
        trace = _stream_trace(900, 256, filler=24)
        base = run_trace(trace)
        sp = run_trace(trace, create("SP"))
        assert sp.ipc > base.ipc * 1.03
        assert sp.useful_prefetches > 50

    def test_two_delta_confirmation_before_prefetching(self):
        sp = create("SP")
        h = _hierarchy(sp)
        t = h.load(0x400, 0x100000, 0)
        t = h.load(0x400, 0x100000 + 4096, t + 50)   # stride learned
        assert sp.st_prefetches.value == 0           # not yet steady
        h.load(0x400, 0x100000 + 8192, t + 50)       # confirmed
        assert sp.st_prefetches.value >= 1

    def test_table_capacity_evicts_old_pcs(self):
        sp = create("SP")
        h = _hierarchy(sp)
        for i in range(600):  # more PCs than the 512-entry table
            h.load(0x1000 + i * 4, 0x100000 + i * 128, i * 10)
        assert len(sp._table) <= sp.PC_ENTRIES

    def test_ignores_pcless_traffic(self):
        sp = create("SP")
        h = _hierarchy(sp)
        h.load(0, 0x100000, 0)
        assert not sp._table


class TestGHB:
    def test_linked_history_detects_strides(self):
        trace = _stream_trace(900, 256, filler=24)
        base = run_trace(trace)
        ghb = run_trace(trace, create("GHB"))
        assert ghb.ipc > base.ipc * 1.05

    def test_degree_four_lookahead(self):
        ghb = create("GHB")
        h = _hierarchy(ghb)
        t = 0
        for i in range(3):
            t = h.load(0x400, 0x100000 + i * 4096, t + 100)
        # After three strided misses GHB emits up to DEGREE prefetches.
        assert ghb.st_prefetches.value >= 2

    def test_table_walks_are_counted_for_power(self):
        trace = _stream_trace(1200, 4096)
        result = run_trace(trace, create("GHB"))
        # Each miss walks IT+GHB repeatedly: activity far exceeds misses.
        assert result.mechanism_table_accesses > result.stats[
            "memory.l2.read_misses"
        ]

    def test_no_predictions_on_random_traffic(self):
        import random
        rng = random.Random(3)
        trace = [make_load(0x400, 0x100000 + rng.randrange(1 << 16) * 64)
                 for _ in range(800)]
        result = run_trace(trace, create("GHB"))
        assert result.prefetches_issued < 40


class TestTCP:
    def _set_loop_trace(self, laps=8, tags=5, pc=0x400):
        """Misses cycling through `tags` different tags of one L2 set."""
        records = []
        for _ in range(laps):
            for tag in range(tags):
                # Same L2 set (bits 6..17), different tags.
                addr = 0x10000000 + tag * (1 << 19)
                records.append(make_load(pc, addr))
                # Interleave L1-set-conflicting filler so L1 never hits.
                records.append(make_load(pc + 4, 0x20000000 + tag * (32 << 10)))
        return records

    def test_learns_recurring_tag_sequences(self):
        trace = self._set_loop_trace(laps=10)
        tcp = create("TCP")
        run_trace(trace, tcp)
        assert tcp.st_predictions.value > 0

    def test_queue_size_variants(self):
        assert create("TCP", queue_size=1).queue.capacity == 1
        assert create("TCP").queue.capacity == 128

    def test_confidence_blocks_first_sighting_predictions(self):
        tcp = create("TCP")
        h = _hierarchy(tcp)
        t = 0
        for tag in range(3):  # single pass: patterns seen once only
            t = h.load(0x400, 0x10000000 + tag * (1 << 19), t + 200)
        assert tcp.st_predictions.value == 0
