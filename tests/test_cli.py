"""Tests for the ``python -m repro`` command-line front end."""

import pytest

from repro.__main__ import EXHIBITS, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "swim" in out and "GHB" in out and "fig4" in out


def test_run_single_simulation(capsys):
    assert main(["run", "swim", "TP", "--n", "2000"]) == 0
    out = capsys.readouterr().out
    assert "speedup=" in out and "ipc=" in out


def test_exhibit_table5(capsys):
    assert main(["table5"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out


def test_exhibit_with_subset(capsys):
    assert main(["fig6", "--n", "2500", "--benchmarks", "swim,gzip,art"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out and "swim" in out


def test_run_requires_benchmark():
    with pytest.raises(SystemExit):
        main(["run"])


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_all_exhibits_registered():
    assert set(EXHIBITS) == {
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "fig9", "fig10", "fig11",
        "table1", "table2", "table3", "table4", "table5", "table6", "table7",
        "matrix",
    }


def test_static_table_exhibits(capsys):
    for name in ("table1", "table2", "table3", "table4"):
        assert main([name]) == 0
    out = capsys.readouterr().out
    assert "128-RUU" in out and "markov_table" in out
