"""Tests for the ``python -m repro`` command-line front end."""

import json

import pytest

from repro.__main__ import EXHIBITS, main
from repro.exec import reset_default_executor


@pytest.fixture(autouse=True)
def _fresh_default_executor():
    """The CLI installs its executor as the process default; drop it so
    other test modules keep their own memoisation lifecycle."""
    yield
    reset_default_executor()


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "swim" in out and "GHB" in out and "fig4" in out


def test_run_single_simulation(capsys):
    assert main(["run", "swim", "TP", "--n", "2000", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "speedup=" in out and "ipc=" in out


def test_exhibit_table5(capsys):
    assert main(["table5", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out


def test_exhibit_with_subset(capsys):
    assert main(["fig6", "--n", "2500", "--benchmarks", "swim,gzip,art",
                 "--no-cache"]) == 0
    captured = capsys.readouterr()
    assert "Figure 6" in captured.out and "swim" in captured.out
    # Telemetry goes to stderr so stdout is identical whatever --jobs is.
    assert "executor:" in captured.err
    assert "executor:" not in captured.out


def test_cache_dir_flag_populates_store(tmp_path, capsys):
    cache = tmp_path / "store"
    assert main(["run", "swim", "TP", "--n", "2000",
                 "--cache-dir", str(cache)]) == 0
    first = capsys.readouterr().out
    entries = sorted(cache.glob("[0-9a-f][0-9a-f]/*.json"))
    assert len(entries) == 2  # Base + TP
    payload = json.loads(entries[0].read_text())
    assert payload["spec"]["benchmark"] == "swim"
    # A second invocation answers fully from the store: same stdout.
    assert main(["run", "swim", "TP", "--n", "2000",
                 "--cache-dir", str(cache)]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_jobs_flag_matches_serial_output(tmp_path, capsys):
    argv = ["fig10", "--n", "2000", "--benchmarks", "swim,gzip"]
    assert main(argv + ["--jobs", "1", "--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert main(argv + ["--jobs", "2", "--no-cache"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel
    assert "Figure 10" in serial


def test_run_requires_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "--no-cache"])


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["fig99", "--no-cache"])


def test_all_exhibits_registered():
    assert set(EXHIBITS) == {
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "fig9", "fig10", "fig11",
        "table1", "table2", "table3", "table4", "table5", "table6", "table7",
        "matrix",
    }


def test_static_table_exhibits(capsys):
    for name in ("table1", "table2", "table3", "table4"):
        assert main([name, "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "128-RUU" in out and "markov_table" in out
