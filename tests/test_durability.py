"""Durable sweeps: write-ahead journal, resume, signals, store integrity.

The convergence arguments these tests rely on are deterministic by
construction: fault decisions are pure functions of (seed, kind, key,
sequence), the kill-orchestrator fault fires only *after* a spec was
absorbed (stored + journaled), and journal replay is last-record-wins —
so the subprocess chaos loops here provably terminate and the resumed
output is asserted byte-identical, not merely "close".
"""

import dataclasses
import glob
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exec import (
    Executor,
    FailedRun,
    FaultPlan,
    ResultStore,
    RetryPolicy,
    RunSpec,
    ShutdownManager,
    SweepInterrupted,
    SweepJournal,
    read_state,
    scan_journals,
    sweep_identity,
)
from repro.exec.faults import maybe_corrupt_journal_line
from repro.exec.journal import journal_path
from repro.exec.store import STORE_VERSION, result_checksum
from repro.exec.telemetry import SOURCE_JOURNAL, RunRecord, Telemetry
from repro.obs.ledger import Ledger, make_record
from repro.obs.metrics import MetricsRegistry, executor_summary_line

REPO = Path(__file__).resolve().parent.parent

N = 2000
GRID_BENCHMARKS = ("swim", "gzip")
GRID_MECHANISMS = ("Base", "TP")

#: Lenient, no-sleep policy shared by the in-process resume tests.
_LENIENT = dict(retries=0, strict=False, backoff_base=0.0)


def _grid_specs():
    return [
        RunSpec(benchmark, mechanism, n_instructions=N)
        for mechanism in GRID_MECHANISMS
        for benchmark in GRID_BENCHMARKS
    ]


def _as_dicts(results):
    return [dataclasses.asdict(r) for r in results]


def _executor(store, **kwargs):
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("journal_dir", store.journal_dir)
    return Executor(store=store, **kwargs)


# -- sweep identity ------------------------------------------------------------

def test_sweep_identity_is_stable_and_sensitive():
    policy = RetryPolicy()
    base = sweep_identity(["h1", "h2"], policy)
    assert base == sweep_identity(["h1", "h2"], policy)
    assert base != sweep_identity(["h2", "h1"], policy)      # order matters
    assert base != sweep_identity(["h1", "h2", "h2"], policy)  # shape matters
    # The policy gates replay: failures recorded under one retry budget
    # must not be served to a run with a different one.
    assert base != sweep_identity(["h1", "h2"], RetryPolicy(retries=3))


def test_journal_path_is_stable(tmp_path):
    sweep = sweep_identity(["h1"], RetryPolicy())
    assert journal_path(tmp_path, sweep) == journal_path(tmp_path, sweep)
    assert journal_path(tmp_path, sweep).suffix == ".jsonl"


# -- the journal file ----------------------------------------------------------

def test_journal_round_trips_lifecycle(tmp_path):
    path = tmp_path / "sweep.jsonl"
    journal = SweepJournal(path, "abc")
    journal.start(2, 3, RetryPolicy())
    journal.planned("h1", "swim", "Base")
    journal.planned("h2", "gzip", "TP")
    journal.dispatched("h1", 1)
    journal.done("h1", "swim", "Base", "simulated", 0.25)
    failure = FailedRun(spec_hash="h2", benchmark="gzip", mechanism="TP",
                        attempts=2, error="boom", kind="error")
    journal.failed(failure)
    journal.complete(2)

    state = read_state(path)
    assert state is not None
    assert state.sweep_id == "abc"
    assert set(state.done) == {"h1"}
    assert state.done["h1"]["source"] == "simulated"
    assert state.failures == {"h2": failure}
    assert state.complete
    assert state.corrupt_lines == 0
    assert state.resolved == 2
    # Every line is one parseable record with the version stamp.
    for line in path.read_text().splitlines():
        assert json.loads(line)["v"] == 1


def test_read_state_missing_file_is_none(tmp_path):
    assert read_state(tmp_path / "absent.jsonl") is None


def test_journal_reads_tolerate_corrupt_lines(tmp_path):
    path = tmp_path / "sweep.jsonl"
    journal = SweepJournal(path, "abc")
    journal.done("h1", "swim", "Base", "simulated")
    with open(path, "a") as handle:   # a torn append, as a crash leaves it
        handle.write('{"kind": "done", "spec": "h2", "trunc\n')
    journal.done("h3", "art", "TP", "simulated")

    state = read_state(path)
    assert set(state.done) == {"h1", "h3"}   # the torn record costs itself only
    assert state.corrupt_lines == 1
    assert state.lines == 3                  # corrupt lines still count (seq)


def test_journal_replay_is_last_record_wins(tmp_path):
    path = tmp_path / "sweep.jsonl"
    journal = SweepJournal(path, "abc")
    failure = FailedRun(spec_hash="h1", benchmark="swim", mechanism="Base",
                        attempts=1, error="boom")
    journal.failed(failure)
    journal.done("h1", "swim", "Base", "simulated")  # --retry-failed succeeded
    state = read_state(path)
    assert set(state.done) == {"h1"} and not state.failures

    journal.failed(failure)                          # ...and the reverse
    state = read_state(path)
    assert set(state.failures) == {"h1"} and not state.done


def test_timeout_failures_keep_their_kind_through_replay(tmp_path):
    path = tmp_path / "sweep.jsonl"
    journal = SweepJournal(path, "abc")
    failure = FailedRun(spec_hash="h1", benchmark="swim", mechanism="Base",
                        attempts=3, error="hung", kind="timeout")
    journal.failed(failure)
    assert json.loads(path.read_text())["kind"] == "timeout"
    assert read_state(path).failures["h1"].kind == "timeout"


def test_corrupt_journal_fault_tears_the_tail_only(tmp_path):
    path = tmp_path / "sweep.jsonl"
    plan = FaultPlan(corrupt_journal=1.0)
    journal = SweepJournal(path, "abc", plan=plan)
    journal.done("h1", "swim", "Base", "simulated")
    journal.done("h2", "gzip", "TP", "simulated")
    state = read_state(path)
    # Every append was torn, every tear cost exactly its own record.
    assert state.corrupt_lines == 2 and not state.done
    assert maybe_corrupt_journal_line(None, path, "k", 1, 10) is False

    # The sequence number continues across resumes, so the same record
    # re-appended later lands on a fresh schedule slot: with a seeded
    # half-rate plan the decision differs by sequence, not by content.
    half = FaultPlan(corrupt_journal=0.5, seed=3)
    decisions = {seq: half.decide("corrupt-journal", "done:h1", seq)
                 for seq in range(1, 40)}
    assert len(set(decisions.values())) == 2


# -- executor integration: journal + resume ------------------------------------

def test_multi_spec_batches_journal_and_resume_serves(tmp_path, capsys):
    store = ResultStore(tmp_path / "cache")
    specs = _grid_specs()
    first = _executor(store)
    originals = first.run(specs)
    assert first.telemetry.simulated == len(specs)

    ((path, state),) = scan_journals(store.journal_dir)
    assert state.complete and set(state.done) == {
        s.content_hash for s in specs
    }

    resumed = _executor(store, resume=True)
    results = resumed.run(specs)
    assert resumed.telemetry.journal_served == len(specs)
    assert resumed.telemetry.simulated == 0
    assert resumed.telemetry.store_hits == 0
    assert _as_dicts(results) == _as_dicts(originals)   # bit-identical
    assert all(r.source == SOURCE_JOURNAL
               for r in resumed.telemetry.records)
    assert "journal-served" in resumed.telemetry.summary_line()


def test_single_spec_batches_do_not_journal(tmp_path):
    store = ResultStore(tmp_path / "cache")
    _executor(store).run([RunSpec("swim", n_instructions=N)])
    assert scan_journals(store.journal_dir) == []


def test_journaling_off_without_a_journal_dir(tmp_path):
    store = ResultStore(tmp_path / "cache")
    executor = Executor(jobs=1, store=store)   # library default: no journal
    executor.run(_grid_specs())
    assert not store.journal_dir.exists()


def test_fresh_run_overwrites_incomplete_journal_with_a_hint(tmp_path, capsys):
    store = ResultStore(tmp_path / "cache")
    specs = _grid_specs()
    _executor(store).run(specs)
    ((path, _),) = scan_journals(store.journal_dir)
    lines = [l for l in path.read_text().splitlines()
             if "sweep-complete" not in l]
    path.write_text("\n".join(lines) + "\n")

    fresh = _executor(store)   # no --resume
    fresh.run(specs)
    err = capsys.readouterr().err
    assert "pass --resume" in err
    assert fresh.telemetry.journal_served == 0
    assert fresh.telemetry.store_hits == len(specs)
    assert read_state(path).complete   # the overwritten journal finished


def test_resume_with_missing_store_entry_resimulates(tmp_path):
    store = ResultStore(tmp_path / "cache")
    specs = _grid_specs()
    first = _executor(store)
    originals = first.run(specs)
    victim = specs[0]
    store.path_for(victim).unlink()   # the journal promises, the store rotted

    resumed = _executor(store, resume=True)
    results = resumed.run(specs)
    assert resumed.telemetry.journal_served == len(specs) - 1
    assert resumed.telemetry.simulated == 1
    assert _as_dicts(results) == _as_dicts(originals)


def test_pool_runs_journal_and_resume_identically(tmp_path):
    store = ResultStore(tmp_path / "cache")
    specs = _grid_specs()
    first = _executor(store, jobs=2)
    originals = first.run(specs)
    resumed = _executor(store, jobs=2, resume=True)
    results = resumed.run(specs)
    assert resumed.telemetry.journal_served == len(specs)
    assert _as_dicts(results) == _as_dicts(originals)


def test_corrupt_journal_chaos_degrades_to_store_hits(tmp_path):
    store = ResultStore(tmp_path / "cache")
    specs = _grid_specs()
    chaotic = _executor(store, faults=FaultPlan(corrupt_journal=1.0))
    originals = chaotic.run(specs)    # journal useless, store intact

    resumed = _executor(store, resume=True)
    results = resumed.run(specs)
    assert resumed.telemetry.journal_served == 0
    assert resumed.telemetry.store_hits == len(specs)
    assert _as_dicts(results) == _as_dicts(originals)


# -- persisted failures and --retry-failed -------------------------------------

def test_journaled_failures_are_served_not_rerun(tmp_path, capsys):
    store = ResultStore(tmp_path / "cache")
    specs = _grid_specs()
    policy = RetryPolicy(**_LENIENT)
    crashed = _executor(store, policy=policy, faults=FaultPlan(crash=1.0))
    holes = crashed.run(specs)
    assert all(isinstance(r, FailedRun) for r in holes)

    served = _executor(store, policy=policy, resume=True)   # faults gone
    results = served.run(specs)
    assert served.telemetry.journal_served == len(specs)
    assert served.telemetry.simulated == 0      # exhausted specs NOT re-run
    assert results == holes

    retried = _executor(store, policy=policy, resume=True, retry_failed=True)
    recovered = retried.run(specs)
    assert retried.telemetry.simulated == len(specs)
    assert not any(isinstance(r, FailedRun) for r in recovered)

    # Last-record-wins: the next resume serves the recovered results.
    again = _executor(store, policy=policy, resume=True)
    assert not any(isinstance(r, FailedRun) for r in again.run(specs))
    assert again.telemetry.journal_served == len(specs)


def test_strict_resume_reruns_journaled_failures(tmp_path, capsys):
    store = ResultStore(tmp_path / "cache")
    specs = _grid_specs()
    lenient = RetryPolicy(**_LENIENT)
    _executor(store, policy=lenient, faults=FaultPlan(crash=1.0)).run(specs)

    # A strict run must never serve a hole as an answer: re-run them.
    # (Different policy -> different sweep identity -> fresh journal.)
    strict = _executor(store, policy=RetryPolicy(strict=True), resume=True)
    results = strict.run(specs)
    assert strict.telemetry.simulated == len(specs)
    assert not any(isinstance(r, FailedRun) for r in results)


# -- graceful shutdown ---------------------------------------------------------

def test_shutdown_manager_request_and_reset():
    manager = ShutdownManager(grace=1.0)
    assert manager.requested is None and not manager.installed
    manager._handle(signal.SIGTERM, None)
    assert manager.requested == signal.SIGTERM
    assert manager.exit_code() == 143
    with pytest.raises(SweepInterrupted) as excinfo:
        manager.interrupt_if_requested()
    assert excinfo.value.signum == signal.SIGTERM
    assert excinfo.value.exit_code == 143
    manager.reset()
    assert manager.requested is None
    manager.interrupt_if_requested()   # no-op after reset


def test_shutdown_manager_install_restores_handlers():
    manager = ShutdownManager()
    before = signal.getsignal(signal.SIGTERM)
    manager.install((signal.SIGTERM,))
    assert manager.installed
    assert signal.getsignal(signal.SIGTERM) == manager._handle
    manager.uninstall()
    assert signal.getsignal(signal.SIGTERM) == before
    assert not manager.installed


def test_sweep_interrupted_is_base_exception():
    # Lenient result handling catches Exception; the interrupt must
    # never be absorbable on the way out of a batch.
    assert not issubclass(SweepInterrupted, Exception)
    assert issubclass(SweepInterrupted, BaseException)
    assert SweepInterrupted(signal.SIGINT).exit_code == 130


def test_requested_shutdown_stops_dispatch_and_journals(tmp_path):
    store = ResultStore(tmp_path / "cache")
    specs = _grid_specs()
    manager = ShutdownManager(grace=0.0)
    manager._handle(signal.SIGINT, None)   # as if Ctrl-C already arrived
    executor = _executor(store, shutdown=manager)
    with pytest.raises(SweepInterrupted) as excinfo:
        executor.run(specs)
    assert excinfo.value.exit_code == 130
    assert executor.telemetry.simulated == 0   # stopped before dispatching

    ((path, state),) = scan_journals(store.journal_dir)
    assert state.interrupts == [signal.SIGINT]
    assert not state.complete

    manager.reset()
    resumed = _executor(store, resume=True, shutdown=manager)
    results = resumed.run(specs)
    assert not any(isinstance(r, FailedRun) for r in results)
    assert read_state(path).complete


# -- store integrity -----------------------------------------------------------

def _tamper_result(path):
    """Flip a result value while keeping the JSON perfectly parseable."""
    payload = json.loads(path.read_text())
    payload["result"]["ipc"] = payload["result"]["ipc"] + 1.0
    path.write_text(json.dumps(payload, sort_keys=True, indent=1))


def test_checksum_catches_parseable_bit_rot(tmp_path, capsys):
    store = ResultStore(tmp_path / "cache")
    spec = RunSpec("swim", n_instructions=N)
    (original,) = Executor(jobs=1, store=store).run([spec])
    _tamper_result(store.path_for(spec))

    assert store.get(spec) is None
    assert store.corrupt_reads == 1
    assert "checksum mismatch" in capsys.readouterr().err

    # The executor re-simulates and heals the entry.
    (again,) = Executor(jobs=1, store=store).run([spec])
    assert dataclasses.asdict(again) == dataclasses.asdict(original)
    assert store.get(spec) is not None


def test_v2_entries_read_without_checksum(tmp_path):
    store = ResultStore(tmp_path / "cache")
    spec = RunSpec("swim", n_instructions=N)
    (original,) = Executor(jobs=1, store=store).run([spec])
    path = store.path_for(spec)
    payload = json.loads(path.read_text())
    assert payload["version"] == STORE_VERSION
    assert payload["checksum"] == result_checksum(payload["result"])

    # Rewrite as a warm pre-checksum cache entry: still a hit.
    payload["version"] = 2
    del payload["checksum"]
    path.write_text(json.dumps(payload, sort_keys=True, indent=1))
    assert store.get(spec) is not None
    assert store.corrupt_reads == 0
    # ...but a v3 entry without its checksum is defective.
    payload["version"] = STORE_VERSION
    path.write_text(json.dumps(payload, sort_keys=True, indent=1))
    assert store.get(spec) is None
    assert store.corrupt_reads == 1


def test_fsck_detects_and_prunes(tmp_path, capsys):
    store = ResultStore(tmp_path / "cache")
    specs = _grid_specs()
    Executor(jobs=1, store=store).run(specs)
    good = store.path_for(specs[0])
    bad = store.path_for(specs[1])
    _tamper_result(bad)
    misfiled = good.with_name("0" * 64 + ".json")
    misfiled.write_text(good.read_text())          # cross-copied entry
    stale = store.root / ".x.json.999999999.tmp"   # dead writer's temp
    stale.write_text("partial")

    report = store.fsck()
    assert not report.clean
    assert report.scanned == len(specs) + 1
    assert report.ok == len(specs) - 1
    problems = dict(report.problems)
    assert "checksum mismatch" in problems[bad.name]
    assert "cross-copied" in problems[misfiled.name]
    assert report.stale_temps == [stale.name]
    assert not report.pruned                        # scan-only by default
    assert bad.exists()

    pruned = store.fsck(prune=True)
    assert sorted(pruned.pruned) == sorted(
        [bad.name, misfiled.name, stale.name]
    )
    assert not bad.exists() and not misfiled.exists() and not stale.exists()
    assert store.fsck().clean
    rendered = pruned.render()
    assert "BAD" in rendered and "pruned" in rendered


def test_fsck_report_describe_is_json_ready(tmp_path):
    report = ResultStore(tmp_path / "empty").fsck()
    assert report.clean
    assert json.loads(json.dumps(report.describe()))["scanned"] == 0


# -- telemetry and ledger plumbing ---------------------------------------------

def test_summary_line_shows_journal_served_only_when_nonzero():
    clean = executor_summary_line(Telemetry(), MetricsRegistry())
    assert "journal" not in clean
    telemetry = Telemetry()
    telemetry.record(RunRecord(spec_hash="h", benchmark="swim",
                               mechanism="Base", source=SOURCE_JOURNAL))
    noisy = executor_summary_line(telemetry, MetricsRegistry())
    assert "1 journal-served" in noisy


def test_ledger_appends_serialise_under_concurrency(tmp_path):
    ledger = Ledger(tmp_path / "ledger.json")
    per_thread, threads = 25, 8

    def worker(i):
        for j in range(per_thread):
            ledger.append(make_record(f"t{i}-{j}", wall_seconds=0.1))

    pool = [threading.Thread(target=worker, args=(i,))
            for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    records, problems = ledger.scan()
    assert problems == []
    assert len(records) == per_thread * threads
    assert len({r.label for r in records}) == per_thread * threads


# -- the CLI under durability chaos --------------------------------------------

def _cli_env(tmp_path, faults=None, cache="cache"):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    # Armed fault plans auto-ledger; keep that out of the repo's ledger.
    env["REPRO_LEDGER"] = str(tmp_path / "ledger.json")
    env["REPRO_CACHE_DIR"] = str(tmp_path / cache)
    if faults:
        env["REPRO_FAULTS"] = faults
    return env


def _run_cli(env, *args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=REPO,
    )


_FIG10_ARGS = ("fig10", "--n", "2000", "--benchmarks", "swim,art",
               "--jobs", "1")

#: Pinned: with seed=7 at rate 0.5 the fig10 sweep's spec hashes trigger
#: at least one injected orchestrator kill, and — because the kill fires
#: only after a spec was absorbed — every resume strictly advances the
#: journal, so the loop converges (observed: 2 resumes).
_KILL_SPEC = "kill-orchestrator:0.5,seed=7"


def test_cli_kill_orchestrator_chaos_converges_bit_identically(tmp_path):
    clean = _run_cli(_cli_env(tmp_path, cache="cache-clean"), *_FIG10_ARGS)
    assert clean.returncode == 0, clean.stderr

    env = _cli_env(tmp_path, faults=_KILL_SPEC, cache="cache-chaos")
    proc = _run_cli(env, *_FIG10_ARGS)
    kills = 0
    while proc.returncode == 75 and kills < 30:
        kills += 1
        assert "injected orchestrator kill" in proc.stderr
        proc = _run_cli(env, *_FIG10_ARGS, "--resume")
    assert proc.returncode == 0, proc.stderr
    assert kills >= 1                       # the chaos actually fired
    assert proc.stdout == clean.stdout      # resumed run is byte-identical
    assert "journal-served" in proc.stderr

    journal_dir = Path(env["REPRO_CACHE_DIR"]) / "journal"
    assert any(state.complete for _, state in scan_journals(journal_dir))


def test_cli_sigint_graceful_shutdown_and_resume(tmp_path):
    env = _cli_env(tmp_path)
    args = [sys.executable, "-m", "repro", "matrix", "--n", "20000",
            "--benchmarks", "swim,gzip", "--jobs", "1"]
    proc = subprocess.Popen(args, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True,
                            env=env, cwd=REPO)
    journal_glob = os.path.join(env["REPRO_CACHE_DIR"], "journal", "*.jsonl")
    deadline = time.time() + 120
    while time.time() < deadline:           # wait for >= 1 journaled done
        if any('"kind": "done"' in Path(p).read_text()
               for p in glob.glob(journal_glob)):
            break
        time.sleep(0.05)
    else:
        proc.kill()
        pytest.fail("sweep never journaled a done record")
    proc.send_signal(signal.SIGINT)
    _out, err = proc.communicate(timeout=120)

    assert proc.returncode == 130           # 128 + SIGINT
    assert "SIGINT received" in err
    assert "rerun with --resume" in err
    ((path, state),) = [
        (Path(p), read_state(p)) for p in glob.glob(journal_glob)
    ]
    assert state.interrupts == [signal.SIGINT]
    assert len(state.done) >= 1             # the flush kept the progress
    assert not state.complete
    served = len(state.done)

    resumed = subprocess.run(args + ["--resume"], capture_output=True,
                             text=True, env=env, cwd=REPO)
    assert resumed.returncode == 0, resumed.stderr
    assert f"{served} journal-served" in resumed.stderr
    assert read_state(path).complete


def test_cli_resume_requires_the_cache(tmp_path):
    proc = _run_cli(_cli_env(tmp_path), "fig10", "--n", "2000",
                    "--benchmarks", "swim", "--resume", "--no-cache")
    assert proc.returncode == 2
    assert "--resume needs the result store" in proc.stderr


def test_fsck_cli_detects_then_prunes(tmp_path):
    env = _cli_env(tmp_path)
    seeded = _run_cli(env, "run", "swim", "TP", "--n", "2000")
    assert seeded.returncode == 0, seeded.stderr
    cache = Path(env["REPRO_CACHE_DIR"])
    victim = sorted(cache.glob("[0-9a-f][0-9a-f]/*.json"))[0]
    _tamper_result(victim)

    def fsck(*extra):
        return subprocess.run(
            [sys.executable, "-m", "repro.exec", "fsck",
             "--cache-dir", str(cache), *extra],
            capture_output=True, text=True, env=env, cwd=REPO,
        )

    dirty = fsck()
    assert dirty.returncode == 1
    assert "checksum mismatch" in dirty.stdout
    assert "re-run with --prune" in dirty.stderr
    assert victim.exists()

    repaired = fsck("--prune")
    assert repaired.returncode == 0, repaired.stdout
    assert not victim.exists()

    clean = fsck()
    assert clean.returncode == 0
    assert "store is clean" in clean.stdout
    # Every fsck invocation journaled its report.
    fsck_log = cache / "journal" / "fsck.jsonl"
    reports = [json.loads(line) for line in
               fsck_log.read_text().splitlines()]
    assert len(reports) == 3
    assert all(r["kind"] == "fsck" for r in reports)
    assert reports[1]["report"]["pruned"] == [victim.name]
