"""Tests for ResultSet, rankings, and the subset-winner search."""

import pytest

from repro.core.results import ResultSet
from repro.core.selection import (
    count_possible_winners,
    find_winning_subset,
    rank_mechanisms,
    ranking_positions,
    ranking_table,
    winners_by_subset_size,
)
from repro.core.sensitivity import benchmark_sensitivity, sensitivity_split
from repro.core.simulation import RunResult


def _result(mechanism, benchmark, ipc):
    return RunResult(
        benchmark=benchmark, mechanism=mechanism, ipc=ipc, cycles=1000,
        instructions=1000, l1_miss_rate=0.1, l2_miss_rate=0.2,
        avg_load_latency=10.0, avg_memory_latency=100.0, memory_accesses=50,
        prefetches_issued=0, useful_prefetches=0,
        mechanism_table_accesses=0,
    )


def _grid(ipc_table):
    """ipc_table: {mechanism: {benchmark: ipc}}; must include 'Base'."""
    results = ResultSet()
    for mechanism, row in ipc_table.items():
        for benchmark, ipc in row.items():
            results.add(_result(mechanism, benchmark, ipc))
    return results


BASIC = _grid({
    "Base": {"a": 1.0, "b": 1.0, "c": 1.0},
    "X": {"a": 1.5, "b": 0.9, "c": 1.0},     # wins a, mean 1.133
    "Y": {"a": 1.0, "b": 1.2, "c": 1.1},     # wins b and c, mean 1.1
})


class TestResultSet:
    def test_speedups(self):
        assert BASIC.speedup("X", "a") == pytest.approx(1.5)
        assert BASIC.mean_speedup("Y") == pytest.approx((1.0 + 1.2 + 1.1) / 3)

    def test_duplicate_rejected(self):
        results = ResultSet()
        results.add(_result("Base", "a", 1.0))
        with pytest.raises(ValueError):
            results.add(_result("Base", "a", 1.1))

    def test_missing_lookup_raises(self):
        with pytest.raises(KeyError):
            BASIC.get("Z", "a")

    def test_subset(self):
        sub = BASIC.subset(["a"])
        assert sub.benchmarks == ["a"]
        assert sub.speedup("X", "a") == pytest.approx(1.5)

    def test_json_round_trip(self):
        text = BASIC.to_json()
        back = ResultSet.from_json(text)
        assert back.mechanisms == BASIC.mechanisms
        assert back.speedup("X", "a") == pytest.approx(1.5)

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            BASIC.mean_speedup("X", [])

    def test_speedup_row(self):
        row = BASIC.speedup_row("Y")
        assert set(row) == {"a", "b", "c"}


class TestRanking:
    def test_rank_order(self):
        ranked = rank_mechanisms(BASIC)
        assert [name for name, _ in ranked] == ["X", "Y", "Base"]

    def test_positions(self):
        positions = ranking_positions(BASIC)
        assert positions["X"] == 1
        assert positions["Base"] == 3

    def test_ranking_depends_on_selection(self):
        positions_b = ranking_positions(BASIC, ["b", "c"])
        assert positions_b["Y"] == 1
        assert positions_b["X"] == 3  # X loses b and ties c

    def test_ranking_table(self):
        table = ranking_table(BASIC, {"all": ["a", "b", "c"], "bc": ["b", "c"]})
        assert table["all"]["X"] == 1
        assert table["bc"]["Y"] == 1


class TestWinnerSearch:
    def test_finds_witness_for_each_winnable_mechanism(self):
        subset = find_winning_subset(BASIC, "X", 1)
        assert subset == ["a"]
        subset = find_winning_subset(BASIC, "Y", 1)
        assert subset in (["b"], ["c"])

    def test_witness_actually_wins(self):
        for mechanism in ("X", "Y"):
            for size in (1, 2, 3):
                subset = find_winning_subset(BASIC, mechanism, size)
                if subset is None:
                    continue
                ranked = rank_mechanisms(BASIC, subset)
                assert ranked[0][0] == mechanism

    def test_hopeless_mechanism_returns_none(self):
        grid = _grid({
            "Base": {"a": 1.0, "b": 1.0},
            "Loser": {"a": 0.5, "b": 0.5},
            "Winner": {"a": 2.0, "b": 2.0},
        })
        assert find_winning_subset(grid, "Loser", 1) is None
        assert find_winning_subset(grid, "Loser", 2) is None

    def test_size_exceeding_benchmarks_raises(self):
        with pytest.raises(ValueError):
            find_winning_subset(BASIC, "X", 99)

    def test_table6_shape(self):
        table = winners_by_subset_size(BASIC)
        assert set(table) == {1, 2, 3}
        counts = count_possible_winners(table)
        assert counts[1] >= 2  # both X and Y can win a 1-benchmark pick
        # The full selection has exactly one winner.
        assert counts[3] >= 1


class TestSensitivity:
    def test_spread(self):
        sensitivity = benchmark_sensitivity(BASIC)
        assert sensitivity["a"] == pytest.approx(0.5)   # 1.5 - 1.0
        assert sensitivity["b"] == pytest.approx(0.3)   # 1.2 - 0.9

    def test_split(self):
        grid = _grid({
            "Base": {b: 1.0 for b in "abcdef"},
            "M": {"a": 2.0, "b": 1.8, "c": 1.5, "d": 1.1, "e": 1.05, "f": 1.0},
        })
        high, low = sensitivity_split(grid, k=2)
        assert high == ["a", "b"]
        assert set(low) == {"e", "f"}

    def test_split_k_too_large(self):
        with pytest.raises(ValueError):
            sensitivity_split(BASIC, k=2)

    def test_needs_non_baseline(self):
        grid = _grid({"Base": {"a": 1.0}})
        with pytest.raises(ValueError):
            benchmark_sensitivity(grid)
