"""Behavioural tests for the correlating mechanisms: Markov, DBCP, TK."""

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import baseline_config
from repro.core.simulation import run_trace
from repro.isa.instr import make_load
from repro.mechanisms.registry import create

L1_SPAN = 32 << 10


def _hierarchy(mechanism):
    return MemoryHierarchy(baseline_config(), mechanism=mechanism)


def _loop_trace(lines, laps, pc=0x400, base=0x10000000, span=256 << 10):
    """A repeating non-arithmetic miss sequence (collides in L1 and L2),
    with ALU filler so the buses have the idle slots prefetches need."""
    import random
    from repro.isa.instr import Op, make_op
    rng = random.Random(9)
    addrs = [base + (i % 32) * 64 + (i // 32) * span for i in range(lines)]
    rng.shuffle(addrs)
    records = []
    for i in range(lines * laps):
        records.append(make_load(pc, addrs[i % lines]))
        records.append(make_op(Op.INT_ALU, pc + 8, dep=1))
        records.append(make_op(Op.INT_ALU, pc + 12))
        records.append(make_op(Op.INT_ALU, pc + 16))
    return records


class TestMarkov:
    def test_learns_miss_successors(self):
        markov = create("Markov")
        h = _hierarchy(markov)
        t = 0
        for lap in range(3):
            for block in (0x100000, 0x200000, 0x300000):
                # Same L1 set collisions force repeated misses.
                t = h.load(1, block + (lap % 1) * 0, t + 200) + 1
                h.l1d.invalidate(block)  # force the next lap to miss
        table = markov._table
        assert table  # successors recorded

    def test_buffer_hits_cover_repeating_sequences(self):
        trace = _loop_trace(lines=96, laps=10)
        base = run_trace(trace)
        markov_mech = create("Markov")
        markov = run_trace(trace, markov_mech)
        assert markov_mech.st_buffer_hits.value > 50
        assert markov.ipc >= base.ipc

    def test_predictions_capped_per_entry(self):
        markov = create("Markov")
        h = _hierarchy(markov)
        t = 0
        # One predecessor followed by many different successors.
        for i in range(1, 8):
            t = h.load(1, 0x100000, t + 100) + 1
            h.l1d.invalidate(0x100000)
            t = h.load(1, 0x100000 + i * L1_SPAN, t + 100) + 1
            h.l1d.invalidate(0x100000 + i * L1_SPAN)
        successors = markov._table.get(h.l1d.block_of(0x100000))
        assert successors is not None
        assert len(successors) <= markov.PREDICTIONS_PER_ENTRY

    def test_prefetches_fill_the_buffer_not_the_cache(self):
        trace = _loop_trace(lines=96, laps=8)
        markov = create("Markov")
        run_trace(trace, markov)
        assert markov.st_buffer_hits.value > 0
        assert len(markov.buffer_blocks()) <= markov.BUFFER_LINES


class TestDBCP:
    def test_signature_correlation_fires_on_recurrence(self):
        trace = _loop_trace(lines=96, laps=10)
        dbcp = create("DBCP")
        run_trace(trace, dbcp)
        assert dbcp.st_corr_hits.value > 0
        assert dbcp.st_predictions.value > 0

    def test_initial_variant_has_the_three_defects(self):
        initial = create("DBCP", variant="initial")
        fixed = create("DBCP")
        assert not initial.prehash and fixed.prehash
        assert not initial.confidence_decay and fixed.confidence_decay
        assert initial.corr_capacity == fixed.corr_capacity // 2

    def test_untagged_initial_table_aliases(self):
        initial = create("DBCP", variant="initial")
        key_a = initial._corr_key(1, 2)
        key_b = initial._corr_key(1 + initial.corr_capacity * 31 * 0 + 0, 2)
        assert isinstance(key_a, int)  # index, not a tagged tuple
        fixed = create("DBCP")
        assert fixed._corr_key(1, 2) == (1, 2)

    def test_rejects_unknown_variant(self):
        import pytest
        with pytest.raises(ValueError):
            create("DBCP", variant="experimental")

    def test_own_frame_evictions_do_not_pollute_history(self):
        trace = _loop_trace(lines=96, laps=10)
        dbcp = create("DBCP")
        run_trace(trace, dbcp)
        # Frame reuse happened without exploding history with short sigs.
        assert len(dbcp._history) <= dbcp.HISTORY_ENTRIES


class TestTimekeeping:
    def test_decay_predicts_death_of_idle_lines(self):
        tk = create("TK")
        h = _hierarchy(tk)
        h.load(1, 0x100000, 0)
        # Advance far beyond the threshold with an unrelated access.
        h.load(1, 0x500000, tk.threshold * 3)
        assert tk.st_dead_predictions.value >= 1

    def test_touch_rearms_the_decay_clock(self):
        tk = create("TK")
        h = _hierarchy(tk)
        t = h.load(1, 0x100000, 0)
        # Touch just before the threshold; the old check must not fire.
        h.load(1, 0x100000, tk.threshold - 100)
        h.load(1, 0x500000, tk.threshold + tk.REFRESH)
        assert tk.st_dead_predictions.value == 0

    def test_correlation_learns_replacements(self):
        tk = create("TK")
        h = _hierarchy(tk)
        t = h.load(1, 0x100000, 0)
        h.load(1, 0x100000 + L1_SPAN, t + 10)  # replaces it, same set
        entry = tk._corr.get(h.l1d.block_of(0x100000))
        assert entry is not None
        assert entry[0] == h.l1d.block_of(0x100000 + L1_SPAN)

    def test_prefetch_reuses_dead_frame(self):
        trace = _loop_trace(lines=96, laps=10)
        tk = create("TK")
        result = run_trace(trace, tk)
        # Whatever fired, pollution-free: evictions tracked via frames.
        assert result.stats["memory.l1d.evictions"] >= 0

    def test_reverse_engineered_variant_uses_refresh_as_threshold(self):
        tk = create("TK", reverse_engineered=True)
        assert tk.threshold == tk.REFRESH
        assert create("TK").threshold == create("TK").THRESHOLD
