"""Tests for the trace-record format and operation metadata."""

from repro.isa.instr import (
    ADDR,
    DEP,
    EXTRA,
    FU_LATENCY,
    FU_POOL,
    MEM_OPS,
    OP,
    PC,
    Op,
    make_branch,
    make_load,
    make_op,
    make_store,
)


def test_field_indices_are_distinct_and_cover_record():
    assert sorted((OP, PC, ADDR, DEP, EXTRA)) == [0, 1, 2, 3, 4]


def test_make_load():
    record = make_load(0x400, 0x1000, dep=3)
    assert record[OP] == Op.LOAD
    assert record[PC] == 0x400
    assert record[ADDR] == 0x1000
    assert record[DEP] == 3
    assert record[EXTRA] == 0


def test_make_store_carries_value():
    record = make_store(0x404, 0x2000, value=42)
    assert record[OP] == Op.STORE
    assert record[EXTRA] == 42


def test_make_branch_mispredict_flag():
    assert make_branch(0x40)[EXTRA] == 0
    assert make_branch(0x40, mispredicted=True)[EXTRA] == 1


def test_make_op_non_memory():
    record = make_op(Op.FP_MUL, 0x10, dep=1)
    assert record[OP] == Op.FP_MUL
    assert record[ADDR] == 0


def test_every_op_has_latency_and_pool():
    for op in Op:
        assert FU_LATENCY[op] >= 1
        assert FU_POOL[op] in ("int_alu", "int_mul", "fp_alu", "fp_mul", "lsu")


def test_memory_ops_share_load_store_units():
    assert FU_POOL[Op.LOAD] == FU_POOL[Op.STORE] == "lsu"
    assert set(MEM_OPS) == {int(Op.LOAD), int(Op.STORE)}


def test_latency_ordering_matches_hardware_intuition():
    assert FU_LATENCY[Op.INT_ALU] <= FU_LATENCY[Op.INT_MUL]
    assert FU_LATENCY[Op.FP_ALU] <= FU_LATENCY[Op.FP_MUL]
