"""simlint static analyzer, the runtime sanitizer, and store atomicity."""

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import all_rules, analyze_paths
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import baseline_config
from repro.core.simulation import RunResult
from repro.exec import ResultStore, RunSpec
from repro.mechanisms.base import Mechanism
from repro.kernel.engine import Event, Simulator
from repro.sanitize import SanitizeError

REPO = Path(__file__).resolve().parent.parent
SRC_TREE = REPO / "src" / "repro"
FIXTURES = REPO / "tests" / "analysis_fixtures"

#: Every known-bad fixture and the single rule it must trigger.
FIXTURE_RULES = {
    "bare_allowlist.py": "SIM001",
    "bad_level.py": "SIM101",
    "bad_hook_name.py": "SIM102",
    "bad_hook_signature.py": "SIM103",
    "raw_queue_push.py": "SIM104",
    "undeclared_structure.py": "SIM105",
    "bad_registry.py": "SIM106",
    "unseeded_rng.py": "SIM201",
    "wall_clock.py": "SIM202",
    "env_read.py": "SIM203",
    "set_iteration.py": "SIM204",
    "mutable_spec.py": "SIM301",
    "hash_omission.py": "SIM302",
    "unhashable_field.py": "SIM303",
    "duplicate_stat.py": "SIM401",
    "duplicate_port.py": "SIM402",
    "unbound_port.py": "SIM403",
    "orphan_stat.py": "SIM501",
    "fstring_span.py": "SIM502",
    "swallowed_exception.py": "SIM601",
    "trapped_interrupt.py": "SIM602",
    "blocking_async.py": "SIM604",
    "unbounded_queue.py": "SIM605",
    "unhoisted_chain.py": "SIM701",
    "loop_allocation.py": "SIM702",
    "per_iteration_frame.py": "SIM703",
    "unhoisted_subscript.py": "SIM704",
    "self_call_in_loop.py": "SIM705",
    "unguarded_state.py": "SIM801",
    "replay_out_of_order.py": "SIM802",
    "stale_constant.py": "SIM803",
    "undeclared_snapshot.py": "SIM901",
    "phantom_snapshot.py": "SIM902",
}


def _lint_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=_lint_env(), cwd=REPO,
    )


# -- the analyzer --------------------------------------------------------------

def test_every_fixture_is_mapped():
    on_disk = {p.name for p in FIXTURES.glob("*.py")}
    assert on_disk == set(FIXTURE_RULES)


@pytest.mark.parametrize("fixture,expected", sorted(FIXTURE_RULES.items()))
def test_fixture_triggers_exactly_its_rule(fixture, expected):
    violations = analyze_paths([FIXTURES / fixture])
    assert violations, f"{fixture} produced no violations"
    assert {v.rule for v in violations} == {expected}


def test_shipped_tree_is_violation_free():
    violations = analyze_paths([SRC_TREE])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_rule_catalog_is_well_formed():
    rules = all_rules()
    assert len({r.rule_id for r in rules}) == len(rules)
    assert set(FIXTURE_RULES.values()) <= (
        {r.rule_id for r in rules} | {"SIM001"}
    )
    for r in rules:
        assert r.doc, f"{r.rule_id} has no doc"


def test_allow_with_reason_suppresses(tmp_path):
    bad = tmp_path / "snippet.py"
    bad.write_text(
        "import os\n"
        'FLAG = os.environ.get("X")  # simlint: allow[SIM203] read once at import\n'
    )
    assert analyze_paths([bad]) == []


def test_allow_on_preceding_line_suppresses(tmp_path):
    bad = tmp_path / "snippet.py"
    bad.write_text(
        "import os\n"
        "# simlint: allow[SIM203] read once at import\n"
        'FLAG = os.environ.get("X")\n'
    )
    assert analyze_paths([bad]) == []


def test_allow_for_other_rule_does_not_suppress(tmp_path):
    bad = tmp_path / "snippet.py"
    bad.write_text(
        "import os\n"
        'FLAG = os.environ.get("X")  # simlint: allow[SIM999] wrong rule\n'
    )
    assert {v.rule for v in analyze_paths([bad])} == {"SIM203"}


def test_bare_allow_is_itself_flagged(tmp_path):
    bad = tmp_path / "snippet.py"
    bad.write_text(
        "import os\n"
        'FLAG = os.environ.get("X")  # simlint: allow[SIM203]\n'
    )
    assert {v.rule for v in analyze_paths([bad])} == {"SIM001"}


def test_full_run_parses_each_file_exactly_once():
    from repro.analysis.core import clear_parse_cache, parse_count

    clear_parse_cache()
    try:
        n_files = len(list(SRC_TREE.rglob("*.py")))
        analyze_paths([SRC_TREE])
        assert parse_count() == n_files
        # A second run over the same (unchanged) tree is served entirely
        # from the parse cache.
        analyze_paths([SRC_TREE])
        assert parse_count() == n_files
    finally:
        clear_parse_cache()


def test_parse_cache_notices_edits(tmp_path):
    from repro.analysis.core import clear_parse_cache, parse_count

    clear_parse_cache()
    try:
        snippet = tmp_path / "snippet.py"
        snippet.write_text("A = 1\n")
        analyze_paths([snippet])
        assert parse_count() == 1
        # Same content, same mtime: cached.
        analyze_paths([snippet])
        assert parse_count() == 1
        snippet.write_text("A = 2  # changed\n")
        os.utime(snippet, ns=(1, 1))  # force a distinct mtime
        analyze_paths([snippet])
        assert parse_count() == 2
    finally:
        clear_parse_cache()


def test_syntax_error_becomes_sim000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    assert {v.rule for v in analyze_paths([bad])} == {"SIM000"}


def test_select_filters_rules():
    violations = analyze_paths(
        [FIXTURES / "unseeded_rng.py"], select=["SIM4"]
    )
    assert violations == []


# -- the CLI -------------------------------------------------------------------

def test_cli_clean_tree_exits_zero():
    proc = _run_cli(str(SRC_TREE))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 violations" in proc.stderr


def test_cli_violations_exit_one():
    proc = _run_cli(str(FIXTURES / "wall_clock.py"))
    assert proc.returncode == 1
    assert "SIM202" in proc.stdout


def test_cli_sarif_format():
    import json

    proc = _run_cli(str(FIXTURES / "wall_clock.py"), "--format", "sarif")
    assert proc.returncode == 1
    report = json.loads(proc.stdout)
    assert report["version"] == "2.1.0"
    run = report["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    results = run["results"]
    assert results, "expected at least one SARIF result"
    for result in results:
        assert result["ruleId"] in rule_ids
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("wall_clock.py")
        assert location["region"]["startLine"] >= 1
    assert any(r["ruleId"] == "SIM202" for r in results)


def test_cli_sarif_clean_tree():
    import json

    proc = _run_cli(str(SRC_TREE), "--format", "sarif")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(proc.stdout)
    assert report["runs"][0]["results"] == []


def test_cli_bad_path_exits_two():
    proc = _run_cli(str(REPO / "no" / "such" / "path.py"))
    assert proc.returncode == 2


def test_cli_default_target_is_the_package():
    proc = _run_cli()
    assert proc.returncode == 0, proc.stdout + proc.stderr


# -- the runtime sanitizer -----------------------------------------------------

def test_sanitizer_rejects_non_integer_event_time(monkeypatch):
    monkeypatch.setattr("repro.kernel.engine.SANITIZE", True)
    sim = Simulator()
    with pytest.raises(SanitizeError):
        sim.schedule(1.5, lambda: None)


def test_sanitizer_detects_broken_monotonicity(monkeypatch):
    monkeypatch.setattr("repro.kernel.engine.SANITIZE", True)
    sim = Simulator()
    sim.run_until(10)
    # Bypass schedule()'s clamp to model a corrupted queue.
    import heapq

    sim._buckets[5] = [Event(5, 0, lambda: None, ())]
    heapq.heappush(sim._times, 5)
    sim._live += 1
    with pytest.raises(SanitizeError):
        sim.run()


def test_sanitizer_rejects_negative_prefetch(monkeypatch):
    monkeypatch.setattr("repro.mechanisms.base.SANITIZE", True)

    class Toy(Mechanism):
        QUEUE_SIZE = 2

    mech = Toy()
    assert mech.emit_prefetch(64, time=3)
    with pytest.raises(SanitizeError):
        mech.emit_prefetch(-64, time=3)


def test_sanitize_verify_passes_on_healthy_hierarchy(monkeypatch):
    monkeypatch.setattr("repro.cache.hierarchy.SANITIZE", True)

    class Toy(Mechanism):
        LEVEL = "l1"
        QUEUE_SIZE = 2

    hier = MemoryHierarchy(baseline_config(), mechanism=Toy())
    hier.sanitize_verify()


def test_sanitize_verify_catches_config_mutation(monkeypatch):
    monkeypatch.setattr("repro.cache.hierarchy.SANITIZE", True)
    hier = MemoryHierarchy(baseline_config())
    object.__setattr__(hier.config, "precise_cache", not hier.config.precise_cache)
    with pytest.raises(SanitizeError):
        hier.sanitize_verify()


def test_sanitize_verify_catches_broken_wiring(monkeypatch):
    monkeypatch.setattr("repro.cache.hierarchy.SANITIZE", True)

    class Toy(Mechanism):
        LEVEL = "l1"

    hier = MemoryHierarchy(baseline_config(), mechanism=Toy())
    hier.l1d.mechanism = None
    with pytest.raises(SanitizeError):
        hier.sanitize_verify()


def test_sanitize_verify_is_noop_when_disarmed(monkeypatch):
    monkeypatch.setattr("repro.cache.hierarchy.SANITIZE", False)
    hier = MemoryHierarchy(baseline_config())
    object.__setattr__(hier.config, "precise_cache", not hier.config.precise_cache)
    hier.sanitize_verify()  # must not raise


def test_sanitized_run_end_to_end():
    env = _lint_env()
    env["REPRO_SANITIZE"] = "1"
    proc = subprocess.run(
        [sys.executable, "-c",
         "from repro.core import run_benchmark;"
         "r = run_benchmark('swim', 'TP', n_instructions=1500);"
         "assert r.cycles > 0"],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


# -- store atomicity -----------------------------------------------------------

def _result(benchmark="swim", mechanism="Base"):
    return RunResult(
        benchmark=benchmark, mechanism=mechanism, ipc=1.0, cycles=10,
        instructions=10, l1_miss_rate=0.0, l2_miss_rate=0.0,
        avg_load_latency=1.0, avg_memory_latency=1.0, memory_accesses=0.0,
        prefetches_issued=0.0, useful_prefetches=0.0,
        mechanism_table_accesses=0.0,
    )


def test_put_leaves_no_temp_files(tmp_path):
    store = ResultStore(tmp_path)
    spec = RunSpec("swim", "Base", n_instructions=500)
    store.put(spec, _result())
    assert list(tmp_path.glob("*.tmp")) == []
    assert list(tmp_path.glob(".*.tmp")) == []
    assert dataclasses.asdict(store.get(spec)) == dataclasses.asdict(_result())


def test_failed_write_preserves_existing_entry(tmp_path, monkeypatch):
    store = ResultStore(tmp_path)
    spec = RunSpec("swim", "Base", n_instructions=500)
    store.put(spec, _result())
    before = store.path_for(spec).read_text("utf-8")

    def explode(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr("repro.exec.store.os.replace", explode)
    with pytest.raises(OSError):
        store.put(spec, _result(mechanism="TP"))
    assert store.path_for(spec).read_text("utf-8") == before
    assert list(tmp_path.glob(".*.tmp")) == []


def test_sweep_removes_dead_writers_temp(tmp_path):
    store = ResultStore(tmp_path)
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    stale = tmp_path / f".deadbeef.json.{proc.pid}.tmp"
    stale.write_text("{}")
    junk = tmp_path / ".deadbeef.json.notapid.tmp"
    junk.write_text("{}")
    mine = tmp_path / f".deadbeef.json.{os.getpid()}.tmp"
    mine.write_text("{}")

    store.put(RunSpec("swim", "Base", n_instructions=500), _result())
    assert not stale.exists(), "dead writer's temp should be swept"
    assert not junk.exists(), "malformed temp should be swept"
    assert mine.exists(), "a live writer's temp must be left alone"


def test_truncated_entry_reads_as_miss(tmp_path):
    store = ResultStore(tmp_path)
    spec = RunSpec("swim", "Base", n_instructions=500)
    path = store.put(spec, _result())
    path.write_text(path.read_text("utf-8")[:40])
    assert store.get(spec) is None
