"""Unit and property tests for the timestamp-algebra resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.resources import Bus, MultiPortResource, PipelinedResource


class TestMultiPortResource:
    def test_same_cycle_grants_up_to_port_count(self):
        ports = MultiPortResource(3)
        assert [ports.acquire(5) for _ in range(4)] == [5, 5, 5, 6]

    def test_later_request_unaffected_by_drained_cycle(self):
        ports = MultiPortResource(1)
        assert ports.acquire(5) == 5
        assert ports.acquire(10) == 10

    def test_future_reservation_does_not_block_earlier_request(self):
        # The regression the ledger exists for: a refill reserving a future
        # cycle must not delay a demand access at an earlier cycle.
        ports = MultiPortResource(1)
        assert ports.acquire(100) == 100
        assert ports.acquire(10) == 10

    def test_spill_chain(self):
        ports = MultiPortResource(1)
        grants = [ports.acquire(0) for _ in range(4)]
        assert grants == [0, 1, 2, 3]

    def test_earliest_grant_does_not_reserve(self):
        ports = MultiPortResource(1)
        ports.acquire(5)
        assert ports.earliest_grant(5) == 6
        assert ports.earliest_grant(5) == 6  # still unreserved

    def test_would_be_free(self):
        ports = MultiPortResource(2)
        ports.acquire(3)
        assert ports.would_be_free(3)
        ports.acquire(3)
        assert not ports.would_be_free(3)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            MultiPortResource(0)
        with pytest.raises(ValueError):
            MultiPortResource(2, hold=2)

    def test_reset(self):
        ports = MultiPortResource(1)
        ports.acquire(0)
        ports.reset()
        assert ports.acquire(0) == 0
        assert ports.grants == 1

    @settings(max_examples=60, deadline=None)
    @given(
        n_ports=st.integers(min_value=1, max_value=4),
        times=st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                       max_size=120),
    )
    def test_never_overgrants_a_cycle(self, n_ports, times):
        """Property: no cycle ever receives more grants than ports."""
        ports = MultiPortResource(n_ports)
        granted = {}
        for t in times:
            grant = ports.acquire(t)
            assert grant >= t
            granted[grant] = granted.get(grant, 0) + 1
        assert max(granted.values()) <= n_ports


class TestPipelinedResource:
    def test_initiation_interval(self):
        pipe = PipelinedResource(2)
        assert [pipe.acquire(0) for _ in range(3)] == [0, 2, 4]

    def test_idle_gap_resets_contention(self):
        pipe = PipelinedResource(1)
        pipe.acquire(0)
        assert pipe.acquire(50) == 50

    def test_stall_delays_subsequent_requests(self):
        pipe = PipelinedResource(1)
        pipe.acquire(0)
        pipe.stall_until(10)
        assert pipe.acquire(1) == 10
        assert pipe.stall_cycles == 9

    def test_stall_in_the_past_is_ignored(self):
        pipe = PipelinedResource(1)
        pipe.acquire(20)
        pipe.stall_until(5)
        assert pipe.stall_cycles == 0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            PipelinedResource(0)


class TestBus:
    def test_transfer_serialisation(self):
        bus = Bus(5)
        assert bus.acquire(0) == (0, 5)
        assert bus.acquire(0) == (5, 10)
        assert bus.acquire(100) == (100, 105)

    def test_idle_detection(self):
        bus = Bus(5)
        bus.acquire(0)
        assert not bus.idle_at(4)
        assert bus.idle_at(5)

    def test_utilisation_accounting(self):
        bus = Bus(3)
        bus.acquire(0)
        bus.acquire(10)
        assert bus.busy_cycles == 6
        assert bus.transfers == 2

    def test_rejects_bad_transfer_time(self):
        with pytest.raises(ValueError):
            Bus(0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                    max_size=60))
    def test_transfers_never_overlap(self, times):
        """Property: granted windows are disjoint for any request order."""
        bus = Bus(4)
        windows = sorted(bus.acquire(t) for t in times)
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert e1 <= s2
