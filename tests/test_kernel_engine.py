"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.kernel.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(7, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_run_until_stops_at_boundary_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(5, fired.append, "early")
    sim.schedule(15, fired.append, "late")
    sim.run_until(10)
    assert fired == ["early"]
    assert sim.now == 10
    sim.run_until(20)
    assert fired == ["early", "late"]
    assert sim.now == 20


def test_event_at_boundary_is_included():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "edge")
    sim.run_until(10)
    assert fired == ["edge"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    keep = sim.schedule(5, fired.append, "keep")
    drop = sim.schedule(5, fired.append, "drop")
    drop.cancel()
    sim.run()
    assert fired == ["keep"]
    assert keep.time == 5


def test_schedule_in_relative_delay():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: sim.schedule_in(5, fired.append, "x"))
    sim.run()
    assert fired == ["x"]
    assert sim.now == 15


def test_schedule_in_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_in(-1, lambda: None)


def test_schedule_in_past_clamps_to_now():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    fired = []
    event = sim.schedule(3, fired.append, "late")
    assert event.time == 10
    sim.run()
    assert fired == ["late"]


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule_in(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 30


def test_peek_time_skips_cancelled_events():
    sim = Simulator()
    first = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    first.cancel()
    assert sim.peek_time() == 9


def test_peek_time_empty_queue():
    assert Simulator().peek_time() is None


def test_reset_clears_queue_and_clock():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    sim.schedule(99, lambda: None)
    sim.reset()
    assert sim.now == 0
    assert sim.pending == 0
    assert sim.peek_time() is None


def test_same_cycle_events_scheduled_during_drain_fire_in_seq_order():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        # Scheduled for the cycle being drained: must fire this sweep,
        # after everything already queued at t=5.
        sim.schedule(5, fired.append, "nested")

    sim.schedule(5, first)
    sim.schedule(5, fired.append, "second")
    sim.run()
    assert fired == ["first", "second", "nested"]
    assert sim.now == 5


def test_reentrant_drain_is_rejected():
    sim = Simulator()

    def naughty():
        sim.run()

    sim.schedule(1, naughty)
    with pytest.raises(RuntimeError, match="reentrant"):
        sim.run()


# -- cancellation compaction ---------------------------------------------------

def test_compaction_triggers_when_cancelled_exceed_live():
    sim = Simulator()
    live = sim.schedule(50, lambda: None)
    doomed = [sim.schedule(10 + i, lambda: None) for i in range(10)]
    assert sim.pending == 11
    for event in doomed:
        event.cancel()
    # Compaction triggers whenever cancelled events outnumber live ones,
    # so at most one cancelled straggler (cancelled after the last sweep,
    # not yet outnumbering the survivors) can remain.
    assert sim._cancelled <= 1
    assert sim.pending <= 2
    assert 50 in sim._times and len(sim._times) <= 2
    assert live.cancelled is False


def test_compaction_preserves_firing_order():
    sim = Simulator()
    fired = []
    keep_a = sim.schedule(5, fired.append, "a")
    drop = [sim.schedule(5, fired.append, f"x{i}") for i in range(6)]
    keep_b = sim.schedule(5, fired.append, "b")
    sim.schedule(7, fired.append, "c")
    for event in drop:
        event.cancel()
    assert sim._cancelled <= 1  # compacted along the way
    sim.run()
    assert fired == ["a", "b", "c"]
    assert keep_a.cancelled is False and keep_b.cancelled is False


def test_compaction_keeps_times_heap_identity():
    # The trace-speculation guards bind the heap list once; compaction
    # must mutate it in place, never replace it.
    sim = Simulator()
    times = sim._times
    doomed = [sim.schedule(10 + i, lambda: None) for i in range(8)]
    for event in doomed:
        event.cancel()
    assert sim._times is times


def test_cancel_during_drain_defers_compaction():
    sim = Simulator()
    fired = []
    doomed = [sim.schedule(20 + i, fired.append, i) for i in range(6)]

    def cancel_all():
        for event in doomed:
            event.cancel()

    sim.schedule(1, cancel_all)
    sim.run()  # must not blow up compacting mid-drain
    assert fired == []
    assert sim.pending == 0


def test_double_cancel_counts_once():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    event = sim.schedule(6, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.pending == 2  # one live + one cancelled, not zero or three
