"""Tests for the execute-driven value checker (the OoOSysC idea)."""

import random

import pytest

from repro.isa.instr import make_load, make_store
from repro.validation import (
    FaultInjector,
    FunctionalHierarchy,
    run_value_check,
)
from repro.workloads.image import MemoryImage
from repro.workloads.registry import build

L1_SPAN = 32 << 10


def _image_with(values):
    image = MemoryImage()
    for addr, value in values.items():
        image.write(addr, value)
    return image


class TestFunctionalHierarchy:
    def test_load_returns_initial_image_value(self):
        image = _image_with({0x1000: 42})
        h = FunctionalHierarchy(image)
        assert h.load(0x1000) == 42

    def test_store_then_load(self):
        h = FunctionalHierarchy(MemoryImage())
        h.store(0x2000, 7)
        assert h.load(0x2000) == 7

    def test_backing_memory_only_updated_by_writeback(self):
        image = _image_with({0x1000: 1})
        h = FunctionalHierarchy(image)
        h.store(0x1000, 99)
        assert h.backing_value(0x1000) == 1   # still in cache, dirty
        h.flush()
        assert h.backing_value(0x1000) == 99

    def test_conflict_eviction_preserves_dirty_data(self):
        h = FunctionalHierarchy(MemoryImage())
        h.store(0x100000, 5)
        # Thrash the direct-mapped L1 set so the dirty line round-trips.
        for i in range(1, 6):
            h.load(0x100000 + i * L1_SPAN)
        assert h.load(0x100000) == 5

    def test_uninitialised_words_match_image_garbage(self):
        image = MemoryImage()
        h = FunctionalHierarchy(image)
        assert h.load(0x5008) == image._uninitialised(0x5008)


class TestValueCheck:
    def test_clean_protocol_has_no_mismatches(self):
        rng = random.Random(11)
        trace = []
        for i in range(3000):
            addr = 0x100000 + rng.randrange(4096) * 8
            if rng.random() < 0.4:
                trace.append(make_store(0x400, addr, rng.randrange(1 << 30)))
            else:
                trace.append(make_load(0x400, addr))
        assert run_value_check(trace, MemoryImage()) == []

    def test_clean_on_real_workloads(self):
        for benchmark in ("gzip", "mcf", "swim"):
            trace, image = build(benchmark, 4000)
            assert run_value_check(trace, image) == [], benchmark

    def test_conflict_heavy_trace_is_clean(self):
        trace = []
        for i in range(2000):
            addr = 0x100000 + (i % 6) * L1_SPAN
            if i % 3 == 0:
                trace.append(make_store(0x400, addr, i))
            else:
                trace.append(make_load(0x400, addr))
        assert run_value_check(trace, MemoryImage()) == []


class TestFaultInjection:
    """The paper's debugging story: seeded protocol bugs must be caught."""

    def _thrash_trace(self, n=4000):
        rng = random.Random(3)
        trace = []
        for i in range(n):
            addr = 0x100000 + (i % 8) * L1_SPAN + rng.randrange(4) * 8
            if rng.random() < 0.5:
                trace.append(make_store(0x400, addr, rng.randrange(1 << 30)))
            else:
                trace.append(make_load(0x400, addr))
        return trace

    def test_dropped_dirty_bit_is_caught(self):
        """The exact bug the paper describes: 'we forgot to properly set
        the dirty bit in some cases; the line was not systematically
        written back, and at the next request the values differed'."""
        mismatches = run_value_check(
            self._thrash_trace(), MemoryImage(),
            fault=FaultInjector(drop_dirty_on_store=1),
        )
        assert mismatches
        assert mismatches[0].expected != mismatches[0].actual

    def test_skipped_writeback_is_caught(self):
        mismatches = run_value_check(
            self._thrash_trace(), MemoryImage(),
            fault=FaultInjector(skip_writeback=1),
        )
        assert mismatches

    def test_corrupted_fill_is_caught(self):
        mismatches = run_value_check(
            self._thrash_trace(), MemoryImage(),
            fault=FaultInjector(corrupt_fill=3),
        )
        assert mismatches

    def test_l2_faults_also_caught(self):
        mismatches = run_value_check(
            self._thrash_trace(8000), MemoryImage(),
            fault=FaultInjector(skip_writeback=1), fault_level="l2",
        )
        # An L2 writeback skip may only surface at final reconciliation.
        assert mismatches

    def test_mismatch_report_is_bounded(self):
        mismatches = run_value_check(
            self._thrash_trace(), MemoryImage(),
            fault=FaultInjector(corrupt_fill=1),
            max_mismatches=4,
        )
        assert len(mismatches) <= 4

    def test_fault_fires_once_then_disarms(self):
        fault = FaultInjector(drop_dirty_on_store=2)
        assert not fault.should_drop_dirty()  # countdown 2 -> 1
        assert fault.should_drop_dirty()      # fires at 1
        assert not fault.should_drop_dirty()  # disarmed
