"""Executor behaviour: ordering, dedupe, parallelism, the store, telemetry."""

import dataclasses
import json

import pytest

from repro.core.config import baseline_config
from repro.exec import Executor, ResultStore, RunSpec
from repro.exec.store import STORE_VERSION

N = 2000
GRID_BENCHMARKS = ("swim", "gzip")
GRID_MECHANISMS = ("Base", "TP")


def _grid_specs():
    return [
        RunSpec(benchmark, mechanism, n_instructions=N)
        for mechanism in GRID_MECHANISMS
        for benchmark in GRID_BENCHMARKS
    ]


def _as_dicts(results):
    return [dataclasses.asdict(r) for r in results]


def test_results_align_with_input_order():
    executor = Executor(jobs=1)
    specs = _grid_specs()
    results = executor.run(specs)
    assert [(r.mechanism, r.benchmark) for r in results] == [
        (s.mechanism, s.benchmark) for s in specs
    ]


def test_duplicates_are_deduplicated():
    executor = Executor(jobs=1)
    spec = RunSpec("swim", "TP", n_instructions=N)
    results = executor.run([spec, spec, RunSpec("swim", "TP", n_instructions=N)])
    assert results[0] is results[1] is results[2]
    assert executor.telemetry.simulated == 1
    assert executor.telemetry.deduped == 2


def test_serial_and_parallel_results_are_byte_identical():
    serial = Executor(jobs=1).run(_grid_specs())
    parallel = Executor(jobs=2).run(_grid_specs())
    assert json.dumps(_as_dicts(serial), sort_keys=True) == \
        json.dumps(_as_dicts(parallel), sort_keys=True)


def test_second_executor_gets_full_store_hits(tmp_path):
    store = ResultStore(tmp_path)
    first = Executor(jobs=1, store=store)
    originals = first.run(_grid_specs())
    assert first.telemetry.simulated == len(_grid_specs())

    second = Executor(jobs=1, store=store)
    replayed = second.run(_grid_specs())
    assert second.telemetry.simulated == 0
    assert second.telemetry.store_hits == len(_grid_specs())
    assert _as_dicts(replayed) == _as_dicts(originals)


def test_memo_answers_repeat_batches_without_touching_store(tmp_path):
    executor = Executor(jobs=1, store=ResultStore(tmp_path))
    executor.run(_grid_specs())
    executor.run(_grid_specs())
    assert executor.telemetry.simulated == len(_grid_specs())
    assert executor.telemetry.memo_hits == len(_grid_specs())


def test_corrupted_and_partial_store_files_are_skipped(tmp_path):
    store = ResultStore(tmp_path)
    specs = _grid_specs()
    Executor(jobs=1, store=store).run(specs)

    # Corrupt one entry, truncate another, version-skew a third.
    paths = [store.path_for(s) for s in specs]
    paths[0].write_text("{not json at all")
    paths[1].write_text(paths[1].read_text()[: len(paths[1].read_text()) // 2])
    good = json.loads(paths[2].read_text())
    good["version"] = STORE_VERSION + 1
    paths[2].write_text(json.dumps(good))

    replay = Executor(jobs=1, store=store)
    results = replay.run(specs)
    assert replay.telemetry.simulated == 3       # the three damaged entries
    assert replay.telemetry.store_hits == 1      # the untouched one
    assert replay.telemetry.store_corrupt == 3   # and they were counted
    assert store.corrupt_reads == 3
    assert [(r.mechanism, r.benchmark) for r in results] == [
        (s.mechanism, s.benchmark) for s in specs
    ]
    # Damaged entries were rewritten with valid payloads.
    for path in paths[:3]:
        payload = json.loads(path.read_text())
        assert payload["version"] == STORE_VERSION


def test_store_rejects_schema_drift(tmp_path):
    store = ResultStore(tmp_path)
    spec = RunSpec("swim", n_instructions=N)
    store.put(spec, Executor(jobs=1).run([spec])[0])
    payload = json.loads(store.path_for(spec).read_text())
    payload["result"]["no_such_field"] = 1.0
    store.path_for(spec).write_text(json.dumps(payload))
    assert store.get(spec) is None


def test_run_sweep_shares_grid_and_baseline():
    executor = Executor(jobs=1)
    grid = executor.run_sweep(benchmarks=GRID_BENCHMARKS,
                              mechanisms=GRID_MECHANISMS,
                              n_instructions=N)
    assert grid.mechanisms == list(GRID_MECHANISMS)
    assert grid.benchmarks == list(GRID_BENCHMARKS)
    again = executor.run_sweep(benchmarks=GRID_BENCHMARKS,
                               mechanisms=GRID_MECHANISMS,
                               n_instructions=N)
    assert again is grid  # memoised by spec-hash tuple
    # The baseline is inserted when missing, reusing the same cells.
    partial = executor.run_sweep(benchmarks=GRID_BENCHMARKS,
                                 mechanisms=("TP",), n_instructions=N)
    assert partial.mechanisms == ["Base", "TP"]
    assert executor.telemetry.simulated == len(_grid_specs())


def test_sweep_distinct_configs_distinct_grids():
    executor = Executor(jobs=1)
    a = executor.run_sweep(benchmarks=("swim",), mechanisms=("Base",),
                           n_instructions=N, config=baseline_config())
    b = executor.run_sweep(
        benchmarks=("swim",), mechanisms=("Base",), n_instructions=N,
        config=baseline_config().with_infinite_mshr(),
    )
    assert a is not b


def test_parallel_sweep_equals_serial_sweep(tmp_path):
    serial = Executor(jobs=1).run_sweep(
        benchmarks=GRID_BENCHMARKS, mechanisms=GRID_MECHANISMS,
        n_instructions=N,
    )
    parallel = Executor(jobs=2).run_sweep(
        benchmarks=GRID_BENCHMARKS, mechanisms=GRID_MECHANISMS,
        n_instructions=N,
    )
    for mechanism in GRID_MECHANISMS:
        for benchmark in GRID_BENCHMARKS:
            s = serial.get(mechanism, benchmark)
            p = parallel.get(mechanism, benchmark)
            assert dataclasses.asdict(s) == dataclasses.asdict(p)


def test_progress_callback_and_summary():
    seen = []
    executor = Executor(jobs=1, progress=lambda done, total, spec:
                        seen.append((done, total, spec.benchmark)))
    executor.run(_grid_specs())
    assert [s[0] for s in seen] == [1, 2, 3, 4]
    assert all(s[1] == 4 for s in seen)
    line = executor.telemetry.summary_line()
    assert "4 results" in line and "4 simulated" in line and "wall" in line


def test_jobs_default_is_cpu_count():
    import os
    assert Executor().jobs == max(1, os.cpu_count() or 1)
    assert Executor(jobs=0).jobs == 1
