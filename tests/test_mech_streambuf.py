"""Behavioural tests for the stream-buffer library extension."""

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import baseline_config
from repro.core.simulation import run_trace
from repro.isa.instr import Op, make_load, make_op
from repro.mechanisms.registry import ALL_MECHANISMS, EXTENSIONS, create

L1_LINE = 32


def _stream_trace(n, stride=L1_LINE, base=0x100000, pc=0x400, filler=7):
    records = []
    for i in range(n):
        records.append(make_load(pc, base + i * stride))
        records.append(make_op(Op.INT_ALU, pc + 8, dep=1))
        for k in range(filler - 1):
            records.append(make_op(Op.INT_ALU, pc + 12 + 4 * k))
    return records


def test_extension_is_registered_but_not_in_the_paper_set():
    assert "SB" in EXTENSIONS
    assert "SB" not in ALL_MECHANISMS
    sb = create("SB")
    assert sb.ACRONYM == "SB"
    assert sb.LEVEL == "l1"


def test_head_hits_cover_a_sequential_stream():
    trace = _stream_trace(800)
    base = run_trace(trace)
    sb = create("SB")
    result = run_trace(trace, sb)
    assert sb.st_head_hits.value > 200
    assert result.ipc > base.ipc * 1.03


def test_allocation_on_unmatched_miss():
    sb = create("SB")
    h = MemoryHierarchy(baseline_config(), mechanism=sb)
    h.load(1, 0x100000, 0)
    assert sb.st_allocations.value == 1


def test_four_streams_track_four_interleaved_sequences():
    sb = create("SB")
    h = MemoryHierarchy(baseline_config(), mechanism=sb)
    bases = [0x100000, 0x900000, 0x1100000, 0x1900000]
    t = 0
    for round_ in range(12):
        for base in bases:
            t = max(t + 50, h.load(1, base + round_ * L1_LINE, t + 50))
    # After warm-up every stream should be producing head hits.
    assert sb.st_head_hits.value > 8
    assert sb.st_allocations.value <= 12  # not constantly reallocating


def test_useless_on_random_traffic():
    import random
    rng = random.Random(5)
    trace = []
    for i in range(600):
        trace.append(make_load(0x400, 0x100000 + rng.randrange(1 << 14) * 32))
        trace.append(make_op(Op.INT_ALU, 0x408))
    sb = create("SB")
    run_trace(trace, sb)
    assert sb.st_head_hits.value < 20


def test_structures_declared():
    sb = create("SB")
    from repro.core.simulation import build_machine
    build_machine(mechanism=sb)
    specs = {s.name for s in sb.structures()}
    assert "sb_buffers" in specs
