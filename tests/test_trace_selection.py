"""Tests for BBV extraction, SimPoint and trace windows."""

import numpy as np
import pytest

from repro.isa.instr import Op, make_load, make_op
from repro.trace.bbv import basic_block_vectors
from repro.trace.sampling import window
from repro.trace.simpoint import pick_simpoint, simpoint_trace
from repro.workloads.registry import build


def _two_phase_trace(n_per_phase=4000):
    """Phase A at PC region 0x1000, phase B at 0x9000."""
    phase_a = [make_op(Op.INT_ALU, 0x1000 + (i % 16) * 4)
               for i in range(n_per_phase)]
    phase_b = [make_load(0x9000 + (i % 16) * 4, 0x100000 + i * 8)
               for i in range(n_per_phase)]
    return phase_a + phase_b


class TestBBV:
    def test_row_per_interval_l1_normalised(self):
        trace = _two_phase_trace(2000)
        matrix, blocks = basic_block_vectors(trace, interval=1000)
        assert matrix.shape[0] == 4
        assert len(blocks) == matrix.shape[1]
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_phases_produce_distinct_vectors(self):
        trace = _two_phase_trace(2000)
        matrix, _ = basic_block_vectors(trace, interval=1000)
        assert np.linalg.norm(matrix[0] - matrix[-1]) > 0.5
        assert np.linalg.norm(matrix[0] - matrix[1]) < 1e-9

    def test_partial_tail_interval_handling(self):
        trace = _two_phase_trace(1000)  # 2000 records
        matrix, _ = basic_block_vectors(trace, interval=1500)
        assert matrix.shape[0] == 1  # 500-record tail dropped (< half)
        matrix, _ = basic_block_vectors(trace, interval=1200)
        assert matrix.shape[0] == 2  # 800-record tail kept

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            basic_block_vectors([], interval=0)


class TestSimPoint:
    def test_picks_the_dominant_phase(self):
        # 75% phase B: the representative interval must be a B interval.
        trace = _two_phase_trace(2000)[:2000] + _two_phase_trace(6000)[6000:]
        result = pick_simpoint(trace, interval=1000)
        start = result.start_instruction
        from repro.isa.instr import PC
        pcs = {r[PC] >> 12 for r in trace[start:start + 1000]}
        assert 9 in pcs  # the 0x9000 region

    def test_cluster_bookkeeping(self):
        trace = _two_phase_trace(3000)
        result = pick_simpoint(trace, interval=1000)
        assert sum(result.cluster_sizes) == len(result.labels) == 6
        assert result.k == len(result.cluster_sizes)
        assert max(result.labels) == result.k - 1

    def test_deterministic(self):
        trace = _two_phase_trace(3000)
        a = pick_simpoint(trace, interval=1000)
        b = pick_simpoint(trace, interval=1000)
        assert a.chosen_interval == b.chosen_interval

    def test_simpoint_trace_length_and_containment(self):
        trace = _two_phase_trace(3000)
        selected = simpoint_trace(trace, length=1500, interval=1000)
        assert len(selected) == 1500
        joined = {id(r) for r in trace}
        assert all(id(r) in joined for r in selected)

    def test_too_short_trace_raises(self):
        with pytest.raises(ValueError):
            pick_simpoint([], interval=100)

    def test_works_on_real_workloads(self):
        trace, _ = build("gcc", 6000)
        result = pick_simpoint(trace, interval=1000)
        assert 0 <= result.start_instruction < 6000


class TestWindow:
    def test_basic_slice(self):
        trace = list(range(100))
        assert window(trace, 10, 5) == [10, 11, 12, 13, 14]

    def test_overrun_shifts_back(self):
        trace = list(range(100))
        assert window(trace, 98, 10) == list(range(90, 100))

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            window(list(range(10)), -1, 5)
        with pytest.raises(ValueError):
            window(list(range(10)), 0, 0)
        with pytest.raises(ValueError):
            window(list(range(10)), 0, 11)
