"""RunSpec identity: the content hash is the run, labels don't exist."""

import dataclasses
import pickle

import pytest

from repro.core.config import baseline_config
from repro.core.simulation import run_benchmark
from repro.exec import Executor, RunSpec

N = 2000


def test_hash_is_stable_and_kwarg_order_insensitive():
    a = RunSpec("swim", "TCP", n_instructions=N,
                mechanism_kwargs={"queue_size": 1, "reverse_engineered": False})
    b = RunSpec("swim", "TCP", n_instructions=N,
                mechanism_kwargs={"reverse_engineered": False, "queue_size": 1})
    assert a.content_hash == b.content_hash
    assert a == b


def test_hash_covers_every_identity_field():
    base = RunSpec("swim", "TP", n_instructions=N)
    variants = [
        RunSpec("gzip", "TP", n_instructions=N),
        RunSpec("swim", "SP", n_instructions=N),
        RunSpec("swim", "TP", n_instructions=N + 1),
        RunSpec("swim", "TP", n_instructions=N,
                config=baseline_config().with_infinite_mshr()),
        RunSpec("swim", "TP", n_instructions=N,
                mechanism_kwargs={"degree": 2}),
        RunSpec("swim", "TP", n_instructions=N, trace_length=2 * N),
        RunSpec("swim", "TP", n_instructions=N, trace_length=2 * N,
                selection=("window", 100)),
        RunSpec("swim", "TP", n_instructions=N, warmup_fraction=0.1),
    ]
    hashes = {base.content_hash} | {v.content_hash for v in variants}
    assert len(hashes) == len(variants) + 1  # all distinct


def test_distinct_configs_never_share_results():
    """Regression for the label-keyed sweep cache: two different machine
    configurations submitted identically (same benchmark, mechanism, n —
    the old ``label`` collision) must resolve to distinct results."""
    executor = Executor(jobs=1)
    precise = RunSpec("swim", config=baseline_config(), n_instructions=N)
    imprecise = RunSpec("swim",
                        config=baseline_config().with_simplescalar_cache(),
                        n_instructions=N)
    assert precise.content_hash != imprecise.content_hash
    a, b = executor.run([precise, imprecise])
    assert a is not b
    assert a.ipc != b.ipc
    # Both were simulated — the second was not answered from the first's
    # cache entry, which is exactly what the old label keying got wrong.
    assert executor.telemetry.simulated == 2


def test_execute_matches_run_benchmark():
    spec = RunSpec("gzip", "TP", n_instructions=N)
    via_spec = spec.execute()
    direct = run_benchmark("gzip", "TP", n_instructions=N)
    assert dataclasses.asdict(via_spec) == dataclasses.asdict(direct)


def test_execute_trace_selections():
    full = RunSpec("swim", n_instructions=N, trace_length=int(N * 2.5))
    windowed = RunSpec("swim", n_instructions=N, trace_length=int(N * 2.5),
                       selection=("window", N // 8))
    simpointed = RunSpec("swim", n_instructions=N, trace_length=int(N * 2.5),
                         selection=("simpoint", 500))
    results = [full.execute(), windowed.execute(), simpointed.execute()]
    for result in results:
        assert result.instructions > 0
        assert result.ipc > 0


def test_spec_is_frozen_hashable_picklable():
    spec = RunSpec("swim", "GHB", n_instructions=N,
                   mechanism_kwargs={"degree": 4})
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.benchmark = "gzip"
    assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))
    assert pickle.loads(pickle.dumps(spec)).content_hash == spec.content_hash


def test_spec_validation():
    with pytest.raises(ValueError):
        RunSpec("swim", n_instructions=0)
    with pytest.raises(ValueError):
        RunSpec("swim", n_instructions=N, trace_length=N - 1)
    with pytest.raises(ValueError):
        RunSpec("swim", n_instructions=N, selection=("nonsense", 1))
