"""Tests for the mechanism registry and the plug-in base class."""

import pytest

from repro.mechanisms.base import Mechanism, PrefetchQueue, PrefetchRequest
from repro.mechanisms.registry import (
    ALL_MECHANISMS,
    BASELINE,
    create,
    mechanism_info,
)


def test_thirteen_entries_in_paper_order():
    assert len(ALL_MECHANISMS) == 13
    assert ALL_MECHANISMS[0] == BASELINE
    assert ALL_MECHANISMS[-1] == "GHB"


def test_create_baseline_returns_none():
    assert create(BASELINE) is None


def test_baseline_rejects_kwargs():
    with pytest.raises(ValueError):
        create(BASELINE, variant="x")


def test_create_every_mechanism():
    for name in ALL_MECHANISMS:
        mechanism = create(name)
        if name == BASELINE:
            continue
        assert isinstance(mechanism, Mechanism)
        assert mechanism.ACRONYM == name
        assert mechanism.LEVEL in ("l1", "l2")


def test_unknown_mechanism_raises():
    with pytest.raises(KeyError):
        create("NEXTLINE9000")


def test_info_matches_table2():
    for name in ALL_MECHANISMS:
        info = mechanism_info(name)
        assert info.acronym == name
        assert info.description
    assert mechanism_info("TP").year == 1982
    assert mechanism_info("VC").year == 1990
    assert mechanism_info("SP").year == 1992
    assert mechanism_info("Markov").year == 1997
    assert mechanism_info("GHB").year == 2004
    assert mechanism_info("TP").level == "l2"
    assert mechanism_info("VC").level == "l1"


def test_variant_kwargs_forwarded():
    dbcp = create("DBCP", variant="initial")
    assert dbcp.variant == "initial"
    tcp = create("TCP", queue_size=1)
    assert tcp.queue.capacity == 1
    tk = create("TK", reverse_engineered=True)
    assert tk.reverse_engineered


def test_table3_parameters():
    assert create("TP").QUEUE_SIZE == 16
    assert create("SP").QUEUE_SIZE == 1
    assert create("SP").PC_ENTRIES == 512
    assert create("Markov").QUEUE_SIZE == 16
    assert create("Markov").TABLE_BYTES == 1 << 20
    assert create("Markov").PREDICTIONS_PER_ENTRY == 4
    assert create("Markov").BUFFER_LINES == 128
    assert create("DBCP").HISTORY_ENTRIES == 1024
    assert create("DBCP").CORR_BYTES == 2 << 20
    assert create("CDP").DEPTH_THRESHOLD == 3
    assert create("CDP").QUEUE_SIZE == 128
    assert create("TCP").THT_SETS == 1024
    assert create("TCP").PHT_BYTES == 8 << 10
    assert create("TCP").QUEUE_SIZE == 128
    assert create("GHB").IT_ENTRIES == 256
    assert create("GHB").GHB_ENTRIES == 256
    assert create("GHB").QUEUE_SIZE == 4
    assert create("VC").SIZE_BYTES == 512
    assert create("FVC").N_LINES == 1024
    assert create("FVC").N_FREQUENT == 7
    assert create("TK").CORR_BYTES == 8 << 10


def test_every_mechanism_declares_structures():
    from repro.core.simulation import build_machine
    for name in ALL_MECHANISMS:
        if name == BASELINE:
            continue
        mechanism = create(name)
        build_machine(mechanism=mechanism)
        specs = mechanism.structures()
        assert specs, f"{name} declares no hardware structures"
        assert all(s.size_bytes >= 0 for s in specs)


class TestPrefetchQueue:
    def test_fifo_order(self):
        queue = PrefetchQueue(4)
        for i in range(3):
            assert queue.push(PrefetchRequest(i, 0))
        assert queue.pop().addr == 0
        assert queue.pop().addr == 1

    def test_overflow_drops(self):
        queue = PrefetchQueue(2)
        queue.push(PrefetchRequest(1, 0))
        queue.push(PrefetchRequest(2, 0))
        assert not queue.push(PrefetchRequest(3, 0))
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PrefetchQueue(0)

    def test_emit_without_queue_raises(self):
        from repro.mechanisms.victim import VictimCache
        with pytest.raises(RuntimeError):
            VictimCache().emit_prefetch(0x100, 0)


def test_double_attach_rejected():
    from repro.core.simulation import build_machine
    vc = create("VC")
    build_machine(mechanism=vc)
    with pytest.raises(RuntimeError):
        build_machine(mechanism=vc)
