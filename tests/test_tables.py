"""Tests for the configuration-table renderers and the matrix artifact."""

from repro.harness.matrix import speedup_matrix
from repro.harness.tables import (
    table1_configuration,
    table2_mechanisms,
    table3_parameters,
    table4_benchmarks,
)


def test_table1_reflects_live_config():
    result = table1_configuration()
    text = result.render()
    assert "128-RUU, 128-LSQ" in text
    assert "tRC 110" in text
    assert "4 banks" in text


def test_table2_lists_all_twelve():
    result = table2_mechanisms()
    acronyms = [row["acronym"] for row in result.rows]
    assert len(acronyms) == 12
    assert acronyms[0] == "TP" and acronyms[-1] == "GHB"
    assert all(row["description"] for row in result.rows)


def test_table3_reads_instantiated_sizes():
    result = table3_parameters()
    by_name = {row["acronym"]: row for row in result.rows}
    assert "markov_table=1048576B" in by_name["Markov"]["structures"]
    assert "dbcp_correlation=2097152B" in by_name["DBCP"]["structures"]
    assert by_name["VC"]["request_queue"] == "-"
    assert by_name["TCP"]["request_queue"] == 128


def test_table4_matches_registry_selections():
    result = table4_benchmarks()
    by_name = {row["mechanism"]: row for row in result.rows}
    assert by_name["TK"]["benchmarks"] == "(all 26)"
    assert by_name["DBCP"]["n_benchmarks"] == 5


def test_matrix_small_scale():
    result = speedup_matrix(benchmarks=("swim", "gzip"), n_instructions=3000)
    mech_rows = [r for r in result.rows if r["mechanism"] != "Base(IPC)"]
    assert len(mech_rows) == 12
    assert all({"swim", "gzip", "MEAN"} <= set(row) for row in mech_rows)
