"""Cross-module integration tests: the paper's qualitative claims.

Each test checks one *shape* the reproduction must preserve — who wins on
which workload class, which methodology choice changes what.  These run on
reduced trace lengths; the benchmarks/ directory exercises full scale.
"""

import pytest

from repro.core.config import MEMORY_CONSTANT, baseline_config
from repro.core.simulation import run_benchmark

N = 12_000


def _speedup(benchmark, mechanism, config=None, n_instructions=N, **kwargs):
    if n_instructions is None:
        from repro.core.simulation import DEFAULT_INSTRUCTIONS
        n_instructions = DEFAULT_INSTRUCTIONS
    base = run_benchmark(benchmark, "Base", config=config,
                         n_instructions=n_instructions, **kwargs)
    run = run_benchmark(benchmark, mechanism, config=config,
                        n_instructions=n_instructions, **kwargs)
    return run.speedup_over(base)


class TestMechanismClaims:
    def test_prefetchers_win_streaming(self):
        """swim is the prefetcher showcase."""
        assert _speedup("swim", "TP") > 1.2
        assert _speedup("swim", "SP") > 1.1
        assert _speedup("swim", "GHB") > 1.1

    def test_stride_prefetchers_beat_tp_on_line_skipping_strides(self):
        """apsi's strides skip lines: next-line prefetch cannot follow."""
        assert _speedup("apsi", "GHB") > _speedup("apsi", "TP")

    def test_victim_cache_wins_conflict_benchmarks(self):
        assert _speedup("art", "VC") > 1.05
        assert _speedup("vpr", "TKVC") > 1.0

    def test_markov_wins_gzip(self):
        """The paper: Markov outperforms all other mechanisms on gzip."""
        markov = _speedup("gzip", "Markov")
        assert markov > 1.02
        for rival in ("TP", "SP", "GHB", "VC"):
            assert markov >= _speedup("gzip", rival) - 0.01

    def test_cdp_helps_pointer_benchmarks_and_hurts_mcf(self):
        # twolf's win needs the chains warm: use the full default length.
        assert _speedup("twolf", "CDP", n_instructions=None) > 1.05
        assert _speedup("equake", "CDP") > 1.02
        assert _speedup("mcf", "CDP") < 0.95

    def test_cdp_fails_on_ammp(self):
        """Next pointer 88 bytes in: CDP systematically fails (<= nothing)."""
        assert _speedup("ammp", "CDP") < 1.01

    def test_low_sensitivity_benchmarks_barely_move(self):
        for benchmark in ("crafty", "perlbmk"):
            for mechanism in ("SP", "GHB", "VC"):
                assert abs(_speedup(benchmark, mechanism) - 1.0) < 0.08


class TestMethodologyClaims:
    def test_memory_model_inflates_prefetcher_gains(self):
        """Figure 8: the constant-latency model flatters prefetchers."""
        constant = baseline_config().with_memory_model(MEMORY_CONSTANT)
        # lucas: the row-buffer-hostile stream where SDRAM bites hardest.
        gain_constant = _speedup("lucas", "GHB", config=constant) - 1
        gain_sdram = _speedup("lucas", "GHB") - 1
        assert gain_constant > 0
        # The detailed SDRAM model materially shrinks the apparent benefit.
        assert gain_constant > gain_sdram + 0.05

    def test_sdram_latency_varies_per_benchmark(self):
        """Figure 8's latency table: lucas' rows conflict, gzip's do not."""
        lucas = run_benchmark("lucas", "Base", n_instructions=N)
        mesa = run_benchmark("mesa", "Base", n_instructions=N)
        assert lucas.avg_memory_latency > mesa.avg_memory_latency

    def test_infinite_mshr_changes_results(self):
        """Figure 9: a finite MSHR drops prefetches a SimpleScalar-style
        infinite one would absorb, so prefetcher results shift."""
        infinite = baseline_config().with_infinite_mshr()
        a = run_benchmark("lucas", "GHB", n_instructions=N)
        b = run_benchmark("lucas", "GHB", config=infinite, n_instructions=N)
        assert b.ipc > a.ipc  # the infinite MSHR flatters the prefetcher

    def test_simplescalar_cache_model_is_optimistic(self):
        """Figure 1: the imprecise model overestimates IPC."""
        imprecise = baseline_config().with_simplescalar_cache()
        a = run_benchmark("swim", "Base", n_instructions=N)
        b = run_benchmark("swim", "Base", config=imprecise, n_instructions=N)
        assert b.ipc > a.ipc

    def test_dbcp_initial_build_differs_from_fixed(self):
        """Figure 3: the three reverse-engineering defects show."""
        fixed = run_benchmark("vpr", "DBCP", n_instructions=N)
        initial = run_benchmark("vpr", "DBCP", n_instructions=N,
                                mechanism_kwargs={"variant": "initial"})
        assert fixed.ipc != initial.ipc

    def test_tcp_queue_size_matters_somewhere(self):
        """Figure 10: the unstated queue size changes outcomes."""
        diffs = []
        for benchmark in ("gzip", "ammp", "vpr", "mgrid"):
            small = run_benchmark(benchmark, "TCP", n_instructions=N,
                                  mechanism_kwargs={"queue_size": 1})
            large = run_benchmark(benchmark, "TCP", n_instructions=N,
                                  mechanism_kwargs={"queue_size": 128})
            diffs.append(abs(small.ipc - large.ipc) / small.ipc)
        assert max(diffs) >= 0.0  # measured; magnitude asserted in benches

    def test_reverse_engineered_variants_diverge(self):
        """Figure 2's protocol: misreadings produce different numbers."""
        constant = baseline_config().with_memory_model(MEMORY_CONSTANT)
        reference = run_benchmark("art", "TKVC", config=constant,
                                  n_instructions=N)
        misread = run_benchmark(
            "art", "TKVC", config=constant, n_instructions=N,
            mechanism_kwargs={"reverse_engineered": True},
        )
        assert reference.ipc != misread.ipc
