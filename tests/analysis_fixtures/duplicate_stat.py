"""SIM401: the same stat name registered twice in one class."""


class Component:
    def add_stat(self, name, desc=""):
        return object()


class DoubleCounter(Component):
    def __init__(self):
        self.st_hits = self.add_stat("hits")
        self.st_hits2 = self.add_stat("hits")  # expect: SIM401
