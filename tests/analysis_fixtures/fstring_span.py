"""SIM502: tracer event name built dynamically."""


class Tracer:
    def begin(self, name, **args):
        pass


TRACER = Tracer()


def drain(queue_name):
    TRACER.begin(f"drain.{queue_name}")  # expect: SIM502
