"""Known-bad: SIM705 — method dispatch through ``self`` on every iteration."""

from repro.hotpath import hotpath


class Clock:
    def advance(self, event):
        return event

    @hotpath
    def tick(self, events):
        for event in events:
            self.advance(event)
