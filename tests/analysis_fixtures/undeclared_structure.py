"""SIM105: side tables allocated but no structures() declared for costing."""

from collections import OrderedDict


class Mechanism:
    LEVEL = "l1"


class FreeHardware(Mechanism):
    LEVEL = "l1"

    def __init__(self):
        self._history = OrderedDict()  # expect: SIM105 (no structures())

    def on_miss(self, pc, block, time):
        self._history[block] = time
