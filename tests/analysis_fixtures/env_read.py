"""SIM203: configuration smuggled in through the environment."""

import os


def latency():
    return int(os.environ.get("SECRET_LATENCY", "70"))  # expect: SIM203
