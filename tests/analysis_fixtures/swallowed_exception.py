"""Known-bad: sim-path code that swallows failures wholesale.

A broad handler that neither re-raises nor converts the failure into a
FailedRun turns a mis-simulated cell into a silently wrong number:
the retry policy never sees the error, the grid shows no hole, and the
bogus value is cached forever.  SIM601 flags it.
"""


def lookup_latency(table, address):
    try:
        return table[address]
    except Exception:
        # Looks harmless; actually hides KeyError *and* every simulator
        # bug that surfaces while computing the entry.
        return 0
