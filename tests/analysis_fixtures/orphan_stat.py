"""SIM501: a StatCounter constructed outside Component.add_stat."""


class StatCounter:
    def __init__(self, name, desc=""):
        self.name = name
        self.desc = desc
        self.value = 0


class LonelyCounter:
    def __init__(self):
        self.hits = StatCounter("hits")  # expect: SIM501
