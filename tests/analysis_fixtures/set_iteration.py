"""SIM204: iterating a set — order varies with PYTHONHASHSEED."""


def flush_order(dirty_lines):
    for line in set(dirty_lines):  # expect: SIM204
        yield line
