"""Known-bad: SIM704 — loop-invariant constant-key subscript in a loop."""

from repro.hotpath import hotpath


@hotpath
def widths(config, rows):
    total = 0
    for row in rows:
        total += row * config["width"]
    return total
