"""Known-bad fixture: SIM901 undeclared-snapshot-state.

``_cursor`` is mutable run state assigned in ``__init__`` but declared
in neither ``SNAPSHOT_FIELDS`` nor ``SNAPSHOT_EXEMPT`` — it would
silently escape every mid-run checkpoint.
"""


class LeakyTable:
    SNAPSHOT_FIELDS = ("_table",)
    SNAPSHOT_EXEMPT = ("size",)

    def __init__(self, size):
        self.size = size
        self._table = {}
        self._cursor = 0
