"""Known-bad: SIM702 — allocating a fresh object on every hot iteration."""

from repro.hotpath import hotpath


@hotpath
def collect(events):
    last = None
    for event in events:
        last = [event.time, event.kind]
    return last
