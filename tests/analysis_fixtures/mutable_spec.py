"""SIM301: a run-identity dataclass that is not frozen."""

from dataclasses import dataclass


@dataclass
class RunSpec:  # expect: SIM301
    benchmark: str = "swim"

    def describe(self):
        return {"benchmark": self.benchmark}
