"""SIM104: prefetch pushed straight into the queue, bypassing emit_prefetch."""


class Mechanism:
    LEVEL = "l1"


class PrefetchRequest:
    def __init__(self, addr, time, depth=0):
        self.addr = addr


class SneakyPrefetcher(Mechanism):
    LEVEL = "l2"

    def on_miss(self, pc, block, time):
        self.queue.push(PrefetchRequest(block + 1, time))  # expect: SIM104
