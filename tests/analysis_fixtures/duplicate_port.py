"""SIM402: the same port name registered twice in one class."""


class Component:
    def add_port(self, name):
        return object()


class DoublePorted(Component):
    def __init__(self, peer):
        self.req = self.add_port("req")
        self.req2 = self.add_port("req")  # expect: SIM402
        self.req.bind(peer.req)
        self.req2.bind(peer.req)
