"""Known-bad fixture: SIM902 phantom-snapshot-field.

``_ghost`` is declared in ``SNAPSHOT_FIELDS`` but assigned nowhere in
the class — either a typo hiding the real attribute from the
checkpoint, or dead weight that makes the first snapshot cut raise.
"""


class PhantomField:
    SNAPSHOT_FIELDS = ("_ring", "_ghost")
    SNAPSHOT_EXEMPT = ("depth",)

    def __init__(self, depth):
        self.depth = depth
        self._ring = []
