"""SIM103: an overridden hook with the wrong positional parameters."""


class Mechanism:
    LEVEL = "l1"


class ShiftedArgs(Mechanism):
    LEVEL = "l1"

    def on_miss(self, block, pc, time):  # expect: SIM103 (pc/block swapped)
        pass
