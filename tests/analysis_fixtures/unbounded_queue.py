"""Known-bad: unbounded buffers in the sweep service.

A service buffer without a stated bound converts overload into silent
memory growth — clients keep submitting, the queue keeps absorbing, and
the process dies of RSS long after the latency already went bad.  That
is precisely the failure admission control exists to prevent, so SIM605
requires every ``Queue`` to state a ``maxsize`` and every ``deque`` a
``maxlen`` (or to justify, via ``allow[SIM605]``, why its growth is
capped somewhere else).  The bounded forms below are clean.
"""

import asyncio
import collections
import queue


def build_buffers():
    outbox = asyncio.Queue()                   # bad: no maxsize
    backlog = collections.deque()              # bad: no maxlen
    handoff = queue.Queue()                    # bad: no maxsize
    retries = queue.LifoQueue()                # bad: no maxsize
    bounded_outbox = asyncio.Queue(maxsize=64)     # ok: stated bound
    window = collections.deque(maxlen=128)         # ok: stated bound
    bounded_handoff = queue.Queue(64)              # ok: positional bound
    return (outbox, backlog, handoff, retries,
            bounded_outbox, window, bounded_handoff)
