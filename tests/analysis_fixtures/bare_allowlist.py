"""SIM001: an allow comment with no justification is itself a violation."""

import os


def cache_dir():
    return os.environ.get("X_CACHE")  # simlint: allow[SIM203]
