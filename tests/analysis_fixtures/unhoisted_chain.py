"""Known-bad: SIM701 — repeated attribute chain not hoisted out of a loop."""

from repro.hotpath import hotpath


@hotpath
def probe(machine, addrs):
    total = 0
    for addr in addrs:
        total += machine.cache.latency + addr
        total -= machine.cache.latency
    return total
