"""SIM201: process-global RNG on the simulated path."""

import random


def pick_victim(ways):
    return random.randrange(ways)  # expect: SIM201
