"""SIM303: a spec field annotated with a mutable container."""

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class RunSpec:
    benchmark: str = "swim"
    extras: List[str] = field(default_factory=list)  # expect: SIM303

    def describe(self):
        return {"benchmark": self.benchmark, "extras": self.extras}
