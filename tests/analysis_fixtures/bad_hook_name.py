"""SIM102: a typo'd hook name the hierarchy would silently never call."""


class Mechanism:
    LEVEL = "l1"


class TypoPrefetcher(Mechanism):
    LEVEL = "l2"

    def on_acess(self, pc, block, hit, was_prefetched, time):  # expect: SIM102
        pass
