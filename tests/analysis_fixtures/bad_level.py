"""SIM101: LEVEL must be the literal 'l1' or 'l2'."""


class Mechanism:  # stand-in base so the snippet is self-contained
    LEVEL = "l1"


class L3Prefetcher(Mechanism):
    LEVEL = "l3"  # expect: SIM101
