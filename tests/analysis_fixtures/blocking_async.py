"""Known-bad: blocking calls on the sweep service's event loop.

One asyncio thread multiplexes every connected client, so a sync file
read, a ``time.sleep`` or an flock-guarded transaction inside an
``async def`` stalls all of them at once — silently: the service still
answers, it is just mysteriously slow under exactly the multi-client
load it exists for.  The sanctioned shape is to offload the blocking
work with ``asyncio.to_thread`` (note ``to_thread(fn, …)`` passes the
function *uncalled*, which is why the offloaded form below is clean).
SIM604 flags each direct call.
"""

import asyncio
import fcntl
import subprocess
import time


async def handle(queue_path, lock_path):
    # Direct file I/O on the event loop: every client waits on this read.
    with open(queue_path) as handle:          # bad: sync open()
        lines = handle.readlines()
    text = queue_path.read_text("utf-8")      # bad: pathlib I/O
    time.sleep(0.05)                          # bad: stalls the loop outright
    with open(lock_path, "a+") as lockfile:   # bad: sync open()
        fcntl.flock(lockfile, fcntl.LOCK_EX)  # bad: waits on another process
    subprocess.run(["sync"])                  # bad: blocks on a child
    return lines, text


async def handle_offloaded(queue_path):
    # The sanctioned form: the blocking call sits in a nested function
    # whose body runs on a to_thread worker, not the event loop.
    def read():
        return queue_path.read_text("utf-8")

    return await asyncio.to_thread(read)
