"""Known-bad: SIM801 — an emitted replay with its event-drain guard dropped.

Without the drain, kernel events due at or before ``time`` would fire
*after* the replay commits: the replay reads and advances the kernel
clock against stale state.  The verifier flags both the missing guard
and the now-unprotected ``kernel.clock`` write.
"""
# sim-fastpath: kind=load queues=0 hook=0 precise=1 image=0 line_bits=5 set_mask=1023 assoc=1 n_ports=4 latency=1 prune_every=8192


def replay(pc, addr, time, value=None):
    block = addr >> 5
    base = (block & 1023) * 1
    # guard[resident] protects: cache.tags, cache.ready, cache.touch, cache.flags
    try:
        slot = tags_index(block, base, base + 1)
    except ValueError:
        counts_[3] += 1
        return None
    if time > sim.now:
        sim.now = time
    st_outer.value += 1
    next_start = pipe._next_start
    t = time if next_start <= time else next_start
    pipe._next_start = t + 1
    pipe.accepts += 1
    floor = ports._floor
    if t < floor:
        t = floor
    count = ledger_get(t)
    if count is None:
        ledger[t] = 1
    else:
        while count is not None and count >= 4:
            t += 1
            count = ledger_get(t)
        ledger[t] = 1 if count is None else count + 1
    ports.grants += 1
    if len(ledger) > 8192:
        ports._prune(t)
    st_kind.value += 1
    if slot != base:
        line_ready = ready_arr[slot]
        line_flags = flags[slot]
        tags[base + 1:slot + 1] = tags[base:slot]
        tags[base] = block
        ready_arr[base + 1:slot + 1] = ready_arr[base:slot]
        ready_arr[base] = line_ready
        touch[base + 1:slot + 1] = touch[base:slot]
        flags[base + 1:slot + 1] = flags[base:slot]
    else:
        line_ready = ready_arr[base]
        line_flags = flags[base]
    was_prefetched = line_flags & 2
    if was_prefetched:
        line_flags &= -3
        st_useful.value += 1
    flags[base] = line_flags
    touch[base] = t
    ready = t + 1
    if line_ready > ready:
        ready = line_ready
    counts_[0] += 1
    return ready
