"""Known-bad: sim-path code that traps the operator's interrupt.

Since the graceful-shutdown work, SIGINT/SIGTERM are *requests*: the
executor drains in-flight attempts, flushes the write-ahead journal
and exits ``128 + signum`` so the sweep can be resumed.  A handler
that catches ``KeyboardInterrupt`` and carries on skips all of that —
the journal never records the stop, ``--resume`` has nothing to serve,
and the operator's only remaining exit is a forced kill that loses the
drain.  SIM602 flags it.
"""


def run_all(specs, simulate):
    results = []
    for spec in specs:
        try:
            results.append(simulate(spec))
        except KeyboardInterrupt:
            # "Finish what we can" — which unjournals the stop and
            # turns Ctrl-C into a no-op until the user force-kills us.
            results.append(None)
    return results
