"""SIM106: registry tables out of sync (factory without catalogue info)."""

BASELINE = "Base"

ALL_MECHANISMS = (BASELINE, "XX", "GHOST")


def _make_xx():
    return None


_FACTORIES = {
    "XX": _make_xx,  # expect: SIM106 (no _INFO entry)
}

_INFO = {
    BASELINE: ("Base", "-", 0, "baseline"),
}
