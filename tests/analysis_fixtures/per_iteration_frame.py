"""Known-bad: SIM703 — a try frame set up and torn down per iteration.

The handler does real work on a narrow exception type so this snippet
exercises only the hot-path rule, not the SIM601 robustness rule.
"""

from repro.hotpath import hotpath


@hotpath
def lookup(table, keys):
    hits = 0
    for key in keys:
        try:
            hits += table.index(key)
        except ValueError:
            hits -= 1
    return hits
