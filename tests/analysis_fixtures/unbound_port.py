"""SIM403: a declared port nothing ever binds — traffic would dead-end."""


class Component:
    def add_port(self, name):
        return object()


class DeadEnd(Component):
    def __init__(self):
        self.resp = self.add_port("resp")  # expect: SIM403 (never bound)
