"""SIM202: wall-clock read on the simulated path."""

import time


def timestamp_access():
    return time.time()  # expect: SIM202
