"""SIM302: a RunSpec field invisible to the content hash."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RunSpec:
    benchmark: str = "swim"
    secret_knob: int = 0  # expect: SIM302 (describe() skips it)

    def describe(self):
        return {"benchmark": self.benchmark}
