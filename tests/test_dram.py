"""Tests for the SDRAM model, controller and constant-latency memory."""

import pytest

from repro.core.config import SDRAMConfig
from repro.dram.constant import ConstantLatencyMemory
from repro.dram.controller import SDRAMController
from repro.dram.scheduling import (
    LINEAR_INTERLEAVE,
    PERMUTATION_INTERLEAVE,
    ROW_BYTES,
    AddressMapping,
)
from repro.dram.sdram import SDRAM

CFG = SDRAMConfig()


class TestAddressMapping:
    def test_consecutive_rows_rotate_banks_linear(self):
        mapping = AddressMapping(CFG, LINEAR_INTERLEAVE)
        banks = [mapping.map(i * ROW_BYTES)[0] for i in range(4)]
        assert banks == [0, 1, 2, 3]

    def test_same_row_for_addresses_within_row(self):
        mapping = AddressMapping(CFG, LINEAR_INTERLEAVE)
        assert mapping.map(64) == mapping.map(ROW_BYTES - 64)

    def test_permutation_spreads_conflicting_rows(self):
        linear = AddressMapping(CFG, LINEAR_INTERLEAVE)
        permuted = AddressMapping(CFG, PERMUTATION_INTERLEAVE)
        # Addresses one bank-round apart: same bank under linear mapping.
        stride = ROW_BYTES * CFG.banks
        linear_banks = {linear.map(i * stride)[0] for i in range(8)}
        permuted_banks = {permuted.map(i * stride)[0] for i in range(8)}
        assert len(linear_banks) == 1
        assert len(permuted_banks) > 1

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            AddressMapping(CFG, "striped")


class TestSDRAM:
    def test_row_hit_pays_cas_only(self):
        sdram = SDRAM(CFG)
        first = sdram.access(0, time=0)
        second = sdram.access(64, time=first)
        assert second - first == CFG.cas_latency
        assert sdram.st_row_hits.value == 1

    def test_cold_access_pays_activate_plus_cas(self):
        sdram = SDRAM(CFG)
        ready = sdram.access(0, time=0)
        assert ready == CFG.ras_to_cas + CFG.cas_latency

    def test_row_conflict_pays_precharge_activate_cas(self):
        sdram = SDRAM(CFG)
        mapping = sdram.mapping
        base_bank, base_row = mapping.map(0)
        # Find an address on the same bank but a different row.
        conflict = next(
            addr for addr in range(ROW_BYTES, ROW_BYTES * 64, ROW_BYTES)
            if mapping.map(addr)[0] == base_bank
            and mapping.map(addr)[1] != base_row
        )
        t1 = sdram.access(0, time=0)
        t2 = sdram.access(conflict, time=t1)
        # Precharge waits for tRAS from the activate, then tRP + tRCD + CL.
        assert t2 - t1 >= CFG.ras_precharge + CFG.ras_to_cas + CFG.cas_latency
        assert sdram.st_precharges.value == 1

    def test_trc_enforced_between_same_bank_activates(self):
        sdram = SDRAM(CFG)
        mapping = sdram.mapping
        base_bank, _ = mapping.map(0)
        conflict = next(
            addr for addr in range(ROW_BYTES, ROW_BYTES * 64, ROW_BYTES)
            if mapping.map(addr)[0] == base_bank
            and mapping.map(addr)[1] != mapping.map(0)[1]
        )
        sdram.access(0, time=0)
        sdram.access(conflict, time=0)
        bank = sdram.banks[base_bank]
        assert bank.activate_time >= CFG.ras_cycle

    def test_bank_interleaving_hides_activates(self):
        """Accesses to different banks overlap their activates (RAS-to-RAS
        permitting), unlike same-bank conflicts."""
        sdram = SDRAM(CFG, scheme=LINEAR_INTERLEAVE)
        t1 = sdram.access(0, time=0)
        t2 = sdram.access(ROW_BYTES, time=0)  # different bank
        assert t2 - t1 <= CFG.ras_to_ras  # nearly fully overlapped

    def test_average_latency(self):
        sdram = SDRAM(CFG)
        sdram.access(0, time=0)
        assert sdram.average_latency == CFG.ras_to_cas + CFG.cas_latency

    def test_reset(self):
        sdram = SDRAM(CFG)
        sdram.access(0, time=0)
        sdram.reset()
        assert sdram.st_accesses.value == 0
        assert all(bank.open_row is None for bank in sdram.banks)


class TestSDRAMController:
    def test_queue_full_delays_admission(self):
        config = SDRAMConfig(queue_entries=2)
        controller = SDRAMController(config)
        t1 = controller.access(0, time=0)
        t2 = controller.access(1 << 20, time=0)
        controller.access(2 << 20, time=0)  # third: must wait for a slot
        assert controller.st_queue_stall.value > 0
        assert min(t1, t2) <= controller.st_queue_stall.value + max(t1, t2)

    def test_latency_includes_queue_wait(self):
        config = SDRAMConfig(queue_entries=1)
        controller = SDRAMController(config)
        controller.access(0, time=0)
        controller.access(1 << 20, time=0)
        assert controller.average_latency > controller.device.average_latency / 2

    def test_writes_occupy_but_complete(self):
        controller = SDRAMController(CFG)
        ready = controller.access(0, time=0, is_write=True)
        assert ready > 0


class TestConstantLatencyMemory:
    def test_fixed_latency(self):
        memory = ConstantLatencyMemory(70)
        assert memory.access(0x1234, time=10) == 80
        assert memory.access(0x9999, time=10) == 80  # unlimited bandwidth
        assert memory.average_latency == 70

    def test_rejects_bad_latency(self):
        with pytest.raises(ValueError):
            ConstantLatencyMemory(0)
