"""Stress tests for the benchmark-subset winner search (Table 6's engine)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import ResultSet
from repro.core.selection import find_winning_subset, rank_mechanisms
from repro.core.simulation import RunResult


def _result(mechanism, benchmark, ipc):
    return RunResult(
        benchmark=benchmark, mechanism=mechanism, ipc=ipc, cycles=1000,
        instructions=1000, l1_miss_rate=0.1, l2_miss_rate=0.2,
        avg_load_latency=10.0, avg_memory_latency=100.0, memory_accesses=50,
        prefetches_issued=0, useful_prefetches=0, mechanism_table_accesses=0,
    )


def _random_grid(seed, n_mechanisms=5, n_benchmarks=8):
    rng = random.Random(seed)
    results = ResultSet()
    benchmarks = [f"b{i}" for i in range(n_benchmarks)]
    for benchmark in benchmarks:
        results.add(_result("Base", benchmark, 1.0))
    for m in range(n_mechanisms):
        for benchmark in benchmarks:
            results.add(_result(f"M{m}", benchmark,
                                round(0.7 + rng.random() * 0.8, 4)))
    return results


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       size=st.integers(min_value=1, max_value=8))
def test_every_witness_actually_wins(seed, size):
    """Soundness: any subset the heuristic returns crowns the mechanism."""
    results = _random_grid(seed)
    for mechanism in results.mechanisms:
        subset = find_winning_subset(results, mechanism, size)
        if subset is None:
            continue
        assert len(subset) == size
        assert len(set(subset)) == size
        winner, _ = rank_mechanisms(results, subset)[0]
        assert winner == mechanism


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_the_overall_winner_always_has_a_full_witness(seed):
    """Completeness floor: the true best mechanism wins the full set."""
    results = _random_grid(seed)
    winner, _ = rank_mechanisms(results)[0]
    subset = find_winning_subset(results, winner, len(results.benchmarks))
    assert subset is not None


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_per_benchmark_winners_have_singleton_witnesses(seed):
    """Any mechanism that is strictly best on some benchmark must be found
    for size 1 (the greedy seed makes this exact)."""
    results = _random_grid(seed)
    for benchmark in results.benchmarks:
        best = max(results.mechanisms,
                   key=lambda m: results.speedup(m, benchmark))
        tied = [
            m for m in results.mechanisms
            if results.speedup(m, benchmark)
            == results.speedup(best, benchmark)
        ]
        if len(tied) > 1:
            continue  # exact ties cannot be "won" strictly
        assert find_winning_subset(results, best, 1) is not None
