"""Tests for the 26 SPEC CPU2000 stand-in specifications."""

import pytest

from repro.isa.instr import OP, Op
from repro.workloads.registry import (
    ALL_BENCHMARKS,
    ARTICLE_SELECTIONS,
    FP_BENCHMARKS,
    HIGH_SENSITIVITY,
    INT_BENCHMARKS,
    LOW_SENSITIVITY,
    build,
    get_spec,
)
from repro.workloads.spec2000 import SPECS


def test_exactly_26_benchmarks_in_paper_order():
    assert len(ALL_BENCHMARKS) == 26
    assert len(FP_BENCHMARKS) == 14
    assert len(INT_BENCHMARKS) == 12
    assert ALL_BENCHMARKS == FP_BENCHMARKS + INT_BENCHMARKS
    assert ALL_BENCHMARKS[0] == "ammp"
    assert ALL_BENCHMARKS[-1] == "vpr"


def test_specs_cover_every_benchmark():
    assert set(SPECS) == set(ALL_BENCHMARKS)


def test_suites_are_consistent():
    for name in FP_BENCHMARKS:
        assert get_spec(name).suite == "fp"
    for name in INT_BENCHMARKS:
        assert get_spec(name).suite == "int"


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        get_spec("linpack")


def test_article_selections_match_table4_counts():
    assert len(ARTICLE_SELECTIONS["DBCP"]) == 5
    assert len(ARTICLE_SELECTIONS["GHB"]) == 12
    assert ARTICLE_SELECTIONS["TK"] == ALL_BENCHMARKS
    for selection in ARTICLE_SELECTIONS.values():
        assert set(selection) <= set(ALL_BENCHMARKS)


def test_sensitivity_groups_match_the_paper():
    assert set(HIGH_SENSITIVITY) == {"apsi", "equake", "fma3d", "mgrid",
                                     "swim", "gap"}
    assert set(LOW_SENSITIVITY) == {"wupwise", "bzip2", "crafty", "eon",
                                    "perlbmk", "vortex"}


def test_every_benchmark_builds_and_is_cached():
    for name in ("ammp", "mcf", "swim", "crafty"):
        trace, image = build(name, 800)
        assert len(trace) == 800
        trace2, image2 = build(name, 800)
        assert trace is trace2 and image is image2  # lru cache


def test_distinct_seeds_give_distinct_traces():
    trace_a, _ = build("gzip", 600)
    trace_b, _ = build("bzip2", 600)
    assert trace_a != trace_b


def test_pointer_benchmarks_register_heap():
    for name in ("mcf", "twolf", "equake", "parser", "ammp"):
        _, image = build(name, 500)
        assert image.heap_hi > image.heap_lo > 0


def test_low_sensitivity_benchmarks_have_high_hot_share():
    for name in LOW_SENSITIVITY:
        spec = get_spec(name)
        weights = {mix.kind: mix.weight for mix in spec.patterns}
        assert weights.get("hot", 0) >= 0.9


def test_high_sensitivity_benchmarks_have_substantial_miss_share():
    for name in HIGH_SENSITIVITY:
        spec = get_spec(name)
        miss_share = sum(
            mix.weight for mix in spec.patterns if mix.kind != "hot"
        )
        assert miss_share >= 0.2


def test_ammp_has_the_cdp_hostile_node_layout():
    spec = get_spec("ammp")
    pointer = next(m for m in spec.patterns if m.kind == "pointer")
    params = dict(pointer.params)
    assert params["node_size"] == 96
    assert params["next_offset"] == 88


def test_mcf_is_the_decoy_pointer_trap():
    spec = get_spec("mcf")
    pointer = next(m for m in spec.patterns if m.kind == "pointer")
    assert dict(pointer.params)["payload_pointers"] > 0.3


def test_lucas_strides_cross_dram_rows():
    spec = get_spec("lucas")
    strides = [dict(m.params)["stride"] for m in spec.patterns
               if m.kind == "stride"]
    assert any(stride > 8192 for stride in strides)


def test_fp_benchmarks_emit_fp_ops_and_int_do_not_dominate():
    trace, _ = build("swim", 3000)
    fp_ops = sum(1 for r in trace if r[OP] in (Op.FP_ALU, Op.FP_MUL))
    assert fp_ops > 500
    trace, _ = build("gcc", 3000)
    fp_ops = sum(1 for r in trace if r[OP] in (Op.FP_ALU, Op.FP_MUL))
    assert fp_ops == 0
