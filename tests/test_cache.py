"""Tests for the MicroLib cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.core.config import CacheConfig


def _cache(size=1024, assoc=2, line=32, ports=2, latency=1, precise=True,
           infinite_mshr=False, mem_latency=50):
    config = CacheConfig("test", size=size, assoc=assoc, line_size=line,
                         latency=latency, ports=ports, mshr_entries=4,
                         mshr_reads=2)
    cache = Cache(config, precise=precise, infinite_mshr=infinite_mshr)
    fetch_log = []
    writeback_log = []

    def fetch(addr, time, pc, is_prefetch):
        fetch_log.append((addr, time))
        return time + mem_latency

    cache.fetch_next = fetch
    cache.writeback_next = lambda addr, time: writeback_log.append((addr, time))
    cache.fetch_log = fetch_log
    cache.writeback_log = writeback_log
    return cache


def test_cold_miss_then_hit():
    cache = _cache()
    miss_ready = cache.access(pc=1, addr=0x100, time=0, is_write=False)
    assert miss_ready >= 50
    hit_ready = cache.access(pc=1, addr=0x100, time=miss_ready + 1, is_write=False)
    assert hit_ready == miss_ready + 2  # port grant + 1-cycle latency
    assert cache.st_reads.value == 2
    assert cache.st_read_misses.value == 1


def test_same_line_different_words_share_the_line():
    cache = _cache()
    ready = cache.access(1, 0x100, 0, False)
    assert cache.contains(0x11f)  # same 32-byte line
    assert cache.access(1, 0x11f, ready + 1, False) < ready + 10


def test_lru_replacement_order():
    cache = _cache(size=128, assoc=2, line=32)  # 2 sets of 2 ways
    t = 0
    # Three blocks mapping to set 0: 0x000, 0x040, 0x080.
    for addr in (0x000, 0x040):
        t = cache.access(1, addr, t + 1, False)
    cache.access(1, 0x000, t + 1, False)        # touch 0x000 -> MRU
    t = cache.access(1, 0x080, t + 10, False)   # evicts LRU = 0x040
    assert cache.contains(0x000)
    assert not cache.contains(0x040)
    assert cache.contains(0x080)


def test_dirty_eviction_triggers_writeback():
    cache = _cache(size=64, assoc=1, line=32)  # 2 sets, direct-mapped
    t = cache.access(1, 0x000, 0, is_write=True)
    t = cache.access(1, 0x080, t + 1, is_write=False)  # evicts dirty 0x000
    assert cache.writeback_log
    assert cache.writeback_log[0][0] == 0x000
    assert cache.st_writebacks.value == 1


def test_clean_eviction_no_writeback():
    cache = _cache(size=64, assoc=1, line=32)
    t = cache.access(1, 0x000, 0, is_write=False)
    cache.access(1, 0x080, t + 1, is_write=False)
    assert not cache.writeback_log


def test_allocate_on_write():
    cache = _cache()
    cache.access(1, 0x200, 0, is_write=True)
    line = cache.peek(0x200)
    assert line is not None
    assert line.dirty


def test_port_contention_slips_to_next_cycle():
    cache = _cache(ports=2)
    for addr in (0x100, 0x200, 0x300):
        cache.access(1, addr, 0, False)
    grants = cache.fetch_log  # all missed; fetch time reflects port grant
    # Third access got port at cycle 1 (2 ports at cycle 0) plus latency.
    assert grants[2][1] > grants[0][1]


def test_mshr_merge_returns_fill_time():
    cache = _cache()
    ready = cache.access(1, 0x100, 0, False)
    merged = cache.access(1, 0x110, 2, False)  # same line, still in flight
    assert merged >= ready - 1
    assert len(cache.fetch_log) == 1  # no second fetch


def test_mshr_full_stalls_next_miss():
    cache = _cache()
    t = 0
    for i in range(4):  # fill the 4 MSHRs
        cache.access(1, 0x1000 * (i + 1), t, False)
    before = cache.pipeline.next_free
    cache.access(1, 0x9000, 1, False)
    assert cache.pipeline.next_free > before  # the stall propagated


def test_infinite_mshr_never_stalls():
    cache = _cache(infinite_mshr=True)
    for i in range(20):
        cache.access(1, 0x1000 * (i + 1), 0, False)
    assert cache.mshr.full_stalls == 0


def test_imprecise_mode_skips_pipeline():
    cache = _cache(precise=False, infinite_mshr=True)
    for i in range(10):
        cache.access(1, 0x1000 * (i + 1), 0, False)
    assert cache.pipeline.accepts == 0


def test_insert_prefetch_and_useful_accounting():
    cache = _cache()
    assert cache.insert_prefetch(0x500, ready=30, time=0)
    assert not cache.insert_prefetch(0x500, ready=30, time=0)  # dedup
    ready = cache.access(1, 0x500, 40, False)
    assert ready < 50  # hit, fill already complete
    assert cache.st_useful_prefetches.value == 1
    assert cache.peek(0x500).prefetched is False  # flag cleared on use


def test_hit_on_in_flight_prefetch_waits_for_fill():
    cache = _cache()
    cache.insert_prefetch(0x500, ready=100, time=0)
    ready = cache.access(1, 0x500, 10, False)
    assert ready >= 100


def test_evict_block_with_writeback():
    cache = _cache()
    cache.access(1, 0x300, 0, is_write=True)
    assert cache.evict_block(cache.block_of(0x300), 100)
    assert not cache.contains(0x300)
    assert cache.writeback_log
    assert not cache.evict_block(cache.block_of(0x300), 100)  # already gone


def test_invalidate_drops_without_writeback():
    cache = _cache()
    cache.access(1, 0x300, 0, is_write=True)
    cache.invalidate(0x300)
    assert not cache.contains(0x300)
    assert not cache.writeback_log


def test_miss_rate():
    cache = _cache()
    t = cache.access(1, 0x100, 0, False)
    cache.access(1, 0x100, t + 1, False)
    assert cache.miss_rate == pytest.approx(0.5)


def test_peek_does_not_disturb_lru():
    cache = _cache(size=128, assoc=2, line=32)
    t = cache.access(1, 0x000, 0, False)
    t = cache.access(1, 0x040, t + 1, False)
    cache.peek(0x000)  # must NOT promote
    cache.access(1, 0x080, t + 10, False)
    assert not cache.contains(0x000)  # 0x000 stayed LRU


def test_reset():
    cache = _cache()
    cache.access(1, 0x100, 0, False)
    cache.reset()
    assert not cache.contains(0x100)
    assert cache.st_reads.value == 0


@settings(max_examples=40, deadline=None)
@given(
    addrs=st.lists(st.integers(min_value=0, max_value=0x4000), min_size=1,
                   max_size=120),
)
def test_set_occupancy_invariants(addrs):
    """Property: every set holds at most `assoc` lines with unique tags."""
    cache = _cache(size=512, assoc=2, line=32)
    t = 0
    for addr in addrs:
        t = max(t + 1, cache.access(1, addr, t + 1, False) - 40)
    for set_lines in cache._sets:
        assert len(set_lines) <= 2
        tags = [line.tag for line in set_lines]
        assert len(tags) == len(set(tags))
    for block in cache.resident_blocks():
        assert cache.contains(cache.addr_of(block))
