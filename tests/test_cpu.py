"""Tests for the out-of-order core timeline model."""

import dataclasses

from repro.core.config import CoreConfig, baseline_config
from repro.core.simulation import build_machine
from repro.isa.instr import Op, make_branch, make_load, make_op, make_store


def _run(trace, core_config=None, measure_from=0):
    config = baseline_config()
    if core_config is not None:
        config = dataclasses.replace(config, core=core_config)
    core, hierarchy = build_machine(config)
    return core.run(trace, measure_from=measure_from), hierarchy


def test_ipc_bounded_by_machine_width():
    # A small code loop: the instruction cache warms immediately.
    trace = [make_op(Op.INT_ALU, 0x100 + 4 * (i % 64)) for i in range(4000)]
    stats, _ = _run(trace)
    assert 0 < stats.ipc <= 8.0


def test_independent_alu_ops_reach_high_ipc():
    trace = [make_op(Op.INT_ALU, 0x100 + 4 * (i % 64)) for i in range(4000)]
    stats, _ = _run(trace)
    assert stats.ipc > 4.0


def test_dependence_chain_serialises():
    independent = [make_op(Op.INT_MUL, 0x100) for _ in range(2000)]
    chained = [make_op(Op.INT_MUL, 0x100, dep=1) for _ in range(2000)]
    free_stats, _ = _run(independent)
    chain_stats, _ = _run(chained)
    assert chain_stats.ipc < free_stats.ipc / 2
    # A 3-cycle multiply chain caps IPC near 1/3.
    assert chain_stats.ipc < 0.45


def test_fu_pool_limits_throughput():
    # Only 2 FP multipliers: 8-wide fetch cannot sustain more than 2/cycle.
    trace = [make_op(Op.FP_MUL, 0x100) for _ in range(3000)]
    stats, _ = _run(trace)
    assert stats.ipc <= 2.05


def test_mispredicted_branches_cost_fetch_bubbles():
    clean = [make_branch(0x100) for _ in range(2000)]
    dirty = [make_branch(0x100, mispredicted=True) for _ in range(2000)]
    clean_stats, _ = _run(clean)
    dirty_stats, _ = _run(dirty)
    assert dirty_stats.mispredicts == 2000
    assert dirty_stats.ipc < clean_stats.ipc / 2


def test_load_miss_latency_reaches_ipc():
    # Loads with huge strides miss everywhere; dependent consumers stall.
    trace = []
    for i in range(1500):
        trace.append(make_load(0x100, 0x100000 + i * 4096))
        trace.append(make_op(Op.INT_ALU, 0x104, dep=1))
    stats, _ = _run(trace)
    hit_trace = []
    for i in range(1500):
        hit_trace.append(make_load(0x100, 0x100000 + (i % 8) * 8))
        hit_trace.append(make_op(Op.INT_ALU, 0x104, dep=1))
    hit_stats, _ = _run(hit_trace)
    assert stats.ipc < hit_stats.ipc / 3
    assert stats.avg_load_latency > hit_stats.avg_load_latency * 3


def test_ruu_size_limits_memory_parallelism():
    # A 2-entry window allows ~2 outstanding misses, well below the MSHR's
    # 8: throughput drops accordingly.  (At 8+ entries the MSHR becomes the
    # binding limit and window size stops mattering — also true in life.)
    small_core = CoreConfig(ruu_size=2, lsq_size=2)
    trace = [make_load(0x100, 0x100000 + i * 4096) for i in range(1200)]
    small_stats, _ = _run(trace, core_config=small_core)
    big_stats, _ = _run(trace)
    assert small_stats.ipc < big_stats.ipc


def test_stores_do_not_block_commit():
    stores = [make_store(0x100, 0x100000 + i * 4096, i) for i in range(1200)]
    stats, _ = _run(stores)
    # Store misses are absorbed by the write buffer: IPC stays decent.
    assert stats.ipc > 0.5
    assert stats.stores == 1200


def test_stats_counts():
    trace = (
        [make_load(0x1, 0x100000)] * 5
        + [make_store(0x2, 0x100040, 1)] * 3
        + [make_branch(0x3)] * 2
        + [make_op(Op.INT_ALU, 0x4)] * 10
    )
    stats, _ = _run(trace)
    assert stats.instructions == 20
    assert stats.loads == 5
    assert stats.stores == 3
    assert stats.branches == 2


def test_measure_from_excludes_warmup():
    # Cold region then hot loop: warm-up exclusion raises measured IPC.
    trace = [make_load(0x100, 0x100000 + i * 4096) for i in range(600)]
    trace += [make_load(0x100, 0x200000 + (i % 4) * 8) for i in range(1400)]
    full_stats, _ = _run(trace)
    measured_stats, _ = _run(trace, measure_from=600)
    assert measured_stats.ipc > full_stats.ipc
    assert measured_stats.instructions == 1400


def test_empty_trace():
    stats, _ = _run([])
    assert stats.instructions == 0
    assert stats.cycles == 0
    assert stats.ipc == 0.0
