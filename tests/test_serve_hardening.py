"""Production hardening of the sweep service: the four defences.

* **quarantine** — a spec that burns its lease budget (it keeps killing
  whoever runs it) is resolved fleet-wide as ``kind="poison"`` by a
  durable WAL record; only an explicit operator action (``quarantine
  clear`` or ``--retry-failed``) re-opens it, with a fresh pedigree.
* **admission control** — a bounded in-flight watermark and a
  per-client cap; over the line, the server answers ``overloaded`` with
  a deterministic retry hint and reserves nothing.  The client's seeded
  backoff converges — shed work completes late, never wrong.
* **deadlines** — a submission can bound how stale an answer it will
  accept; work the fleet cannot start in time comes back as
  ``kind="timeout"`` holes and exhibits render DEGRADED, not dead.
* **fail-clean writes** — a full disk (``disk-full`` chaos) aborts the
  append before any byte lands: no torn store entry, no torn WAL line,
  and the retry succeeds.

Every defence is pinned here twice where it matters: once at the
fleet/store unit level (the WAL arithmetic), once through a live server
(the streamed contract a client sees).
"""

import dataclasses
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exec import ResultStore, RunSpec
from repro.exec.faults import (
    FaultPlan,
    maybe_disk_full,
    parse_fault_spec,
    set_active_plan,
    should_poison,
)
from repro.exec.policy import FailedRun, RetryPolicy
from repro.exec.telemetry import RunRecord, Telemetry
from repro.serve import (
    Fleet,
    ServeUnavailable,
    SweepClient,
    SweepServer,
    Worker,
    spec_payload,
)
from repro.serve import wal
from repro.serve.fleet import (
    KIND_ENQUEUE,
    KIND_QUARANTINE,
    KIND_RESET,
)
from repro.serve.protocol import decode_message, submit_message

REPO = Path(__file__).resolve().parent.parent

N = 2000

HASH_A = "a" * 64
HASH_B = "b" * 64


def _spec(mechanism="TP", benchmark="swim"):
    return RunSpec(benchmark, mechanism, n_instructions=N)


def _as_dict(result):
    return dataclasses.asdict(result)


def _payload(benchmark="swim", mechanism="TP"):
    return {"benchmark": benchmark, "mechanism": mechanism}


# -- fault plan: poison selector and disk-full --------------------------------

def test_poison_selector_parses_and_matches_by_hash_prefix():
    plan = parse_fault_spec("kill-worker:0.5,poison:ab12,seed=7")
    # describe() round-trips the selector, so a respawned worker
    # re-parsing its own environment sees the identical plan.
    assert "poison:ab12" in plan.describe()
    assert should_poison(plan, "ab12" + "0" * 60)
    assert not should_poison(plan, "ab13" + "0" * 60)
    # No selector -> nothing is poison, whatever the other faults say.
    assert not should_poison(parse_fault_spec("kill-worker:0.5,seed=7"),
                             "ab12" + "0" * 60)


def test_bad_poison_prefix_is_rejected_at_parse_time():
    # A selector that can never match a lowercase-hex content hash is a
    # typo, not a no-op chaos plan.
    for bad in ("poison:XYZ", "poison:AB12", "poison:"):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)


def test_disk_full_fires_once_per_fault_key():
    plan = parse_fault_spec("disk-full:1.0,seed=3")
    with pytest.raises(OSError) as err:
        maybe_disk_full(plan, "put:" + HASH_A, 1)
    assert err.value.errno == 28  # ENOSPC
    # The retry of the same write is clean: disk-full is a one-shot
    # per key, so chaos runs converge instead of wedging on a write
    # that can never land.
    maybe_disk_full(plan, "put:" + HASH_A, 2)


# -- lease budget arithmetic ---------------------------------------------------

def test_retry_policy_derives_the_lease_bound():
    # One lease more than the attempt budget: every sanctioned retry
    # gets its lease, and the first claim *beyond* the budget is the
    # quarantine trigger.
    assert RetryPolicy().max_leases == RetryPolicy().max_attempts + 1
    assert RetryPolicy(retries=2).max_leases == 4


def test_fleet_quarantines_a_spec_that_burns_its_leases(tmp_path):
    fleet = Fleet(tmp_path, ttl=0.05)  # default max_leases = 2
    fleet.enqueue({HASH_A: _payload()})

    # Two workers lease it and (silently) die; each lease lapses.
    for count, worker in enumerate(("w1", "w2"), start=1):
        claim = fleet.claim(worker)
        assert claim is not None and claim.lease_count == count
        time.sleep(0.1)

    # The third claim transaction sees lease count 3 > 2 and, instead
    # of granting, resolves the spec durably as poison.
    assert fleet.claim("w3") is None
    snap = fleet.snapshot()
    assert snap.quarantined == {HASH_A}
    failure = snap.failures[HASH_A]
    assert failure.kind == "poison"
    assert snap.drained  # quarantine IS a resolution; the sweep ends

    # The verdict is a durable queue-WAL record, not claimant memory:
    # a fresh replay (new Fleet object) reaches the same state.
    records, corrupt = wal.replay(fleet.queue_path)
    assert corrupt == 0
    assert [r["kind"] for r in records
            if r["kind"] == KIND_QUARANTINE] == [KIND_QUARANTINE]
    assert Fleet(tmp_path).snapshot().quarantined == {HASH_A}

    # Re-enqueueing (a naive resubmission) does NOT re-open it.
    fleet.enqueue({HASH_A: _payload()})
    assert fleet.claim("w4") is None
    assert Fleet(tmp_path).snapshot().quarantined == {HASH_A}


def test_clear_quarantine_reopens_with_a_fresh_pedigree(tmp_path):
    fleet = Fleet(tmp_path, ttl=0.05, max_leases=0)
    fleet.enqueue({HASH_A: _payload()})
    assert fleet.claim("w1") is None  # immediate quarantine at bound 0
    assert fleet.snapshot().quarantined == {HASH_A}

    assert fleet.clear_quarantine() == [HASH_A]
    snap = fleet.snapshot()
    assert not snap.quarantined and HASH_A in snap.enqueued

    # The clear also reset the crash-loop pedigree: the next lease is
    # count 1, not count 3 — the reopened spec gets a full budget.
    generous = Fleet(tmp_path, ttl=60.0)  # bound back at the default
    claim = generous.claim("w2")
    assert claim is not None and claim.lease_count == 1
    # And the reset is on disk, not in this process.
    records, _ = wal.replay(fleet.lease_path)
    assert KIND_RESET in [r["kind"] for r in records]


def test_selective_clear_quarantine_leaves_other_verdicts(tmp_path):
    fleet = Fleet(tmp_path, ttl=0.05, max_leases=0)
    fleet.enqueue({HASH_A: _payload(), HASH_B: _payload(benchmark="art")})
    while fleet.claim("w1") is not None:
        pass
    assert fleet.snapshot().quarantined == {HASH_A, HASH_B}
    assert fleet.clear_quarantine([HASH_A]) == [HASH_A]
    snap = fleet.snapshot()
    assert snap.quarantined == {HASH_B}
    assert HASH_A in snap.enqueued


# -- deadlines at the fleet level ---------------------------------------------

def test_expired_deadline_resolves_as_timeout_instead_of_granting(tmp_path):
    fleet = Fleet(tmp_path, ttl=60.0)
    fleet.enqueue({HASH_A: _payload()}, deadline=time.time() - 1.0)
    # The claim transaction expires it rather than handing a worker
    # work whose answer nobody will wait for.
    assert fleet.claim("w1") is None
    snap = fleet.snapshot()
    assert snap.expired == {HASH_A}
    assert snap.failures[HASH_A].kind == "timeout"
    assert snap.drained


def test_lease_renewal_respects_the_submission_deadline(tmp_path):
    fleet = Fleet(tmp_path, ttl=0.2)
    fleet.enqueue({HASH_A: _payload()}, deadline=time.time() + 0.25)
    claim = fleet.claim("w1")
    assert claim is not None
    # Before the deadline the heartbeat extends the lease as usual...
    assert fleet.renew(HASH_A, "w1") is not None
    time.sleep(0.3)
    # ...after it, no extension: the lease lapses on schedule and the
    # next claimant resolves the spec as expired.
    assert fleet.renew(HASH_A, "w1") is None
    assert fleet.claim("w2") is None
    assert Fleet(tmp_path).snapshot().expired == {HASH_A}


# -- disk-full: writes fail clean ---------------------------------------------

def test_store_put_under_disk_full_leaves_no_torn_entry(tmp_path):
    store = ResultStore(tmp_path / "cache")
    spec = RunSpec("swim", "TP", n_instructions=500)
    result = spec.execute()
    set_active_plan(parse_fault_spec("disk-full:1.0,seed=1"))
    try:
        with pytest.raises(OSError):
            store.put(spec, result, fault_attempt=1)
        # Fail-clean: no entry, and no stranded temp for fsck to find.
        assert store.get(spec) is None
        assert not list((tmp_path / "cache").rglob("*.tmp"))
        # The retry (attempt 2 never consults the schedule) lands.
        store.put(spec, result, fault_attempt=2)
    finally:
        set_active_plan(None)
    assert _as_dict(store.get(spec)) == _as_dict(result)
    report = store.fsck()
    assert report.clean


def test_wal_append_under_disk_full_leaves_no_torn_line(tmp_path):
    path = tmp_path / "queue.jsonl"
    wal.append_record(path, KIND_ENQUEUE, spec=HASH_A, payload=_payload())
    size_before = path.stat().st_size
    set_active_plan(parse_fault_spec("disk-full:1.0,seed=1"))
    try:
        with pytest.raises(OSError):
            wal.append_record(path, "done", spec=HASH_A,
                              fault_key="done:" + HASH_A, fault_attempt=1)
        # The log is exactly as it was: no torn tail to tolerate.
        assert path.stat().st_size == size_before
        records, corrupt = wal.replay(path)
        assert corrupt == 0 and [r["kind"] for r in records] == [KIND_ENQUEUE]
        wal.append_record(path, "done", spec=HASH_A,
                          fault_key="done:" + HASH_A, fault_attempt=2)
    finally:
        set_active_plan(None)
    records, corrupt = wal.replay(path)
    assert corrupt == 0
    assert [r["kind"] for r in records] == [KIND_ENQUEUE, "done"]


def test_worker_releases_its_lease_when_the_store_write_fails(tmp_path):
    store = ResultStore(tmp_path / "cache")
    fleet = Fleet(store.serve_dir, ttl=60.0)
    spec = _spec()
    fleet.enqueue({spec.content_hash: spec_payload(spec)})
    # Every store put draws ENOSPC on its first attempt.  The plan is
    # armed process-globally, exactly as a worker process arms its
    # $REPRO_FAULTS at startup: the store's write hook consults the
    # active plan, not the worker object.
    plan = parse_fault_spec("disk-full:1.0,seed=1")
    sick = Worker(fleet, store, "w1", plan=plan)
    set_active_plan(plan)
    try:
        assert sick.run_one()
        snap = fleet.snapshot()
        # The simulation succeeded but nothing landed: the worker
        # released the lease (no TTL lapse needed) and recorded no
        # resolution.
        assert spec.content_hash in snap.enqueued
        assert spec.content_hash not in snap.done
        assert spec.content_hash not in snap.leases
        # The market re-grants immediately; the put's second attempt
        # is clean and the spec resolves with the write intact.
        assert sick.run_one()
    finally:
        set_active_plan(None)
    snap = fleet.snapshot()
    assert spec.content_hash in snap.done and snap.drained
    assert _as_dict(store.get(spec)) == _as_dict(spec.execute())


# -- protocol: hardening fields are omitted at their defaults ------------------

def test_submit_message_omits_deadline_and_retry_failed_by_default():
    specs = [_spec()]
    plain = submit_message(specs, "c1")
    record = decode_message(plain)
    assert "deadline" not in record and "retry_failed" not in record

    when = time.time() + 5.0
    armed = decode_message(submit_message(specs, "c1", deadline=when,
                                          retry_failed=True))
    assert armed["deadline"] == pytest.approx(when)
    assert armed["retry_failed"] is True


# -- a live server: quarantine, shedding, deadlines ---------------------------

class _Service:
    """A live server on a unix socket plus optional worker threads."""

    def __init__(self, tmp_path, ttl=60.0, **server_kwargs):
        import asyncio

        self.store = ResultStore(tmp_path / "cache")
        self.fleet = Fleet(self.store.serve_dir, ttl=ttl)
        self.socket_path = str(tmp_path / "serve.sock")
        self.server = SweepServer(
            self.store, self.fleet,
            socket_path=Path(self.socket_path), watch_seconds=0.02,
            **server_kwargs,
        )
        self.loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self.loop.run_forever, daemon=True)
        self._serve_future = None
        self._stop = threading.Event()
        self._worker_threads = []

    def start(self):
        import asyncio

        self._loop_thread.start()
        self._serve_future = asyncio.run_coroutine_threadsafe(
            self.server.serve(), self.loop)
        deadline = time.monotonic() + 10.0
        while not Path(self.socket_path).exists():
            if time.monotonic() > deadline:
                raise RuntimeError("server socket never appeared")
            if self._serve_future.done():
                self._serve_future.result()  # surface the startup error
            time.sleep(0.01)
        return self

    def start_worker(self, worker_id):
        worker = Worker(self.fleet, self.store, worker_id, plan=FaultPlan())

        def loop():
            while not self._stop.is_set():
                if not worker.run_one():
                    time.sleep(0.01)

        thread = threading.Thread(target=loop, daemon=True)
        thread.start()
        self._worker_threads.append(thread)
        return worker

    def client(self, client_id):
        return SweepClient(socket_path=self.socket_path,
                           client_id=client_id, timeout=120.0)

    def close(self):
        self._stop.set()
        for thread in self._worker_threads:
            thread.join(timeout=5.0)
        if self._serve_future is not None:
            self._serve_future.cancel()
        time.sleep(0.05)  # let the cancellation's cleanup run
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._loop_thread.join(timeout=5.0)
        self.loop.close()


def test_service_streams_quarantine_and_retry_failed_reopens(tmp_path):
    svc = _Service(tmp_path, ttl=0.1).start()
    try:
        spec = _spec()
        box = {}

        def submit(key, **kwargs):
            box[key] = svc.client(key).submit([spec], **kwargs)

        thread = threading.Thread(target=submit, args=("first",))
        thread.start()
        # Stand in for a crash-looping fleet: burn both sanctioned
        # leases without resolving, letting each lapse.
        for worker in ("w1", "w2"):
            deadline = time.monotonic() + 10.0
            while svc.fleet.claim(worker) is None:
                assert time.monotonic() < deadline, "claim never granted"
                time.sleep(0.02)
            time.sleep(0.2)
        # The third claim trips the quarantine; the watcher streams the
        # resolution to the blocked subscriber.
        assert svc.fleet.claim("w3") is None
        thread.join(timeout=30.0)
        assert not thread.is_alive()

        outcome = box["first"]
        assert outcome.results == {}
        assert outcome.failures[spec.content_hash].kind == "poison"
        assert outcome.quarantined == 1

        # A plain resubmission replays the verdict from the WAL —
        # instantly, with no fleet involvement at all.
        replay = svc.client("again").submit([spec])
        assert replay.failures[spec.content_hash].kind == "poison"
        assert replay.quarantined == 1

        # --retry-failed is the operator's re-open: the server clears
        # the quarantine and a (now healthy) worker runs it clean.
        svc.start_worker("healthy")
        retried = svc.client("retry").submit([spec], retry_failed=True)
        assert retried.failures == {}
        assert _as_dict(retried.results[spec.content_hash]) == \
            _as_dict(spec.execute())
    finally:
        svc.close()


def test_service_sheds_over_the_watermark_and_converges(tmp_path):
    svc = _Service(tmp_path, max_queue=1, retry_after=0.01).start()
    try:
        spec_a, spec_b = _spec("TP"), _spec("Base")
        box = {}

        def submit(key, spec):
            box[key] = svc.client(key).submit([spec])

        first = threading.Thread(target=submit, args=("a", spec_a))
        first.start()
        # Wait until A's batch owns the (size-1) in-flight table...
        deadline = time.monotonic() + 10.0
        while spec_a.content_hash not in svc.fleet.snapshot().enqueued:
            assert time.monotonic() < deadline, "first batch never admitted"
            time.sleep(0.01)
        # ...so B's submission is over the watermark: shed, not queued.
        second = threading.Thread(target=submit, args=("b", spec_b))
        second.start()
        time.sleep(0.15)  # let B absorb at least one overloaded answer
        svc.start_worker("w1")
        first.join(timeout=60.0)
        second.join(timeout=60.0)
        assert not first.is_alive() and not second.is_alive()

        # Shed work completed late, never wrong.
        assert box["b"].shed >= 1
        for key, spec in (("a", spec_a), ("b", spec_b)):
            assert _as_dict(box[key].results[spec.content_hash]) == \
                _as_dict(spec.execute())

        # Shedding reserved nothing: each hash was enqueued exactly
        # once, by the submission that was actually admitted.
        records, _ = wal.replay(svc.fleet.queue_path)
        enqueues = [r["spec"] for r in records if r["kind"] == KIND_ENQUEUE]
        assert sorted(enqueues) == sorted(
            [spec_a.content_hash, spec_b.content_hash])
    finally:
        svc.close()


def test_service_rejects_a_batch_over_the_per_client_cap(tmp_path):
    svc = _Service(tmp_path, max_client_inflight=1).start()
    try:
        with pytest.raises(ServeUnavailable, match="rejected"):
            svc.client("greedy").submit([_spec("TP"), _spec("Base")])
        # Nothing was reserved for the rejected batch.
        assert svc.fleet.snapshot().enqueued == {}
        # Within the cap the same client is served normally.
        svc.start_worker("w1")
        outcome = svc.client("greedy").submit([_spec("TP")])
        assert outcome.failures == {}
    finally:
        svc.close()


def test_service_expires_undispatched_work_at_the_deadline(tmp_path):
    svc = _Service(tmp_path).start()  # no workers: nothing dispatches
    try:
        spec = _spec()
        outcome = svc.client("impatient").submit(
            [spec], deadline=time.time() + 0.3)
        assert outcome.results == {}
        failure = outcome.failures[spec.content_hash]
        assert failure.kind == "timeout"
        assert outcome.expired == 1
        assert svc.fleet.snapshot().expired == {spec.content_hash}
    finally:
        svc.close()


# -- executor summary: new counters render only when nonzero -------------------

def test_summary_line_renders_hardening_parts_only_when_nonzero():
    telemetry = Telemetry()
    telemetry.record(RunRecord("h1", "swim", "TP", "simulated", 0.25))
    telemetry.record_batch(1, 1, 0.5)
    clean = telemetry.summary_line()
    # The clean line is byte-identical to what it always was: the
    # hardening counters are invisible until something actually sheds,
    # quarantines or expires.
    assert clean == ("executor: 1 results, 1 simulated, 0 cache hits "
                     "(0 memo, 0 store, 0 deduped), wall 0.50s, "
                     "avg 0.250s/sim")
    telemetry.shed = 2
    telemetry.quarantined = 1
    telemetry.expired = 3
    assert telemetry.summary_line() == \
        clean + ", 2 shed, 1 quarantined, 3 expired"


# -- fsck: quarantine cross-check ----------------------------------------------

def _fsck(cache_dir, *flags):
    from repro.exec.__main__ import main
    return main(["fsck", "--cache-dir", str(cache_dir), *flags])


def test_fsck_cross_checks_quarantine_against_the_store(tmp_path, capsys):
    cache = tmp_path / "cache"
    store = ResultStore(cache)
    spec = RunSpec("swim", "TP", n_instructions=500)
    fleet = Fleet(store.serve_dir, ttl=0.05, max_leases=0)
    fleet.enqueue({spec.content_hash: {"benchmark": "swim",
                                       "mechanism": "TP",
                                       "n_instructions": 500}})
    assert fleet.claim("w1") is None  # immediate quarantine at bound 0

    # Consistent state: the poison verdict and the store hole agree.
    assert _fsck(cache) == 0
    out = capsys.readouterr().out
    assert "1 quarantined" in out

    # A sound store entry behind the verdict is a stale quarantine: the
    # spec provably runs to a good result, yet every future submission
    # would replay the hole.
    store.put(spec, spec.execute())
    assert _fsck(cache) == 1
    out = capsys.readouterr().out
    assert "stale poison verdict" in out

    # --prune absolves it: done record supersedes, pedigree retired.
    assert _fsck(cache, "--prune") == 0
    out = capsys.readouterr().out
    assert "absolved" in out
    snap = Fleet(store.serve_dir).snapshot()
    assert not snap.quarantined and spec.content_hash in snap.done
    # Idempotent: the repaired store is simply clean now.
    assert _fsck(cache) == 0


# -- CLI surfaces (subprocess) -------------------------------------------------

def _cli_env(tmp_path, cache, faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    env["REPRO_LEDGER"] = str(tmp_path / "ledger.json")
    env["REPRO_CACHE_DIR"] = str(tmp_path / cache)
    if faults:
        env["REPRO_FAULTS"] = faults
    return env


def test_serve_client_cli_exits_2_when_the_server_is_absent(tmp_path):
    missing = str(tmp_path / "absent.sock")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.serve", "client",
         "--socket", missing, "--n", "500"],
        capture_output=True, text=True,
        env=_cli_env(tmp_path, "cache"), cwd=REPO, timeout=60,
    )
    assert proc.returncode == 2
    # One operator-facing line, not a traceback.
    assert "Traceback" not in proc.stderr
    assert f"cannot connect to {missing} (is the server running?)" \
        in proc.stderr
    assert len(proc.stderr.strip().splitlines()) == 1


def test_exhibit_cli_exits_2_when_the_server_is_absent(tmp_path):
    missing = str(tmp_path / "absent.sock")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "fig10", "--n", "500",
         "--benchmarks", "swim", "--serve", missing],
        capture_output=True, text=True,
        env=_cli_env(tmp_path, "cache"), cwd=REPO, timeout=60,
    )
    assert proc.returncode == 2
    assert "Traceback" not in proc.stderr
    assert f"cannot connect to {missing} (is the server running?)" \
        in proc.stderr


def test_deadline_without_serve_is_a_usage_error(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "fig10", "--n", "500",
         "--benchmarks", "swim", "--deadline", "5"],
        capture_output=True, text=True,
        env=_cli_env(tmp_path, "cache"), cwd=REPO, timeout=60,
    )
    assert proc.returncode == 2
    assert "--deadline" in proc.stderr


def test_cli_deadline_renders_degraded_exhibit(tmp_path):
    """An expiring deadline degrades the exhibit; it does not kill it.

    The cache is pre-warmed with one benchmark's results, then a
    two-benchmark exhibit runs against a server with *no fleet* and a
    deadline nothing can meet.  The warmed benchmark resolves from the
    store; the other expires into timeout holes — so the exhibit must
    drop it, render DEGRADED, and still exit 0.
    """
    env = _cli_env(tmp_path, "cache")
    warm = subprocess.run(
        [sys.executable, "-m", "repro", "fig10", "--n", str(N),
         "--benchmarks", "swim", "--jobs", "1"],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=600,
    )
    assert warm.returncode == 0, warm.stderr

    socket_path = str(tmp_path / "serve.sock")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "server",
         "--socket", socket_path],
        env=env, cwd=REPO, stderr=subprocess.PIPE, text=True,
    )
    try:
        deadline = time.monotonic() + 30.0
        while not Path(socket_path).exists():
            assert server.poll() is None, "server died during startup"
            assert time.monotonic() < deadline, "server never listened"
            time.sleep(0.05)

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fig10", "--n", str(N),
             "--benchmarks", "swim,art", "--serve", socket_path,
             "--deadline", "1.0"],
            capture_output=True, text=True, env=env, cwd=REPO, timeout=120,
        )
    finally:
        server.terminate()
        server.wait(timeout=30)

    assert proc.returncode == 0, proc.stderr
    assert "DEGRADED" in proc.stdout
    assert "art" in proc.stdout  # the dropped benchmark is named
    # The holes are accounted as expirations, not generic failures.
    assert "expired" in proc.stderr
    # The ledger (one JSON record per line) accounted the expirations.
    lines = (tmp_path / "ledger.json").read_text().strip().splitlines()
    last = json.loads(lines[-1])
    assert last["metrics"]["expired"] > 0


# -- the composed chaos soak (subprocess) --------------------------------------

def test_soak_converges_at_seed_7(tmp_path):
    """The shipped harness, end to end, exactly as CI invokes it.

    Pinned at seed=7: serial baseline, chaos leg byte-identical to it,
    poison leg quarantining the seed-chosen hash, overload leg shedding
    and converging — each leg fsck-clean.  A pass here is the service's
    whole robustness story in one subprocess.
    """
    proc = subprocess.run(
        [sys.executable, "-m", "repro.serve", "soak", "--seed", "7",
         "--n", "800", "--workers", "2", "--clients", "2",
         "--cache-dir", str(tmp_path / "soak")],
        capture_output=True, text=True,
        env=_cli_env(tmp_path, "unused-cache"), cwd=REPO, timeout=900,
    )
    assert proc.returncode == 0, \
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    assert "soak: PASS" in proc.stderr or "soak: PASS" in proc.stdout
