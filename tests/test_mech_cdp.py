"""Behavioural tests for content-directed prefetching and CDP+SP."""

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import baseline_config
from repro.core.simulation import run_trace
from repro.isa.instr import make_load
from repro.mechanisms.registry import create
from repro.workloads.image import MemoryImage
from repro.workloads.patterns import PointerChaseEngine

import random


def _chase_setup(n_nodes=256, node_size=64, next_offset=0, **kwargs):
    image = MemoryImage()
    engine = PointerChaseEngine(0x10000000, random.Random(5), n_nodes=n_nodes,
                                node_size=node_size, next_offset=next_offset,
                                n_chains=1, **kwargs)
    engine.setup(image, value_locality=0.2)
    from repro.isa.instr import Op, make_op
    trace = []
    for _ in range(n_nodes * 3):
        trace.append(make_load(0x400, engine.next(), dep=4))
        trace.append(make_op(Op.INT_ALU, 0x408, dep=1))
        trace.append(make_op(Op.INT_ALU, 0x40C))
        trace.append(make_op(Op.INT_ALU, 0x410))
    return trace, image


def test_scans_fills_and_finds_pointers():
    trace, image = _chase_setup()
    cdp = create("CDP")
    run_trace(trace, cdp, image=image)
    assert cdp.st_lines_scanned.value > 0
    assert cdp.st_candidates.value > 0


def test_speeds_up_clean_pointer_chains():
    trace, image = _chase_setup()
    base = run_trace(trace, image=image)
    cdp = run_trace(trace, create("CDP"), image=image)
    assert cdp.ipc > base.ipc * 1.02


def test_inert_without_an_image():
    trace, _ = _chase_setup()
    cdp = create("CDP")
    run_trace(trace, cdp, image=None)
    assert cdp.st_lines_scanned.value == 0


def test_ammp_layout_defeats_cdp():
    """Next pointer at byte 88 of 96-byte nodes: the prefetched line never
    contains the word the demand will touch, so CDP gains nothing while a
    clean layout gains clearly (Section 3.1's ammp story)."""
    clean_trace, clean_image = _chase_setup()
    ammp_trace, ammp_image = _chase_setup(node_size=96, next_offset=88)
    clean_gain = (run_trace(clean_trace, create("CDP"), image=clean_image).ipc
                  / run_trace(clean_trace, image=clean_image).ipc)
    ammp_gain = (run_trace(ammp_trace, create("CDP"), image=ammp_image).ipc
                 / run_trace(ammp_trace, image=ammp_image).ipc)
    assert clean_gain > 1.02
    assert ammp_gain < clean_gain - 0.01


def test_decoy_pointers_waste_bandwidth():
    """Decoy payloads pointing at never-visited memory (the mcf trap)
    multiply prefetch traffic without a matching gain."""
    clean_trace, clean_image = _chase_setup()
    decoy_trace, decoy_image = _chase_setup()
    # Plant decoys by hand: every node's second word points into a region
    # the traversal never touches (but that passes the pointer test).
    decoy_region = 0x30000000
    decoy_image.note_heap(decoy_region, decoy_region + (1 << 20))
    for slot in range(256):
        node = 0x10000000 + slot * 64
        decoy_image.write(node + 8, decoy_region + slot * 4096)
    clean_mech = create("CDP")
    decoy_mech = create("CDP")
    clean = run_trace(clean_trace, clean_mech, image=clean_image)
    decoy = run_trace(decoy_trace, decoy_mech, image=decoy_image)
    clean_base = run_trace(clean_trace, image=clean_image)
    decoy_base = run_trace(decoy_trace, image=decoy_image)
    # Decoys add real memory traffic...
    assert decoy.memory_accesses > clean.memory_accesses * 1.15
    # ...without improving the outcome.
    decoy_gain = decoy.ipc / decoy_base.ipc
    clean_gain = clean.ipc / clean_base.ipc
    assert decoy_gain < clean_gain + 0.02


def test_depth_threshold_bounds_the_chase():
    cdp = create("CDP")
    h = MemoryHierarchy(baseline_config(), mechanism=cdp)
    # _scan at the threshold depth must not emit.
    cdp._scan(block=100, depth=cdp.DEPTH_THRESHOLD, time=0)
    assert cdp.st_lines_scanned.value == 0


class TestCDPSP:
    def test_composite_exposes_both_queues(self):
        cdpsp = create("CDPSP")
        queues = list(cdpsp.iter_queues())
        assert len(queues) == 2
        assert {q.capacity for q in queues} == {1, 128}

    def test_covers_both_strides_and_pointers(self):
        from repro.isa.instr import Op, make_op
        chase_trace, image = _chase_setup()
        trace = list(chase_trace)
        # Append a strided phase (with filler so prefetches can issue).
        for i in range(400):
            trace.append(make_load(0x800, 0x20000000 + i * 256))
            for k in range(19):
                trace.append(make_op(Op.INT_ALU, 0x810 + 4 * k))
        base = run_trace(trace, image=image)
        combo = run_trace(trace, create("CDPSP"), image=image)
        sp_only = run_trace(trace, create("SP"), image=image)
        cdp_only = run_trace(trace, create("CDP"), image=image)
        assert combo.ipc > base.ipc
        assert combo.ipc >= max(sp_only.ipc, cdp_only.ipc) * 0.95

    def test_aggregated_table_accesses(self):
        trace, image = _chase_setup()
        cdpsp = create("CDPSP")
        run_trace(trace, cdpsp, image=image)
        assert cdpsp.total_table_accesses >= (
            cdpsp.sp.st_table_accesses.value
        )

    def test_structures_union(self):
        cdpsp = create("CDPSP")
        from repro.core.simulation import build_machine
        build_machine(mechanism=cdpsp)
        names = {spec.name for spec in cdpsp.structures()}
        assert any("sp_" in name for name in names)
        assert any("cdp_" in name for name in names)
