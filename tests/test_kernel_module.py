"""Unit tests for the MicroLib component model."""

import pytest

from repro.kernel.module import Component, Port, StatCounter


def test_hierarchy_paths():
    root = Component("machine")
    cache = Component("l1", parent=root)
    mech = Component("vc", parent=cache)
    assert root.path == "machine"
    assert cache.path == "machine.l1"
    assert mech.path == "machine.l1.vc"
    assert list(root.walk()) == [root, cache, mech]


def test_stats_declaration_and_report():
    root = Component("m")
    child = Component("c", parent=root)
    hits = child.add_stat("hits", "cache hits")
    hits.add()
    hits.add(2)
    report = root.stats_report()
    assert report == {"m.c.hits": 3}


def test_duplicate_stat_rejected():
    comp = Component("x")
    comp.add_stat("s")
    with pytest.raises(ValueError):
        comp.add_stat("s")


def test_reset_stats_recursive():
    root = Component("m")
    child = Component("c", parent=root)
    stat = child.add_stat("n")
    stat.add(5)
    root.reset_stats()
    assert stat.value == 0


def test_port_binding_is_symmetric():
    a = Component("a")
    b = Component("b")
    pa = a.add_port("out")
    pb = b.add_port("in")
    pa.bind(pb)
    assert pa.peer is pb
    assert pb.peer is pa
    assert pa.bound and pb.bound
    assert pa.qualified_name == "a.out"


def test_rebinding_a_port_is_an_error():
    a, b, c = Component("a"), Component("b"), Component("c")
    pa, pb, pc = a.add_port("p"), b.add_port("p"), c.add_port("p")
    pa.bind(pb)
    with pytest.raises(ValueError):
        pa.bind(pc)


def test_duplicate_port_rejected():
    comp = Component("x")
    comp.add_port("p")
    with pytest.raises(ValueError):
        comp.add_port("p")


def test_params():
    comp = Component("x")
    comp.set_param("size", 1024)
    assert comp.params["size"] == 1024


def test_stat_counter_reset():
    stat = StatCounter("s")
    stat.add(7)
    stat.reset()
    assert stat.value == 0
