"""Legacy setup shim for environments whose pip lacks the wheel package."""

from setuptools import setup

setup()
