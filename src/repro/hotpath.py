"""The ``@hotpath`` marker: a machine-readable contract for hot functions.

The simulator's throughput rests on a handful of functions that run once
per trace record or once per kernel event — the drain loop, the cache
probe/fill path, the pipeline walks, the DRAM front end, the decay
callbacks.  PR 6 bought its speedup by hand-hoisting attribute chains and
keeping allocation out of those bodies, and nothing but convention stops
an ordinary refactor from quietly undoing that work.

``@hotpath`` turns the convention into a contract.  Decorating a function
does nothing at runtime (the decorator returns its argument unchanged, so
there is no call or attribute overhead anywhere); what it does is opt the
function's body into the SIM7xx family of simlint rules
(:mod:`repro.analysis.hotpath`), which then flag:

* SIM701 — repeated un-hoisted attribute chains in loops;
* SIM702 — allocation (displays, comprehensions, f-strings, list ``+``)
  in the per-iteration body;
* SIM703 — ``try``/``with`` blocks entered per iteration;
* SIM704 — loop-invariant constant-key subscripts left un-hoisted;
* SIM705 — per-iteration calls through ``self.``.

The contract, precisely: inside a marked function, the *hot scope* is the
body of every loop it contains, or the whole body when it contains no
loop (a loop-free marked function is itself the per-event/per-record
unit, e.g. a kernel callback or ``Cache.access``).  Within the hot scope
the five rules above must either hold or carry an explicit
``# simlint: allow[SIM70x] <reason>`` justification — deliberate costs
are fine, silent ones are not.

Mark the function that *is* the per-record/per-event unit, not its
callers; see docs/analysis.md ("Hot-path lint & fast-path verification")
for the rule catalogue with fix examples.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable[..., object])


def hotpath(fn: F) -> F:
    """Mark ``fn`` as hot-path code policed by the SIM7xx lint rules."""
    return fn
