"""Functional memory image.

The original MicroLib validated cache models by *executing* programs — "the
cache not only contains the addresses but the actual values of the data"
(Section 2.2) — and two mechanisms genuinely need values: the Frequent Value
Cache compresses lines whose words come from a small recurring value set,
and Content-Directed Prefetching scans refilled lines for words that look
like pointers.

:class:`MemoryImage` is a sparse word-addressable memory (8-byte words).
Workload generators populate it with arrays and linked data structures;
the simulated machine's stores update it; mechanisms read lines from it.
It also tracks the heap bounds so CDP's "does this word look like an
address?" test works exactly as in the original: value within the data
region and word-aligned.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.kernel.state import restore_fields, snapshot_fields

WORD_BYTES = 8


class MemoryImage:
    """Sparse functional memory with pointer-region tracking."""

    #: ``_pending`` is custom-handled: the base image can be tens of
    #: thousands of words and is reproducible from the workload store, so
    #: the snapshot records only whether it was materialised plus the
    #: overlay ``_words`` (writes made since load).
    SNAPSHOT_FIELDS = ("_words", "heap_lo", "heap_hi", "reads", "writes")
    SNAPSHOT_EXEMPT = ("_pending",)

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}
        #: Optional lazily-thawed base image: a pair of parallel address /
        #: value sequences (set by the on-disk workload store).  Reads and
        #: size queries materialise it into ``_words`` on first use; a run
        #: that only *writes* (most timing runs — values are only consumed
        #: by value-based mechanisms like FVC and CDP) never pays the cost
        #: of building a 60k-entry dict.
        self._pending = None
        self.heap_lo: int = 0
        self.heap_hi: int = 0
        self.reads = 0
        self.writes = 0

    def _materialize(self) -> None:
        """Thaw the pending base image under any overlay writes."""
        pending = self._pending
        if pending is None:
            return
        self._pending = None
        base = dict(zip(*pending))
        base.update(self._words)  # stores made since load win, as they must
        self._words = base

    # -- region management -------------------------------------------------------

    def note_heap(self, lo: int, hi: int) -> None:
        """Extend the recorded heap (pointer-candidate) address range."""
        if self.heap_hi == 0:
            self.heap_lo, self.heap_hi = lo, hi
        else:
            self.heap_lo = min(self.heap_lo, lo)
            self.heap_hi = max(self.heap_hi, hi)

    def looks_like_pointer(self, value: int) -> bool:
        """CDP's candidate test: aligned and within the data region."""
        if value <= 0 or value % WORD_BYTES:
            return False
        return self.heap_lo <= value < self.heap_hi

    # -- word access ------------------------------------------------------------

    @staticmethod
    def _word_addr(addr: int) -> int:
        return addr & ~(WORD_BYTES - 1)

    @staticmethod
    def _uninitialised(word_addr: int) -> int:
        """Deterministic garbage for never-written words.

        Real memory is not zero-filled; returning 0 everywhere would make
        every untouched line look perfectly value-compressible to the FVC.
        The value is odd, so it can never satisfy the aligned-pointer test.
        """
        return ((word_addr * 2654435761) & 0xFFFFFFFF) | 1

    def write(self, addr: int, value: int) -> None:
        self._words[self._word_addr(addr)] = value
        self.writes += 1

    def read(self, addr: int) -> int:
        if self._pending is not None:
            self._materialize()
        self.reads += 1
        word_addr = self._word_addr(addr)
        value = self._words.get(word_addr)
        if value is None:
            return self._uninitialised(word_addr)
        return value

    def read_line(self, line_addr: int, line_bytes: int) -> Tuple[int, ...]:
        """All words of the aligned line starting at ``line_addr``."""
        if self._pending is not None:
            self._materialize()
        words = self._words
        base = self._word_addr(line_addr)
        self.reads += 1
        out = []
        for offset in range(0, line_bytes, WORD_BYTES):
            word_addr = base + offset
            value = words.get(word_addr)
            if value is None:
                value = self._uninitialised(word_addr)
            out.append(value)
        return tuple(out)

    # -- checkpointing ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        state = snapshot_fields(self)
        state["materialized"] = self._pending is None
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore into an image freshly rebuilt from the workload store.

        The base image is deterministic per spec, so the restored machine
        already carries an identical ``_pending``; the snapshot only has
        to replay the overlay and, when the checkpointed run had already
        thawed the base into ``_words``, drop the fresh ``_pending`` so a
        later read does not double-apply it.
        """
        state = dict(state)
        if state.pop("materialized"):
            self._pending = None
        restore_fields(self, state)

    def __len__(self) -> int:
        if self._pending is not None:
            self._materialize()
        return len(self._words)

    def __contains__(self, addr: int) -> bool:
        if self._pending is not None:
            self._materialize()
        return self._word_addr(addr) in self._words
