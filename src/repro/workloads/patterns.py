"""Address-pattern engines.

Each engine produces one component of a benchmark's address stream.  A
workload mixes several engines with per-phase weights (see
:class:`repro.workloads.base.WorkloadSpec`), which is how the 26 SPEC
stand-ins get their distinct memory personalities:

* :class:`StrideEngine` — array sweeps; what stride prefetchers (SP, GHB)
  and next-line prefetching (TP) love.  Long strides crossing DRAM rows
  make memory-bound, row-buffer-hostile streams (``lucas``).
* :class:`PointerChaseEngine` — genuine linked structures in the functional
  image; the next address is *read from memory*, so only content-directed
  prefetching can run ahead.  ``node_size``/``next_offset`` reproduce the
  ``ammp`` pathology (next pointer beyond the fetched line).
* :class:`HotZipfEngine` — small hot working sets; cache-friendly,
  insensitive benchmarks.
* :class:`RandomEngine` — irregular accesses over a working set.
* :class:`LoopSequenceEngine` — a fixed, non-arithmetic address sequence
  replayed with noise: invisible to stride detectors but perfect for the
  Markov prefetcher (``gzip``, ``ammp``).
* :class:`ConflictEngine` — addresses that collide in the direct-mapped L1
  (same set, different tags): the victim cache's reason to exist.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.workloads.image import WORD_BYTES, MemoryImage

#: Words written during region initialisation are capped so image building
#: stays cheap for multi-megabyte working sets.
_INIT_WORDS_CAP = 32768

#: The skewed value set used for frequent-value locality (FVC).
FREQUENT_VALUES = (0, 1, 2, 4, 16, 255, 1024, 4096)


class PatternEngine:
    """Base class: produces effective addresses, one per call."""

    #: True when loads from this engine form an address dependence chain.
    chained = False

    def __init__(self, base: int, rng: random.Random):
        self.base = base
        self.rng = rng

    def setup(self, image: MemoryImage, value_locality: float) -> None:
        """Populate the engine's region of the functional image."""

    def next(self) -> int:
        """Return the next effective (byte) address."""
        raise NotImplementedError

    def _init_region(
        self, image: MemoryImage, n_bytes: int, value_locality: float
    ) -> None:
        """Fill (a capped prefix of) the region with value-local data."""
        rng = self.rng
        n_words = min(n_bytes // WORD_BYTES, _INIT_WORDS_CAP)
        for i in range(n_words):
            if rng.random() < value_locality:
                value = rng.choice(FREQUENT_VALUES)
            else:
                value = rng.randrange(1 << 32) | (1 << 33)
            image.write(self.base + i * WORD_BYTES, value)


class StrideEngine(PatternEngine):
    """Walk ``working_set`` bytes with a fixed ``stride``, wrapping."""

    def __init__(self, base: int, rng: random.Random, working_set: int, stride: int):
        super().__init__(base, rng)
        if stride == 0:
            raise ValueError("stride must be nonzero")
        self.working_set = working_set
        self.stride = stride
        self._offset = 0

    def setup(self, image: MemoryImage, value_locality: float) -> None:
        self._init_region(image, self.working_set, value_locality)

    def next(self) -> int:
        addr = self.base + self._offset
        self._offset = (self._offset + self.stride) % self.working_set
        return addr


class RandomEngine(PatternEngine):
    """Uniformly random word within the working set."""

    def __init__(self, base: int, rng: random.Random, working_set: int):
        super().__init__(base, rng)
        self.working_set = working_set
        self._n_words = working_set // WORD_BYTES

    def setup(self, image: MemoryImage, value_locality: float) -> None:
        self._init_region(image, self.working_set, value_locality)

    def next(self) -> int:
        return self.base + self.rng.randrange(self._n_words) * WORD_BYTES


class HotZipfEngine(PatternEngine):
    """Skewed accesses over a small hot region (approximate Zipf).

    Implemented as repeated halving: with probability ``skew`` stay in the
    hotter half of the remaining range.
    """

    def __init__(
        self, base: int, rng: random.Random, working_set: int, skew: float = 0.75
    ):
        super().__init__(base, rng)
        if not 0.5 <= skew < 1.0:
            raise ValueError(f"skew must be in [0.5, 1), got {skew}")
        self.working_set = working_set
        self.skew = skew
        self._n_words = working_set // WORD_BYTES

    def setup(self, image: MemoryImage, value_locality: float) -> None:
        self._init_region(image, self.working_set, value_locality)

    def next(self) -> int:
        lo, hi = 0, self._n_words
        rng = self.rng
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if rng.random() < self.skew:
                hi = mid
            else:
                lo = mid
        return self.base + lo * WORD_BYTES


class LoopSequenceEngine(PatternEngine):
    """A fixed pseudo-random address sequence replayed with noise.

    The sequence has no arithmetic structure, so stride detectors learn
    nothing — but it *repeats*, so address-correlating prefetchers (Markov,
    and to a degree TK/DBCP) predict it well.

    With ``conflict_sets`` set, the sequence's addresses are confined to
    that many cache-set-aligned slots spread across ``way_span``-apart
    ways, so the loop's lines collide in cache sets and the *miss* sequence
    itself recurs every iteration even though the footprint is modest —
    the recurrence tag/address correlators (Markov, TCP, DBCP, TK) feed on.
    A 32 KB span collides in the direct-mapped L1 while staying L2-resident
    (cheap recurring L1 misses); a 256 KB span collides in the L2's sets
    too, producing recurring *L2* misses.
    """

    def __init__(
        self,
        base: int,
        rng: random.Random,
        working_set: int,
        sequence_length: int = 256,
        noise: float = 0.05,
        conflict_sets: int = 0,
        way_span: int = 32 << 10,
    ):
        super().__init__(base, rng)
        self.working_set = working_set
        self.noise = noise
        n_words = working_set // WORD_BYTES
        if conflict_sets:
            slots = list(range(sequence_length))
            rng.shuffle(slots)
            self._sequence = [
                base
                + (slot % conflict_sets) * 64
                + (slot // conflict_sets) * way_span
                for slot in slots
            ]
        else:
            self._sequence = [
                base + rng.randrange(n_words) * WORD_BYTES
                for _ in range(sequence_length)
            ]
        self._pos = 0
        self._n_words = n_words

    def setup(self, image: MemoryImage, value_locality: float) -> None:
        self._init_region(image, self.working_set, value_locality)

    def next(self) -> int:
        if self.rng.random() < self.noise:
            return self.base + self.rng.randrange(self._n_words) * WORD_BYTES
        addr = self._sequence[self._pos]
        self._pos = (self._pos + 1) % len(self._sequence)
        return addr


class ConflictEngine(PatternEngine):
    """Round-robin over ``n_ways`` addresses mapping to the same L1 set.

    With a direct-mapped 32 KB L1, addresses 32 KB apart collide; cycling
    through more than one way misses every time — unless a victim cache
    catches the just-evicted line.
    """

    def __init__(
        self,
        base: int,
        rng: random.Random,
        n_ways: int = 3,
        set_stride: int = 32 << 10,
        n_sets_used: int = 8,
    ):
        super().__init__(base, rng)
        self.n_ways = n_ways
        self.set_stride = set_stride
        self.n_sets_used = n_sets_used
        self._way = 0
        self._set = 0

    def setup(self, image: MemoryImage, value_locality: float) -> None:
        self._init_region(
            image, self.n_ways * self.set_stride // 256, value_locality
        )

    def next(self) -> int:
        addr = self.base + self._way * self.set_stride + self._set * 64
        self._way += 1
        if self._way >= self.n_ways:
            self._way = 0
            self._set = (self._set + 1) % self.n_sets_used
        return addr


class PointerChaseEngine(PatternEngine):
    """Traverse linked lists built in the functional image.

    ``setup`` allocates ``n_nodes`` nodes of ``node_size`` bytes in a
    shuffled order and threads them into ``n_chains`` circular lists whose
    *next* pointer lives at ``next_offset`` inside the node.  ``next``
    returns the current node's address and advances by reading the pointer
    from the image — the traversal is genuinely data-dependent.

    ``payload_pointers`` sets the probability that a non-next payload word
    holds a pointer to a *random* node.  This is the ``mcf`` trap for
    content-directed prefetching: every fetched line is full of plausible
    pointers that the traversal will never follow, so CDP floods the memory
    bus with useless prefetches.

    ``n_next`` > 1 gives each node that many candidate successors (the ring
    pointer plus shortcuts into the same chain) with the traversal choosing
    among them at random — a branching structure no prefetcher can follow
    perfectly, which keeps content-directed prefetching honest.
    """

    chained = True

    def __init__(
        self,
        base: int,
        rng: random.Random,
        n_nodes: int = 4096,
        node_size: int = 64,
        next_offset: int = 0,
        n_chains: int = 4,
        payload_pointers: float = 0.0,
        n_next: int = 1,
        opaque_hops: float = 0.0,
    ):
        super().__init__(base, rng)
        if node_size % WORD_BYTES or next_offset % WORD_BYTES:
            raise ValueError("node_size and next_offset must be word-aligned")
        if n_next < 1:
            raise ValueError(f"n_next must be >= 1, got {n_next}")
        if next_offset + (n_next - 1) * WORD_BYTES >= node_size:
            raise ValueError("next pointers must fall inside the node")
        self.n_nodes = n_nodes
        self.node_size = node_size
        self.next_offset = next_offset
        self.n_chains = max(1, n_chains)
        self.payload_pointers = payload_pointers
        self.n_next = n_next
        #: Fraction of hops whose target comes from *computation* (array
        #: indexing) rather than a stored pointer: the traversal still
        #: serialises, but no stored word reveals the target, so
        #: content-directed prefetching cannot follow — the realistic upper
        #: bound on CDP coverage.
        self.opaque_hops = opaque_hops
        self._image: Optional[MemoryImage] = None
        self._members: List[List[int]] = []
        self._cursors: List[int] = []
        self._chain = 0

    def setup(self, image: MemoryImage, value_locality: float) -> None:
        self._image = image
        order = list(range(self.n_nodes))
        self.rng.shuffle(order)
        node_addrs = [self.base + slot * self.node_size for slot in order]
        per_chain = max(1, self.n_nodes // self.n_chains)
        next_offsets = [
            self.next_offset + k * WORD_BYTES for k in range(self.n_next)
        ]
        self._members = []
        for chain in range(self.n_chains):
            members = node_addrs[chain * per_chain:(chain + 1) * per_chain]
            if not members:
                continue
            self._members.append(members)
            for i, addr in enumerate(members):
                # First successor: the ring; extras: shortcuts in-chain.
                image.write(addr + next_offsets[0], members[(i + 1) % len(members)])
                for offset in next_offsets[1:]:
                    image.write(addr + offset, self.rng.choice(members))
                # Payload words around the pointers.
                for off in range(0, self.node_size, WORD_BYTES):
                    if off in next_offsets:
                        continue
                    if self.payload_pointers and self.rng.random() < self.payload_pointers:
                        image.write(addr + off, self.rng.choice(node_addrs))
                    else:
                        image.write(addr + off, self.rng.randrange(1 << 20))
        image.note_heap(self.base, self.base + self.n_nodes * self.node_size)
        self._cursors = [
            node_addrs[min(chain * per_chain, self.n_nodes - 1)]
            for chain in range(self.n_chains)
        ]

    def next(self) -> int:
        if self._image is None:
            raise RuntimeError("setup() must run before next()")
        chain = self._chain
        self._chain = (chain + 1) % self.n_chains
        addr = self._cursors[chain]
        which = 0
        if self.n_next > 1 and self.rng.random() < 0.35:
            which = self.rng.randrange(1, self.n_next)
        pointer_addr = addr + self.next_offset + which * WORD_BYTES
        if self.opaque_hops and self.rng.random() < self.opaque_hops:
            # Computed jump: the load still touches the node, but the next
            # target never appears as a stored pointer in the fetched line.
            members = self._members[chain % len(self._members)]
            self._cursors[chain] = self.rng.choice(members)
            return pointer_addr
        nxt = self._image.read(pointer_addr)
        if nxt < self.base:  # defensive: broken chain falls back to restart
            nxt = self._cursors[(chain + 1) % self.n_chains]
        self._cursors[chain] = nxt
        return pointer_addr


#: Engine factory table used by :class:`repro.workloads.base.SyntheticWorkload`.
ENGINE_KINDS = {
    "stride": StrideEngine,
    "random": RandomEngine,
    "hot": HotZipfEngine,
    "loop_seq": LoopSequenceEngine,
    "conflict": ConflictEngine,
    "pointer": PointerChaseEngine,
}
