"""Synthetic SPEC CPU2000 stand-in workloads.

The paper simulates 500-million-instruction SimPoint traces of the 26 SPEC
CPU2000 benchmarks compiled for Alpha.  Those binaries and traces are not
redistributable, so this package provides the substitution documented in
DESIGN.md: 26 deterministic synthetic trace generators, one per benchmark,
each parameterised to mimic the published memory behaviour *class* of its
namesake (working-set size, stride structure, pointer intensity, value
locality, branch behaviour).  Traces come with a functional
:class:`MemoryImage` holding real data values — linked structures whose
fields contain genuine pointers (for CDP) and value distributions with
controlled frequent-value locality (for FVC).

Use :func:`repro.workloads.registry.build` to get ``(trace, image)`` for a
benchmark by name; :data:`ALL_BENCHMARKS` lists the canonical 26 names.
"""

from repro.workloads.image import MemoryImage
from repro.workloads.base import SyntheticWorkload, WorkloadSpec
from repro.workloads.registry import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    build,
    get_spec,
)

__all__ = [
    "ALL_BENCHMARKS",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "MemoryImage",
    "SyntheticWorkload",
    "WorkloadSpec",
    "build",
    "get_spec",
]
