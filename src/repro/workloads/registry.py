"""Benchmark registry: names, suites, article selections, cached builds.

The canonical order of :data:`ALL_BENCHMARKS` matches the paper's Table 4
(the 14 CFP2000 benchmarks alphabetically, then the 12 CINT2000 ones).

``ARTICLE_SELECTIONS`` reproduces Table 4's "benchmarks used in validated
mechanisms" rows, which drive the Table 7 experiment (influence of benchmark
selection).  The printed table in the source paper does not legibly identify
*which* columns carry the check marks for DBCP (5 benchmarks) and GHB (12
benchmarks); we use selections consistent with those counts and with the
mechanisms' target behaviours (DBCP's article evaluated irregular,
miss-heavy programs; GHB's evaluated the memory-intensive majority), and
document the substitution here and in DESIGN.md.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.workloads import store
from repro.workloads.base import SyntheticWorkload, WorkloadSpec
from repro.workloads.image import MemoryImage
from repro.workloads.spec2000 import SPECS

FP_BENCHMARKS: Tuple[str, ...] = (
    "ammp", "applu", "apsi", "art", "equake", "facerec", "fma3d", "galgel",
    "lucas", "mesa", "mgrid", "sixtrack", "swim", "wupwise",
)
INT_BENCHMARKS: Tuple[str, ...] = (
    "bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf", "parser",
    "perlbmk", "twolf", "vortex", "vpr",
)
ALL_BENCHMARKS: Tuple[str, ...] = FP_BENCHMARKS + INT_BENCHMARKS

#: Benchmark subsets used by the original mechanism articles (Table 4).
ARTICLE_SELECTIONS: Dict[str, Tuple[str, ...]] = {
    # 5 benchmarks (DBCP row of Table 4).
    "DBCP": ("art", "equake", "mcf", "parser", "vpr"),
    # 12 benchmarks (GHB row of Table 4).
    "GHB": (
        "ammp", "applu", "art", "equake", "facerec", "galgel",
        "lucas", "mcf", "mgrid", "swim", "twolf", "wupwise",
    ),
    # TK / TKVC / TCP were validated on all 26 (Table 4).
    "TK": ALL_BENCHMARKS,
    "TKVC": ALL_BENCHMARKS,
    "TCP": ALL_BENCHMARKS,
}

#: The six most and least mechanism-sensitive benchmarks named in the paper
#: (Section 3.2, Figure 7).
HIGH_SENSITIVITY: Tuple[str, ...] = ("apsi", "equake", "fma3d", "mgrid", "swim", "gap")
LOW_SENSITIVITY: Tuple[str, ...] = (
    "wupwise", "bzip2", "crafty", "eon", "perlbmk", "vortex",
)


def get_spec(name: str) -> WorkloadSpec:
    """Return the workload specification for benchmark ``name``."""
    try:
        return SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(ALL_BENCHMARKS)}"
        ) from None


@lru_cache(maxsize=64)
def build(
    name: str, n_instructions: int
) -> Tuple[List[Tuple[int, int, int, int, int]], MemoryImage]:
    """Build (and cache) the trace and functional image for ``name``.

    The same ``(name, n_instructions)`` pair always returns the same
    objects; callers must not mutate the trace.  The image absorbs the
    simulated machine's stores, which replay the generation-time values, so
    sharing it across runs is sound.

    Builds are memoised twice: in process by ``lru_cache``, and on disk by
    :mod:`repro.workloads.store` so fresh processes (CLI runs, ledger
    records, pool workers) skip generation entirely.
    """
    spec = get_spec(name)  # validates the name before any cache probe
    cached = store.load(name, n_instructions)
    if cached is not None:
        return cached
    trace, image = SyntheticWorkload(spec).build(n_instructions)
    store.save(name, n_instructions, trace, image)
    return trace, image


def clear_cache() -> None:
    """Drop all cached traces (tests use this to bound memory)."""
    build.cache_clear()
