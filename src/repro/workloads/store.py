"""On-disk cache for generated workloads.

Building a synthetic trace is deterministic but not free: the seeded RNG
draws and image writes for an 8k-instruction benchmark cost more wall time
than simulating it on the fast path.  Every fresh process (each CLI run,
each ``repro.obs record``, each pool worker) used to pay that cost again.
This store memoises the finished ``(trace, image)`` pair on disk, keyed by
benchmark, length and a digest of the generator sources, so a build is paid
once per machine instead of once per process.

Layout: one file per ``(benchmark, n)`` under
``$REPRO_CACHE_DIR/workloads/`` (default ``~/.cache/repro/workloads``),
next to the executor's result store.  The payload is ``marshal``-encoded —
plain ints, tuples, lists and dicts — which loads an order of magnitude
faster than rebuilding.  Correctness guards:

* the file name embeds a SHA-256 digest over the workload generator
  sources **and** the interpreter's cache tag, so editing any generator or
  switching Python versions invalidates every stale entry rather than
  silently replaying it;
* a corrupt or truncated file is treated as a miss and rebuilt in place;
* writes go through a temp file + :func:`os.replace`, so a crashed or
  concurrent builder can never publish a half-written entry (same
  discipline as the result store).

Sharing the restored image across runs is sound for the same reason the
in-process memo may share it: the simulated machine's stores replay the
generation-time values.  The restored image's read/write counters are
reset to their build-time values so a disk hit is indistinguishable from a
fresh build.  Set ``REPRO_WORKLOAD_CACHE=0`` to disable entirely.
"""

from __future__ import annotations

import hashlib
import marshal
import os
import sys
import tempfile
from array import array
from pathlib import Path
from typing import List, Optional, Tuple

from repro.workloads.image import MemoryImage

Trace = List[Tuple[int, int, int, int, int]]

#: Bumped when the serialised layout changes shape.
_FORMAT = 2

_digest_cache: Optional[str] = None


def enabled() -> bool:
    return os.environ.get("REPRO_WORKLOAD_CACHE", "1") != "0"


def cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``/workloads, else ``~/.cache/repro/workloads``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    root = Path(env).expanduser() if env else Path.home() / ".cache" / "repro"
    return root / "workloads"


def _generator_digest() -> str:
    """Digest of everything a build's output depends on."""
    global _digest_cache
    if _digest_cache is None:
        from repro.workloads import base, image, patterns, spec2000

        h = hashlib.sha256()
        h.update(f"format={_FORMAT};tag={sys.implementation.cache_tag}".encode())
        for module in (base, image, patterns, spec2000):
            h.update(Path(module.__file__).read_bytes())
        _digest_cache = h.hexdigest()[:16]
    return _digest_cache


def path_for(name: str, n_instructions: int) -> Path:
    return cache_dir() / f"{name}-{n_instructions}-{_generator_digest()}.mar"


def load(name: str, n_instructions: int) -> Optional[Tuple[Trace, MemoryImage]]:
    """Return the cached ``(trace, image)`` or ``None`` on any miss."""
    if not enabled():
        return None
    try:
        blob = path_for(name, n_instructions).read_bytes()
        payload = marshal.loads(blob)
        trace, packed, addrs, values, heap_lo, heap_hi, reads, writes = payload
        if packed:
            # The common form: the words dict as two packed int64 columns.
            # ``frombytes`` is a memcpy — no per-word int objects exist until
            # a reader materialises the dict, which write-only timing runs
            # (everything except the value-based mechanisms) never do.
            addr_arr = array("q")
            addr_arr.frombytes(addrs)
            value_arr = array("q")
            value_arr.frombytes(values)
            addrs, values = addr_arr, value_arr
        if len(addrs) != len(values):
            return None
    except (OSError, ValueError, EOFError, TypeError):
        return None
    image = MemoryImage()
    image._pending = (addrs, values)
    image.heap_lo = heap_lo
    image.heap_hi = heap_hi
    image.reads = reads
    image.writes = writes
    return trace, image


def save(name: str, n_instructions: int, trace: Trace, image: MemoryImage) -> None:
    """Publish a freshly built workload (best effort: failures are silent)."""
    if not enabled():
        return
    image._materialize()  # fold any pending base under overlay writes
    words = image._words
    try:
        # Packed int64 columns: loads via frombytes with no per-word objects.
        addrs = array("q", words.keys()).tobytes()
        values = array("q", words.values()).tobytes()
        packed = True
    except OverflowError:  # pragma: no cover - values exceeding 64 bits
        addrs = list(words.keys())
        values = list(words.values())
        packed = False
    payload = (
        trace,
        packed,
        addrs,
        values,
        image.heap_lo,
        image.heap_hi,
        image.reads,
        image.writes,
    )
    try:
        target = path_for(name, n_instructions)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(target.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(marshal.dumps(payload))
            os.replace(tmp, target)
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        return
