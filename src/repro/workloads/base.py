"""Workload specification and the synthetic trace builder.

A :class:`WorkloadSpec` captures a benchmark's *memory personality*:
instruction mix, branch predictability, data-dependence density, value
locality, and a weighted mixture of address-pattern engines (optionally
varying across execution phases, which is what gives SimPoint something to
find).  :class:`SyntheticWorkload` turns a spec into a concrete
``(trace, image)`` pair deterministically (same spec + seed + length -> same
trace).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instr import Op
from repro.workloads.image import MemoryImage
from repro.workloads.patterns import ENGINE_KINDS, FREQUENT_VALUES, PatternEngine

#: Spacing between engine data regions (keeps them in distinct DRAM areas).
_REGION_SPACING = 0x0400_0000
_REGION_BASE = 0x1000_0000
_CODE_BASE = 0x0040_0000


def _code_offset(idx: int, footprint: int) -> int:
    """PC offset within the code region: basic blocks, not a byte walk.

    Eight sequential 4-byte instructions per basic block, with blocks laid
    out 132 bytes apart — skipping both 32-byte instruction-cache lines and
    64-byte L2 lines — so the fetch stream is sequential *within* a block,
    as real code is, but a data-side next-line prefetcher gets no free
    instruction-stream coverage from the unified L2.
    """
    block = idx // 8
    return (block * 132) % footprint + (idx % 8) * 4


@dataclass(frozen=True)
class PatternMix:
    """One engine in a workload's mixture: kind, weight, constructor args."""

    kind: str
    weight: float
    params: Tuple[Tuple[str, object], ...] = ()

    def make(self, base: int, rng: random.Random) -> PatternEngine:
        if self.kind not in ENGINE_KINDS:
            raise ValueError(f"unknown pattern kind {self.kind!r}")
        return ENGINE_KINDS[self.kind](base, rng, **dict(self.params))


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything needed to synthesise one benchmark's trace."""

    name: str
    suite: str                      # "int" or "fp"
    description: str
    patterns: Tuple[PatternMix, ...]
    mem_fraction: float = 0.35      # fraction of instructions that are loads/stores
    store_fraction: float = 0.25    # fraction of memory ops that are stores
    branch_fraction: float = 0.12
    fp_fraction: float = 0.0        # fraction of ALU ops that are FP
    mispredict_rate: float = 0.04
    value_locality: float = 0.3     # frequent-value share of stored/initial data
    dep_density: float = 0.5        # chance an ALU op consumes the latest load
    #: Execution phases: (fraction_of_trace, per-pattern weight multipliers).
    #: Empty means one homogeneous phase.
    phases: Tuple[Tuple[float, Tuple[float, ...]], ...] = ()
    #: Static code size (bytes) the PC stream walks through.  Footprints
    #: beyond the 32 KB L1 instruction cache create front-end fetch misses,
    #: as for the code-heavy SPEC INT members (gcc, perlbmk, crafty...).
    code_footprint: int = 4096
    seed: int = 1

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ValueError(f"suite must be 'int' or 'fp', got {self.suite!r}")
        if not self.patterns:
            raise ValueError(f"{self.name}: at least one pattern required")
        for fraction_name in ("mem_fraction", "branch_fraction"):
            value = getattr(self, fraction_name)
            if not 0 < value < 1:
                raise ValueError(f"{self.name}: {fraction_name}={value} out of (0,1)")
        for _, multipliers in self.phases:
            if len(multipliers) != len(self.patterns):
                raise ValueError(
                    f"{self.name}: phase multiplier count != pattern count"
                )


class SyntheticWorkload:
    """Builds deterministic traces (lists of ISA records) from a spec."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec

    def build(
        self, n_instructions: int, image: Optional[MemoryImage] = None
    ) -> Tuple[List[Tuple[int, int, int, int, int]], MemoryImage]:
        """Generate ``n_instructions`` records; return ``(trace, image)``."""
        spec = self.spec
        rng = random.Random(spec.seed)
        if image is None:
            image = MemoryImage()

        engines: List[PatternEngine] = []
        load_pcs: List[int] = []
        store_pcs: List[int] = []
        for i, mix in enumerate(spec.patterns):
            base = _REGION_BASE + i * _REGION_SPACING
            engine = mix.make(base, rng)
            engine.setup(image, spec.value_locality)
            engines.append(engine)
            load_pcs.append(_CODE_BASE + i * 0x100)
            store_pcs.append(_CODE_BASE + i * 0x100 + 0x40)

        phase_bounds, phase_weights = self._phase_plan(n_instructions)

        trace: List[Tuple[int, int, int, int, int]] = []
        append = trace.append
        load_op = int(Op.LOAD)
        store_op = int(Op.STORE)
        branch_op = int(Op.BRANCH)
        int_alu = int(Op.INT_ALU)
        fp_alu = int(Op.FP_ALU)
        int_mul = int(Op.INT_MUL)
        fp_mul = int(Op.FP_MUL)

        mem_cut = spec.mem_fraction
        branch_cut = mem_cut + spec.branch_fraction
        code_footprint = max(256, spec.code_footprint)
        last_load_idx: Dict[int, int] = {}  # engine index -> trace index
        latest_load = -1
        phase = 0
        code_pc = _CODE_BASE + 0x10000

        for idx in range(n_instructions):
            while phase + 1 < len(phase_bounds) and idx >= phase_bounds[phase]:
                phase += 1
            weights = phase_weights[phase]
            r = rng.random()
            if r < mem_cut:
                engine_idx = self._pick_engine(rng, weights)
                engine = engines[engine_idx]
                addr = engine.next()
                is_store = (not engine.chained) and rng.random() < spec.store_fraction
                if is_store:
                    if rng.random() < spec.value_locality:
                        value = rng.choice(FREQUENT_VALUES)
                    else:
                        value = rng.randrange(1 << 32) | (1 << 33)
                    # Functional execution at generation time: the image
                    # matches the trace before simulation ever runs.
                    image.write(addr, value)
                    append((store_op, store_pcs[engine_idx], addr, 0, value))
                else:
                    dep = 0
                    if engine.chained:
                        prev = last_load_idx.get(engine_idx)
                        if prev is not None:
                            distance = idx - prev
                            if distance < 500:
                                dep = distance
                    append((load_op, load_pcs[engine_idx], addr, dep, 0))
                    last_load_idx[engine_idx] = idx
                    latest_load = idx
            elif r < branch_cut:
                mispredicted = rng.random() < spec.mispredict_rate
                pc = code_pc + (phase << 22) + _code_offset(idx, code_footprint)
                append((branch_op, pc, 0, 0, 1 if mispredicted else 0))
            else:
                if rng.random() < spec.fp_fraction:
                    op = fp_mul if rng.random() < 0.2 else fp_alu
                else:
                    op = int_mul if rng.random() < 0.1 else int_alu
                dep = 0
                if latest_load >= 0 and rng.random() < spec.dep_density:
                    distance = idx - latest_load
                    if distance < 500:
                        dep = distance
                elif idx:
                    dep = rng.randint(1, 4)
                pc = code_pc + (phase << 22) + _code_offset(idx, code_footprint)
                append((op, pc, 0, dep, 0))

        return trace, image

    # -- helpers -------------------------------------------------------------

    def _phase_plan(
        self, n_instructions: int
    ) -> Tuple[List[int], List[List[float]]]:
        """Resolve the phase schedule into boundaries and engine weights."""
        spec = self.spec
        base = [mix.weight for mix in spec.patterns]
        if not spec.phases:
            return [n_instructions], [base]
        bounds: List[int] = []
        weights: List[List[float]] = []
        acc = 0.0
        for fraction, multipliers in spec.phases:
            acc += fraction
            bounds.append(min(n_instructions, int(acc * n_instructions)))
            weights.append([b * m for b, m in zip(base, multipliers)])
        bounds[-1] = n_instructions
        return bounds, weights

    @staticmethod
    def _pick_engine(rng: random.Random, weights: Sequence[float]) -> int:
        total = sum(weights)
        if total <= 0:
            return 0
        pick = rng.random() * total
        acc = 0.0
        for i, weight in enumerate(weights):
            acc += weight
            if pick < acc:
                return i
        return len(weights) - 1
