"""The 26 SPEC CPU2000 stand-in workload specifications.

Each spec is calibrated to reproduce the published memory-behaviour *class*
of its namesake at the simulated machine's scale (32 KB direct-mapped L1,
1 MB 4-way L2).  Pattern weights are *fractions of memory operations*: every
benchmark is dominated by a cache-resident hot set — like real programs,
whose L1 miss rates sit in single digits — with a calibrated share of
miss-generating traffic whose *kind* gives the benchmark its personality:

* **low-sensitivity** (barely react to data-cache mechanisms — Figure 6):
  ``wupwise``, ``bzip2``, ``crafty``, ``eon``, ``perlbmk``, ``vortex`` —
  miss share of a few percent;
* **high-sensitivity**: ``apsi``, ``equake``, ``fma3d``, ``mgrid``,
  ``swim``, ``gap`` — 25-35% of memory operations stream or stride over
  multi-L2 working sets;
* **pointer-intensive**: ``mcf`` (decoy-pointer payloads — the CDP trap),
  ``twolf``/``equake`` (clean leading next pointers, partially opaque
  hops — CDP's modest wins), ``ammp`` (next pointer at byte 88, beyond the
  64-byte fetched line — CDP systematically fails, Section 3.1),
  ``parser``;
* **Markov-friendly** repeating non-arithmetic miss sequences: ``gzip``,
  ``ammp`` (the two benchmarks where Markov beats everyone);
* **memory-bound, row-buffer-hostile**: ``lucas`` (long strides opening a
  new DRAM row nearly every miss; the paper reports 389-cycle average
  SDRAM latency for it vs 87 for ``gzip``).

Most benchmarks begin with an initialisation-like streaming phase, which is
what makes arbitrary "skip N, simulate M" windows disagree with SimPoint
selections in Figure 11.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.base import PatternMix, WorkloadSpec

KB = 1 << 10
MB = 1 << 20


def _mix(kind: str, weight: float, **params) -> PatternMix:
    return PatternMix(kind, weight, tuple(sorted(params.items())))


def _hot(weight: float, working_set: int = 24 * KB) -> PatternMix:
    return _mix("hot", weight, working_set=working_set)


#: A generic "initialisation then steady state" phase plan: the first
#: pattern (always a streaming/missing one) is boosted during init.
def _init_phase(n_patterns: int, init_fraction: float = 0.15) -> Tuple:
    boost = tuple([4.0] + [0.3] * (n_patterns - 1))
    steady = tuple([1.0] * n_patterns)
    return ((init_fraction, boost), (1.0 - init_fraction, steady))


def _specs() -> Dict[str, WorkloadSpec]:
    specs = {}

    def add(spec: WorkloadSpec) -> None:
        if spec.name in specs:
            raise ValueError(f"duplicate benchmark {spec.name}")
        specs[spec.name] = spec

    # ----- CFP2000 ---------------------------------------------------------

    add(WorkloadSpec(
        name="ammp", suite="fp",
        description="molecular dynamics: neighbour-list sweep repeating "
                    "almost exactly (Markov-friendly) and pointer structs "
                    "with the next pointer at byte 88 (CDP-hostile)",
        patterns=(
            _mix("loop_seq", 0.12, working_set=192 * KB, sequence_length=200,
                 noise=0.03, conflict_sets=40, way_span=256 * KB),
            _mix("pointer", 0.07, n_nodes=3072, node_size=96, next_offset=88,
                 n_chains=2),
            _mix("stride", 0.04, working_set=512 * KB, stride=8),
            _hot(0.77, 20 * KB),
        ),
        mem_fraction=0.38, store_fraction=0.2, branch_fraction=0.05,
        fp_fraction=0.7, mispredict_rate=0.01, value_locality=0.25,
        phases=_init_phase(4), seed=101,
    ))
    add(WorkloadSpec(
        name="applu", suite="fp",
        description="parabolic PDE solver: unit and line-sized stride "
                    "sweeps over ~0.5 MB",
        patterns=(
            _mix("stride", 0.07, working_set=512 * KB, stride=8),
            _mix("stride", 0.05, working_set=512 * KB, stride=64),
            _hot(0.88, 16 * KB),
        ),
        mem_fraction=0.36, store_fraction=0.3, branch_fraction=0.04,
        fp_fraction=0.8, mispredict_rate=0.008, value_locality=0.2,
        phases=_init_phase(3), seed=102,
    ))
    add(WorkloadSpec(
        name="apsi", suite="fp",
        description="meteorology: several line-skipping strided streams "
                    "over ~0.75 MB (high sensitivity; stride prefetchers "
                    "win, next-line prefetch does not)",
        patterns=(
            _mix("stride", 0.10, working_set=768 * KB, stride=8),
            _mix("stride", 0.10, working_set=768 * KB, stride=96),
            _mix("stride", 0.08, working_set=768 * KB, stride=128),
            _mix("stride", 0.05, working_set=256 * KB, stride=168),
            _hot(0.67, 16 * KB),
        ),
        mem_fraction=0.38, store_fraction=0.28, branch_fraction=0.04,
        fp_fraction=0.75, mispredict_rate=0.01, value_locality=0.2,
        phases=_init_phase(5), seed=103,
    ))
    add(WorkloadSpec(
        name="art", suite="fp",
        description="neural-network image recognition: repeated sequential "
                    "sweeps plus L1 set conflicts (VC-friendly)",
        patterns=(
            _mix("stride", 0.14, working_set=208 * KB, stride=8),
            _mix("conflict", 0.09, n_ways=2, n_sets_used=6),
            _hot(0.77, 8 * KB),
        ),
        mem_fraction=0.40, store_fraction=0.15, branch_fraction=0.06,
        fp_fraction=0.6, mispredict_rate=0.015, value_locality=0.3,
        phases=_init_phase(3), seed=104,
    ))
    add(WorkloadSpec(
        name="equake", suite="fp",
        description="earthquake simulation: sparse-matrix pointer arrays "
                    "with clean leading next pointers but half the hops "
                    "computed (CDP's modest win) plus streaming (high "
                    "sensitivity)",
        patterns=(
            _mix("stride", 0.18, working_set=1 * MB, stride=8),
            _mix("pointer", 0.12, n_nodes=6144, node_size=64, next_offset=0,
                 n_chains=4, payload_pointers=0.05, opaque_hops=0.15),
            _hot(0.70, 16 * KB),
        ),
        mem_fraction=0.40, store_fraction=0.2, branch_fraction=0.04,
        fp_fraction=0.7, mispredict_rate=0.01, value_locality=0.2,
        phases=_init_phase(3), seed=105,
    ))
    add(WorkloadSpec(
        name="facerec", suite="fp",
        description="face recognition: line-skipping image strides over "
                    "~0.4 MB",
        patterns=(
            _mix("stride", 0.06, working_set=384 * KB, stride=56),
            _mix("stride", 0.04, working_set=384 * KB, stride=80),
            _hot(0.90, 24 * KB),
        ),
        mem_fraction=0.35, store_fraction=0.25, branch_fraction=0.05,
        fp_fraction=0.7, mispredict_rate=0.01, value_locality=0.25,
        phases=_init_phase(3), seed=106,
    ))
    add(WorkloadSpec(
        name="fma3d", suite="fp",
        description="crash simulation: element-sized strides and irregular "
                    "accesses over >1 MB (high sensitivity)",
        patterns=(
            _mix("stride", 0.15, working_set=512 * KB, stride=8),
            _mix("stride", 0.10, working_set=1536 * KB, stride=88),
            _mix("random", 0.05, working_set=1 * MB),
            _hot(0.70, 16 * KB),
        ),
        mem_fraction=0.38, store_fraction=0.3, branch_fraction=0.05,
        fp_fraction=0.75, mispredict_rate=0.012, value_locality=0.2,
        phases=_init_phase(4), seed=107,
    ))
    add(WorkloadSpec(
        name="galgel", suite="fp",
        description="fluid dynamics: blocked streams with unit and large "
                    "strides over ~0.25 MB",
        patterns=(
            _mix("stride", 0.06, working_set=256 * KB, stride=8),
            _mix("stride", 0.04, working_set=256 * KB, stride=256),
            _hot(0.90, 16 * KB),
        ),
        mem_fraction=0.36, store_fraction=0.25, branch_fraction=0.04,
        fp_fraction=0.8, mispredict_rate=0.008, value_locality=0.2,
        phases=_init_phase(3), seed=108,
    ))
    add(WorkloadSpec(
        name="lucas", suite="fp",
        description="primality testing (FFT): very long strides opening a "
                    "new DRAM row nearly every miss; memory-bound and "
                    "row-buffer hostile",
        patterns=(
            _mix("stride", 0.25, working_set=4 * MB, stride=33 * KB + 64),
            _mix("stride", 0.12, working_set=4 * MB, stride=8 * KB + 128),
            _hot(0.63, 8 * KB),
        ),
        mem_fraction=0.42, store_fraction=0.3, branch_fraction=0.03,
        fp_fraction=0.85, mispredict_rate=0.005, value_locality=0.15,
        phases=_init_phase(3), seed=109,
    ))
    add(WorkloadSpec(
        name="mesa", suite="fp",
        description="3-D graphics library: mostly cache-resident with "
                    "light streaming",
        patterns=(
            _mix("random", 0.04, working_set=512 * KB),
            _hot(0.96, 24 * KB),
        ),
        mem_fraction=0.33, store_fraction=0.3, branch_fraction=0.08,
        fp_fraction=0.5, mispredict_rate=0.02, value_locality=0.35,
        phases=_init_phase(2), seed=110,
    ))
    add(WorkloadSpec(
        name="mgrid", suite="fp",
        description="multigrid solver: unit and power-of-two plane strides "
                    "over ~1 MB (high sensitivity)",
        patterns=(
            _mix("stride", 0.12, working_set=1 * MB, stride=8),
            _mix("stride", 0.12, working_set=1 * MB, stride=1024),
            _mix("stride", 0.06, working_set=1 * MB, stride=32 * KB),
            _hot(0.70, 16 * KB),
        ),
        mem_fraction=0.40, store_fraction=0.25, branch_fraction=0.03,
        fp_fraction=0.85, mispredict_rate=0.006, value_locality=0.15,
        phases=_init_phase(4), seed=111,
    ))
    add(WorkloadSpec(
        name="sixtrack", suite="fp",
        description="particle tracking: tight hot loops, tiny working set",
        patterns=(
            _mix("random", 0.03, working_set=512 * KB),
            _hot(0.97, 20 * KB),
        ),
        mem_fraction=0.32, store_fraction=0.25, branch_fraction=0.05,
        fp_fraction=0.8, mispredict_rate=0.01, value_locality=0.25,
        seed=112,
    ))
    add(WorkloadSpec(
        name="swim", suite="fp",
        description="shallow-water stencil: unit-stride streaming over "
                    "2 MB — the prefetcher showcase (high sensitivity)",
        patterns=(
            _mix("stride", 0.22, working_set=2 * MB, stride=8),
            _mix("stride", 0.12, working_set=2 * MB, stride=16),
            _hot(0.66, 12 * KB),
        ),
        mem_fraction=0.42, store_fraction=0.3, branch_fraction=0.02,
        fp_fraction=0.9, mispredict_rate=0.004, value_locality=0.15,
        phases=_init_phase(3), seed=113,
    ))
    add(WorkloadSpec(
        name="wupwise", suite="fp",
        description="quantum chromodynamics: blocked matrix kernels that "
                    "fit in cache (low sensitivity)",
        patterns=(
            _mix("random", 0.02, working_set=768 * KB),
            _hot(0.98, 24 * KB),
        ),
        mem_fraction=0.34, store_fraction=0.3, branch_fraction=0.03,
        fp_fraction=0.85, mispredict_rate=0.005, value_locality=0.2,
        seed=114,
    ))

    # ----- CINT2000 --------------------------------------------------------

    add(WorkloadSpec(
        name="bzip2", suite="int",
        description="compression: hot tables that fit in cache, high value "
                    "locality (low sensitivity)",
        patterns=(
            _mix("random", 0.05, working_set=768 * KB),
            _hot(0.95, 28 * KB),
        ),
        mem_fraction=0.34, store_fraction=0.35, branch_fraction=0.15,
        mispredict_rate=0.05, value_locality=0.7,
        seed=201,
    ))
    add(WorkloadSpec(
        name="crafty", suite="int",
        description="chess: bitboard tables in cache, branchy "
                    "(low sensitivity)",
        patterns=(
            _mix("random", 0.03, working_set=768 * KB),
            _hot(0.97, 24 * KB),
        ),
        mem_fraction=0.30, store_fraction=0.2, branch_fraction=0.18,
        mispredict_rate=0.06, value_locality=0.4,
        code_footprint=64 * KB, seed=202,
    ))
    add(WorkloadSpec(
        name="eon", suite="int",
        description="probabilistic ray tracer: small scene data, C++ "
                    "call-heavy (low sensitivity)",
        patterns=(
            _mix("random", 0.02, working_set=768 * KB),
            _hot(0.98, 20 * KB),
        ),
        mem_fraction=0.33, store_fraction=0.3, branch_fraction=0.14,
        fp_fraction=0.3, mispredict_rate=0.04, value_locality=0.35,
        code_footprint=48 * KB, seed=203,
    ))
    add(WorkloadSpec(
        name="gap", suite="int",
        description="group theory: object-sized strides and irregular "
                    "bag operations over ~1 MB (high sensitivity)",
        patterns=(
            _mix("stride", 0.12, working_set=1 * MB, stride=8),
            _mix("stride", 0.10, working_set=1 * MB, stride=72),
            _mix("random", 0.06, working_set=768 * KB),
            _hot(0.72, 16 * KB),
        ),
        mem_fraction=0.38, store_fraction=0.3, branch_fraction=0.13,
        mispredict_rate=0.05, value_locality=0.4,
        phases=_init_phase(4), seed=204,
    ))
    add(WorkloadSpec(
        name="gcc", suite="int",
        description="compiler: irregular accesses with a repeating pass "
                    "structure colliding in L1 sets",
        patterns=(
            _mix("random", 0.08, working_set=512 * KB),
            _mix("loop_seq", 0.06, working_set=256 * KB, sequence_length=192,
                 noise=0.1, conflict_sets=48),
            _hot(0.86, 24 * KB),
        ),
        mem_fraction=0.36, store_fraction=0.35, branch_fraction=0.18,
        mispredict_rate=0.07, value_locality=0.45,
        phases=_init_phase(3), code_footprint=192 * KB, seed=205,
    ))
    add(WorkloadSpec(
        name="gzip", suite="int",
        description="compression: sliding-window dictionary accesses "
                    "repeating almost exactly and colliding in cache sets "
                    "(the Markov prefetcher's best case) with sequential "
                    "input scans",
        patterns=(
            _mix("loop_seq", 0.11, working_set=256 * KB, sequence_length=240,
                 noise=0.02, conflict_sets=48, way_span=256 * KB),
            _mix("stride", 0.04, working_set=512 * KB, stride=8),
            _hot(0.85, 20 * KB),
        ),
        mem_fraction=0.36, store_fraction=0.3, branch_fraction=0.14,
        mispredict_rate=0.04, value_locality=0.45,
        phases=_init_phase(3), seed=206,
    ))
    add(WorkloadSpec(
        name="mcf", suite="int",
        description="network simplex: huge pointer graph whose nodes are "
                    "full of decoy pointers — memory-bound, and the "
                    "benchmark CDP slows down",
        patterns=(
            _mix("pointer", 0.30, n_nodes=32768, node_size=64, next_offset=8,
                 n_chains=6, payload_pointers=0.45),
            _mix("random", 0.08, working_set=1 * MB),
            _hot(0.62, 12 * KB),
        ),
        mem_fraction=0.42, store_fraction=0.2, branch_fraction=0.12,
        mispredict_rate=0.06, value_locality=0.3,
        phases=_init_phase(3), seed=207,
    ))
    add(WorkloadSpec(
        name="parser", suite="int",
        description="natural-language parser: dictionary pointer chasing "
                    "plus hot grammar tables",
        patterns=(
            _mix("pointer", 0.10, n_nodes=8192, node_size=64, next_offset=0,
                 n_chains=4, opaque_hops=0.4),
            _mix("random", 0.05, working_set=256 * KB),
            _hot(0.85, 24 * KB),
        ),
        mem_fraction=0.36, store_fraction=0.25, branch_fraction=0.16,
        mispredict_rate=0.06, value_locality=0.5,
        phases=_init_phase(3), seed=208,
    ))
    add(WorkloadSpec(
        name="perlbmk", suite="int",
        description="perl interpreter: hot opcode dispatch tables "
                    "(low sensitivity)",
        patterns=(
            _mix("random", 0.03, working_set=768 * KB),
            _hot(0.97, 24 * KB),
        ),
        mem_fraction=0.34, store_fraction=0.35, branch_fraction=0.17,
        mispredict_rate=0.05, value_locality=0.5,
        code_footprint=96 * KB, seed=209,
    ))
    add(WorkloadSpec(
        name="twolf", suite="int",
        description="place and route: cell pointer lists with clean "
                    "leading next pointers but mostly computed hops (a "
                    "modest CDP beneficiary) plus set conflicts",
        patterns=(
            _mix("pointer", 0.10, n_nodes=5120, node_size=64, next_offset=0,
                 n_chains=3, payload_pointers=0.1, opaque_hops=0.6),
            _mix("conflict", 0.08, n_ways=2, n_sets_used=6),
            _hot(0.82, 16 * KB),
        ),
        mem_fraction=0.37, store_fraction=0.25, branch_fraction=0.13,
        mispredict_rate=0.055, value_locality=0.35,
        phases=_init_phase(3), seed=210,
    ))
    add(WorkloadSpec(
        name="vortex", suite="int",
        description="object database: warm object cache, modest footprint "
                    "(low sensitivity)",
        patterns=(
            _mix("random", 0.025, working_set=768 * KB),
            _hot(0.975, 28 * KB),
        ),
        mem_fraction=0.36, store_fraction=0.35, branch_fraction=0.14,
        mispredict_rate=0.04, value_locality=0.5,
        code_footprint=48 * KB, seed=211,
    ))
    add(WorkloadSpec(
        name="vpr", suite="int",
        description="FPGA place and route: routing-grid set conflicts "
                    "(VC-friendly) with revisited nets colliding in L2 "
                    "sets and irregular traversal",
        patterns=(
            _mix("conflict", 0.10, n_ways=2, n_sets_used=6),
            _mix("random", 0.06, working_set=384 * KB),
            _mix("loop_seq", 0.08, working_set=2 * MB, sequence_length=160,
                 noise=0.03, conflict_sets=32, way_span=256 * KB),
            _hot(0.76, 16 * KB),
        ),
        mem_fraction=0.36, store_fraction=0.25, branch_fraction=0.13,
        mispredict_rate=0.06, value_locality=0.35,
        phases=_init_phase(4), seed=212,
    ))

    return specs


SPECS: Dict[str, WorkloadSpec] = _specs()
