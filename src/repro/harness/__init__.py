"""Experiment harness: one driver per paper figure/table.

Each ``fig*``/``table*`` function reproduces one exhibit of the paper's
evaluation (see DESIGN.md's experiment index) and returns a result object
whose ``render()`` prints the same rows/series the paper reports.  Every
driver submits its runs as :class:`~repro.exec.runspec.RunSpec` batches
through a shared :class:`~repro.exec.executor.Executor` (``executor=``
parameter, default :func:`repro.exec.get_default_executor`), which
deduplicates by run content hash — so exhibits sharing the Figure 4 grid
(Figures 5-7, Tables 6-7) pay for each cell once, in this process or,
with a result store configured, ever.
"""

from repro.harness.experiments import (
    ExperimentResult,
    fig1_model_validation,
    fig2_reveng_error,
    fig3_dbcp_fix,
    fig4_speedup,
    fig5_cost_power,
    fig6_sensitivity,
    fig7_sensitivity_subsets,
    fig8_memory_model,
    fig9_mshr,
    fig10_second_guessing,
    fig11_trace_selection,
    main_sweep,
    table5_prior_comparisons,
    table6_subset_winners,
    table7_selection_ranking,
)

__all__ = [
    "ExperimentResult",
    "fig1_model_validation",
    "fig2_reveng_error",
    "fig3_dbcp_fix",
    "fig4_speedup",
    "fig5_cost_power",
    "fig6_sensitivity",
    "fig7_sensitivity_subsets",
    "fig8_memory_model",
    "fig9_mshr",
    "fig10_second_guessing",
    "fig11_trace_selection",
    "main_sweep",
    "table5_prior_comparisons",
    "table6_subset_winners",
    "table7_selection_ranking",
]
