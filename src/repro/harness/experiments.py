"""Drivers for every figure and table in the paper's evaluation.

Conventions
-----------
* Every driver takes ``n_instructions`` (trace length per run) and
  ``benchmarks`` so tests can run small and EXPERIMENTS.md can run large.
* Drivers never call the simulator directly: they build declarative
  :class:`~repro.exec.runspec.RunSpec` batches and submit them through a
  shared :class:`~repro.exec.executor.Executor` (pass ``executor=`` or
  rely on :func:`repro.exec.get_default_executor`).  Run identity is the
  spec's content hash — benchmark, mechanism + kwargs, the full machine
  config, trace selection — so distinct configurations can never collide
  in the cache, and exhibits that share grid cells (the Figure 4 grid
  feeds Figures 5-7 and Tables 6-7) pay for each cell once.
* Results carry structured ``rows`` plus a ``render()`` producing the
  paper-style text table.
* Durability comes free with the executor: because drivers submit
  declarative spec batches (never imperative loops of simulator calls),
  every multi-spec exhibit is automatically backed by the write-ahead
  sweep journal when the CLI configures one — a killed ``fig4`` resumes
  with ``--resume`` and renders the identical table, with the finished
  cells served from the journal + store instead of re-simulated.
  Drivers need no code for this and must not add any: resumption is the
  executor's job, and a driver that caches or checkpoints on the side
  would fork the single source of truth the journal provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import (
    MEMORY_CONSTANT,
    MEMORY_SDRAM_FAST,
    MachineConfig,
    baseline_config,
)
from repro.core.results import ResultSet
from repro.core.selection import (
    count_possible_winners,
    rank_mechanisms,
    ranking_positions,
    winners_by_subset_size,
)
from repro.core.sensitivity import (
    benchmark_sensitivity,
    sensitivity_split,
    subset_speedups,
)
from repro.core.simulation import DEFAULT_INSTRUCTIONS
from repro.core.priorwork import comparison_pairs
from repro.costmodel.cacti import CactiModel
from repro.costmodel.power import PowerModel
from repro.exec import Executor, FailedRun, RunSpec, get_default_executor
from repro.mechanisms.registry import ALL_MECHANISMS, BASELINE, create
from repro.workloads.registry import (
    ALL_BENCHMARKS,
    ARTICLE_SELECTIONS,
)


@dataclass
class ExperimentResult:
    """Structured outcome of one reproduced exhibit."""

    exhibit: str
    title: str
    rows: List[Dict] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        lines = [f"== {self.exhibit}: {self.title} =="]
        for row in self.rows:
            cells = []
            for key, value in row.items():
                if isinstance(value, float):
                    cells.append(f"{key}={value:.3f}")
                else:
                    cells.append(f"{key}={value}")
            lines.append("  " + "  ".join(cells))
        if self.summary:
            summary = "  ".join(
                f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
                for key, value in self.summary.items()
            )
            lines.append(f"  -- {summary}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


def main_sweep(
    config: Optional[MachineConfig] = None,
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    mechanisms: Sequence[str] = ALL_MECHANISMS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    mechanism_kwargs: Optional[Dict[str, Dict]] = None,
    executor: Optional[Executor] = None,
) -> ResultSet:
    """The mechanism x benchmark grid, cached by run content (not label)."""
    ex = executor or get_default_executor()
    return ex.run_sweep(
        config=config,
        benchmarks=benchmarks,
        mechanisms=mechanisms,
        n_instructions=n_instructions,
        mechanism_kwargs=mechanism_kwargs,
    )


# ---------------------------------------------------------------------------
# Graceful degradation helpers
# ---------------------------------------------------------------------------
#
# Under a lenient retry policy (the CLI default) a batch may resolve some
# positions to FailedRun holes and a sweep's ResultSet may carry failed
# cells.  Exhibits degrade at benchmark granularity: a group (or grid
# column) containing any hole is dropped from the numbers and named in
# the exhibit's note, so a partially failed run still renders — honestly.

def _complete_groups(results, group_size, keys):
    """Split a flat batch into per-key groups, quarantining holed ones.

    ``results`` is ``group_size * len(keys)`` entries in key order.
    Returns ``(survivors, dropped)``: survivors as ``(key, group)`` pairs
    containing only real results, dropped as the keys whose group has at
    least one :class:`FailedRun`.
    """
    survivors = []
    dropped = []
    for index, key in enumerate(keys):
        group = results[index * group_size:(index + 1) * group_size]
        if any(isinstance(r, FailedRun) for r in group):
            dropped.append(key)
        else:
            survivors.append((key, group))
    if not survivors:
        raise RuntimeError(
            f"every group failed ({len(dropped)} of {len(dropped)}); "
            "nothing to render — rerun with --retries or --strict to "
            "see the underlying errors"
        )
    return survivors, dropped


def _degraded_note(dropped, what: str = "benchmark") -> str:
    """The note fragment naming what a degraded exhibit is missing."""
    if not dropped:
        return ""
    names = ", ".join(str(key) for key in dropped)
    return (f"DEGRADED: dropped {len(dropped)} {what}(s) after failed "
            f"runs: {names}")


def _join_notes(*notes: str) -> str:
    return "; ".join(note for note in notes if note)


def _densify(*sweeps: ResultSet):
    """Restrict sweeps to benchmarks hole-free in *all* of them.

    Sweep-driven exhibits aggregate whole grid columns, so one failed
    cell poisons its benchmark everywhere that benchmark appears.
    Returns the restricted sweeps plus the degradation note ("" when
    everything is complete).
    """
    holed = set()
    for sweep in sweeps:
        holed.update(sweep.incomplete_benchmarks())
    if not holed:
        return (*sweeps, "")
    dense = tuple(
        sweep.subset(b for b in sweep.benchmarks if b not in holed)
        for sweep in sweeps
    )
    if any(not sweep.benchmarks for sweep in dense):
        raise RuntimeError(
            "every benchmark had failed cells; nothing to render — rerun "
            "with --retries or --strict to see the underlying errors"
        )
    note = _degraded_note(sorted(holed))
    return (*dense, note)


# ---------------------------------------------------------------------------
# Figure 1 — cache-model precision validation
# ---------------------------------------------------------------------------

def fig1_model_validation(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """IPC difference between the MicroLib cache and a SimpleScalar-like one.

    The paper measured a 6.8% average IPC difference between the hybrid
    SimpleScalar+MicroLib model and original SimpleScalar, traced to the
    finite MSHR, pipeline stalls, LSQ back-pressure and refill ports; after
    aligning the models the residual was 2%.
    """
    ex = executor or get_default_executor()
    precise = baseline_config()
    imprecise = precise.with_simplescalar_cache()
    specs = []
    for benchmark in benchmarks:
        specs.append(RunSpec(benchmark, BASELINE, config=precise,
                             n_instructions=n_instructions))
        specs.append(RunSpec(benchmark, BASELINE, config=imprecise,
                             n_instructions=n_instructions))
    results = ex.run(specs)
    survivors, dropped = _complete_groups(results, 2, list(benchmarks))
    rows = []
    diffs = []
    for benchmark, (a, b) in survivors:
        diff = abs(b.ipc - a.ipc) / a.ipc if a.ipc else 0.0
        diffs.append(diff)
        rows.append({
            "benchmark": benchmark,
            "ipc_microlib": a.ipc,
            "ipc_simplescalar_like": b.ipc,
            "abs_diff_pct": 100 * diff,
        })
    return ExperimentResult(
        exhibit="Figure 1",
        title="MicroLib cache model vs SimpleScalar-like cache model",
        rows=rows,
        summary={"avg_abs_ipc_diff_pct": 100 * sum(diffs) / len(diffs)},
        notes=_join_notes(_degraded_note(dropped),
                          "paper: 6.8% average before model alignment"),
    )


# ---------------------------------------------------------------------------
# Figure 2 — reverse-engineering error for TK / TCP / TKVC
# ---------------------------------------------------------------------------

def fig2_reveng_error(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """Speedup error between reference and reverse-engineered builds.

    The paper validated TK, TCP and TKVC against the graphs in their
    articles (70-cycle constant memory, as in those articles) and found a
    5% average speedup error.  We reproduce the protocol with a *reference*
    build standing in for the article numbers and a plausibly-misread
    ``reverse_engineered`` build standing in for the authors' first
    attempt.
    """
    ex = executor or get_default_executor()
    config = baseline_config().with_memory_model(MEMORY_CONSTANT)
    cells = [(acronym, benchmark)
             for acronym in ("TK", "TCP", "TKVC")
             for benchmark in benchmarks]
    specs = []
    for acronym, benchmark in cells:
        specs.append(RunSpec(benchmark, BASELINE, config=config,
                             n_instructions=n_instructions))
        specs.append(RunSpec(benchmark, acronym, config=config,
                             n_instructions=n_instructions))
        specs.append(RunSpec(benchmark, acronym, config=config,
                             n_instructions=n_instructions,
                             mechanism_kwargs={"reverse_engineered": True}))
    results = ex.run(specs)
    survivors, dropped = _complete_groups(results, 3, cells)
    rows = []
    errors = []
    for (acronym, benchmark), (base, reference, misread) in survivors:
        ref_speedup = reference.speedup_over(base)
        bad_speedup = misread.speedup_over(base)
        error = abs(bad_speedup - ref_speedup) / ref_speedup
        errors.append(error)
        rows.append({
            "mechanism": acronym,
            "benchmark": benchmark,
            "reference_speedup": ref_speedup,
            "reveng_speedup": bad_speedup,
            "error_pct": 100 * error,
        })
    return ExperimentResult(
        exhibit="Figure 2",
        title="Reverse-engineering speedup error (TK, TCP, TKVC)",
        rows=rows,
        summary={"avg_error_pct": 100 * sum(errors) / len(errors)},
        notes=_join_notes(_degraded_note(dropped, "cell"),
                          "paper: 5% average error vs article graphs"),
    )


# ---------------------------------------------------------------------------
# Figure 3 — fixing the DBCP implementation
# ---------------------------------------------------------------------------

def fig3_dbcp_fix(
    benchmarks: Optional[Sequence[str]] = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """DBCP 'initial' (three reverse-engineering defects) vs 'fixed'.

    The paper's initial DBCP was off by 38% on average; the fixed build
    also outperformed TK, reversing the ranking published in the TK
    article.
    """
    ex = executor or get_default_executor()
    names = list(benchmarks) if benchmarks is not None else list(
        ARTICLE_SELECTIONS["DBCP"]
    )
    specs = []
    for benchmark in names:
        specs.append(RunSpec(benchmark, BASELINE,
                             n_instructions=n_instructions))
        specs.append(RunSpec(benchmark, "DBCP", n_instructions=n_instructions,
                             mechanism_kwargs={"variant": "initial"}))
        specs.append(RunSpec(benchmark, "DBCP", n_instructions=n_instructions,
                             mechanism_kwargs={"variant": "fixed"}))
        specs.append(RunSpec(benchmark, "TK", n_instructions=n_instructions))
    results = ex.run(specs)
    survivors, dropped = _complete_groups(results, 4, names)
    rows = []
    gaps = []
    fixed_speedups = []
    tk_speedups = []
    for benchmark, (base, initial, fixed, tk) in survivors:
        s_initial = initial.speedup_over(base)
        s_fixed = fixed.speedup_over(base)
        s_tk = tk.speedup_over(base)
        gaps.append(abs(s_fixed - s_initial) / s_initial if s_initial else 0)
        fixed_speedups.append(s_fixed)
        tk_speedups.append(s_tk)
        rows.append({
            "benchmark": benchmark,
            "initial": s_initial,
            "fixed": s_fixed,
            "tk": s_tk,
        })
    n = len(survivors)
    return ExperimentResult(
        exhibit="Figure 3",
        title="Fixing the DBCP reverse-engineered implementation",
        rows=rows,
        summary={
            "avg_initial_vs_fixed_gap_pct": 100 * sum(gaps) / n,
            "fixed_dbcp_mean_speedup": sum(fixed_speedups) / n,
            "tk_mean_speedup": sum(tk_speedups) / n,
        },
        notes=_join_notes(
            _degraded_note(dropped),
            "paper: 38% average initial-vs-fixed difference; fixed DBCP "
            "outperforms TK"),
    )


# ---------------------------------------------------------------------------
# Figure 4 — the headline speedup comparison
# ---------------------------------------------------------------------------

def fig4_speedup(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """Average IPC speedup of every mechanism over the Table 1 baseline."""
    results = main_sweep(benchmarks=benchmarks, n_instructions=n_instructions,
                         executor=executor)
    results, degraded = _densify(results)
    ranked = rank_mechanisms(results)
    rows = [
        {"mechanism": name, "mean_speedup": score,
         "year": _mechanism_year(name)}
        for name, score in ranked
    ]
    return ExperimentResult(
        exhibit="Figure 4",
        title="Average IPC speedup over the baseline (all benchmarks)",
        rows=rows,
        summary={"winner": ranked[0][0]},
        notes=_join_notes(
            degraded,
            "paper: GHB best, then SP, then TK; TP performs well for its "
            "age; performance progress 1982-2004 is irregular"),
    )


def _mechanism_year(name: str) -> int:
    from repro.mechanisms.registry import mechanism_info
    return mechanism_info(name).year


# ---------------------------------------------------------------------------
# Figure 5 — cost (area) and power ratios
# ---------------------------------------------------------------------------

def fig5_cost_power(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """Area and power of each mechanism relative to the base caches."""
    results = main_sweep(benchmarks=benchmarks, n_instructions=n_instructions,
                         executor=executor)
    results, degraded = _densify(results)
    cacti = CactiModel()
    power = PowerModel()
    rows = []
    for name in results.mechanisms:
        if name == BASELINE:
            continue
        mechanism = create(name)
        # Wire the mechanism to a throwaway hierarchy so structure sizing
        # that depends on the attached cache resolves.
        from repro.core.simulation import build_machine
        _, hierarchy = build_machine(mechanism=mechanism)
        cost_ratio = cacti.cost_ratio(mechanism)
        power_ratios = []
        for benchmark in results.benchmarks:
            run = results.get(name, benchmark)
            run_mech = _mechanism_with_activity(name, run)
            power_ratios.append(power.power_ratio(run_mech, run))
        rows.append({
            "mechanism": name,
            "cost_ratio": cost_ratio,
            "power_ratio": sum(power_ratios) / len(power_ratios),
            "mean_speedup": results.mean_speedup(name),
        })
    markov_cost = next(r["cost_ratio"] for r in rows if r["mechanism"] == "Markov")
    sp_cost = next(r["cost_ratio"] for r in rows if r["mechanism"] == "SP")
    return ExperimentResult(
        exhibit="Figure 5",
        title="Power and cost ratios",
        rows=rows,
        summary={"markov_cost_ratio": markov_cost, "sp_cost_ratio": sp_cost},
        notes=_join_notes(
            degraded,
            "paper: Markov/DBCP very costly; TP/SP/GHB almost free in "
            "area; GHB power-hungry despite small tables; SP the best "
            "overall trade-off"),
    )


def _mechanism_with_activity(name: str, run) -> object:
    """Rebuild a mechanism object carrying the run's activity counters."""
    mechanism = create(name)
    from repro.core.simulation import build_machine
    build_machine(mechanism=mechanism)  # attach for structure sizing
    mechanism.st_table_accesses.value = run.mechanism_table_accesses
    return mechanism


# ---------------------------------------------------------------------------
# Table 5 — who compared against whom
# ---------------------------------------------------------------------------

def table5_prior_comparisons() -> ExperimentResult:
    rows = [
        {"newer": newer, "compared_against": older}
        for newer, older in comparison_pairs()
    ]
    return ExperimentResult(
        exhibit="Table 5",
        title="Previous comparisons in the original articles",
        rows=rows,
        summary={"n_pairs": float(len(rows))},
        notes="few articles compare beyond one or two prior mechanisms",
    )


# ---------------------------------------------------------------------------
# Table 6 — which mechanism can win with N benchmarks
# ---------------------------------------------------------------------------

def table6_subset_winners(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    sizes: Optional[Sequence[int]] = None,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    results = main_sweep(benchmarks=benchmarks, n_instructions=n_instructions,
                         executor=executor)
    results, degraded = _densify(results)
    table = winners_by_subset_size(results, sizes)
    counts = count_possible_winners(table)
    rows = []
    for size in sorted(table):
        winners = [name for name, ok in table[size].items() if ok]
        rows.append({
            "n_benchmarks": size,
            "possible_winners": ",".join(winners),
            "count": len(winners),
        })
    multi_winner_sizes = [size for size, count in counts.items() if count > 1]
    return ExperimentResult(
        exhibit="Table 6",
        title="Which mechanism can be the best with N benchmarks?",
        rows=rows,
        summary={
            "max_size_with_multiple_winners": float(
                max(multi_winner_sizes) if multi_winner_sizes else 0
            ),
        },
        notes=_join_notes(
            degraded,
            "paper: more than one possible winner for any selection of "
            "up to 23 benchmarks; even poor-on-average mechanisms (FVC, "
            "Markov) win sizeable selections"),
    )


# ---------------------------------------------------------------------------
# Table 7 — influence of benchmark selection on ranking
# ---------------------------------------------------------------------------

def table7_selection_ranking(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    results = main_sweep(benchmarks=benchmarks, n_instructions=n_instructions,
                         executor=executor)
    results, degraded = _densify(results)
    available = set(results.benchmarks)
    selections = {
        "all": list(results.benchmarks),
        "DBCP_article": [b for b in ARTICLE_SELECTIONS["DBCP"] if b in available],
        "GHB_article": [b for b in ARTICLE_SELECTIONS["GHB"] if b in available],
    }
    rows = []
    ranks = {}
    for name, selection in selections.items():
        if not selection:
            continue
        positions = ranking_positions(results, selection)
        ranks[name] = positions
        row = {"selection": name}
        row.update({mech: positions[mech] for mech in results.mechanisms})
        rows.append(row)
    summary = {}
    if "all" in ranks and "DBCP_article" in ranks and "DBCP" in ranks["all"]:
        summary["dbcp_rank_all"] = float(ranks["all"]["DBCP"])
        summary["dbcp_rank_own_selection"] = float(ranks["DBCP_article"]["DBCP"])
    if "all" in ranks and "GHB_article" in ranks and "GHB" in ranks["all"]:
        summary["ghb_rank_all"] = float(ranks["all"]["GHB"])
        summary["ghb_rank_own_selection"] = float(ranks["GHB_article"]["GHB"])
    return ExperimentResult(
        exhibit="Table 7",
        title="Influence of benchmark selection on ranking",
        rows=rows,
        summary=summary,
        notes=_join_notes(
            degraded,
            "paper: DBCP ranks 9th on all 26 but 3rd on its article's "
            "selection; GHB 1st on all 26, 2nd on its own selection"),
    )


# ---------------------------------------------------------------------------
# Figures 6 and 7 — benchmark sensitivity
# ---------------------------------------------------------------------------

def fig6_sensitivity(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    results = main_sweep(benchmarks=benchmarks, n_instructions=n_instructions,
                         executor=executor)
    results, degraded = _densify(results)
    sensitivity = benchmark_sensitivity(results)
    rows = [
        {"benchmark": benchmark, "speedup_spread": spread}
        for benchmark, spread in sorted(
            sensitivity.items(), key=lambda kv: -kv[1]
        )
    ]
    return ExperimentResult(
        exhibit="Figure 6",
        title="Benchmark sensitivity to mechanisms",
        rows=rows,
        summary={"max_spread": rows[0]["speedup_spread"],
                 "min_spread": rows[-1]["speedup_spread"]},
        notes=_join_notes(
            degraded,
            "paper: wupwise/bzip2/crafty/eon/perlbmk/vortex barely "
            "sensitive; apsi/equake/fma3d/mgrid/swim/gap dominate"),
    )


def fig7_sensitivity_subsets(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    k: int = 6,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    results = main_sweep(benchmarks=benchmarks, n_instructions=n_instructions,
                         executor=executor)
    results, degraded = _densify(results)
    high, low = sensitivity_split(results, k=min(k, len(results.benchmarks) // 2))
    table = subset_speedups(results, {
        "all": results.benchmarks,
        "high_sensitivity": high,
        "low_sensitivity": low,
    })
    rows = []
    for label, speedups in table.items():
        row = {"subset": label}
        row.update(speedups)
        rows.append(row)
    def winner(label):
        speedups = table[label]
        return max(speedups, key=speedups.get)
    return ExperimentResult(
        exhibit="Figure 7",
        title="Speedups on high- and low-sensitivity benchmark subsets",
        rows=rows,
        summary={"high_subset": ",".join(high), "low_subset": ",".join(low),
                 "winner_high": winner("high_sensitivity"),
                 "winner_low": winner("low_sensitivity")},
        notes=_join_notes(
            degraded,
            "paper: absolute performance and ranking are severely "
            "affected by the subset choice"),
    )


# ---------------------------------------------------------------------------
# Figure 8 — memory-model precision
# ---------------------------------------------------------------------------

def fig8_memory_model(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """Constant-70 vs detailed SDRAM vs scaled SDRAM-70."""
    models = {
        "constant70": baseline_config().with_memory_model(MEMORY_CONSTANT),
        "sdram": baseline_config(),
        "sdram70": baseline_config().with_memory_model(MEMORY_SDRAM_FAST),
    }
    sweeps = {
        name: main_sweep(config=config, benchmarks=benchmarks,
                         n_instructions=n_instructions, executor=executor)
        for name, config in models.items()
    }
    # A benchmark with a failed cell under any memory model drops from
    # all three — the comparison only makes sense on the common grid.
    *dense, degraded = _densify(*sweeps.values())
    sweeps = dict(zip(sweeps, dense))
    rows = []
    for name in sweeps["sdram"].mechanisms:
        if name == BASELINE:
            continue
        row = {"mechanism": name}
        for model_name, results in sweeps.items():
            row[model_name] = results.mean_speedup(name)
        rows.append(row)

    def gain(row, label):
        return row[label] - 1.0

    reductions = []
    for row in rows:
        constant_gain = gain(row, "constant70")
        if constant_gain > 0.005:
            reductions.append(
                (constant_gain - gain(row, "sdram")) / constant_gain
            )
    ghb_row = next(r for r in rows if r["mechanism"] == "GHB")
    sp_row = next(r for r in rows if r["mechanism"] == "SP")
    # Per-benchmark average SDRAM latency (baseline) for the gzip/lucas story.
    latency_rows = [
        {"benchmark": b,
         "avg_sdram_latency": sweeps["sdram"].get(BASELINE, b).avg_memory_latency}
        for b in sweeps["sdram"].benchmarks
    ]
    return ExperimentResult(
        exhibit="Figure 8",
        title="Effect of the memory model",
        rows=rows + latency_rows,
        summary={
            "avg_speedup_reduction_pct": 100 * (
                sum(reductions) / len(reductions) if reductions else 0.0
            ),
            "ghb_constant_gain": gain(ghb_row, "constant70"),
            "ghb_sdram_gain": gain(ghb_row, "sdram"),
            "sp_constant_gain": gain(sp_row, "constant70"),
            "sp_sdram_gain": gain(sp_row, "sdram"),
        },
        notes=_join_notes(
            degraded,
            "paper: speedups shrink ~58% moving from the constant model "
            "to SDRAM; GHB suffers more than SP (memory pressure); "
            "average SDRAM latency varies strongly per benchmark "
            "(87 gzip .. 389 lucas)"),
    )


# ---------------------------------------------------------------------------
# Figure 9 — MSHR precision
# ---------------------------------------------------------------------------

def fig9_mshr(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    finite = main_sweep(benchmarks=benchmarks, n_instructions=n_instructions,
                        executor=executor)
    infinite = main_sweep(
        config=baseline_config().with_infinite_mshr(),
        benchmarks=benchmarks, n_instructions=n_instructions,
        executor=executor,
    )
    finite, infinite, degraded = _densify(finite, infinite)
    rows = []
    for name in finite.mechanisms:
        if name == BASELINE:
            continue
        rows.append({
            "mechanism": name,
            "finite_mshr": finite.mean_speedup(name),
            "infinite_mshr": infinite.mean_speedup(name),
        })
    finite_ranks = ranking_positions(finite)
    infinite_ranks = ranking_positions(infinite)
    flips = sum(
        1 for name in finite_ranks if finite_ranks[name] != infinite_ranks[name]
    )
    return ExperimentResult(
        exhibit="Figure 9",
        title="Effect of cache-model accuracy (finite vs infinite MSHR)",
        rows=rows,
        summary={"rank_changes": float(flips)},
        notes=_join_notes(
            degraded,
            "paper: the MSHR has a limited but sometimes peculiar effect; "
            "it can change ranking (TCP vs TK flip)"),
    )


# ---------------------------------------------------------------------------
# Figure 10 — second-guessing the authors (TCP prefetch queue size)
# ---------------------------------------------------------------------------

def fig10_second_guessing(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    ex = executor or get_default_executor()
    specs = []
    for benchmark in benchmarks:
        specs.append(RunSpec(benchmark, BASELINE,
                             n_instructions=n_instructions))
        specs.append(RunSpec(benchmark, "TCP", n_instructions=n_instructions,
                             mechanism_kwargs={"queue_size": 1}))
        specs.append(RunSpec(benchmark, "TCP", n_instructions=n_instructions,
                             mechanism_kwargs={"queue_size": 128}))
    results = ex.run(specs)
    survivors, dropped = _complete_groups(results, 3, list(benchmarks))
    rows = []
    diffs = []
    for benchmark, (base, small, large) in survivors:
        s_small = small.speedup_over(base)
        s_large = large.speedup_over(base)
        diffs.append(abs(s_large - s_small))
        rows.append({
            "benchmark": benchmark,
            "queue_1": s_small,
            "queue_128": s_large,
        })
    return ExperimentResult(
        exhibit="Figure 10",
        title="Effect of second-guessing: TCP prefetch queue 1 vs 128",
        rows=rows,
        summary={"max_abs_speedup_diff": max(diffs),
                 "avg_abs_speedup_diff": sum(diffs) / len(diffs)},
        notes=_join_notes(
            _degraded_note(dropped),
            "paper: tiny difference for crafty/eon, dramatic for "
            "lucas/mgrid/art; a large buffer seizes the bus and can delay "
            "normal misses"),
    )


# ---------------------------------------------------------------------------
# Figure 11 — trace selection
# ---------------------------------------------------------------------------

def fig11_trace_selection(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    mechanisms: Sequence[str] = ALL_MECHANISMS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """SimPoint-selected traces vs arbitrary skip-and-simulate windows.

    Scaled protocol: from a full trace of 2.5x the run length, the
    *arbitrary* selection skips an eighth of a run length and simulates one
    run length (the "skip some, simulate a lot" habit — which, as for the
    original articles, over-samples the program's initialisation phase);
    the SimPoint selection picks the representative steady-phase interval.
    Both selections are declarative :class:`RunSpec` fields, so they cache
    and parallelise like every other run.
    """
    ex = executor or get_default_executor()
    full_length = int(n_instructions * 2.5)
    skip = n_instructions // 8
    interval = max(500, n_instructions // 10)
    arbitrary = ("window", skip)
    simpoint = ("simpoint", interval)
    names = [m for m in mechanisms if m != BASELINE]

    def spec(benchmark, mechanism, selection):
        return RunSpec(
            benchmark, mechanism,
            n_instructions=n_instructions,
            trace_length=full_length,
            selection=selection,
        )

    specs = []
    for benchmark in benchmarks:
        specs.append(spec(benchmark, BASELINE, arbitrary))
        specs.append(spec(benchmark, BASELINE, simpoint))
        for name in names:
            specs.append(spec(benchmark, name, arbitrary))
            specs.append(spec(benchmark, name, simpoint))
    results = ex.run(specs)

    per_mechanism: Dict[str, List[Tuple[float, float]]] = {m: [] for m in names}
    stride = 2 + 2 * len(names)
    survivors, dropped = _complete_groups(results, stride, list(benchmarks))
    for benchmark, chunk in survivors:
        base_arbitrary, base_simpoint = chunk[0], chunk[1]
        for m_index, name in enumerate(names):
            mech_arbitrary = chunk[2 + 2 * m_index]
            mech_simpoint = chunk[3 + 2 * m_index]
            per_mechanism[name].append((
                mech_arbitrary.speedup_over(base_arbitrary),
                mech_simpoint.speedup_over(base_simpoint),
            ))
    rows = []
    arbitrary_better = 0
    for name, pairs in per_mechanism.items():
        mean_arbitrary = sum(p[0] for p in pairs) / len(pairs)
        mean_simpoint = sum(p[1] for p in pairs) / len(pairs)
        if mean_arbitrary > mean_simpoint:
            arbitrary_better += 1
        rows.append({
            "mechanism": name,
            "arbitrary_window": mean_arbitrary,
            "simpoint": mean_simpoint,
        })
    return ExperimentResult(
        exhibit="Figure 11",
        title="Effect of trace selection (arbitrary window vs SimPoint)",
        rows=rows,
        summary={"mechanisms_better_on_arbitrary": float(arbitrary_better),
                 "n_mechanisms": float(len(per_mechanism))},
        notes=_join_notes(
            _degraded_note(dropped),
            "paper: most mechanisms look better on arbitrary windows "
            "(TP the notable exception); trace selection can flip "
            "research decisions"),
    )
