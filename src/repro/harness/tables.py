"""Renderers for the paper's configuration tables (Tables 1-4).

Tables 1-4 are setup rather than results — the machine, the mechanism
catalogue, the mechanism parameters, and the benchmarks each article used —
but a reproduction should be able to *print its own configuration* in the
paper's format so a reader can diff it against the original at a glance.
Each function returns an :class:`repro.harness.experiments.ExperimentResult`
whose rows mirror the corresponding table.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import baseline_config
from repro.core.simulation import build_machine
from repro.harness.experiments import ExperimentResult
from repro.mechanisms.registry import ALL_MECHANISMS, BASELINE, create, mechanism_info
from repro.workloads.registry import ALL_BENCHMARKS, ARTICLE_SELECTIONS


def table1_configuration() -> ExperimentResult:
    """Table 1: the baseline machine, field by field."""
    config = baseline_config()
    core, l1d, l2, sdram = config.core, config.l1d, config.l2, config.sdram
    rows = [
        {"group": "core", "parameter": "instruction window",
         "value": f"{core.ruu_size}-RUU, {core.lsq_size}-LSQ"},
        {"group": "core", "parameter": "fetch/issue/commit width",
         "value": f"{core.fetch_width}/{core.issue_width}/{core.commit_width}"},
        {"group": "core", "parameter": "functional units",
         "value": f"{core.int_alu} IntALU, {core.int_mul} IntMult/Div, "
                  f"{core.fp_alu} FPALU, {core.fp_mul} FPMult/Div, "
                  f"{core.lsu} Load/Store"},
        {"group": "l1d", "parameter": "geometry",
         "value": f"{l1d.size >> 10} KB / {l1d.assoc}-way / "
                  f"{l1d.line_size} B lines"},
        {"group": "l1d", "parameter": "ports/MSHRs/reads-per-MSHR",
         "value": f"{l1d.ports}/{l1d.mshr_entries}/{l1d.mshr_reads}"},
        {"group": "l1d", "parameter": "policy",
         "value": "writeback, allocate on write, 1-cycle latency"},
        {"group": "l1i", "parameter": "geometry",
         "value": f"{config.l1i.size >> 10} KB / {config.l1i.assoc}-way"},
        {"group": "l2", "parameter": "geometry",
         "value": f"{l2.size >> 20} MB / {l2.assoc}-way / "
                  f"{l2.line_size} B lines, {l2.latency}-cycle latency"},
        {"group": "bus", "parameter": "L1/L2 and memory bus",
         "value": f"{config.l1_l2_bus.width_bytes} B @ core clock; "
                  f"{config.memory_bus.width_bytes} B @ 400 MHz "
                  f"({config.memory_bus.cpu_cycles_per_transfer} CPU "
                  f"cycles/beat)"},
        {"group": "sdram", "parameter": "geometry",
         "value": f"{sdram.banks} banks x {sdram.rows} rows x "
                  f"{sdram.columns} cols, {sdram.queue_entries}-entry queue"},
        {"group": "sdram", "parameter": "timing (CPU cycles)",
         "value": f"tRCD {sdram.ras_to_cas}, CL {sdram.cas_latency}, "
                  f"tRP {sdram.ras_precharge}, tRAS {sdram.ras_active}, "
                  f"tRC {sdram.ras_cycle}, RAS-to-RAS {sdram.ras_to_ras}"},
    ]
    return ExperimentResult(
        exhibit="Table 1", title="Baseline configuration", rows=rows,
        notes="matches the paper's Table 1 field for field",
    )


def table2_mechanisms() -> ExperimentResult:
    """Table 2: the mechanism catalogue."""
    rows = []
    for name in ALL_MECHANISMS:
        if name == BASELINE:
            continue
        info = mechanism_info(name)
        rows.append({
            "acronym": name,
            "level": info.level.upper(),
            "year": info.year,
            "description": info.description,
        })
    return ExperimentResult(
        exhibit="Table 2", title="Target data cache optimizations",
        rows=rows, summary={"n_mechanisms": float(len(rows))},
    )


def table3_parameters() -> ExperimentResult:
    """Table 3: per-mechanism configuration, read from the live objects."""
    rows: List[Dict] = []
    for name in ALL_MECHANISMS:
        if name == BASELINE:
            continue
        mechanism = create(name)
        build_machine(mechanism=mechanism)  # resolve cache-dependent sizes
        structures = ", ".join(
            f"{spec.name}={spec.size_bytes}B"
            for spec in mechanism.structures()
        )
        if mechanism.queue is not None:
            queue = mechanism.queue.capacity
        else:
            # Composites (CDPSP) expose their sub-queues; capture-style
            # mechanisms have none.
            queues = [q.capacity for q in mechanism.iter_queues()]
            queue = "/".join(str(q) for q in queues) if queues else "-"
        rows.append({
            "acronym": name,
            "request_queue": queue,
            "structures": structures,
        })
    return ExperimentResult(
        exhibit="Table 3", title="Configuration of cache optimizations",
        rows=rows,
        notes="sizes are read from the instantiated mechanisms, so this "
              "table cannot drift from the implementation",
    )


def table4_benchmarks() -> ExperimentResult:
    """Table 4: benchmarks used by each validated mechanism's article."""
    rows = []
    for mechanism, selection in ARTICLE_SELECTIONS.items():
        rows.append({
            "mechanism": mechanism,
            "n_benchmarks": len(selection),
            "benchmarks": ",".join(selection) if len(selection) < 26
                          else "(all 26)",
        })
    return ExperimentResult(
        exhibit="Table 4", title="Benchmarks used in validated mechanisms",
        rows=rows,
        summary={"n_suite": float(len(ALL_BENCHMARKS))},
        notes="the printed table in the source paper does not legibly mark "
              "which columns carry DBCP's 5 and GHB's 12 check marks; these "
              "selections are documented stand-ins (see "
              "repro/workloads/registry.py)",
    )
