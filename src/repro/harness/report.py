"""Assemble EXPERIMENTS.md from the bench outputs.

``pytest benchmarks/ --benchmark-only`` writes each exhibit's rendered rows
to ``benchmarks/out/``; this module combines them with the hand-maintained
paper-expectation notes into the repository's EXPERIMENTS.md.  Run::

    python -m repro.harness.report [--out EXPERIMENTS.md]

so the paper-vs-measured record is always regenerable from a fresh bench
run rather than hand-transcribed.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

#: (output-file stem, paper claim, agreement notes).  The third column is
#: the honest part: where the shape matches, where it deviates, and why.
EXHIBITS = [
    ("table_1",
     "The baseline machine every experiment shares (a scaled-up "
     "superscalar whose parameters several of the original articles also "
     "used).",
     "Reproduced field for field, printed from the live configuration."),
    ("table_2",
     "The twelve mechanisms collected from four years of "
     "ISCA/MICRO/ASPLOS/HPCA.",
     "All twelve implemented; see docs/mechanisms.md."),
    ("table_3",
     "Per-mechanism configuration (table sizes, request queues).",
     "Printed from the instantiated mechanisms, so the table cannot drift "
     "from the implementation; all Table 3 values reproduced."),
    ("table_4",
     "Which SPEC benchmarks each validated mechanism's article used.",
     "The check-mark positions for DBCP (5) and GHB (12) are illegible in "
     "the source scan; documented stand-in selections with the right "
     "counts are used (repro/workloads/registry.py)."),
    ("figure_1",
     "Average 6.8% IPC difference between the MicroLib cache model and "
     "original SimpleScalar, dropping to 2% once the SimpleScalar model is "
     "aligned (finite MSHR, pipeline stalls, LSQ back-pressure, refill "
     "ports).",
     "Shape holds: the imprecise model is consistently optimistic.  Our "
     "average gap is larger than 6.8% because the synthetic workloads are "
     "more memory-intense per instruction than SPEC at this scale, so the "
     "precision features bind more often."),
    ("figure_2",
     "Average 5% speedup error between the reverse-engineered TK/TCP/TKVC "
     "and the graphs in their articles; tendencies usually preserved but "
     "sign flips occur (gcc/gzip for TK).",
     "Shape holds: plausibly-misread builds diverge from the reference by "
     "a few percent on average with much larger per-benchmark outliers."),
    ("figure_3",
     "The authors' initial DBCP was 38% off their fixed build (aliasing "
     "from unprehashed signatures, half-size table, no confidence decay); "
     "fixed DBCP outperforms TK, reversing the TK article's published "
     "ranking.",
     "Direction holds: the initial build is measurably worse than the "
     "fixed one and fixed DBCP >= TK.  The magnitude is far below 38%: at "
     "10^4-scale traces DBCP's per-line signatures see too few "
     "generations to separate the builds strongly (see the scale "
     "ablation)."),
    ("figure_4",
     "GHB best (HPCA 2004 evolution of SP), SP second, TK third; TP (1982) "
     "performs remarkably well; FVC disappoints under IPC; CDP poor on "
     "average; progress 1982-2004 is strikingly irregular.",
     "The headline structure holds: a next-line/stride prefetcher family "
     "tops the ranking, GHB is in the top two, Markov/DBCP/CDP sit in the "
     "bottom half, and 1982's TP outranks several 2001-2003 mechanisms "
     "(the irregular-progress observation, amplified).  Deviation: TP "
     "edges out GHB for first place — at short traces the L2 never "
     "develops capacity pressure, so TP's speculative fills are never "
     "punished by evictions as they are at SPEC scale.  TK and TCP are "
     "neutral rather than mid-pack positive: their timekeeping/tag "
     "statistics need orders of magnitude more cycles to pay off."),
    ("figure_5",
     "Markov and DBCP cost several times the base cache area (1 MB / 2 MB "
     "tables); TP/SP/GHB nearly free; GHB power-hungry despite small "
     "tables (repeated walks, 4 requests per miss); SP the best overall "
     "performance/cost/power trade-off.",
     "Shape holds throughout: Markov and DBCP are the area/power "
     "extremes, GHB burns more power than SP at similar area, and SP "
     "pairs top-tier speedup with near-zero cost."),
    ("table_5",
     "Original articles rarely compare beyond one or two prior mechanisms "
     "and mostly when compulsory (GHB vs SP).",
     "Static data, reproduced as given."),
    ("table_6",
     "Every selection size up to 23 has more than one possible winner; "
     "FVC can win selections up to 12 benchmarks, Markov up to 9.",
     "Shape holds: many distinct winners at small sizes, multiple "
     "possible winners persisting past half the suite, exactly one winner "
     "for all 26.  Our witness search is a lower bound (a heuristic "
     "cherry-picker), so counts are conservative."),
    ("table_7",
     "DBCP: 9th over all 26 benchmarks, 3rd on its article's selection; "
     "GHB: 1st over all, 2nd on its own (overtaken by SP).",
     "Direction holds for the headline instability (rankings move between "
     "selections; several mechanisms shift multiple places).  Deviation: "
     "our DBCP is too weak overall for a 6-place jump on its selection — "
     "it sits in a near-tied cluster around 1.0 where single ranks are "
     "noise."),
    ("figure_6",
     "Benchmark sensitivity varies enormously: wupwise, bzip2, crafty, "
     "eon, perlbmk, vortex barely react; apsi, equake, fma3d, mgrid, "
     "swim, gap dominate any assessment.",
     "Shape holds: the designed high-sensitivity six land in the top "
     "half, the low-sensitivity six toward the bottom, with an "
     "order-of-magnitude spread between extremes."),
    ("figure_7",
     "Measured on the 6 most sensitive benchmarks, absolute speedups and "
     "ranking change severely; on the 6 least sensitive, mechanisms are "
     "nearly indistinguishable.",
     "Shape holds: the high-sensitivity subset roughly doubles the best "
     "apparent gain, the low-sensitivity subset flattens everything."),
    ("figure_8",
     "Moving from the 70-cycle constant memory to the detailed SDRAM cuts "
     "speedups ~58% on average (59.9% for the scaled SDRAM-70); GHB loses "
     "more than SP (18.7% vs 2.8% of its speedup); average SDRAM latency "
     "ranges 87 (gzip) to 389 (lucas) cycles; rank flips occur (DBCP vs "
     "VC/TKVC).",
     "Shape holds: large average reduction under SDRAM, GHB's absolute "
     "loss exceeding SP's, and a wide per-benchmark latency range with "
     "lucas near the top.  Deviation: our gzip's dictionary misses go to "
     "DRAM with shuffled rows, so gzip is not the low-latency extreme it "
     "is in the paper."),
    ("figure_9",
     "The MSHR has a limited but peculiar effect; it can affect ranking "
     "(TCP beat TK with an infinite MSHR but not with a finite one).",
     "Shape holds: effects are small and mostly favour the infinite MSHR "
     "for prefetch-heavy mechanisms (their fills are never dropped for "
     "lack of an MSHR), which is the paper's direction of distortion."),
    ("figure_10",
     "TCP's unstated prefetch-queue size (1 vs 128): negligible for "
     "crafty/eon, dramatic for lucas/mgrid/art; a large buffer seizes the "
     "bus and delays normal misses.",
     "Shape holds: per-benchmark differences span negligible to visible "
     "and move in both directions; the low-sensitivity benchmarks are "
     "unaffected.  Magnitudes are smaller than the paper's because our "
     "TCP fires less often at this scale."),
    ("figure_11",
     "Arbitrary skip-and-simulate windows vs SimPoint selection differ "
     "significantly; most mechanisms look better on arbitrary windows "
     "(TP the notable exception).",
     "Shape holds: the two selections disagree and the majority of "
     "mechanisms benefit from the arbitrary window's over-sampling of the "
     "initialisation phase."),
    ("ablation_dram",
     "(design-choice ablation, not a paper exhibit) The paper retained a "
     "conflict-reducing bank-interleaving scheme and an open-row "
     "controller.",
     "Permutation interleaving dominates linear everywhere.  The page "
     "policy trades both ways: open page wins on row-friendly streams, "
     "eager precharge wins on the row-hostile lucas — our suite is more "
     "row-hostile than SPEC, so Table 1's open-page choice is less "
     "clear-cut here."),
    ("ablation_prefetch_throttle",
     "(design-choice ablation) Section 3.4's 'prefetches wait until the "
     "bus is idle' policy.",
     "Removing the throttle adds memory traffic without improving "
     "memory-bound results — the policy the paper assumes is the right "
     "default."),
    ("ablation_scale",
     "(reproduction-methodology ablation) DESIGN.md scales traces ~10^4x.",
     "Streaming-prefetcher claims are stable across 2-8x length changes; "
     "correlation mechanisms and CDP drift with scale, which bounds how "
     "literally per-mechanism magnitudes should be read."),
    ("ablation_sampling",
     "(methodology extension) The paper cites SMARTS as the rigorous "
     "sampling alternative to arbitrary windows (Section 3.5).",
     "Eight systematic windows with warm-up prefixes estimate full-trace "
     "IPC within tens of percent at this scale — the same order as the "
     "15-18% the paper quotes for SimPoint at full scale — with a "
     "reported confidence interval."),
    ("matrix",
     "(underlying data) The 13-configuration x 26-benchmark grid every "
     "figure projects — the analogue of the ranking the MicroLib site "
     "maintained.",
     "Saved in full so any projection in this file can be re-derived."),
    ("extension_library",
     "(library extension) Section 4's populate-the-library goal; the "
     "paper also names eager writeback as collected-but-unevaluable for "
     "lack of bandwidth-bound benchmarks.",
     "Both extensions behave as their articles claim on this substrate: "
     "stream buffers cover streaming; eager writeback helps the "
     "bandwidth-bound swim/lucas and is harmless on cache-resident "
     "code — the evaluation the original study could not run."),
]

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every figure and table of the paper's evaluation (Sections 2-3), what the
paper reports, what this reproduction measures, and an honest account of
where the shapes agree and deviate.  Regenerate the measured rows with::

    pytest benchmarks/ --benchmark-only        # writes benchmarks/out/
    python -m repro.harness.report             # rebuilds this file

Measured rows below come from ``benchmarks/out/`` (all 26 benchmarks,
{n} instructions per simulation, the Table 1 machine).  Absolute numbers
are not comparable to the paper's (different ISA, synthetic workloads,
~10^4x shorter traces); the reproduction target is the *shape*: who wins,
which direction each methodology choice moves results, where crossovers
fall.  See DESIGN.md for the substitution table and the simulation
approach.
"""


def build_report(out_dir: Path, n_instructions: Optional[str] = None) -> str:
    chunks: List[str] = [HEADER.format(n=n_instructions or "REPRO_BENCH_N")]
    for stem, paper, verdict in EXHIBITS:
        path = out_dir / f"{stem}.txt"
        chunks.append("\n---\n")
        if path.exists():
            measured = path.read_text().rstrip()
            title_line = measured.splitlines()[0].strip("= ")
            chunks.append(f"## {title_line}\n")
        else:
            measured = "(not yet measured: run the benches)"
            chunks.append(f"## {stem}\n")
        chunks.append(f"**Paper:** {paper}\n")
        chunks.append(f"**Agreement:** {verdict}\n")
        chunks.append("**Measured:**\n\n```\n" + measured + "\n```\n")
    return "\n".join(chunks)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument("--bench-out", default="benchmarks/out")
    parser.add_argument("--n", default="30000",
                        help="instructions per simulation used in the run")
    args = parser.parse_args(argv)
    text = build_report(Path(args.bench_out), args.n)
    Path(args.out).write_text(text)
    print(f"wrote {args.out} from {args.bench_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
