"""The full mechanism x benchmark speedup matrix.

The paper's figures are all projections of one underlying grid: 13
configurations x 26 benchmarks.  This module renders the grid itself —
the artifact a reader needs to check any projection, and the closest thing
to the online ranking the MicroLib website maintained.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.simulation import DEFAULT_INSTRUCTIONS
from repro.exec import Executor
from repro.harness.experiments import ExperimentResult, main_sweep
from repro.mechanisms.registry import BASELINE
from repro.workloads.registry import ALL_BENCHMARKS


def speedup_matrix(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """One row per mechanism: per-benchmark speedups plus the mean.

    The matrix is the one exhibit that renders failed cells *in place*:
    a cell whose spec (or whose baseline) exhausted every attempt shows
    ``FAILED`` where the speedup would be, and the mechanism's mean is
    taken over its surviving benchmarks only.
    """
    results = main_sweep(benchmarks=benchmarks, n_instructions=n_instructions,
                         executor=executor)

    def cell_ok(mechanism, benchmark):
        return ((mechanism, benchmark) in results
                and (BASELINE, benchmark) in results)

    rows = []
    for mechanism in results.mechanisms:
        if mechanism == BASELINE:
            continue
        row = {"mechanism": mechanism}
        usable = []
        for benchmark in results.benchmarks:
            if cell_ok(mechanism, benchmark):
                row[benchmark] = results.speedup(mechanism, benchmark)
                usable.append(benchmark)
            else:
                row[benchmark] = "FAILED"
        row["MEAN"] = (results.mean_speedup(mechanism, usable)
                       if usable else "FAILED")
        rows.append(row)
    base_row = {"mechanism": "Base(IPC)"}
    base_row.update({
        benchmark: (results.ipc(BASELINE, benchmark)
                    if (BASELINE, benchmark) in results else "FAILED")
        for benchmark in results.benchmarks
    })
    rows.append(base_row)
    notes = "the grid every figure projects; final row is baseline IPC"
    if not results.complete:
        failed = results.failures
        notes = (f"DEGRADED: {len(failed)} cell(s) failed after exhausting "
                 "retries (see FAILED entries); " + notes)
    return ExperimentResult(
        exhibit="Matrix",
        title="Full speedup matrix (all mechanisms x all benchmarks)",
        rows=rows,
        notes=notes,
    )
