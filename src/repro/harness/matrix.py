"""The full mechanism x benchmark speedup matrix.

The paper's figures are all projections of one underlying grid: 13
configurations x 26 benchmarks.  This module renders the grid itself —
the artifact a reader needs to check any projection, and the closest thing
to the online ranking the MicroLib website maintained.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.simulation import DEFAULT_INSTRUCTIONS
from repro.exec import Executor
from repro.harness.experiments import ExperimentResult, main_sweep
from repro.mechanisms.registry import BASELINE
from repro.workloads.registry import ALL_BENCHMARKS


def speedup_matrix(
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """One row per mechanism: per-benchmark speedups plus the mean."""
    results = main_sweep(benchmarks=benchmarks, n_instructions=n_instructions,
                         executor=executor)
    rows = []
    for mechanism in results.mechanisms:
        if mechanism == BASELINE:
            continue
        row = {"mechanism": mechanism}
        row.update({
            benchmark: results.speedup(mechanism, benchmark)
            for benchmark in results.benchmarks
        })
        row["MEAN"] = results.mean_speedup(mechanism)
        rows.append(row)
    base_row = {"mechanism": "Base(IPC)"}
    base_row.update({
        benchmark: results.ipc(BASELINE, benchmark)
        for benchmark in results.benchmarks
    })
    rows.append(base_row)
    return ExperimentResult(
        exhibit="Matrix",
        title="Full speedup matrix (all mechanisms x all benchmarks)",
        rows=rows,
        notes="the grid every figure projects; final row is baseline IPC",
    )
