"""Runtime sanitizer mode: ``REPRO_SANITIZE=1``.

The static analyzer (:mod:`repro.analysis`) proves properties about the
*source*; this module arms cheap assertions that re-check the same
invariants about the *behaviour*, so the two passes cross-check each
other.  With the environment variable unset the flag is a module
constant ``False`` and every guard is a single attribute test on a hot
path — cheap enough to leave in the shipped code.

Armed invariants (see ``docs/analysis.md`` for the catalogue):

* kernel event queue — events never fire at a time earlier than the
  simulator's current cycle (event-time monotonicity), and scheduled
  times are integral cycles;
* cache hierarchy — mechanism prefetch queues never exceed their
  declared Table 3 capacity, and the frozen :class:`MachineConfig` is
  bit-identical at the end of a run to what the hierarchy was built
  with (no post-freeze mutation through a back door);
* mechanisms — emitted prefetches carry non-negative addresses, times
  and chase depths.

The flag is read **once, at import**: the sim path must not consult the
environment per-run (that is exactly what lint rule SIM203 forbids), and
a once-at-import read keeps worker processes consistent with the parent
because ``ProcessPoolExecutor`` children inherit the environment before
they import anything.
"""

from __future__ import annotations

import os

#: True when the current process runs with runtime sanitizing armed.
SANITIZE: bool = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


class SanitizeError(AssertionError):
    """An armed runtime invariant failed."""


def sanitize_failure(message: str) -> "SanitizeError":
    """Build the error for a failed invariant (caller raises it)."""
    return SanitizeError(f"REPRO_SANITIZE: {message}")
