"""Bank-level SDRAM timing model (Table 1 parameters).

Each bank is a small state machine tracked with timestamps: the currently
open row, when the bank last activated (for tRC and tRAS), and when it can
accept the next command.  An access resolves to one of three cases:

* **row hit** — the open row matches: pay CAS latency only;
* **row conflict** — another row is open: precharge (tRP, not before the
  previous activate + tRAS), activate (tRCD), then CAS;
* **row closed** — activate (tRCD) then CAS.

Activates additionally respect tRC (same bank) and the RAS-to-RAS delay
(across banks), which is what makes bank interleaving able to *pipeline*
page opens — the property the paper's memory-model experiment leans on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.config import SDRAMConfig
from repro.dram.scheduling import AddressMapping, PERMUTATION_INTERLEAVE
from repro.kernel.module import Component
from repro.kernel.state import restore_fields, snapshot_fields


class BankState:
    """Timing state of one SDRAM bank."""

    __slots__ = ("open_row", "ready", "activate_time")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready: int = 0           # earliest next command
        self.activate_time: int = -(10 ** 9)  # last activate (for tRC/tRAS)

    def reset(self) -> None:
        self.open_row = None
        self.ready = 0
        self.activate_time = -(10 ** 9)


class SDRAM(Component):
    """The SDRAM device array: banks, rows and the Table 1 timings."""

    #: Row-buffer policies: keep the row open betting on locality, or
    #: precharge eagerly after every access (the Green et al. trade-off the
    #: paper's controller study weighed — see the ablation bench).
    OPEN_PAGE = "open"
    CLOSED_PAGE = "closed"

    SNAPSHOT_FIELDS = ("banks", "_last_activate_any")
    SNAPSHOT_EXEMPT = ("config", "page_policy", "mapping")

    def __init__(
        self,
        config: SDRAMConfig,
        scheme: str = PERMUTATION_INTERLEAVE,
        page_policy: str = OPEN_PAGE,
        name: str = "sdram",
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        if page_policy not in (self.OPEN_PAGE, self.CLOSED_PAGE):
            raise ValueError(f"unknown page policy {page_policy!r}")
        self.config = config
        self.page_policy = page_policy
        self.mapping = AddressMapping(config, scheme)
        self.banks: List[BankState] = [BankState() for _ in range(config.banks)]
        self._last_activate_any = -(10 ** 9)
        self.st_accesses = self.add_stat("accesses", "row accesses serviced")
        self.st_row_hits = self.add_stat("row_hits", "accesses hitting the open row")
        self.st_activates = self.add_stat("activates", "row activations")
        self.st_precharges = self.add_stat("precharges", "precharge operations")
        self.st_latency = self.add_stat("total_latency", "sum of access latencies")

    def access(self, addr: int, time: int) -> int:
        """Service a line access at/after ``time``; return data-ready cycle."""
        cfg = self.config
        bank_idx, row = self.mapping.map(addr)
        bank = self.banks[bank_idx]
        start = time if bank.ready <= time else bank.ready
        if bank.open_row == row:
            self.st_row_hits.add()
            data_ready = start + cfg.cas_latency
            bank.ready = start + 1  # pipelined column accesses
        else:
            if bank.open_row is not None:
                # Precharge: not before tRAS from the activate that opened
                # the row, and the whole activate-to-activate pair respects
                # tRC.
                precharge_at = max(start, bank.activate_time + cfg.ras_active)
                self.st_precharges.add()
                activate_at = max(
                    precharge_at + cfg.ras_precharge,
                    bank.activate_time + cfg.ras_cycle,
                    self._last_activate_any + cfg.ras_to_ras,
                )
            else:
                activate_at = max(start, self._last_activate_any + cfg.ras_to_ras)
            self.st_activates.add()
            bank.activate_time = activate_at
            self._last_activate_any = activate_at
            bank.open_row = row
            data_ready = activate_at + cfg.ras_to_cas + cfg.cas_latency
            bank.ready = activate_at + cfg.ras_to_cas + 1
        if self.page_policy == self.CLOSED_PAGE:
            # Eager auto-precharge: hidden behind the data transfer (the
            # bank respects tRAS through activate_time on the next access),
            # but every subsequent access pays the full activate again.
            self.st_precharges.add()
            bank.open_row = None
            bank.ready = max(bank.ready, data_ready)
        self.st_accesses.add()
        self.st_latency.add(data_ready - time)
        return data_ready

    @property
    def average_latency(self) -> float:
        """Mean cycles from request presentation to data ready."""
        if not self.st_accesses.value:
            return 0.0
        return self.st_latency.value / self.st_accesses.value

    def snapshot(self) -> Dict[str, Any]:
        # BankState carries only ints/None in __slots__, so the generic
        # deepcopy serializes the bank list directly.
        state = snapshot_fields(self)
        state["stats"] = self.snapshot_stats()
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        state = dict(state)
        self.restore_stats(state.pop("stats"))
        restore_fields(self, state)

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self._last_activate_any = -(10 ** 9)
        self.reset_stats()
