"""SDRAM controller: queue admission + device timing + data return.

The controller owns a finite request queue (32 entries in Table 1).  A
request occupies its slot from admission until its data has been returned;
when all slots are busy a new request waits for the earliest completion —
this is the back-pressure that makes aggressive prefetchers (GHB, CDPSP)
*slow programs down* under the SDRAM model while they looked great under
SimpleScalar's infinite-bandwidth constant-latency memory (Section 3.3).
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional

from repro.core.config import SDRAMConfig
from repro.dram.scheduling import PERMUTATION_INTERLEAVE
from repro.dram.sdram import SDRAM
from repro.hotpath import hotpath
from repro.kernel.module import Component
from repro.kernel.state import snapshot_fields
from repro.obs.tracing import TRACER


class SDRAMController(Component):
    """Front end of the memory system: admits, schedules, completes."""

    SNAPSHOT_FIELDS = ("_slots",)
    SNAPSHOT_EXEMPT = ("config", "device", "_queue_entries", "_device_access")

    def __init__(
        self,
        config: SDRAMConfig,
        scheme: str = PERMUTATION_INTERLEAVE,
        page_policy: str = SDRAM.OPEN_PAGE,
        name: str = "memctl",
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        self.device = SDRAM(config, scheme, page_policy, parent=self)
        self._slots: List[int] = []    # heap of per-slot completion times
        # Hot-path hoists: the queue bound and the device's access method
        # are fixed for the controller's lifetime.
        self._queue_entries = config.queue_entries
        self._device_access = self.device.access
        self.st_requests = self.add_stat("requests", "requests admitted")
        self.st_queue_stall = self.add_stat(
            "queue_stall_cycles", "cycles requests waited for a queue slot"
        )
        self.st_latency = self.add_stat(
            "total_latency", "request-to-data latency including queue wait"
        )

    @hotpath
    def access(self, addr: int, time: int, is_write: bool = False) -> int:
        """Present a line request at ``time``; return the data-ready cycle.

        Writes occupy the queue and the bank like reads (the row must still
        be opened) but their completion does not gate the requester — the
        hierarchy simply drops the returned time for writebacks.
        """
        tracing = TRACER.enabled
        if tracing:
            TRACER.begin("dram.access", cat="dram")
        slots = self._slots
        admitted = time
        if len(slots) >= self._queue_entries:
            earliest = heapq.heappop(slots)
            if earliest > admitted:
                self.st_queue_stall.value += earliest - admitted
                admitted = earliest
        ready = self._device_access(addr, admitted)
        heapq.heappush(slots, ready)
        self.st_requests.value += 1
        self.st_latency.value += ready - time
        if tracing:
            TRACER.end(cycles=ready - time, queue_wait=admitted - time,
                       write=is_write)
        return ready

    @hotpath
    def occupancy(self, time: int) -> int:
        """Requests still in flight at ``time`` (for prefetch throttling)."""
        slots = self._slots
        while slots and slots[0] <= time:
            heapq.heappop(slots)
        return len(slots)

    @property
    def average_latency(self) -> float:
        """Mean request-to-data latency, queue wait included.

        This is the number the paper quotes per benchmark (87 cycles for
        ``gzip`` up to 389 for ``lucas``): contention, not just device
        timing.
        """
        if not self.st_requests.value:
            return 0.0
        return self.st_latency.value / self.st_requests.value

    def snapshot(self) -> Dict[str, Any]:
        state = snapshot_fields(self)
        state["device"] = self.device.snapshot()
        state["stats"] = self.snapshot_stats()
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        self._slots[:] = state["_slots"]
        self.device.restore(state["device"])
        self.restore_stats(state["stats"])

    def reset(self) -> None:
        self._slots.clear()
        self.device.reset()
        self.reset_stats()
