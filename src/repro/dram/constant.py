"""SimpleScalar-style constant-latency memory.

The model most of the original mechanism articles used: every access takes a
fixed number of cycles (70 by default) and bandwidth is unlimited.  The
paper shows (Figure 8) that this flatters bandwidth-hungry prefetchers —
speedups shrink by ~58% on average when the detailed SDRAM replaces it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.kernel.module import Component
from repro.obs.tracing import TRACER


class ConstantLatencyMemory(Component):
    """``access`` always completes ``latency`` cycles after presentation."""

    SNAPSHOT_FIELDS = ()
    SNAPSHOT_EXEMPT = ("latency",)

    def __init__(
        self,
        latency: int = 70,
        name: str = "constmem",
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        if latency < 1:
            raise ValueError(f"latency must be positive, got {latency}")
        self.latency = latency
        self.st_requests = self.add_stat("requests", "requests serviced")
        self.st_latency = self.add_stat("total_latency", "sum of access latencies")

    def access(self, addr: int, time: int, is_write: bool = False) -> int:
        tracing = TRACER.enabled
        if tracing:
            TRACER.begin("dram.access", cat="dram")
        self.st_requests.add()
        self.st_latency.add(self.latency)
        if tracing:
            TRACER.end(cycles=self.latency, write=is_write)
        return time + self.latency

    @property
    def average_latency(self) -> float:
        return float(self.latency)

    def snapshot(self) -> Dict[str, Any]:
        return {"stats": self.snapshot_stats()}

    def restore(self, state: Dict[str, Any]) -> None:
        self.restore_stats(state["stats"])

    def reset(self) -> None:
        self.reset_stats()
