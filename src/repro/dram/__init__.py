"""Main-memory models.

The paper contrasts three memory models (Section 3.3, Figure 8):

* the SimpleScalar-style **constant-latency** memory (70 cycles, unlimited
  bandwidth) used by most of the original mechanism articles;
* a detailed **SDRAM** with 4 banks, open rows and the Table 1 timings
  (~170-cycle typical latency);
* a **scaled SDRAM** whose average latency matches the 70-cycle constant
  model, isolating the effect of *contention* from the effect of *latency*.

All three implement the same ``access(addr, time, is_write) -> ready_time``
protocol consumed by :class:`repro.cache.hierarchy.MemoryHierarchy`.
"""

from repro.dram.constant import ConstantLatencyMemory
from repro.dram.controller import SDRAMController
from repro.dram.sdram import SDRAM, BankState
from repro.dram.scheduling import (
    LINEAR_INTERLEAVE,
    PERMUTATION_INTERLEAVE,
    AddressMapping,
)

__all__ = [
    "AddressMapping",
    "BankState",
    "ConstantLatencyMemory",
    "LINEAR_INTERLEAVE",
    "PERMUTATION_INTERLEAVE",
    "SDRAM",
    "SDRAMController",
]
