"""DRAM address mapping (bank-interleaving) schemes.

The paper's SDRAM model "uses a bank interleaving scheme [20, 30] which
allows the DRAM controller to hide the access latency by pipelining page
opening and closing operations", and the authors "implemented several
schedule schemes proposed by Green et al. [8] and retained one that
significantly reduces conflicts in row buffers".

We provide the two classic mappings those references describe:

* **linear interleave** — consecutive memory blocks rotate across banks;
  rows are the high-order bits.  Strided streams whose stride is a multiple
  of ``banks * row_bytes`` hammer a single bank and conflict heavily.
* **permutation-based interleave** (Zhang, Zhu & Zhang, MICRO 2000) — the
  bank index is XOR-ed with low-order row bits, spreading conflicting rows
  across banks.  This is the retained "conflict-reducing" scheme and the
  default.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import SDRAMConfig

LINEAR_INTERLEAVE = "linear"
PERMUTATION_INTERLEAVE = "permutation"

#: Bytes covered by one open row (row buffer size).  8 KB is typical of the
#: SDRAM generation the paper models (1024 columns x 64-bit devices).
ROW_BYTES = 8192


class AddressMapping:
    """Map a physical byte address to ``(bank, row)``.

    >>> mapping = AddressMapping(SDRAMConfig(), LINEAR_INTERLEAVE)
    >>> bank0, row0 = mapping.map(0)
    >>> bank1, row1 = mapping.map(ROW_BYTES)
    >>> bank0 == bank1
    False
    """

    def __init__(self, config: SDRAMConfig, scheme: str = PERMUTATION_INTERLEAVE):
        if scheme not in (LINEAR_INTERLEAVE, PERMUTATION_INTERLEAVE):
            raise ValueError(f"unknown interleaving scheme {scheme!r}")
        self.config = config
        self.scheme = scheme
        self.banks = config.banks
        if self.banks & (self.banks - 1):
            raise ValueError(f"bank count must be a power of two, got {self.banks}")
        self.row_bytes = ROW_BYTES
        self._bank_mask = self.banks - 1

    def map(self, addr: int) -> Tuple[int, int]:
        """Return ``(bank, row)`` for byte address ``addr``."""
        block = addr // self.row_bytes
        bank = block & self._bank_mask
        row = (block // self.banks) % self.config.rows
        if self.scheme == PERMUTATION_INTERLEAVE:
            bank ^= row & self._bank_mask
        return bank, row
