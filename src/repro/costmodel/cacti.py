"""CACTI-style analytical area model.

CACTI decomposes an SRAM structure into data array, tag array, decoders,
sense amplifiers and output drivers.  At the granularity the paper uses the
model — *area ratios between whole mechanisms and the base cache* — the
dominant terms are:

* data storage, linear in bit count;
* tag/valid overhead, linear in line count and associativity;
* peripheral overhead (decoders, sense amps), sub-linear in size but
  multiplied by port count (each extra port nearly doubles cell area:
  CACTI's cell grows quadratically with ports);
* a fixed per-structure floor so a 64-byte scanner is not free.

Constants are calibrated to CACTI 3.2's published 0.18 um numbers
(a 32 KB direct-mapped cache ~= 1.6 mm^2; 1 MB 4-way ~= 42 mm^2), but only
ratios matter for the reproduction.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from repro.core.config import CacheConfig, MachineConfig, baseline_config
from repro.mechanisms.base import Mechanism, StructureSpec

#: mm^2 per SRAM bit at the modelled node (0.18 um, single-ported).
_MM2_PER_BIT = 4.1e-7
#: Tag + status overhead per line, bits.
_TAG_BITS = 28
#: Peripheral (decoder/sense/driver) overhead factor per sqrt(bit).
_PERIPHERY_MM2_PER_SQRT_BIT = 6.0e-5
#: Extra cell-area multiplier per port beyond the first.
_PORT_FACTOR = 0.85
#: Associativity adds comparators and muxes.
_ASSOC_FACTOR = 0.03
#: Fixed floor for any structure (control, wiring), mm^2.
_FLOOR_MM2 = 0.002


def area_mm2(
    size_bytes: int, assoc: int = 1, ports: int = 1, line_size: int = 32
) -> float:
    """CACTI-style area of one SRAM structure in mm^2."""
    if size_bytes <= 0:
        return _FLOOR_MM2
    if assoc < 1 or ports < 1:
        raise ValueError(f"assoc and ports must be >= 1 (got {assoc}, {ports})")
    data_bits = size_bytes * 8
    n_lines = max(1, size_bytes // max(line_size, 1))
    tag_bits = n_lines * _TAG_BITS
    bits = data_bits + tag_bits
    cell = bits * _MM2_PER_BIT * (1 + _PORT_FACTOR * (ports - 1)) ** 2
    periphery = _PERIPHERY_MM2_PER_SQRT_BIT * math.sqrt(bits) * ports
    assoc_overhead = cell * _ASSOC_FACTOR * (assoc - 1)
    return _FLOOR_MM2 + cell + periphery + assoc_overhead


class CactiModel:
    """Prices caches and mechanism structures; reports Figure 5's ratios."""

    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or baseline_config()

    def cache_area(self, cache: CacheConfig) -> float:
        return area_mm2(
            cache.size, cache.assoc, cache.ports, cache.line_size
        )

    def base_area(self) -> float:
        """Area of the baseline data-cache hierarchy (L1D + L2)."""
        return self.cache_area(self.config.l1d) + self.cache_area(self.config.l2)

    def structures_area(self, structures: Iterable[StructureSpec]) -> float:
        return sum(
            area_mm2(spec.size_bytes, spec.assoc, spec.ports)
            for spec in structures
        )

    def mechanism_area(self, mechanism: Optional[Mechanism]) -> float:
        """Area the mechanism adds on top of the base hierarchy."""
        if mechanism is None:
            return 0.0
        return self.structures_area(mechanism.structures())

    def cost_ratio(self, mechanism: Optional[Mechanism]) -> float:
        """Figure 5's metric: (base + mechanism) / base area."""
        base = self.base_area()
        return (base + self.mechanism_area(mechanism)) / base

    def report(self, mechanisms: List[Optional[Mechanism]]) -> List[float]:
        return [self.cost_ratio(m) for m in mechanisms]
