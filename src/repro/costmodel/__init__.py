"""Area and power models (the CACTI 3.2 / XCACTI stand-ins for Figure 5).

The paper prices each mechanism's hardware with CACTI (area) and XCACTI
(power) and reports *ratios* relative to the base cache.  This package
provides analytical equivalents that preserve the orderings the paper
highlights: Markov and DBCP are enormous (megabyte tables); TP, SP and GHB
are almost free in area; GHB is nonetheless power-hungry because every miss
triggers repeated table walks and up to four prefetch requests, while SP
performs a single lookup per access.
"""

from repro.costmodel.cacti import CactiModel, area_mm2
from repro.costmodel.power import PowerModel, access_energy_nj

__all__ = ["CactiModel", "PowerModel", "access_energy_nj", "area_mm2"]
