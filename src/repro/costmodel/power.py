"""XCACTI-style power model.

"Power is determined by cache area and activity" (Section 3.1).  Two terms:

* **dynamic energy** — per-access energy of each structure (growing with
  the square root of its size and with associativity, the CACTI/XCACTI
  shape) times its access count.  Mechanism activity comes from the
  ``table_accesses`` statistic every mechanism maintains, plus the memory
  traffic its prefetches add.
* **leakage** — proportional to area.

The paper's Figure 5 findings this model must (and does) preserve:
Markov/DBCP burn power through sheer table size; GHB, despite tiny tables,
is power-greedy because "each miss can induce up to 4 requests, and a table
is scanned repeatedly"; SP's single lookup per miss keeps it as efficient
as TP.  Off-chip access power is excluded, as in the paper (footnote 4).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.config import CacheConfig, MachineConfig, baseline_config
from repro.core.simulation import RunResult
from repro.costmodel.cacti import CactiModel
from repro.mechanisms.base import Mechanism

#: nJ per access for a structure of 1 KB, single-ported (0.18 um scale).
_BASE_ENERGY_NJ = 0.08
#: Leakage, watts per mm^2 (only ratios matter).
_LEAKAGE_W_PER_MM2 = 0.004
#: Core frequency for converting cycles to seconds.
_FREQ_HZ = 2e9


def access_energy_nj(size_bytes: int, assoc: int = 1, ports: int = 1) -> float:
    """Per-access dynamic energy of one SRAM structure, nanojoules."""
    if size_bytes <= 0:
        return 0.01
    kb = size_bytes / 1024
    return _BASE_ENERGY_NJ * math.sqrt(max(kb, 0.05)) * (1 + 0.15 * (assoc - 1)) * ports


class PowerModel:
    """Activity-based power: Figure 5's power-ratio metric."""

    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or baseline_config()
        self.cacti = CactiModel(self.config)

    def _cache_access_energy(self, cache: CacheConfig) -> float:
        return access_energy_nj(cache.size, cache.assoc, cache.ports)

    def base_energy_nj(self, result: RunResult) -> float:
        """Dynamic + leakage energy of the baseline hierarchy for one run."""
        stats = result.stats
        l1 = self.config.l1d
        l2 = self.config.l2
        l1_accesses = stats.get("memory.l1d.reads", 0) + stats.get(
            "memory.l1d.writes", 0
        )
        l2_accesses = stats.get("memory.l2.reads", 0) + stats.get(
            "memory.l2.writes", 0
        )
        dynamic = (
            l1_accesses * self._cache_access_energy(l1)
            + l2_accesses * self._cache_access_energy(l2)
        )
        seconds = result.cycles / _FREQ_HZ
        leakage = self.cacti.base_area() * _LEAKAGE_W_PER_MM2 * seconds * 1e9
        return dynamic + leakage

    def mechanism_energy_nj(
        self, mechanism: Optional[Mechanism], result: RunResult
    ) -> float:
        """Energy the mechanism's tables and extra traffic add."""
        if mechanism is None:
            return 0.0
        structures = mechanism.structures()
        total_area = self.cacti.structures_area(structures)
        if structures:
            # Table accesses are charged at the (size-weighted) mean
            # structure energy — individual counters per table would change
            # nothing at ratio level.
            total_bytes = sum(s.size_bytes for s in structures)
            mean_energy = sum(
                access_energy_nj(s.size_bytes, s.assoc, s.ports)
                * (s.size_bytes / total_bytes if total_bytes else 1)
                for s in structures
            )
        else:
            mean_energy = 0.0
        table_accesses = getattr(
            mechanism, "total_table_accesses", mechanism.st_table_accesses.value
        )
        dynamic = table_accesses * mean_energy
        # Prefetch traffic re-reads the cache it fills.
        target = self.config.l1d if mechanism.LEVEL == "l1" else self.config.l2
        dynamic += result.prefetches_issued * self._cache_access_energy(target)
        seconds = result.cycles / _FREQ_HZ
        leakage = total_area * _LEAKAGE_W_PER_MM2 * seconds * 1e9
        return dynamic + leakage

    def power_ratio(
        self, mechanism: Optional[Mechanism], result: RunResult
    ) -> float:
        """Figure 5's metric: (base + mechanism) / base power.

        Power = energy / time; both runs share the result's cycle count, so
        the ratio reduces to an energy ratio for the same work.
        """
        base = self.base_energy_nj(result)
        return (base + self.mechanism_energy_nj(mechanism, result)) / base
