"""Command-line front end: run any paper exhibit or a single simulation.

Examples::

    python -m repro list
    python -m repro run swim GHB --n 20000
    python -m repro fig4 --n 20000
    python -m repro table6 --benchmarks swim,gzip,art,mcf
    python -m repro all --n 8000          # every exhibit, quick scale
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro import harness
from repro.harness.matrix import speedup_matrix
from repro.harness.tables import (
    table1_configuration,
    table2_mechanisms,
    table3_parameters,
    table4_benchmarks,
)
from repro.core.simulation import DEFAULT_INSTRUCTIONS, run_benchmark
from repro.mechanisms.registry import ALL_MECHANISMS, EXTENSIONS, mechanism_info
from repro.workloads.registry import ALL_BENCHMARKS

EXHIBITS: Dict[str, Callable] = {
    "fig1": harness.fig1_model_validation,
    "fig2": harness.fig2_reveng_error,
    "fig3": harness.fig3_dbcp_fix,
    "fig4": harness.fig4_speedup,
    "fig5": harness.fig5_cost_power,
    "fig6": harness.fig6_sensitivity,
    "fig7": harness.fig7_sensitivity_subsets,
    "fig8": harness.fig8_memory_model,
    "fig9": harness.fig9_mshr,
    "fig10": harness.fig10_second_guessing,
    "fig11": harness.fig11_trace_selection,
    "table1": table1_configuration,
    "table2": table2_mechanisms,
    "table3": table3_parameters,
    "table4": table4_benchmarks,
    "matrix": speedup_matrix,
    "table5": harness.table5_prior_comparisons,
    "table6": harness.table6_subset_winners,
    "table7": harness.table7_selection_ranking,
}


def _cmd_list() -> int:
    print("Benchmarks (26):")
    print("  " + ", ".join(ALL_BENCHMARKS))
    print("\nMechanisms (paper order):")
    for name in ALL_MECHANISMS:
        info = mechanism_info(name)
        year = str(info.year) if info.year else "-"
        print(f"  {name:<7} {info.level:<3} {year:<5} {info.description}")
    print("\nLibrary extensions:")
    for name in EXTENSIONS:
        info = mechanism_info(name)
        print(f"  {name:<7} {info.level:<3} {info.year:<5} {info.description}")
    print("\nExhibits: " + ", ".join(EXHIBITS) + ", all")
    return 0


def _cmd_run(args) -> int:
    base = run_benchmark(args.benchmark, "Base", n_instructions=args.n)
    result = run_benchmark(args.benchmark, args.mechanism,
                           n_instructions=args.n)
    print(f"{args.benchmark} / {args.mechanism}: "
          f"ipc={result.ipc:.4f} speedup={result.speedup_over(base):.3f} "
          f"l1_miss={result.l1_miss_rate:.1%} "
          f"l2_miss={result.l2_miss_rate:.1%} "
          f"mem_latency={result.avg_memory_latency:.0f} "
          f"prefetches={result.prefetches_issued:.0f} "
          f"useful={result.useful_prefetches:.0f}")
    return 0


def _run_exhibit(name: str, args) -> int:
    driver = EXHIBITS[name]
    kwargs = {}
    static = {"table1", "table2", "table3", "table4", "table5"}
    if name not in static:
        kwargs["n_instructions"] = args.n
        if args.benchmarks:
            kwargs["benchmarks"] = tuple(args.benchmarks.split(","))
    print(driver(**kwargs).render())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MicroLib reproduction: simulations and paper exhibits",
    )
    parser.add_argument("command",
                        help="'list', 'run', 'all', or an exhibit name "
                             f"({', '.join(EXHIBITS)})")
    parser.add_argument("benchmark", nargs="?",
                        help="benchmark name (for 'run')")
    parser.add_argument("mechanism", nargs="?", default="Base",
                        help="mechanism acronym (for 'run')")
    parser.add_argument("--n", type=int, default=DEFAULT_INSTRUCTIONS,
                        help="instructions per simulation "
                             f"(default {DEFAULT_INSTRUCTIONS})")
    parser.add_argument("--benchmarks",
                        help="comma-separated benchmark subset for exhibits")
    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        if not args.benchmark:
            parser.error("'run' needs a benchmark (and optional mechanism)")
        return _cmd_run(args)
    if args.command == "all":
        for name in EXHIBITS:
            _run_exhibit(name, args)
            print()
        return 0
    if args.command in EXHIBITS:
        return _run_exhibit(args.command, args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
