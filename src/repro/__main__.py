"""Command-line front end: run any paper exhibit or a single simulation.

Examples::

    python -m repro list
    python -m repro run swim GHB --n 20000
    python -m repro run swim TK --n 20000 --trace tk.json  # Perfetto timeline
    python -m repro fig4 --n 20000 --jobs 4
    python -m repro table6 --benchmarks swim,gzip,art,mcf
    python -m repro all --n 8000 --jobs 4  # every exhibit, quick scale

Every simulation goes through one shared :class:`repro.exec.Executor`:
``--jobs N`` fans runs out over N worker processes (default: the CPU
count; ``--jobs 1`` stays in-process for determinism debugging), and
results are content-addressed in an on-disk store (``--cache-dir``,
default ``~/.cache/repro`` or ``$REPRO_CACHE_DIR``; ``--no-cache``
disables it) so repeated and overlapping exhibits never re-simulate.
Exhibit tables go to stdout; the telemetry summary goes to stderr, so
piped output is identical whatever the job count.

Fault tolerance: ``--retries``/``--timeout`` configure the executor's
:class:`~repro.exec.policy.RetryPolicy`.  The CLI runs *lenient* by
default — a spec that fails every attempt becomes an annotated hole in
the exhibit instead of aborting the whole run; ``--strict`` restores
fail-fast (first exhausted spec exits non-zero).  Chaos runs are driven
by ``REPRO_FAULTS`` (see :mod:`repro.exec.faults`).

Durability: multi-spec sweeps are backed by a crash-safe write-ahead
journal under ``<cache-dir>/journal`` (:mod:`repro.exec.journal`).  A
killed run resumes with ``--resume`` — finished specs are served from
the journal + store without re-simulation, and the resumed output is
bit-identical to an uninterrupted run.  SIGINT/SIGTERM shut down
gracefully (drain in-flight work, flush the journal, exit ``130``/
``143`` with a resume pointer; a second signal terminates immediately).
``--retry-failed`` re-runs specs a resumed journal recorded as
exhausted.  ``--checkpoint-every N`` additionally cuts crash-safe
*mid-run* snapshots so a killed attempt resumes mid-simulation instead
of from instruction zero (:mod:`repro.exec.checkpoint`); restore is
bit-identical to an uninterrupted run.  ``python -m repro.exec fsck``
verifies store (and checkpoint) integrity.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict

from repro import harness
from repro.exec import (
    SHUTDOWN,
    Executor,
    FailedRun,
    ResultStore,
    RetryPolicy,
    RunSpec,
    SpecExhausted,
    SweepInterrupted,
    active_plan,
    set_default_executor,
)
from repro.obs.tracing import TRACER
from repro.harness.matrix import speedup_matrix
from repro.harness.tables import (
    table1_configuration,
    table2_mechanisms,
    table3_parameters,
    table4_benchmarks,
)
from repro.core.simulation import DEFAULT_INSTRUCTIONS
from repro.mechanisms.registry import ALL_MECHANISMS, EXTENSIONS, mechanism_info
from repro.workloads.registry import ALL_BENCHMARKS

EXHIBITS: Dict[str, Callable] = {
    "fig1": harness.fig1_model_validation,
    "fig2": harness.fig2_reveng_error,
    "fig3": harness.fig3_dbcp_fix,
    "fig4": harness.fig4_speedup,
    "fig5": harness.fig5_cost_power,
    "fig6": harness.fig6_sensitivity,
    "fig7": harness.fig7_sensitivity_subsets,
    "fig8": harness.fig8_memory_model,
    "fig9": harness.fig9_mshr,
    "fig10": harness.fig10_second_guessing,
    "fig11": harness.fig11_trace_selection,
    "table1": table1_configuration,
    "table2": table2_mechanisms,
    "table3": table3_parameters,
    "table4": table4_benchmarks,
    "matrix": speedup_matrix,
    "table5": harness.table5_prior_comparisons,
    "table6": harness.table6_subset_winners,
    "table7": harness.table7_selection_ranking,
}

#: Exhibits that run no simulations (static tables).
STATIC = {"table1", "table2", "table3", "table4", "table5"}


def _cmd_list() -> int:
    print("Benchmarks (26):")
    print("  " + ", ".join(ALL_BENCHMARKS))
    print("\nMechanisms (paper order):")
    for name in ALL_MECHANISMS:
        info = mechanism_info(name)
        year = str(info.year) if info.year else "-"
        print(f"  {name:<7} {info.level:<3} {year:<5} {info.description}")
    print("\nLibrary extensions:")
    for name in EXTENSIONS:
        info = mechanism_info(name)
        print(f"  {name:<7} {info.level:<3} {info.year:<5} {info.description}")
    print("\nExhibits: " + ", ".join(EXHIBITS) + ", all")
    return 0


def _cmd_run(args, executor: Executor) -> int:
    base_spec = RunSpec(args.benchmark, n_instructions=args.n, fast=args.fast)
    mech_spec = RunSpec(
        args.benchmark, args.mechanism, n_instructions=args.n, fast=args.fast
    )
    base, result = executor.run([base_spec, mech_spec])
    failed = [r for r in (base, result) if isinstance(r, FailedRun)]
    if failed:
        for failure in failed:
            print(f"FAILED: {failure.summary()}", file=sys.stderr)
        return 1
    print(f"{args.benchmark} / {args.mechanism}: "
          f"ipc={result.ipc:.4f} speedup={result.speedup_over(base):.3f} "
          f"l1_miss={result.l1_miss_rate:.1%} "
          f"l2_miss={result.l2_miss_rate:.1%} "
          f"mem_latency={result.avg_memory_latency:.0f} "
          f"prefetches={result.prefetches_issued:.0f} "
          f"useful={result.useful_prefetches:.0f}")
    return 0


def _run_exhibit(name: str, args, executor: Executor) -> int:
    driver = EXHIBITS[name]
    kwargs = {}
    if name not in STATIC:
        kwargs["n_instructions"] = args.n
        kwargs["executor"] = executor
        if args.benchmarks:
            kwargs["benchmarks"] = tuple(args.benchmarks.split(","))
    print(driver(**kwargs).render())
    return 0


def _build_executor(args) -> Executor:
    store = None
    if not args.no_cache:
        store = ResultStore(args.cache_dir)  # None -> default cache dir
    # The CLI degrades gracefully by default: exhausted specs become
    # annotated holes in the exhibits.  --strict restores fail-fast.
    policy = RetryPolicy(
        retries=args.retries, timeout=args.timeout, strict=args.strict
    )
    if args.serve:
        # Fleet mode: simulations run on the sweep service
        # (python -m repro.serve); the service owns durability through
        # its own queue/lease WALs, so the client journals nothing.
        from repro.serve import ServeExecutor

        return ServeExecutor(
            socket_path=args.serve, client_id=f"cli-{os.getpid()}",
            store=store, policy=policy, shutdown=SHUTDOWN,
            deadline=args.deadline, retry_failed=args.retry_failed,
        )
    # Durability: multi-spec sweeps journal next to the store, so every
    # cached run is also resumable.  --no-cache has nowhere to journal
    # (and nothing a resume could serve results from).
    journal_dir = store.journal_dir if store is not None else None
    if args.checkpoint_every and store is None:
        print("--checkpoint-every needs the result store (drop --no-cache): "
              "snapshots live under <cache-dir>/ckpt", file=sys.stderr)
    return Executor(
        jobs=args.jobs, store=store, policy=policy,
        journal_dir=journal_dir, resume=args.resume,
        retry_failed=args.retry_failed, shutdown=SHUTDOWN,
        checkpoint_every=args.checkpoint_every if store is not None else 0,
    )


def _print_summary(executor: Executor) -> None:
    """The one-line executor accounting, on stderr for every command."""
    print(executor.telemetry.summary_line(), file=sys.stderr)


def _append_ledger_entry(command: str, executor: Executor) -> None:
    """Record this invocation's executor accounting in the obs ledger.

    Only when someone is watching: ``$REPRO_LEDGER`` names a ledger
    file, or a fault plan is armed (a chaos run without a ledger entry
    has nothing to assert against).  Clean interactive runs don't grow
    a ledger as a side effect.
    """
    plan = active_plan()
    if not os.environ.get("REPRO_LEDGER") and plan is None:
        return
    from repro.obs.ledger import Ledger, make_record

    telemetry = executor.telemetry
    metrics = {
        "simulated": float(telemetry.simulated),
        "cache_hits": float(telemetry.cache_hits),
        "timeouts": float(telemetry.timeouts),
        "pool_rebuilds": float(telemetry.pool_rebuilds),
        "store_corrupt": float(telemetry.store_corrupt),
        "leased": float(getattr(telemetry, "leased", 0)),
        "shared": float(getattr(telemetry, "shared", 0)),
    }
    # Hardening counters appear only when nonzero, so a clean run's
    # ledger record stays byte-identical to what it always was.
    for key in ("shed", "quarantined", "expired",
                "checkpoints", "resumed_from_ckpt"):
        value = float(getattr(telemetry, key, 0))
        if value:
            metrics[key] = value
    record = make_record(
        label=f"cli-{command}",
        wall_seconds=telemetry.wall_time,
        retries=telemetry.retries,
        failures=telemetry.failures,
        metrics=metrics,
    )
    Ledger().append(record)


def _arm_profiling(args):
    """Apply ``--profile``: cProfile the command, report to stderr.

    Like ``--trace``, a profile is only meaningful for work done in this
    process with nothing served from the cache, so ``--jobs 1`` and
    ``--no-cache`` are forced (with a note when that overrides an
    explicit flag).  Returns the armed profiler.
    """
    import cProfile

    if args.jobs not in (None, 1):
        print(f"--profile forces --jobs 1 (was {args.jobs})", file=sys.stderr)
    if not args.no_cache:
        print("--profile forces --no-cache (profiled runs must simulate)",
              file=sys.stderr)
    args.jobs = 1
    args.no_cache = True
    profiler = cProfile.Profile()
    profiler.enable()
    return profiler


def _report_profile(profiler) -> None:
    """Print the top 25 functions by cumulative time to stderr."""
    import pstats

    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stderr)
    stats.strip_dirs().sort_stats("cumulative")
    print("profile: top 25 functions by cumulative time", file=sys.stderr)
    stats.print_stats(25)


def _arm_tracing(args) -> None:
    """Apply ``--trace``: in-process, uncached, tracer recording.

    A store or memo hit skips simulation entirely and a worker process
    traces into its own (discarded) tracer, so a useful trace needs
    ``jobs=1`` and no result store; both are forced, with a note when
    that overrides an explicit flag.
    """
    if args.jobs not in (None, 1):
        print(f"--trace forces --jobs 1 (was {args.jobs})", file=sys.stderr)
    if not args.no_cache:
        print("--trace forces --no-cache (traced runs must simulate)",
              file=sys.stderr)
    args.jobs = 1
    args.no_cache = True
    TRACER.start()


def _export_trace(args) -> None:
    path = TRACER.export(args.trace)
    print(f"trace: {len(TRACER)} events -> {path} "
          "(load in Perfetto / chrome://tracing)", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MicroLib reproduction: simulations and paper exhibits",
    )
    parser.add_argument("command",
                        help="'list', 'run', 'all', or an exhibit name "
                             f"({', '.join(EXHIBITS)})")
    parser.add_argument("benchmark", nargs="?",
                        help="benchmark name (for 'run')")
    parser.add_argument("mechanism", nargs="?", default="Base",
                        help="mechanism acronym (for 'run')")
    parser.add_argument("--n", type=int, default=DEFAULT_INSTRUCTIONS,
                        help="instructions per simulation "
                             f"(default {DEFAULT_INSTRUCTIONS})")
    parser.add_argument("--benchmarks",
                        help="comma-separated benchmark subset for exhibits")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for simulations "
                             "(default: CPU count; 1 = in-process)")
    parser.add_argument("--cache-dir", default=None,
                        help="result-store directory (default ~/.cache/repro "
                             "or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result store")
    parser.add_argument("--retries", type=int, default=0,
                        help="re-attempts per failing simulation "
                             "(default 0; retries are deterministic "
                             "re-executions, results stay bit-identical)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-simulation wall-clock budget; hung "
                             "workers are killed and the spec retried "
                             "(pool runs only, i.e. --jobs > 1)")
    parser.add_argument("--strict", action="store_true",
                        help="abort on the first simulation that fails "
                             "every attempt, instead of degrading to an "
                             "annotated hole in the exhibit")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep from its "
                             "write-ahead journal: finished specs are "
                             "served without re-simulation (needs the "
                             "cache; output is bit-identical to an "
                             "uninterrupted run)")
    parser.add_argument("--retry-failed", action="store_true",
                        help="re-run specs recorded as having exhausted "
                             "every attempt (with --resume: the local "
                             "journal's holes; with --serve: the fleet's "
                             "recorded failures, quarantined poison specs "
                             "included) instead of serving them as "
                             "annotated holes")
    parser.add_argument("--deadline", type=float, default=None, metavar="SEC",
                        help="with --serve: per-submission deadline in "
                             "seconds; specs the fleet cannot start in "
                             "time come back as annotated timeout holes "
                             "instead of waiting forever")
    parser.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                        help="cut a crash-safe mid-run snapshot every N "
                             "committed instructions (default 0 = off, "
                             "zero cost); a killed attempt resumes from "
                             "the newest snapshot and finishes "
                             "bit-identical to an uninterrupted run "
                             "(snapshots live under <cache-dir>/ckpt, "
                             "audited by 'python -m repro.exec fsck')")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="record a Chrome trace_event timeline of the "
                             "run to OUT.json (forces --jobs 1 --no-cache)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the command and print the top 25 "
                             "cumulative-time functions to stderr (forces "
                             "--jobs 1 --no-cache)")
    parser.add_argument("--serve", metavar="SOCKET", default=None,
                        help="submit simulations to the sweep service "
                             "listening on SOCKET (python -m repro.serve) "
                             "instead of simulating locally; overlapping "
                             "sweeps from concurrent clients are deduped "
                             "in flight, stdout is byte-identical")
    parser.add_argument("--no-fast", dest="fast", action="store_false",
                        default=True,
                        help="run on the interpreted reference loop instead "
                             "of the trace-speculation fast path ('run' "
                             "only; results are bit-identical either way)")
    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list()

    profiler = None
    if args.profile:
        profiler = _arm_profiling(args)
    if args.trace:
        _arm_tracing(args)
    if args.resume and args.no_cache:
        parser.error("--resume needs the result store (drop --no-cache): "
                     "the journal only records *that* specs finished; the "
                     "results themselves live in the cache")
    if args.resume and args.serve:
        parser.error("--resume is a local-journal feature; fleet "
                     "submissions are already durable in the service's "
                     "queue (just re-submit: resolved specs answer from "
                     "the store)")
    if args.deadline is not None and not args.serve:
        parser.error("--deadline only applies to fleet submissions "
                     "(add --serve SOCKET)")
    executor = set_default_executor(_build_executor(args))
    # Graceful shutdown is a CLI concern: libraries never install signal
    # handlers, the CLI does, around exactly the command execution.
    SHUTDOWN.install()
    try:
        if args.command == "run":
            if not args.benchmark:
                parser.error("'run' needs a benchmark (and optional mechanism)")
            status = _cmd_run(args, executor)
            _print_summary(executor)
            _append_ledger_entry(args.command, executor)
            return status
        if args.command == "all":
            for name in EXHIBITS:
                _run_exhibit(name, args, executor)
                print()
            _print_summary(executor)
            _append_ledger_entry(args.command, executor)
            return 0
        if args.command in EXHIBITS:
            status = _run_exhibit(args.command, args, executor)
            if args.command not in STATIC:
                _print_summary(executor)
                _append_ledger_entry(args.command, executor)
            return status
    except SpecExhausted as exc:
        # --strict: fail fast, but still say which cell and how hard the
        # executor fought before giving up.
        print(f"FAILED (strict): {exc.failure.summary()}", file=sys.stderr)
        _print_summary(executor)
        return 1
    except ConnectionError as exc:
        # Fleet mode: an unreachable service is an environment problem,
        # not a crash — one line on stderr, conventional exit 2.  Any
        # other refusal (rejected submission, mid-stream hangup) keeps
        # the server's own message and exits 1.
        if not args.serve:
            raise
        if "cannot reach" in str(exc):
            print(f"cannot connect to {args.serve} "
                  "(is the server running?)", file=sys.stderr)
            return 2
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    except SweepInterrupted as exc:
        # Graceful signal shutdown: the journal is flushed, progress is
        # durable.  Summarise, ledger, and exit 128 + signum so callers
        # (shells, schedulers) see the conventional signal status.
        print(f"executor: {exc} — progress journaled; rerun with "
              "--resume to continue without re-simulation", file=sys.stderr)
        _print_summary(executor)
        _append_ledger_entry(args.command, executor)
        return exc.exit_code
    finally:
        SHUTDOWN.uninstall()
        SHUTDOWN.reset()
        if args.trace:
            _export_trace(args)
        if profiler is not None:
            _report_profile(profiler)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
