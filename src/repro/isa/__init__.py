"""Instruction-set abstractions shared by workloads, traces and the core."""

from repro.isa.instr import (
    ADDR,
    DEP,
    EXTRA,
    OP,
    PC,
    FU_LATENCY,
    FU_POOL,
    MEM_OPS,
    Op,
    make_branch,
    make_load,
    make_op,
    make_store,
)

__all__ = [
    "ADDR",
    "DEP",
    "EXTRA",
    "FU_LATENCY",
    "FU_POOL",
    "MEM_OPS",
    "OP",
    "Op",
    "PC",
    "make_branch",
    "make_load",
    "make_op",
    "make_store",
]
