"""Compact trace-record format and operation metadata.

The simulator consumes *traces*: sequences of instruction records.  For
speed, a record is a plain 5-tuple of ints rather than an object; the index
constants :data:`OP`, :data:`PC`, :data:`ADDR`, :data:`DEP` and :data:`EXTRA`
name the fields.

Fields
------
``OP``
    Operation class (:class:`Op` value).
``PC``
    Instruction address.  Used by PC-indexed mechanisms (stride prefetcher,
    GHB index table, DBCP signatures) and by basic-block-vector extraction.
``ADDR``
    Effective byte address for loads and stores, 0 otherwise.
``DEP``
    Data-dependence distance: this instruction reads the result of the
    record ``DEP`` positions earlier (0 = no tracked dependence).  The
    out-of-order core uses it to bound instruction-level parallelism, which
    is what lets a load miss at the head of a dependence chain serialize the
    pipeline exactly as in a register-accurate model.
``EXTRA``
    For stores: the value written (feeds the functional memory image used by
    FVC and CDP).  For branches: 1 when the branch is mispredicted (the
    front-end squashes and refetches after the branch resolves).  0
    otherwise.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Tuple

OP, PC, ADDR, DEP, EXTRA = range(5)

Record = Tuple[int, int, int, int, int]


class Op(IntEnum):
    """Operation classes, mirroring SimpleScalar's functional-unit classes."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    FP_MUL = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6


#: Execution latency (cycles) per op class; loads get theirs from the cache.
FU_LATENCY = {
    Op.INT_ALU: 1,
    Op.INT_MUL: 3,
    Op.FP_ALU: 2,
    Op.FP_MUL: 4,
    Op.LOAD: 1,  # address generation; memory latency added by the hierarchy
    Op.STORE: 1,
    Op.BRANCH: 1,
}

#: Functional-unit pool each op class issues to.  Loads and stores share the
#: load/store units; branches execute on the integer ALUs.
FU_POOL = {
    Op.INT_ALU: "int_alu",
    Op.INT_MUL: "int_mul",
    Op.FP_ALU: "fp_alu",
    Op.FP_MUL: "fp_mul",
    Op.LOAD: "lsu",
    Op.STORE: "lsu",
    Op.BRANCH: "int_alu",
}

MEM_OPS = (int(Op.LOAD), int(Op.STORE))


def make_op(op: Op, pc: int, dep: int = 0) -> Record:
    """Build a non-memory, non-branch record."""
    return (int(op), pc, 0, dep, 0)


def make_load(pc: int, addr: int, dep: int = 0) -> Record:
    """Build a load record for effective address ``addr``."""
    return (int(Op.LOAD), pc, addr, dep, 0)


def make_store(pc: int, addr: int, value: int = 0, dep: int = 0) -> Record:
    """Build a store record writing ``value`` to ``addr``."""
    return (int(Op.STORE), pc, addr, dep, value)


def make_branch(pc: int, mispredicted: bool = False, dep: int = 0) -> Record:
    """Build a branch record; mispredicted branches squash the front-end."""
    return (int(Op.BRANCH), pc, 0, dep, 1 if mispredicted else 0)
