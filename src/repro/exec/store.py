"""Persistent, content-addressed result store.

One JSON file per :class:`~repro.exec.runspec.RunSpec` content hash under
a cache directory (default ``~/.cache/repro``, overridable with the
``REPRO_CACHE_DIR`` environment variable or the CLI's ``--cache-dir``).
Each file carries a format version, the full spec description (so a human
can audit what a hash means) and the complete
:class:`~repro.core.simulation.RunResult`.

Reads are forgiving: a missing, truncated, corrupted or
version-mismatched file is a cache miss, never an error — the executor
simply re-simulates and rewrites it.  Forgiving is not the same as
silent: a file that *exists* but cannot be used is counted in
:attr:`ResultStore.corrupt_reads` and reported with a one-line stderr
warning, because cache rot (a flaky disk, a torn write from a killed
run, schema drift) should be visible, not absorbed.  Writes are atomic and durable:
the payload is written to a same-directory temp file, flushed and
``fsync``'d, then ``os.replace``'d over the final name, so a worker
killed mid-write can never leave a truncated entry under a real hash —
only a stray ``*.tmp`` file, which reads ignore and
:meth:`ResultStore.put` sweeps up on the next write.

Integrity: every v3 entry embeds a SHA-256 of its result payload,
verified on :meth:`ResultStore.get` — bit rot that still parses as
JSON (a flipped digit in an IPC) is caught, counted and re-simulated
instead of silently polluting every downstream exhibit.  v2 entries
(predating the checksum) remain readable so a version bump never
invalidates a warm cache.  ``python -m repro.exec fsck`` runs the same
verification offline over the whole store (:meth:`ResultStore.fsck`),
optionally pruning what fails it.

Sharding: entries live under a two-hex-character shard directory keyed
by the leading byte of the content hash (``ab/<hash>.json``).  One flat
directory stops scaling long before the "millions of entries" target —
directory lookups, ``readdir`` over the entry glob and the stale-temp
sweep all degrade linearly, and a fleet of workers (:mod:`repro.serve`)
hammering one directory contends on its lock in the kernel.  256 shards
cap any single directory at 1/256th of the store.  Reads fall through
transparently to the *flat* pre-shard layout, so a warm v3 store keeps
answering without a flag day; ``python -m repro.exec fsck --migrate``
moves flat entries into their shards (idempotent, atomic per entry,
safe under live readers because reads check the shard first).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.simulation import RunResult
from repro.exec.faults import active_plan, maybe_disk_full
from repro.exec.runspec import RunSpec

#: Bump when the stored payload layout (or RunResult schema) changes;
#: older entries then read as misses instead of crashing deserialisation.
#: 2: RunResult.stats gained the hierarchy's bus counters (finalize_stats).
#: 3: entries embed a SHA-256 checksum of the result payload, verified
#:    on read; v2 entries stay readable (no checksum to verify).
STORE_VERSION = 3

#: Versions :meth:`ResultStore.get` accepts.  v2 entries carry no
#: checksum; everything else about their payload is identical.
COMPAT_VERSIONS = (2, STORE_VERSION)

#: Leading hash characters that name an entry's shard directory.
SHARD_WIDTH = 2

#: Glob matching shard directories (two lowercase hex characters), used
#: so sibling subdirectories (``journal``, ``serve``, ``codegen``) never
#: read as shards.
_SHARD_GLOB = "[0-9a-f]" * SHARD_WIDTH


def _is_content_hash(stem: str) -> bool:
    """Whether a file stem looks like a SHA-256 content hash."""
    return len(stem) == 64 and all(c in "0123456789abcdef" for c in stem)


def result_checksum(result_payload: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON serialisation of one result."""
    canonical = json.dumps(result_payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal 0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but not ours
    return True


def _verify_payload(payload: Any) -> Optional[str]:
    """Why a parsed entry payload is unusable, or None when it is sound.

    Checks shape, version compatibility and — for v3 entries — the
    embedded result checksum.  Shared by the hot read path
    (:meth:`ResultStore.get`) and the offline verifier
    (:meth:`ResultStore.fsck`) so they can never disagree about what
    "corrupt" means.
    """
    if not isinstance(payload, dict):
        return "payload is not an object"
    version = payload.get("version")
    if version not in COMPAT_VERSIONS:
        return f"version mismatch (entry {version!r}, want {STORE_VERSION})"
    result = payload.get("result")
    if not isinstance(result, dict):
        return "missing result payload"
    if version == STORE_VERSION:
        checksum = payload.get("checksum")
        if not checksum:
            return "missing checksum"
        if checksum != result_checksum(result):
            return "checksum mismatch (bit rot or a hand-edited payload)"
    return None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass
class FsckReport:
    """What ``ResultStore.fsck`` found (and, under prune, removed)."""

    root: str = ""
    scanned: int = 0
    ok: int = 0
    ok_legacy: int = 0          # readable v2 entries (no checksum to verify)
    #: Sound entries still in the flat pre-shard layout (``--migrate``
    #: moves them into their shards).
    flat_entries: int = 0
    #: Entries ``--migrate`` moved into their shard this invocation.
    migrated: int = 0
    #: (file name, why it is unusable) per defective entry.
    problems: List[Tuple[str, str]] = field(default_factory=list)
    stale_temps: List[str] = field(default_factory=list)
    pruned: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No defective entries (stale temps are litter, not defects)."""
        return not self.problems

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary, journaled as the fsck repair report."""
        return {
            "root": self.root,
            "scanned": self.scanned,
            "ok": self.ok,
            "ok_legacy": self.ok_legacy,
            "flat_entries": self.flat_entries,
            "migrated": self.migrated,
            "problems": [list(item) for item in self.problems],
            "stale_temps": list(self.stale_temps),
            "pruned": list(self.pruned),
        }

    def render(self) -> str:
        lines = [
            f"fsck {self.root}: {self.scanned} entries, {self.ok} ok"
            + (f" ({self.ok_legacy} legacy v2)" if self.ok_legacy else ""),
        ]
        if self.migrated:
            lines.append(f"  migrated {self.migrated} flat entr"
                         f"{'y' if self.migrated == 1 else 'ies'} into shards")
        if self.flat_entries:
            lines.append(f"  {self.flat_entries} entr"
                         f"{'y' if self.flat_entries == 1 else 'ies'} still in "
                         "the flat layout (run fsck --migrate to shard)")
        for name, why in self.problems:
            lines.append(f"  BAD  {name}: {why}")
        for name in self.stale_temps:
            lines.append(f"  TMP  {name}: stale temp from a dead writer")
        for name in self.pruned:
            lines.append(f"  pruned {name}")
        if self.clean and not self.stale_temps:
            lines.append("  store is clean")
        return "\n".join(lines)


class ResultStore:
    """Sharded directory of ``<hash[:2]>/<content-hash>.json`` result files.

    Writes land in the shard named by the hash's leading byte; reads
    fall through to the flat pre-shard layout so existing stores keep
    answering (see the module docstring).
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        #: Entries that existed but could not be used (corrupt, truncated,
        #: version-mismatched, schema-drifted).  Monotonic over the store's
        #: lifetime; the executor mirrors it into its telemetry.
        self.corrupt_reads = 0

    def shard_path(self, content_hash: str) -> Path:
        """Where ``content_hash`` lives in the sharded layout."""
        return (self.root / content_hash[:SHARD_WIDTH]
                / f"{content_hash}.json")

    def flat_path(self, content_hash: str) -> Path:
        """Where ``content_hash`` lived in the flat pre-shard layout."""
        return self.root / f"{content_hash}.json"

    def path_for(self, spec: RunSpec) -> Path:
        return self.shard_path(spec.content_hash)

    def entry_paths(self) -> List[Path]:
        """Every entry file, sharded layout first, sorted within each.

        A hash present in both layouts (a crash between ``--migrate``'s
        copy and unlink cannot happen — the move is one ``os.replace`` —
        but a hand-copied entry can) is reported once per file; the
        sharded copy is the one reads serve.
        """
        try:
            sharded = sorted(self.root.glob(f"{_SHARD_GLOB}/*.json"))
            flat = sorted(self.root.glob("*.json"))
        except OSError:
            return []
        return sharded + flat

    @property
    def journal_dir(self) -> Path:
        """Where this store's sweep journals live (a sibling subdir,
        invisible to the shard glob — shard names are two hex chars)."""
        return self.root / "journal"

    @property
    def serve_dir(self) -> Path:
        """Where the sweep service (:mod:`repro.serve`) keeps its fleet
        state — submission queue, lease book, default socket."""
        return self.root / "serve"

    @property
    def ckpt_root(self) -> Path:
        """Where mid-run checkpoints live, one subdir per spec hash
        (see :mod:`repro.exec.checkpoint`; audited by ``fsck``)."""
        return self.root / "ckpt"

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The stored result for ``spec``, or None on any defect.

        A file that is simply absent is a quiet miss.  A file that is
        *present but unusable* is also a miss — the run re-simulates —
        but it is counted and warned about, because silent cache rot
        re-costs simulations forever without anyone noticing.

        The shard is checked first; a miss there falls through to the
        flat pre-shard layout, so un-migrated v3 stores keep answering.
        """
        path = self.shard_path(spec.content_hash)
        try:
            text = path.read_text("utf-8")
        except FileNotFoundError:
            path = self.flat_path(spec.content_hash)
            try:
                text = path.read_text("utf-8")
            except FileNotFoundError:
                return None  # plain miss in both layouts
            except OSError as exc:
                return self._defective(path, f"unreadable: {exc}")
        except OSError as exc:
            return self._defective(path, f"unreadable: {exc}")
        try:
            payload = json.loads(text)
        except ValueError:
            return self._defective(path, "not valid JSON (truncated or corrupt)")
        problem = _verify_payload(payload)
        if problem is not None:
            return self._defective(path, problem)
        try:
            return RunResult(**payload["result"])
        except (KeyError, TypeError):
            return self._defective(path, "schema drift or hand-edited payload")

    def _defective(self, path: Path, why: str) -> None:
        """Count and report one unusable entry; reads it as a miss."""
        self.corrupt_reads += 1
        print(f"repro.exec.store: {path.name} read as a miss: {why}",
              file=sys.stderr)
        return None

    def put(self, spec: RunSpec, result: RunResult,
            fault_attempt: Optional[int] = None) -> Path:
        """Atomically and durably persist ``result`` under ``spec``'s hash.

        ``fault_attempt`` opts this write into the deterministic
        ``disk-full`` chaos schedule (callers pass the spec's attempt or
        lease count): when the schedule fires, the write dies with
        ``OSError(ENOSPC)`` *mid-payload* — a torn temp file on a full
        disk — and this method's fail-clean guarantee is what the drill
        proves: the temp is removed, no entry lands under the real hash,
        and a retry (on a disk with room) succeeds from scratch.
        """
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        result_payload = dataclasses.asdict(result)
        payload = {
            "version": STORE_VERSION,
            "spec": spec.describe(),
            "result": result_payload,
            "checksum": result_checksum(result_payload),
        }
        text = json.dumps(payload, sort_keys=True, indent=1)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                if fault_attempt is not None:
                    try:
                        maybe_disk_full(active_plan(),
                                        f"put:{spec.content_hash}",
                                        fault_attempt)
                    except OSError:
                        # Tear the write the way a real ENOSPC would:
                        # part of the payload lands, then the device
                        # refuses the rest.
                        handle.write(text[: len(text) // 2])
                        handle.flush()
                        raise
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            # Never leave a half-written temp behind on this code path;
            # a SIGKILL can still strand one, which sweep_stale handles.
            try:
                os.unlink(tmp)
            # simlint: allow[SIM601] best-effort cleanup while re-raising the real error below
            except OSError:
                pass
            raise
        self._sweep_stale()
        return path

    def _sweep_stale(self) -> None:
        """Drop temp files stranded by processes that no longer exist.

        Temp names embed the writer's pid; a temp whose writer is gone
        (or that another live writer owns) is garbage from a killed run.
        Live writers' files are left alone — they are about to be renamed.
        """
        for stray in self._temp_paths():
            pid_part = stray.name.rsplit(".", 2)[-2]
            if pid_part == str(os.getpid()):
                continue
            try:
                alive = pid_part.isdigit() and _pid_alive(int(pid_part))
            except ValueError:
                alive = False
            if not alive:
                try:
                    stray.unlink()
                # simlint: allow[SIM601] losing a race to delete garbage is harmless
                except OSError:
                    pass

    def _temp_paths(self) -> List[Path]:
        """Writer temp files in both layouts (shard dirs and flat root)."""
        try:
            return (sorted(self.root.glob(f"{_SHARD_GLOB}/.*.tmp"))
                    + sorted(self.root.glob(".*.tmp")))
        except OSError:
            return []

    def __len__(self) -> int:
        """Distinct entries across both layouts (a migrated-and-recopied
        hash counts once)."""
        return len({path.stem for path in self.entry_paths()})

    # -- offline verification --------------------------------------------------

    def verify_entry(self, path: Path) -> Optional[str]:
        """Why the entry at ``path`` is unusable, or None when sound.

        Runs every check :meth:`get` runs — parse, version, checksum,
        result schema — plus two only an offline pass can afford: the
        file name must equal the content hash of the spec description
        it carries, so a renamed or cross-copied entry (which would
        serve the wrong result under ``get``'s addressing) is caught;
        and an entry filed inside a shard directory must be in the
        shard its hash names, or ``get`` — which probes only the right
        shard — would never find it.
        """
        try:
            text = path.read_text("utf-8")
        except OSError as exc:
            return f"unreadable: {exc}"
        try:
            payload = json.loads(text)
        except ValueError:
            return "not valid JSON (truncated or corrupt)"
        problem = _verify_payload(payload)
        if problem is not None:
            return problem
        try:
            RunResult(**payload["result"])
        except (KeyError, TypeError):
            return "schema drift or hand-edited payload"
        spec_payload = payload.get("spec")
        if isinstance(spec_payload, dict):
            canonical = json.dumps(spec_payload, sort_keys=True,
                                   separators=(",", ":"))
            expected = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            if path.stem != expected:
                return (f"entry is filed under {path.stem[:12]}… but its "
                        f"spec hashes to {expected[:12]}… (renamed or "
                        "cross-copied entry)")
        if (path.parent != self.root
                and len(path.parent.name) == SHARD_WIDTH
                and path.stem[:SHARD_WIDTH] != path.parent.name):
            return (f"filed in shard {path.parent.name}/ but its hash "
                    f"starts with {path.stem[:SHARD_WIDTH]} (misfiled "
                    "entry; reads probe only the right shard)")
        return None

    def migrate(self) -> Tuple[int, int]:
        """Move flat-layout entries into their shards; (moved, dupes).

        Idempotent — a second run finds nothing flat — and atomic per
        entry: each move is one same-filesystem ``os.replace``, so a
        kill mid-migration leaves every entry whole in exactly one
        layout.  A hash already present in its shard makes the flat
        copy redundant (the shard is what reads serve); it is removed
        and counted as a duplicate.  Files whose name is not a content
        hash are left alone for fsck to flag.
        """
        moved = dupes = 0
        try:
            flat = sorted(self.root.glob("*.json"))
        except OSError:
            return 0, 0
        for path in flat:
            if not _is_content_hash(path.stem):
                continue
            target = self.shard_path(path.stem)
            try:
                if target.exists():
                    path.unlink()
                    dupes += 1
                else:
                    target.parent.mkdir(parents=True, exist_ok=True)
                    os.replace(path, target)
                    moved += 1
            except OSError as exc:
                print(f"repro.exec.store: migrate skipped {path.name}: {exc}",
                      file=sys.stderr)
        return moved, dupes

    def fsck(self, prune: bool = False, migrate: bool = False) -> FsckReport:
        """Scan and verify every entry; with ``prune``, remove failures.

        ``migrate`` first moves flat-layout entries into their shards
        (see :meth:`migrate`); the scan then audits the store it left
        behind.  Never raises for a defective store — the report
        carries what was wrong (and what was moved or removed) so
        callers can journal it.
        """
        report = FsckReport(root=str(self.root))
        if migrate:
            report.migrated, _dupes = self.migrate()
        for path in self.entry_paths():
            report.scanned += 1
            problem = self.verify_entry(path)
            if problem is None:
                report.ok += 1
                if path.parent == self.root:
                    report.flat_entries += 1
                try:
                    if json.loads(path.read_text("utf-8")).get(
                            "version") != STORE_VERSION:
                        report.ok_legacy += 1
                # simlint: allow[SIM601] verified readable just above; a race here only misses the legacy tally
                except (OSError, ValueError):
                    pass
                continue
            report.problems.append((path.name, problem))
            if prune:
                try:
                    path.unlink()
                    report.pruned.append(path.name)
                except OSError as exc:
                    report.problems.append(
                        (path.name, f"prune failed: {exc}")
                    )
        for stray in self._temp_paths():
            pid_part = stray.name.rsplit(".", 2)[-2]
            if pid_part.isdigit() and _pid_alive(int(pid_part)):
                continue  # a live writer is about to rename it
            report.stale_temps.append(stray.name)
            if prune:
                try:
                    stray.unlink()
                    report.pruned.append(stray.name)
                # simlint: allow[SIM601] losing a race to delete garbage is harmless
                except OSError:
                    pass
        return report
