"""Persistent, content-addressed result store.

One JSON file per :class:`~repro.exec.runspec.RunSpec` content hash under
a cache directory (default ``~/.cache/repro``, overridable with the
``REPRO_CACHE_DIR`` environment variable or the CLI's ``--cache-dir``).
Each file carries a format version, the full spec description (so a human
can audit what a hash means) and the complete
:class:`~repro.core.simulation.RunResult`.

Reads are forgiving: a missing, truncated, corrupted or
version-mismatched file is a cache miss, never an error — the executor
simply re-simulates and rewrites it.  Writes are atomic and durable:
the payload is written to a same-directory temp file, flushed and
``fsync``'d, then ``os.replace``'d over the final name, so a worker
killed mid-write can never leave a truncated entry under a real hash —
only a stray ``*.tmp`` file, which reads ignore and
:meth:`ResultStore.put` sweeps up on the next write.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.core.simulation import RunResult
from repro.exec.runspec import RunSpec

#: Bump when the stored payload layout (or RunResult schema) changes;
#: older entries then read as misses instead of crashing deserialisation.
#: 2: RunResult.stats gained the hierarchy's bus counters (finalize_stats).
STORE_VERSION = 2


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal 0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but not ours
    return True


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ResultStore:
    """Directory of ``<content-hash>.json`` result files."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.content_hash}.json"

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The stored result for ``spec``, or None on any defect."""
        try:
            payload = json.loads(self.path_for(spec).read_text("utf-8"))
        except (OSError, ValueError):
            return None  # missing, unreadable, truncated or not JSON
        if not isinstance(payload, dict) or payload.get("version") != STORE_VERSION:
            return None
        try:
            return RunResult(**payload["result"])
        except (KeyError, TypeError):
            return None  # schema drift or hand-edited file

    def put(self, spec: RunSpec, result: RunResult) -> Path:
        """Atomically and durably persist ``result`` under ``spec``'s hash."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "version": STORE_VERSION,
            "spec": spec.describe(),
            "result": dataclasses.asdict(result),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True, indent=1))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            # Never leave a half-written temp behind on this code path;
            # a SIGKILL can still strand one, which sweep_stale handles.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._sweep_stale()
        return path

    def _sweep_stale(self) -> None:
        """Drop temp files stranded by processes that no longer exist.

        Temp names embed the writer's pid; a temp whose writer is gone
        (or that another live writer owns) is garbage from a killed run.
        Live writers' files are left alone — they are about to be renamed.
        """
        for stray in self.root.glob(".*.tmp"):
            pid_part = stray.name.rsplit(".", 2)[-2]
            if pid_part == str(os.getpid()):
                continue
            try:
                alive = pid_part.isdigit() and _pid_alive(int(pid_part))
            except ValueError:
                alive = False
            if not alive:
                try:
                    stray.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0
