"""Persistent, content-addressed result store.

One JSON file per :class:`~repro.exec.runspec.RunSpec` content hash under
a cache directory (default ``~/.cache/repro``, overridable with the
``REPRO_CACHE_DIR`` environment variable or the CLI's ``--cache-dir``).
Each file carries a format version, the full spec description (so a human
can audit what a hash means) and the complete
:class:`~repro.core.simulation.RunResult`.

Reads are forgiving: a missing, truncated, corrupted or
version-mismatched file is a cache miss, never an error — the executor
simply re-simulates and rewrites it.  Forgiving is not the same as
silent: a file that *exists* but cannot be used is counted in
:attr:`ResultStore.corrupt_reads` and reported with a one-line stderr
warning, because cache rot (a flaky disk, a torn write from a killed
run, schema drift) should be visible, not absorbed.  Writes are atomic and durable:
the payload is written to a same-directory temp file, flushed and
``fsync``'d, then ``os.replace``'d over the final name, so a worker
killed mid-write can never leave a truncated entry under a real hash —
only a stray ``*.tmp`` file, which reads ignore and
:meth:`ResultStore.put` sweeps up on the next write.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import Optional, Union

from repro.core.simulation import RunResult
from repro.exec.runspec import RunSpec

#: Bump when the stored payload layout (or RunResult schema) changes;
#: older entries then read as misses instead of crashing deserialisation.
#: 2: RunResult.stats gained the hierarchy's bus counters (finalize_stats).
STORE_VERSION = 2


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal 0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but not ours
    return True


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ResultStore:
    """Directory of ``<content-hash>.json`` result files."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        #: Entries that existed but could not be used (corrupt, truncated,
        #: version-mismatched, schema-drifted).  Monotonic over the store's
        #: lifetime; the executor mirrors it into its telemetry.
        self.corrupt_reads = 0

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.content_hash}.json"

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The stored result for ``spec``, or None on any defect.

        A file that is simply absent is a quiet miss.  A file that is
        *present but unusable* is also a miss — the run re-simulates —
        but it is counted and warned about, because silent cache rot
        re-costs simulations forever without anyone noticing.
        """
        path = self.path_for(spec)
        try:
            text = path.read_text("utf-8")
        except FileNotFoundError:
            return None  # plain miss
        except OSError as exc:
            return self._defective(path, f"unreadable: {exc}")
        try:
            payload = json.loads(text)
        except ValueError:
            return self._defective(path, "not valid JSON (truncated or corrupt)")
        if not isinstance(payload, dict) or payload.get("version") != STORE_VERSION:
            found = payload.get("version") if isinstance(payload, dict) else None
            return self._defective(
                path, f"version mismatch (entry {found!r}, want {STORE_VERSION})"
            )
        try:
            return RunResult(**payload["result"])
        except (KeyError, TypeError):
            return self._defective(path, "schema drift or hand-edited payload")

    def _defective(self, path: Path, why: str) -> None:
        """Count and report one unusable entry; reads it as a miss."""
        self.corrupt_reads += 1
        print(f"repro.exec.store: {path.name} read as a miss: {why}",
              file=sys.stderr)
        return None

    def put(self, spec: RunSpec, result: RunResult) -> Path:
        """Atomically and durably persist ``result`` under ``spec``'s hash."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "version": STORE_VERSION,
            "spec": spec.describe(),
            "result": dataclasses.asdict(result),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True, indent=1))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            # Never leave a half-written temp behind on this code path;
            # a SIGKILL can still strand one, which sweep_stale handles.
            try:
                os.unlink(tmp)
            # simlint: allow[SIM601] best-effort cleanup while re-raising the real error below
            except OSError:
                pass
            raise
        self._sweep_stale()
        return path

    def _sweep_stale(self) -> None:
        """Drop temp files stranded by processes that no longer exist.

        Temp names embed the writer's pid; a temp whose writer is gone
        (or that another live writer owns) is garbage from a killed run.
        Live writers' files are left alone — they are about to be renamed.
        """
        for stray in self.root.glob(".*.tmp"):
            pid_part = stray.name.rsplit(".", 2)[-2]
            if pid_part == str(os.getpid()):
                continue
            try:
                alive = pid_part.isdigit() and _pid_alive(int(pid_part))
            except ValueError:
                alive = False
            if not alive:
                try:
                    stray.unlink()
                # simlint: allow[SIM601] losing a race to delete garbage is harmless
                except OSError:
                    pass

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0
