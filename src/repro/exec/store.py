"""Persistent, content-addressed result store.

One JSON file per :class:`~repro.exec.runspec.RunSpec` content hash under
a cache directory (default ``~/.cache/repro``, overridable with the
``REPRO_CACHE_DIR`` environment variable or the CLI's ``--cache-dir``).
Each file carries a format version, the full spec description (so a human
can audit what a hash means) and the complete
:class:`~repro.core.simulation.RunResult`.

Reads are forgiving: a missing, truncated, corrupted or
version-mismatched file is a cache miss, never an error — the executor
simply re-simulates and rewrites it.  Writes are atomic
(temp file + ``os.replace``) so a killed run cannot leave a partial file
that poisons later sweeps.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.core.simulation import RunResult
from repro.exec.runspec import RunSpec

#: Bump when the stored payload layout (or RunResult schema) changes;
#: older entries then read as misses instead of crashing deserialisation.
STORE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ResultStore:
    """Directory of ``<content-hash>.json`` result files."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root).expanduser() if root else default_cache_dir()

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.content_hash}.json"

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The stored result for ``spec``, or None on any defect."""
        try:
            payload = json.loads(self.path_for(spec).read_text("utf-8"))
        except (OSError, ValueError):
            return None  # missing, unreadable, truncated or not JSON
        if not isinstance(payload, dict) or payload.get("version") != STORE_VERSION:
            return None
        try:
            return RunResult(**payload["result"])
        except (KeyError, TypeError):
            return None  # schema drift or hand-edited file

    def put(self, spec: RunSpec, result: RunResult) -> Path:
        """Atomically persist ``result`` under ``spec``'s hash."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "version": STORE_VERSION,
            "spec": spec.describe(),
            "result": dataclasses.asdict(result),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1), "utf-8")
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0
