"""Retry policy and failure records for fault-tolerant execution.

A :class:`RetryPolicy` says how hard the executor fights for each spec:
how many attempts, how long one attempt may run, how long to pause
between attempts, and whether an exhausted spec aborts the batch
(``strict``) or degrades into a :class:`FailedRun` hole the caller can
render and account for.

Backoff is **deterministic**: exponential in the attempt number with a
jitter derived from a SHA-256 of (seed, spec hash, attempt) — the same
discipline as the fault schedule in :mod:`repro.exec.faults` — so a
chaos run never consults ``random`` or the wall clock to decide its own
behaviour, and two reruns of the same faulted sweep retry on the same
cadence.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.exec.faults import stable_fraction


@dataclass(frozen=True)
class FailedRun:
    """The annotated hole a spec leaves when every attempt failed.

    Carries what a post-mortem needs: the content hash (to re-run the
    exact spec), the grid coordinates (to render the hole), the attempt
    count, the final exception's repr and the wall time burned.
    """

    spec_hash: str
    benchmark: str
    mechanism: str
    attempts: int
    error: str
    elapsed: float = 0.0
    kind: str = "error"   # "error" | "timeout" | "poison"

    def describe(self) -> Dict[str, Any]:
        """JSON-ready form; round-trips through :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FailedRun":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def summary(self) -> str:
        nouns = {"timeout": "timeout", "poison": "poison"}
        noun = nouns.get(self.kind, "error")
        return (f"{self.benchmark}/{self.mechanism} failed after "
                f"{self.attempts} attempt{'s' if self.attempts != 1 else ''} "
                f"({noun}: {self.error})")


class ExecutionError(RuntimeError):
    """Base class for executor-raised failures."""


class SpecTimeout(ExecutionError):
    """One attempt exceeded the policy's per-run timeout."""


class SpecExhausted(ExecutionError):
    """Strict mode: a spec failed every allowed attempt.

    Carries the :class:`FailedRun` so callers (the CLI) can report the
    grid coordinates and attempt count before exiting non-zero.
    """

    def __init__(self, failure: FailedRun) -> None:
        super().__init__(failure.summary())
        self.failure = failure


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor responds to failing, hanging or dying runs."""

    #: Re-attempts after the first try (0 = fail on the first error).
    retries: int = 0
    #: Per-attempt wall-clock budget in seconds, enforced by the pool
    #: watchdog.  None disables the watchdog.  In-process execution
    #: (``jobs=1``) cannot be preempted, so the timeout applies only to
    #: pool runs there; injected hangs still surface as timeouts.
    timeout: Optional[float] = None
    #: True: raise :class:`SpecExhausted` on the first exhausted spec
    #: (fail-fast, the library default).  False: record a
    #: :class:`FailedRun` hole and keep the rest of the batch going.
    strict: bool = True
    #: First backoff delay in seconds; doubles per attempt, plus jitter.
    backoff_base: float = 0.05
    #: Upper bound on any single backoff delay.
    backoff_cap: float = 2.0
    #: Seed for the deterministic backoff jitter.
    seed: int = 0
    #: Consecutive pool deaths tolerated before the executor gives up on
    #: process pools and finishes the batch in-process.
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    @property
    def max_leases(self) -> int:
        """Fleet leases a spec may burn before it is quarantined as poison.

        One more than :attr:`max_attempts`: a single arbitrary worker
        death (the ``kill-worker`` drill) must never quarantine a spec,
        but a spec that takes down *every* worker that leases it crosses
        this bound on its deterministic crash-loop and gets resolved
        fleet-wide instead of wedging the fleet.
        """
        return self.max_attempts + 1

    def backoff_delay(self, spec_hash: str, attempt: int) -> float:
        """Seconds to wait before re-attempting after failed ``attempt``.

        Deterministic: exponential in the attempt number with a
        [0, 1)-scaled jitter from a SHA-256 of (seed, spec hash,
        attempt), capped at :attr:`backoff_cap`.
        """
        if self.backoff_base <= 0:
            return 0.0
        raw = self.backoff_base * (2.0 ** (attempt - 1))
        jitter = stable_fraction(f"{self.seed}:backoff:{spec_hash}:{attempt}")
        return min(raw * (1.0 + jitter), self.backoff_cap)
