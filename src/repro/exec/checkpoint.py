"""Durable mid-run checkpoints: crash-safe snapshots, bit-identical resume.

A simulation that dies mid-trace — OOM kill, preemption, a chaos-test
``os._exit`` — normally forfeits every record it already processed.  This
module bounds that loss: the core's pipeline loops cut a full machine
snapshot (kernel event queue, cache arrays, MSHRs, DRAM state, mechanism
tables, loop locals; see :mod:`repro.kernel.state`) every
``--checkpoint-every N`` records, and the next attempt of the *same* spec
resumes from the newest sound snapshot.  Restore-then-finish is
bit-identical to an uninterrupted run — pinned by golden-fingerprint
tests — so resume can never change a result, only how much work producing
it costs.

File format (one checkpoint per file)::

    <cache-dir>/ckpt/<spec-hash>/<record-index>.ckpt
    +------------------------------------------------------------+
    | JSON header line: version, spec, index, payload_bytes,     |
    |                   sha256 of the payload                    |
    +------------------------------------------------------------+
    | pickled machine state (payload_bytes bytes)                |
    +------------------------------------------------------------+

Writes follow the result store's discipline: same-directory temp file,
flush, ``fsync``, ``os.replace`` — a crash mid-write leaves a stray
``.tmp`` (swept by ``fsck --prune``), never a torn ``.ckpt``.  Reads
verify everything the header declares; a checkpoint failing any check is
skipped in favour of the next-older one, and a spec with no sound
checkpoint simply starts from scratch.  Checkpoints are an attempt-local
cache, not an artifact: the executor discards a spec's directory as soon
as its result is durably stored.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.exec.faults import (
    FaultPlan,
    InjectedCrash,
    maybe_corrupt_checkpoint,
    should_kill_midrun,
)

#: On-disk checkpoint format version; bump on layout changes.  A version
#: mismatch is a *defect* (the reader cannot trust the payload), so old
#: checkpoints are discarded rather than migrated — they are a cache.
CKPT_VERSION = 1

#: Subdirectory of the store root holding all checkpoint state.
CKPT_DIRNAME = "ckpt"

#: Filename suffix of a finished checkpoint.
CKPT_SUFFIX = ".ckpt"


class CheckpointError(Exception):
    """A checkpoint file failed verification (torn, corrupt, mismatched)."""


def checkpoint_path(directory: Path, index: int) -> Path:
    """The canonical file name of the cut at ``index`` (sortable)."""
    return directory / f"{index:012d}{CKPT_SUFFIX}"


def write_checkpoint(
    directory: Path, spec_hash: str, index: int, state: Any,
) -> Path:
    """Atomically persist one cut; returns the final path.

    The header is a single JSON line so ``fsck`` can audit a checkpoint
    without unpickling (or trusting) the payload.
    """
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "version": CKPT_VERSION,
        "spec": spec_hash,
        "index": index,
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_line = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8") + b"\n"
    directory.mkdir(parents=True, exist_ok=True)
    final = checkpoint_path(directory, index)
    tmp = final.with_name(f".{final.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(header_line)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
    except OSError:
        try:
            tmp.unlink()
        # simlint: allow[SIM601] failed-write cleanup is best-effort
        except OSError:
            pass
        raise
    return final


def read_header(path: Path) -> Dict[str, Any]:
    """Parse and sanity-check a checkpoint's header line."""
    with open(path, "rb") as handle:
        line = handle.readline()
    try:
        header = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path.name}: unreadable header: {exc}") from None
    if not isinstance(header, dict):
        raise CheckpointError(f"{path.name}: header is not an object")
    for key in ("version", "spec", "index", "payload_bytes", "sha256"):
        if key not in header:
            raise CheckpointError(f"{path.name}: header missing {key!r}")
    return header


def read_checkpoint(
    path: Path, expected_spec: Optional[str] = None,
) -> Tuple[int, Any]:
    """Verify and load one checkpoint; ``(record index, machine state)``.

    Every declared property is checked — format version, spec hash,
    payload byte count, payload checksum — before the payload is
    unpickled.  Any defect raises :class:`CheckpointError`.
    """
    header = read_header(path)
    if header["version"] != CKPT_VERSION:
        raise CheckpointError(
            f"{path.name}: version {header['version']} != {CKPT_VERSION}"
        )
    if expected_spec is not None and header["spec"] != expected_spec:
        raise CheckpointError(
            f"{path.name}: spec {header['spec'][:12]}... does not match "
            f"{expected_spec[:12]}..."
        )
    with open(path, "rb") as handle:
        handle.readline()
        payload = handle.read()
    if len(payload) != header["payload_bytes"]:
        raise CheckpointError(
            f"{path.name}: torn payload ({len(payload)} of "
            f"{header['payload_bytes']} bytes)"
        )
    if hashlib.sha256(payload).hexdigest() != header["sha256"]:
        raise CheckpointError(f"{path.name}: payload checksum mismatch")
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types
        raise CheckpointError(f"{path.name}: unpicklable payload: {exc}") from None
    return int(header["index"]), state


def load_latest(
    directory: Path, spec_hash: str,
) -> Optional[Tuple[int, Any]]:
    """The newest sound checkpoint under ``directory``, or None.

    Defective files (torn, corrupt, wrong version, wrong spec) are
    skipped in favour of the next-older cut — exactly the fall-back the
    ``corrupt-checkpoint`` chaos kind exercises.
    """
    try:
        paths = sorted(directory.glob(f"*{CKPT_SUFFIX}"), reverse=True)
    except OSError:
        return None
    for path in paths:
        try:
            return read_checkpoint(path, expected_spec=spec_hash)
        except CheckpointError as exc:
            print(f"repro.exec.checkpoint: skipping {exc}", file=sys.stderr)
    return None


def discard_checkpoints(directory: Path) -> int:
    """Remove a spec's checkpoint directory; returns files removed.

    Called once the spec's result is durably stored — a checkpoint that
    outlives its result is pure disk waste (``fsck`` reports any that
    slip through, e.g. when the discarding process dies first).
    """
    removed = 0
    try:
        entries = list(directory.iterdir())
    except OSError:
        return 0
    for path in entries:
        try:
            path.unlink()
            removed += 1
        # simlint: allow[SIM601] losing a race to delete garbage is harmless
        except OSError:
            pass
    try:
        directory.rmdir()
    # simlint: allow[SIM601] non-empty on race; fsck reports leftovers
    except OSError:
        pass
    return removed


class Checkpointer:
    """One run's checkpoint policy, bound to a spec and an attempt.

    This is the duck-typed object :meth:`OoOCore.run
    <repro.cpu.ooo.OoOCore.run>` consumes: ``every`` (records between
    cuts; 0 disables), ``cut(index, state)`` and ``load()``.  On top of
    the durable file layer it carries the chaos hooks — after a cut
    lands it may tear the file (``corrupt-checkpoint``) or kill the
    process (``kill-midrun``), both first-attempt-only so resumed
    attempts always converge.  ``kill_exit`` selects the kill flavour:
    an exit code for real worker processes, ``None`` to raise
    :class:`InjectedCrash` where an ``os._exit`` would take the test
    runner down with it.
    """

    def __init__(
        self,
        root: Path,
        spec_hash: str,
        every: int,
        attempt: int = 1,
        plan: Optional[FaultPlan] = None,
        kill_exit: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        self.spec_hash = spec_hash
        self.every = int(every)
        self.attempt = attempt
        self.plan = plan
        self.kill_exit = kill_exit
        self.directory = self.root / spec_hash
        #: Cuts written by this attempt / whether ``load`` found a
        #: snapshot — harvested into the executor's telemetry.
        self.cuts = 0
        self.resumed = 0

    def cut(self, index: int, state: Any) -> None:
        """Persist one mid-run snapshot (and run the chaos hooks)."""
        path = write_checkpoint(self.directory, self.spec_hash, index, state)
        self.cuts += 1
        if self.plan is not None and self.attempt == 1:
            maybe_corrupt_checkpoint(
                self.plan, path, self.spec_hash, index, attempt=self.attempt
            )
            if should_kill_midrun(self.plan, self.spec_hash):
                if self.kill_exit is not None:
                    os._exit(self.kill_exit)
                raise InjectedCrash(
                    f"injected mid-run kill after checkpoint {index} "
                    f"(attempt {self.attempt})"
                )

    def load(self) -> Optional[Tuple[int, Any]]:
        """The newest sound snapshot for this spec, or None."""
        loaded = load_latest(self.directory, self.spec_hash)
        if loaded is not None:
            self.resumed = 1
        return loaded

    def discard(self) -> int:
        """Drop this spec's checkpoints (the result is durable now)."""
        return discard_checkpoints(self.directory)


# -- fsck -------------------------------------------------------------------


@dataclass
class CheckpointAudit:
    """What a ``ckpt/`` scan found (and, under prune, removed)."""

    scanned: int = 0
    ok: int = 0
    #: ``(relative path, reason)`` for every defective file.
    defective: List[Tuple[str, str]] = field(default_factory=list)
    #: Sound checkpoints shadowed by a newer sound cut of the same spec.
    superseded: List[str] = field(default_factory=list)
    #: Writer temp files with no live owner process.
    stale_temps: List[str] = field(default_factory=list)
    #: Relative paths removed by the pruning pass.
    pruned: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.defective or self.stale_temps)


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal 0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def audit_checkpoints(
    ckpt_root: Path, prune: bool = False,
) -> CheckpointAudit:
    """Audit every checkpoint under ``ckpt_root``; optionally prune.

    Checks per file: header parses, format version matches, the header's
    spec hash agrees with the directory name, the payload is whole and
    matches its checksum.  Sound-but-superseded cuts and ownerless temp
    files are reported (resume only ever reads the newest sound cut, so
    both are dead weight); ``prune`` removes defective and superseded
    checkpoints and stale temps, leaving each spec at most its single
    newest sound snapshot.
    """
    audit = CheckpointAudit()
    try:
        spec_dirs = sorted(p for p in ckpt_root.iterdir() if p.is_dir())
    except OSError:
        return audit

    def remove(path: Path) -> None:
        try:
            path.unlink()
            audit.pruned.append(f"{path.parent.name}/{path.name}")
        # simlint: allow[SIM601] fsck must report, never crash, on races
        except OSError:
            pass

    for spec_dir in spec_dirs:
        spec_hash = spec_dir.name
        newest_sound: Optional[Path] = None
        for path in sorted(spec_dir.glob(f"*{CKPT_SUFFIX}"), reverse=True):
            audit.scanned += 1
            rel = f"{spec_hash}/{path.name}"
            try:
                read_checkpoint(path, expected_spec=spec_hash)
            except CheckpointError as exc:
                audit.defective.append((rel, str(exc)))
                if prune:
                    remove(path)
                continue
            audit.ok += 1
            if newest_sound is None:
                newest_sound = path
            else:
                audit.superseded.append(rel)
                if prune:
                    remove(path)
        for stray in sorted(spec_dir.glob(".*.tmp")):
            pid_part = stray.name.rsplit(".", 2)[-2]
            if pid_part.isdigit() and _pid_alive(int(pid_part)):
                continue  # a live writer is about to rename it
            audit.stale_temps.append(f"{spec_hash}/{stray.name}")
            if prune:
                remove(stray)
        if prune:
            try:
                spec_dir.rmdir()  # only succeeds once fully emptied
            # simlint: allow[SIM601] non-empty spec dirs are expected
            except OSError:
                pass
    return audit
