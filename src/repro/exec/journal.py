"""Crash-safe write-ahead sweep journal: durable, resumable batches.

A long sweep's *workers* have been fault-tolerant since the retry layer
landed (:mod:`repro.exec.policy`), but the orchestrating driver process
itself is routinely killed — OOM killer, a scheduler's SIGTERM, Ctrl-C,
a host reboot — and until now that lost every piece of sweep
bookkeeping that was not a finished store entry.  The journal fixes
that: before and after every unit of work the executor appends one
fsync'd JSON line describing the transition, so a killed driver leaves
a readable record of exactly which specs finished (``done``), which
exhausted every attempt (``failed`` / ``timeout``) and which were merely
in flight.  ``--resume`` replays that record: finished specs resolve
from the journal + result store without re-dispatch, persisted failures
are served as :class:`~repro.exec.policy.FailedRun` holes instead of
silently re-running exhausted specs, and the resumed grid is
bit-identical to an uninterrupted run because results are the same
content-addressed payloads either way.

File discipline
---------------
Same rules as the benchmark ledger (:mod:`repro.obs.ledger`): one JSON
object per line, append-only, each append a single ``write`` +
``flush`` + ``fsync`` so a crash corrupts at most the final line.
Reads are corruption-tolerant: a line that fails to parse is counted
and skipped, never fatal — the spec it described simply re-runs.

Sweep identity
--------------
A journal belongs to one *sweep*: the SHA-256 of the ordered spec-hash
list plus the retry policy (:func:`sweep_identity`).  Re-submitting the
same batch — same specs, same order, same policy — therefore finds the
same journal file, which is what makes ``--resume`` safe: it can never
replay a journal onto a different workload.

Record kinds (the ``kind`` field)::

    sweep-start      identity, spec counts, policy     (first line)
    planned          one per unique spec, in order
    dispatched       one per attempt handed to a worker
    done             the spec resolved to a RunResult (source says how)
    failed|timeout   the spec exhausted every attempt; carries the
                     full FailedRun payload so resume can serve it
    interrupted      a graceful signal shutdown flushed and stopped
    sweep-complete   every spec resolved; the journal is finished
    fsck             a store repair report (``python -m repro.exec fsck``)
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exec.faults import FaultPlan, maybe_corrupt_journal_line
from repro.exec.policy import FailedRun, RetryPolicy

#: Bump when the record layout changes incompatibly; readers skip
#: records with a newer ``v`` rather than mis-parsing them.
JOURNAL_VERSION = 1

KIND_START = "sweep-start"
KIND_PLANNED = "planned"
KIND_DISPATCHED = "dispatched"
KIND_DONE = "done"
KIND_FAILED = "failed"
KIND_TIMEOUT = "timeout"
KIND_INTERRUPTED = "interrupted"
KIND_COMPLETE = "sweep-complete"
KIND_FSCK = "fsck"


def sweep_identity(
    spec_hashes: Sequence[str], policy: RetryPolicy
) -> str:
    """The sweep's identity: SHA-256 of the ordered hash list + policy.

    The *ordered* batch (duplicates included) is hashed, not the unique
    set: a driver that submits the same cells in a different shape is a
    different sweep.  The policy is part of identity because it changes
    outcomes — a journal of failures recorded under ``retries=0`` must
    not be replayed onto a ``retries=3`` run as if they were final.
    """
    payload = json.dumps(
        {
            "specs": list(spec_hashes),
            "policy": dataclasses.asdict(policy),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def journal_path(journal_dir: Union[str, Path], sweep_id: str) -> Path:
    """Where the journal for ``sweep_id`` lives under ``journal_dir``."""
    return Path(journal_dir) / f"{sweep_id[:16]}.jsonl"


@dataclass
class JournalState:
    """What a replayed journal says about a sweep."""

    sweep_id: str = ""
    path: Optional[Path] = None
    #: spec hash -> the ``done`` record that finished it.
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: spec hash -> the persisted FailedRun for an exhausted spec.
    failures: Dict[str, FailedRun] = field(default_factory=dict)
    #: True once a ``sweep-complete`` record was read.
    complete: bool = False
    #: Total lines seen (parsed or not) — the append sequence continues
    #: from here so the fault schedule never reuses a sequence number.
    lines: int = 0
    #: Lines that failed to parse (torn writes, bit rot) and were skipped.
    corrupt_lines: int = 0
    #: Signals recorded by graceful shutdowns of earlier runs.
    interrupts: List[int] = field(default_factory=list)

    @property
    def resolved(self) -> int:
        """Specs the journal can serve without re-dispatch."""
        return len(self.done) + len(self.failures)


def read_state(path: Union[str, Path]) -> Optional[JournalState]:
    """Replay the journal at ``path``; None when there is no file.

    Corruption-tolerant, same discipline as the ledger: unparsable
    lines are counted and skipped.  Later records win — a spec that
    was journaled ``failed`` and later (``--retry-failed``) ``done``
    reads as done.
    """
    path = Path(path)
    try:
        text = path.read_text("utf-8")
    except OSError:
        return None
    state = JournalState(path=path)
    for line in text.splitlines():
        state.lines += 1
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("journal record is not an object")
        except ValueError:
            state.corrupt_lines += 1
            continue
        if record.get("v", 0) > JOURNAL_VERSION:
            state.corrupt_lines += 1
            continue
        kind = record.get("kind")
        spec = record.get("spec", "")
        if not state.sweep_id and record.get("sweep"):
            state.sweep_id = str(record["sweep"])
        if kind == KIND_DONE and spec:
            state.done[spec] = record
            state.failures.pop(spec, None)
        elif kind in (KIND_FAILED, KIND_TIMEOUT) and spec:
            failure = record.get("failure")
            if isinstance(failure, dict):
                try:
                    state.failures[spec] = FailedRun.from_dict(failure)
                    state.done.pop(spec, None)
                except TypeError:
                    state.corrupt_lines += 1
        elif kind == KIND_INTERRUPTED:
            state.interrupts.append(int(record.get("signal", 0)))
        elif kind == KIND_COMPLETE:
            state.complete = True
    return state


class SweepJournal:
    """Appender for one sweep's journal file.

    Each append is one fsync'd line; the sequence number feeds the
    deterministic ``corrupt-journal`` fault schedule so chaos tests can
    tear specific writes (see
    :func:`repro.exec.faults.maybe_corrupt_journal_line`).
    """

    def __init__(
        self,
        path: Union[str, Path],
        sweep_id: str,
        plan: Optional[FaultPlan] = None,
        seq: int = 0,
    ) -> None:
        self.path = Path(path)
        self.sweep_id = sweep_id
        self.plan = plan
        self._seq = seq

    def append(self, kind: str, **fields: Any) -> None:
        """Durably append one record; crash-safe at every byte."""
        record: Dict[str, Any] = {
            "v": JOURNAL_VERSION,
            "kind": kind,
            "sweep": self.sweep_id,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=True)
        assert "\n" not in line  # one record is always exactly one line
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._seq += 1
        key = f"{kind}:{fields.get('spec', '')}"
        maybe_corrupt_journal_line(self.plan, self.path, key, self._seq,
                                   len(line))

    # -- lifecycle shorthands --------------------------------------------------

    def start(self, n_unique: int, n_batch: int,
              policy: RetryPolicy) -> None:
        self.append(KIND_START, specs=n_unique, batch=n_batch,
                    policy=dataclasses.asdict(policy))

    def planned(self, spec_hash: str, benchmark: str, mechanism: str) -> None:
        self.append(KIND_PLANNED, spec=spec_hash, benchmark=benchmark,
                    mechanism=mechanism)

    def dispatched(self, spec_hash: str, attempt: int) -> None:
        self.append(KIND_DISPATCHED, spec=spec_hash, attempt=attempt)

    def done(self, spec_hash: str, benchmark: str, mechanism: str,
             source: str, seconds: float = 0.0) -> None:
        self.append(KIND_DONE, spec=spec_hash, benchmark=benchmark,
                    mechanism=mechanism, source=source,
                    seconds=round(seconds, 6))

    def failed(self, failure: FailedRun) -> None:
        kind = KIND_TIMEOUT if failure.kind == "timeout" else KIND_FAILED
        self.append(kind, spec=failure.spec_hash,
                    failure=failure.describe())

    def interrupted(self, signum: int) -> None:
        self.append(KIND_INTERRUPTED, signal=int(signum))

    def complete(self, n_unique: int) -> None:
        self.append(KIND_COMPLETE, specs=n_unique)


def scan_journals(
    journal_dir: Union[str, Path]
) -> List[Tuple[Path, JournalState]]:
    """Every sweep journal under ``journal_dir`` with its replayed state.

    The fsck report file (``fsck.jsonl``) is not a sweep journal and is
    excluded.  Missing directory reads as no journals.
    """
    journal_dir = Path(journal_dir)
    found: List[Tuple[Path, JournalState]] = []
    try:
        paths = sorted(journal_dir.glob("*.jsonl"))
    except OSError:
        return found
    for path in paths:
        if path.name == "fsck.jsonl":
            continue
        state = read_state(path)
        if state is not None:
            found.append((path, state))
    return found


def hint_incomplete(state: JournalState) -> None:
    """The stderr nudge printed when an interrupted journal is detected."""
    print(
        f"executor: found an interrupted journal for this sweep "
        f"({len(state.done)} done, {len(state.failures)} failed); "
        "pass --resume to serve finished specs without re-simulation "
        "(starting fresh, the old journal is being overwritten)",
        file=sys.stderr,
    )
