"""Deterministic fault injection: ``REPRO_FAULTS=crash:0.1,hang:0.05,seed=7``.

The executor's recovery machinery — retries, the watchdog, pool rebuild,
graceful degradation — is exactly the kind of code that silently rots
because its paths never run.  This module makes every path exercisable
on demand: a :class:`FaultPlan` carries a per-kind injection rate and a
seed, and each worker attempt consults a *deterministic* schedule (a
SHA-256 of seed, kind, spec hash and attempt number) to decide whether
to misbehave.  The same plan therefore produces the same faults on any
machine, in any process, on every rerun — chaos tests assert exact
counters, and a faulted sweep that eventually succeeds is bit-identical
to a clean one because retries are plain re-executions of pure specs.

Fault kinds (grammar: comma-separated ``kind:rate`` pairs plus ``seed=N``):

* ``crash`` — the attempt raises :class:`InjectedCrash` before
  simulating; exercises the per-spec retry path.
* ``hang`` — the attempt sleeps far past any sane deadline (pool
  workers) or raises :class:`InjectedHang` (in-process execution, which
  cannot be preempted); exercises the watchdog / timeout path.
* ``die`` — the worker process exits with ``os._exit`` mid-task,
  breaking the whole pool; exercises ``BrokenProcessPool`` recovery.
  In-process it degrades to a crash (killing the caller would take the
  test down with it).
* ``corrupt-store`` — the freshly written result-store entry is
  truncated after the fact, as a torn write would leave it; exercises
  the corrupt-entry accounting and re-simulation path.
* ``kill-orchestrator`` — the *driver* process ``os._exit``\\ s between
  batch waves (after absorbing — storing and journaling — a freshly
  simulated spec), exactly as an OOM kill or SIGKILL would take it
  down; exercises the write-ahead journal and ``--resume``.  Decided
  per absorbed spec, so every resumed run is guaranteed to make
  progress before it can be killed again.  Driver-side only: worker
  processes never consult it.
* ``corrupt-journal`` — the just-appended journal line is torn (its
  tail dropped), as a crash mid-``write`` would leave it; exercises
  the journal's corruption-tolerant replay.  Decided per (record kind,
  spec, append sequence number), so a re-appended record after resume
  lands on a fresh schedule slot.
* ``kill-worker`` — a fleet worker (:mod:`repro.serve`) ``os._exit``\\ s
  after durably leasing a spec but before simulating it; exercises the
  lease-expiry/reclaim path.  Decided per spec on the *first* lease
  only (the worker consults it only when its lease record carries
  count 1), so a reclaimed lease always runs to completion and a
  chaos fleet provably converges — the same one-shot shape as
  ``kill-orchestrator``.
* ``disk-full`` — a store or fleet-WAL write raises
  ``OSError(ENOSPC)`` mid-write, as a full disk would; exercises the
  fail-clean discipline (no torn entry, no leaked temp) and the
  fleet's release-and-reclaim path.  Fleet-side only, and consulted
  only on a spec's *first* lease — the retry after reclaim always
  writes through, so a chaos fleet provably converges.
* ``kill-midrun`` — the executing process ``os._exit``\\ s (or, in
  process, raises :class:`InjectedCrash`) from *inside the record
  loop*, immediately after a mid-run checkpoint lands on disk;
  exercises the resume-from-checkpoint path in
  :mod:`repro.exec.checkpoint`.  Decided per spec on the first attempt
  only — the retry never consults the schedule, resumes from the cut
  that just landed and runs to completion, so a chaos run provably
  converges.
* ``corrupt-checkpoint`` — the just-written checkpoint file's tail is
  torn (as a crash mid-``write`` that slipped past the atomic-rename
  discipline would leave it); exercises the checksum verification and
  the fall-back-to-next-older-snapshot path.  Decided per (spec,
  record index) on the first attempt, so one schedule can tear some
  cuts of a run and spare others.
* ``poison:HASH_PREFIX`` — not a rate but a spec selector: every
  fleet worker that leases a spec whose content hash starts with the
  prefix dies with ``os._exit(76)``, on *every* lease.  This is the
  deterministic crash-loop the quarantine machinery exists for: the
  spec burns through ``max_leases`` leases and the fleet durably
  quarantines it as a ``FailedRun(kind="poison")`` hole instead of
  crash-looping forever.

Like :mod:`repro.sanitize`, the environment variable is read **once, at
import**: worker processes inherit the environment (and, under the
default ``fork`` start method, this module's parsed state) before they
execute anything, so parent and workers always agree on the schedule.
Tests that need a plan without touching the environment pass one
directly to the :class:`~repro.exec.executor.Executor` or install it
with :func:`set_active_plan`.
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

#: Environment variable carrying the fault spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Recognised fault kinds, in the order they are checked per attempt.
#: ``poison`` is deliberately absent: it is a hash-prefix selector, not
#: a rated kind (see :attr:`FaultPlan.poison`).
FAULT_KINDS = ("die", "hang", "crash", "corrupt-store",
               "kill-orchestrator", "corrupt-journal", "kill-worker",
               "disk-full", "kill-midrun", "corrupt-checkpoint")

#: Exit code of an injected orchestrator kill (EX_TEMPFAIL: rerunnable,
#: distinct from the watchdog's 70 and the signal exits 130/143).
KILL_ORCHESTRATOR_EXIT = 75

#: Exit code of an injected fleet-worker kill (distinct from the codes
#: above so the fleet launcher can tell an injected death from a real
#: one and respawn exactly those).
KILL_WORKER_EXIT = 76


class InjectedCrash(RuntimeError):
    """A fault-injection crash: the attempt failed before simulating."""


class InjectedHang(RuntimeError):
    """An injected hang surfaced in-process (where sleeping cannot be
    preempted, the hang is reported as a timeout instead)."""


def stable_fraction(key: str) -> float:
    """A deterministic value in ``[0, 1)`` derived from ``key``.

    SHA-256 rather than ``random``: the schedule must not depend on
    process-global RNG state, ``PYTHONHASHSEED`` or the wall clock, and
    must agree between the parent and every worker process.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultPlan:
    """Injection rates for each fault kind plus the schedule seed."""

    crash: float = 0.0
    hang: float = 0.0
    die: float = 0.0
    corrupt_store: float = 0.0
    kill_orchestrator: float = 0.0
    corrupt_journal: float = 0.0
    kill_worker: float = 0.0
    disk_full: float = 0.0
    kill_midrun: float = 0.0
    corrupt_checkpoint: float = 0.0
    #: Content-hash prefix naming the poison specs ("" = none): every
    #: fleet worker leasing a matching spec dies, on every lease.
    poison: str = ""
    seed: int = 0
    #: How long an injected hang sleeps in a pool worker; far beyond any
    #: reasonable ``--timeout`` so the watchdog always wins.
    hang_seconds: float = 3600.0

    @property
    def armed(self) -> bool:
        return (any(self._rate(kind) > 0 for kind in FAULT_KINDS)
                or bool(self.poison))

    def _rate(self, kind: str) -> float:
        return {
            "crash": self.crash,
            "hang": self.hang,
            "die": self.die,
            "corrupt-store": self.corrupt_store,
            "kill-orchestrator": self.kill_orchestrator,
            "corrupt-journal": self.corrupt_journal,
            "kill-worker": self.kill_worker,
            "disk-full": self.disk_full,
            "kill-midrun": self.kill_midrun,
            "corrupt-checkpoint": self.corrupt_checkpoint,
        }[kind]

    def decide(self, kind: str, spec_hash: str, attempt: int) -> bool:
        """Whether fault ``kind`` fires for this spec attempt.

        Purely a function of (seed, kind, spec hash, attempt): the same
        plan makes the same decision everywhere, forever.
        """
        rate = self._rate(kind)
        if rate <= 0.0:
            return False
        return stable_fraction(
            f"{self.seed}:{kind}:{spec_hash}:{attempt}"
        ) < rate

    def describe(self) -> str:
        parts = [f"{kind}:{self._rate(kind):g}"
                 for kind in FAULT_KINDS if self._rate(kind) > 0]
        if self.poison:
            parts.append(f"poison:{self.poison}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


def parse_fault_spec(text: str) -> Optional[FaultPlan]:
    """Parse the ``REPRO_FAULTS`` grammar into a plan (None when empty).

    Grammar: comma-separated ``kind:rate`` pairs (rates in ``[0, 1]``)
    with an optional ``seed=N`` and an optional ``poison:HASH_PREFIX``
    (a lowercase-hex content-hash prefix, not a rate).  Unknown kinds,
    malformed rates and out-of-range rates raise ``ValueError`` — a
    silently ignored fault spec would defeat the whole point of a
    chaos run.
    """
    text = text.strip()
    if not text:
        return None
    rates = {kind: 0.0 for kind in FAULT_KINDS}
    seed = 0
    poison = ""
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if token.startswith("seed="):
            try:
                seed = int(token[len("seed="):])
            except ValueError:
                raise ValueError(f"bad fault seed in {token!r}") from None
            continue
        kind, sep, rate_text = token.partition(":")
        if not sep:
            raise ValueError(
                f"bad fault token {token!r}; expected kind:rate or seed=N"
            )
        kind = kind.strip()
        if kind == "poison":
            # A hash-prefix selector, not a rate: validated as hex so a
            # typo'd rate ("poison:0.5") cannot silently select nothing.
            prefix = rate_text.strip()
            if not prefix or not all(c in "0123456789abcdef"
                                     for c in prefix):
                raise ValueError(
                    f"bad poison prefix in {token!r}; expected a "
                    "lowercase-hex content-hash prefix"
                )
            poison = prefix
            continue
        if kind not in rates:
            raise ValueError(
                f"unknown fault kind {kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}, poison"
            )
        try:
            rate = float(rate_text)
        except ValueError:
            raise ValueError(f"bad fault rate in {token!r}") from None
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate out of [0, 1] in {token!r}")
        rates[kind] = rate
    return FaultPlan(
        crash=rates["crash"],
        hang=rates["hang"],
        die=rates["die"],
        corrupt_store=rates["corrupt-store"],
        kill_orchestrator=rates["kill-orchestrator"],
        corrupt_journal=rates["corrupt-journal"],
        kill_worker=rates["kill-worker"],
        disk_full=rates["disk-full"],
        kill_midrun=rates["kill-midrun"],
        corrupt_checkpoint=rates["corrupt-checkpoint"],
        poison=poison,
        seed=seed,
    )


#: The process-wide plan, parsed once at import (None when unset).
_ACTIVE: Optional[FaultPlan] = parse_fault_spec(
    os.environ.get(FAULTS_ENV, "")
)


def active_plan() -> Optional[FaultPlan]:
    """The plan this process runs under, or None when faults are off."""
    return _ACTIVE


def set_active_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the process-wide plan; returns the old one.

    Tests use this instead of re-importing with a mutated environment;
    under the ``fork`` start method, worker processes inherit the
    installed plan too.
    """
    global _ACTIVE
    old = _ACTIVE
    _ACTIVE = plan
    return old


def inject_attempt_faults(
    plan: Optional[FaultPlan], spec_hash: str, attempt: int,
    in_process: bool,
) -> None:
    """Run the pre-execution injections due for this spec attempt.

    Called by the worker entry point before simulating.  ``in_process``
    selects the survivable flavour of the process-level faults: an
    in-process ``die`` raises instead of killing the caller, and an
    in-process ``hang`` raises :class:`InjectedHang` (it will be
    accounted as a timeout) instead of blocking forever.
    """
    if plan is None:
        return
    if plan.decide("die", spec_hash, attempt):
        if not in_process:
            os._exit(70)  # EX_SOFTWARE: abrupt worker death, pool breaks
        raise InjectedCrash(
            f"injected worker death (attempt {attempt}, in-process)"
        )
    if plan.decide("hang", spec_hash, attempt):
        if not in_process:
            time.sleep(plan.hang_seconds)
        raise InjectedHang(f"injected hang (attempt {attempt})")
    if plan.decide("crash", spec_hash, attempt):
        raise InjectedCrash(f"injected crash (attempt {attempt})")


def maybe_corrupt_store_entry(
    plan: Optional[FaultPlan], path: Path, spec_hash: str, attempt: int,
) -> bool:
    """Truncate a just-written store entry when the schedule says so.

    Simulates a torn write that slipped past the atomic-rename
    discipline (a dying disk, a hand-edited file): the entry exists but
    no longer parses, so the next reader must count it as corrupt and
    re-simulate.  Returns True when the entry was corrupted.
    """
    if plan is None or not plan.decide("corrupt-store", spec_hash, attempt):
        return False
    try:
        text = path.read_text("utf-8")
        path.write_text(text[: max(1, len(text) // 3)], "utf-8")
    except OSError:
        return False
    return True


def should_kill_orchestrator(
    plan: Optional[FaultPlan], spec_hash: str,
) -> bool:
    """Whether the driver dies after absorbing ``spec_hash``.

    Only the *decision* lives here; the executor performs the exit so
    it can terminate a live process pool first.  Keyed on the absorbed
    spec's hash (attempt 1): once the spec is journaled ``done`` a
    resumed run serves it without re-absorbing, so the same kill can
    never fire twice and every resume makes progress — the chaos loop
    in CI provably converges on ``sweep-complete``.
    """
    if plan is None:
        return False
    return plan.decide("kill-orchestrator", spec_hash, 1)


def should_kill_worker(
    plan: Optional[FaultPlan], spec_hash: str,
) -> bool:
    """Whether a fleet worker dies after durably leasing ``spec_hash``.

    Only the *decision* lives here; the worker performs the
    ``os._exit(KILL_WORKER_EXIT)`` after its lease record is fsync'd
    (so reclaim is actually exercised) and only when that lease is the
    spec's **first** — the caller checks the lease count before asking.
    Keyed on (spec, attempt 1) like ``kill-orchestrator``: the re-lease
    after expiry carries count 2, never consults the schedule, and runs
    to completion, so a chaos fleet provably converges.
    """
    if plan is None:
        return False
    return plan.decide("kill-worker", spec_hash, 1)


def should_poison(plan: Optional[FaultPlan], spec_hash: str) -> bool:
    """Whether ``spec_hash`` names a poison spec under ``plan``.

    A poison spec kills every fleet worker that leases it, on *every*
    lease (unlike ``kill-worker``'s first-lease-only shape) — that is
    what makes it a crash loop no retry can escape, and what the
    quarantine machinery in :mod:`repro.serve.fleet` exists to bound.
    """
    if plan is None or not plan.poison:
        return False
    return spec_hash.startswith(plan.poison)


def should_kill_midrun(
    plan: Optional[FaultPlan], spec_hash: str,
) -> bool:
    """Whether the simulating process dies after a checkpoint cut lands.

    Only the *decision* lives here; the
    :class:`~repro.exec.checkpoint.Checkpointer` performs the exit (or
    raises :class:`InjectedCrash` in-process) from inside the record
    loop, *after* the cut's atomic rename — so resume always has a
    snapshot to start from.  Keyed on (spec, attempt 1): the caller
    consults the schedule only on a spec's first attempt, the retry
    resumes and runs to completion, and a chaos run provably converges —
    the same one-shot shape as ``kill-orchestrator``.
    """
    if plan is None:
        return False
    return plan.decide("kill-midrun", spec_hash, 1)


def maybe_corrupt_checkpoint(
    plan: Optional[FaultPlan], path: Path, spec_hash: str,
    record_index: int, attempt: int = 1,
) -> bool:
    """Tear a just-written checkpoint's tail when the schedule says so.

    Truncates the file to roughly two thirds of its length — the shape a
    dying disk leaves behind when a rename outruns its data blocks — so
    the payload no longer matches the header's byte count and checksum.
    The next ``load`` must reject it and fall back to the next-older
    snapshot (or a scratch start).  Keyed on (spec, record index) at
    attempt 1: one schedule can tear some of a run's cuts and spare
    others, and re-cuts after a resume (attempt > 1) always survive, so
    a chaos run provably converges.  Returns True when torn.
    """
    if plan is None or attempt != 1:
        return False
    if not plan.decide("corrupt-checkpoint", f"{spec_hash}:{record_index}", 1):
        return False
    try:
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size * 2 // 3))
            handle.flush()
            os.fsync(handle.fileno())
    except OSError:
        return False
    return True


def maybe_disk_full(
    plan: Optional[FaultPlan], key: str, attempt: int,
) -> None:
    """Raise ``OSError(ENOSPC)`` when the disk-full schedule says so.

    Consulted by fleet-side writers (the result store's ``put`` and the
    fleet WAL's resolution appends) with ``attempt`` = the spec's lease
    count; only first-lease writes consult the schedule, so the write
    after a release-and-reclaim always goes through and a chaos fleet
    provably converges — the same one-shot shape as ``kill-worker``.
    """
    if plan is None or attempt != 1:
        return
    if not plan.decide("disk-full", key, 1):
        return
    raise OSError(errno.ENOSPC, f"injected disk-full (chaos) writing {key}")


def maybe_corrupt_journal_line(
    plan: Optional[FaultPlan], path: Path, key: str, seq: int,
    line_length: int,
) -> bool:
    """Tear the journal line just appended, when the schedule says so.

    Drops the tail of the final line (as a crash mid-``write`` would)
    but terminates what remains with a newline, so the reader skips
    exactly one corrupt record and later appends stay parseable.
    ``seq`` is the file's append sequence number: a record re-appended
    after a resume lands on a different slot, so deterministic
    corruption cannot pin one spec's ``done`` record forever.
    """
    if plan is None or not plan.decide("corrupt-journal", key, seq):
        return False
    try:
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            end = handle.tell()
            # The line plus its newline occupy the file's tail; keep
            # roughly half the line, then re-terminate it.
            handle.truncate(max(0, end - 1 - line_length // 2))
            handle.seek(0, os.SEEK_END)
            handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
    except OSError:
        return False
    return True
