"""Graceful signal shutdown for long sweeps.

A scheduler's SIGTERM or an operator's Ctrl-C should not vaporise an
hour of sweep progress.  The :class:`ShutdownManager` turns the first
SIGINT/SIGTERM into a *request*: the executor stops dispatching new
attempts, drains (or, past a deadline, terminates) the in-flight ones,
flushes the journal, and raises :class:`SweepInterrupted` so the CLI
can print the telemetry summary, append the ledger record and exit
with the conventional ``128 + signum`` code (130 for SIGINT, 143 for
SIGTERM) plus a "resume with ``--resume``" pointer.  A *second* signal
means the user is done waiting: registered emergency callbacks run
(the executor registers pool termination) and the process exits
immediately.

Signal handlers are process-global state, so nothing here installs one
as a side effect: the CLI calls :meth:`ShutdownManager.install` around
command execution and libraries consult the never-installed singleton
at zero cost (``requested`` is simply always None).
"""

from __future__ import annotations

import os
import signal
import sys
from types import FrameType
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

#: The signals a sweep shuts down gracefully on.
SHUTDOWN_SIGNALS: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)

#: What ``signal.signal`` returns (and accepts back).
_Handler = Union[Callable[[int, Optional[FrameType]], Any], int, None]


def _signal_name(signum: int) -> str:
    try:
        return signal.Signals(signum).name
    except ValueError:
        return f"signal {signum}"


class SweepInterrupted(BaseException):
    """A graceful shutdown stopped the sweep mid-batch.

    Derives from ``BaseException`` — like ``KeyboardInterrupt``, which
    it replaces while a handler is installed — so no lenient result
    handling can absorb it on the way out.  Carries the signal number;
    :attr:`exit_code` is the conventional ``128 + signum``.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(f"sweep interrupted by {_signal_name(signum)}")
        self.signum = signum

    @property
    def exit_code(self) -> int:
        return 128 + self.signum


class ShutdownManager:
    """Two-stage signal shutdown: request first, force on repeat.

    ``grace`` bounds how long the executor drains in-flight attempts
    after a request before terminating them; journal appends are
    per-record fsync'd, so nothing beyond the drain needs flushing.
    """

    def __init__(self, grace: float = 5.0) -> None:
        self.grace = grace
        self._requested: Optional[int] = None
        self._signals = 0
        self._saved: Dict[int, _Handler] = {}
        self._emergency: List[Callable[[], None]] = []

    # -- state -----------------------------------------------------------------

    @property
    def requested(self) -> Optional[int]:
        """The first shutdown signal received, or None."""
        return self._requested

    @property
    def installed(self) -> bool:
        return bool(self._saved)

    def exit_code(self) -> int:
        return 128 + (self._requested if self._requested is not None
                      else signal.SIGINT)

    def reset(self) -> None:
        """Forget a previous request (tests, repeated CLI invocations)."""
        self._requested = None
        self._signals = 0

    # -- installation ----------------------------------------------------------

    def install(self,
                signums: Tuple[int, ...] = SHUTDOWN_SIGNALS) -> "ShutdownManager":
        """Take over ``signums``; returns self for chaining."""
        for signum in signums:
            if signum not in self._saved:
                self._saved[signum] = signal.signal(signum, self._handle)
        return self

    def uninstall(self) -> None:
        """Restore the previous handlers."""
        for signum, old in self._saved.items():
            signal.signal(signum, old)
        self._saved.clear()

    # -- the emergency path ----------------------------------------------------

    def add_emergency(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` on a second signal, before the forced exit.

        The executor registers termination of its live process pool
        here so a forced exit never strands hung workers.
        """
        self._emergency.append(callback)

    def remove_emergency(self, callback: Callable[[], None]) -> None:
        try:
            self._emergency.remove(callback)
        # simlint: allow[SIM601] double-removal during teardown is benign
        except ValueError:
            pass

    # -- the handler -----------------------------------------------------------

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        self._signals += 1
        if self._signals == 1:
            self._requested = signum
            print(
                f"\nexecutor: {_signal_name(signum)} received — finishing "
                f"in-flight work (at most {self.grace:g}s), flushing the "
                "journal; signal again to terminate immediately",
                file=sys.stderr,
            )
            return
        print(f"executor: second {_signal_name(signum)} — terminating now",
              file=sys.stderr)
        for callback in list(self._emergency):
            try:
                callback()
            # simlint: allow[SIM601] emergency exit must not die in cleanup
            except BaseException:
                pass
        os._exit(128 + signum)

    def interrupt_if_requested(self) -> None:
        """Raise :class:`SweepInterrupted` when a shutdown was requested."""
        if self._requested is not None:
            raise SweepInterrupted(self._requested)


#: The process-wide manager.  Never installed at import; the CLI
#: installs it around command execution, executors consult it.
SHUTDOWN = ShutdownManager()
