"""Store maintenance front end: ``python -m repro.exec fsck``.

Examples::

    python -m repro.exec fsck                       # verify the default store
    python -m repro.exec fsck --cache-dir .cache    # a specific store
    python -m repro.exec fsck --prune               # remove what fails
    python -m repro.exec fsck --migrate             # shard flat v3 entries

``fsck`` runs the offline integrity pass over every result-store entry
(:meth:`~repro.exec.store.ResultStore.verify_entry` — parse, version,
checksum, result schema, filename-vs-content addressing), reports stale
temp files stranded by killed writers, and summarises the sweep
journals found alongside the store.  ``--prune`` removes defective
entries and stale temps, and retires journals whose sweeps completed
(a finished journal serves nothing; an *incomplete* one is what
``--resume`` needs and is never pruned).

``fsck`` also understands the sharded layout (``ab/<hash>.json``): it
audits every shard, cross-checks each entry's shard prefix against its
filename hash (a misfiled entry is a defect — reads probe only the
right shard), and counts entries still in the flat pre-shard layout.
``--migrate`` moves those into their shards first — idempotent and
atomic per entry (one ``os.replace`` each), so it is safe to interrupt
and safe to run while readers are live.

When a fleet has run against this cache (``<cache>/serve/`` WALs
exist), ``fsck`` also audits the fleet's queue/lease books: it counts
every record kind — ``quarantine`` and deadline-``expired`` resolutions
included — and cross-checks each quarantined hash against the store.  A
quarantined spec *should* be a store hole (that is what quarantine
means); one with a sound store entry is a stale poison verdict, flagged
as a defect.  ``--prune`` absolves it (a ``done`` record supersedes the
quarantine, a lease ``reset`` retires its crash-loop pedigree) so the
next submission reads the result instead of replaying the hole.

When mid-run checkpointing has run against this cache
(``<cache>/ckpt/`` exists), ``fsck`` audits every snapshot: header
parse, format version, spec-hash cross-check against the directory it
lives in, payload length and SHA-256, plus stale temps stranded by
killed writers.  A defective checkpoint is never *served* — the loader
skips it and falls back to the next-older sound snapshot — so these are
disk-hygiene defects, not correctness ones; ``--prune`` removes them
along with superseded snapshots (anything older than the newest sound
one per spec).

Every invocation appends its report as one ``fsck`` record to
``<journal-dir>/fsck.jsonl`` — the same append-only, fsync'd discipline
as the sweep journals — so repairs are themselves journaled.  Exit
status: 0 when the store is clean (or everything defective was pruned),
1 when defects remain.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exec.journal import SweepJournal, scan_journals
from repro.exec.store import ResultStore


def _audit_fleet(store: ResultStore, prune: bool) -> int:
    """Cross-check the fleet WALs (when present) against the store.

    Returns the number of *unrepaired* defects: quarantined hashes
    whose store entry is sound — a stale poison verdict that would make
    every future submission replay a hole over a perfectly good result.
    With ``prune`` those are absolved in place and don't count.
    """
    queue_path = store.serve_dir / "queue.jsonl"
    if not queue_path.exists():
        return 0
    # Imported here, not at module top: repro.exec must stay importable
    # without repro.serve (the service depends on the executor, never
    # the reverse).
    from repro.serve.fleet import Fleet

    fleet = Fleet(store.serve_dir)
    snap = fleet.snapshot()
    plain_failed = (len(snap.failures) - len(snap.quarantined)
                    - len(snap.expired))
    line = (f"  fleet WAL: {len(snap.enqueued)} enqueued, "
            f"{len(snap.done)} done, {plain_failed} failed, "
            f"{len(snap.quarantined)} quarantined, "
            f"{len(snap.expired)} deadline-expired")
    if snap.corrupt_lines:
        line += f", {snap.corrupt_lines} corrupt line(s) skipped"
    print(line)
    defects = 0
    for spec_hash in sorted(snap.quarantined):
        path = store.shard_path(spec_hash)
        if not path.exists():
            path = store.flat_path(spec_hash)
        if not path.exists() or store.verify_entry(path) is not None:
            # Consistent: the poison verdict and the store hole agree
            # (a defective entry reads as a hole too).
            continue
        if prune:
            if fleet.absolve(spec_hash):
                print(f"  absolved {spec_hash[:12]}… (quarantined, but "
                      "its store entry is sound; done record appended)")
            continue
        defects += 1
        print(f"  fleet WAL: {spec_hash[:12]}… is quarantined but its "
              "store entry is sound — stale poison verdict (re-run "
              "with --prune to absolve)")
    return defects


def _audit_ckpts(store: ResultStore, prune: bool) -> dict:
    """Audit the mid-run checkpoint tree (``<cache>/ckpt/``).

    Checkpoints are a cache, not an artifact: a defective one is never
    *served* (the loader skips it and falls back to the next-older
    snapshot), so the audit exists to reclaim disk and to surface torn
    writes early.  ``--prune`` removes defective files, superseded
    snapshots (anything older than the newest sound one per spec) and
    stale temps, then drops emptied spec directories.
    """
    from repro.exec.checkpoint import audit_checkpoints

    audit = audit_checkpoints(store.ckpt_root, prune=prune)
    if audit.scanned or audit.stale_temps:
        line = (f"  checkpoints: {audit.scanned} scanned, {audit.ok} sound, "
                f"{len(audit.defective)} defective, "
                f"{len(audit.superseded)} superseded")
        if audit.stale_temps:
            line += f", {len(audit.stale_temps)} stale temp(s)"
        if prune:
            line += f"; pruned {len(audit.pruned)}"
        print(line)
        for rel, why in audit.defective:
            print(f"  checkpoint {rel}: {why}"
                  + ("" if prune else " (re-run with --prune to remove)"))
    return {
        "scanned": audit.scanned,
        "ok": audit.ok,
        "defective": [list(pair) for pair in audit.defective],
        "superseded": audit.superseded,
        "stale_temps": audit.stale_temps,
        "pruned": audit.pruned,
        "clean": audit.clean,
    }


def _cmd_fsck(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir)  # None -> default cache dir
    report = store.fsck(prune=args.prune, migrate=args.migrate)
    print(report.render())

    journals = scan_journals(store.journal_dir)
    pruned_journals: List[str] = []
    for path, state in journals:
        status = ("complete" if state.complete
                  else f"incomplete ({state.resolved} resolved)")
        if state.corrupt_lines:
            status += f", {state.corrupt_lines} corrupt line(s) skipped"
        print(f"  journal {path.name}: {status}")
        if args.prune and state.complete:
            try:
                path.unlink()
                pruned_journals.append(path.name)
                print(f"  pruned {path.name} (sweep finished; journal "
                      "serves nothing)")
            except OSError as exc:
                print(f"  journal {path.name}: prune failed: {exc}")

    fleet_defects = _audit_fleet(store, args.prune)
    ckpt_report = _audit_ckpts(store, args.prune)

    # The repair is itself journaled: one fsck record, same append-only
    # fsync'd discipline as the sweep journals it lives beside.
    fsck_log = SweepJournal(store.journal_dir / "fsck.jsonl", sweep_id="fsck")
    payload = report.describe()
    payload["pruned_journals"] = pruned_journals
    payload["fleet_defects"] = fleet_defects
    payload["checkpoints"] = ckpt_report
    fsck_log.append("fsck", report=payload)

    if report.problems and not args.prune:
        print(f"fsck: {len(report.problems)} defective entr"
              f"{'y' if len(report.problems) == 1 else 'ies'} remain "
              "(re-run with --prune to remove)", file=sys.stderr)
        return 1
    unpruned = [name for name, _why in report.problems
                if name not in report.pruned]
    # A pruned checkpoint defect is repaired, same as a pruned store
    # entry; without --prune it keeps the exit status honest.
    ckpt_defects = not ckpt_report["clean"] and not args.prune
    return 1 if unpruned or fleet_defects or ckpt_defects else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="result-store maintenance (integrity check and repair)",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)
    fsck = sub.add_parser(
        "fsck",
        help="verify every store entry's integrity; --prune removes failures",
    )
    fsck.add_argument("--cache-dir", default=None,
                      help="result-store directory (default ~/.cache/repro "
                           "or $REPRO_CACHE_DIR)")
    fsck.add_argument("--prune", action="store_true",
                      help="remove defective entries, stale temps and "
                           "finished sweep journals")
    fsck.add_argument("--migrate", action="store_true",
                      help="move flat-layout entries into their hash-prefix "
                           "shards before scanning (idempotent, atomic per "
                           "entry)")
    args = parser.parse_args(argv)
    if args.subcommand == "fsck":
        return _cmd_fsck(args)
    parser.error(f"unknown subcommand {args.subcommand!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
