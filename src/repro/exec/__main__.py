"""Store maintenance front end: ``python -m repro.exec fsck``.

Examples::

    python -m repro.exec fsck                       # verify the default store
    python -m repro.exec fsck --cache-dir .cache    # a specific store
    python -m repro.exec fsck --prune               # remove what fails
    python -m repro.exec fsck --migrate             # shard flat v3 entries

``fsck`` runs the offline integrity pass over every result-store entry
(:meth:`~repro.exec.store.ResultStore.verify_entry` — parse, version,
checksum, result schema, filename-vs-content addressing), reports stale
temp files stranded by killed writers, and summarises the sweep
journals found alongside the store.  ``--prune`` removes defective
entries and stale temps, and retires journals whose sweeps completed
(a finished journal serves nothing; an *incomplete* one is what
``--resume`` needs and is never pruned).

``fsck`` also understands the sharded layout (``ab/<hash>.json``): it
audits every shard, cross-checks each entry's shard prefix against its
filename hash (a misfiled entry is a defect — reads probe only the
right shard), and counts entries still in the flat pre-shard layout.
``--migrate`` moves those into their shards first — idempotent and
atomic per entry (one ``os.replace`` each), so it is safe to interrupt
and safe to run while readers are live.

Every invocation appends its report as one ``fsck`` record to
``<journal-dir>/fsck.jsonl`` — the same append-only, fsync'd discipline
as the sweep journals — so repairs are themselves journaled.  Exit
status: 0 when the store is clean (or everything defective was pruned),
1 when defects remain.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exec.journal import SweepJournal, scan_journals
from repro.exec.store import ResultStore


def _cmd_fsck(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir)  # None -> default cache dir
    report = store.fsck(prune=args.prune, migrate=args.migrate)
    print(report.render())

    journals = scan_journals(store.journal_dir)
    pruned_journals: List[str] = []
    for path, state in journals:
        status = ("complete" if state.complete
                  else f"incomplete ({state.resolved} resolved)")
        if state.corrupt_lines:
            status += f", {state.corrupt_lines} corrupt line(s) skipped"
        print(f"  journal {path.name}: {status}")
        if args.prune and state.complete:
            try:
                path.unlink()
                pruned_journals.append(path.name)
                print(f"  pruned {path.name} (sweep finished; journal "
                      "serves nothing)")
            except OSError as exc:
                print(f"  journal {path.name}: prune failed: {exc}")

    # The repair is itself journaled: one fsck record, same append-only
    # fsync'd discipline as the sweep journals it lives beside.
    fsck_log = SweepJournal(store.journal_dir / "fsck.jsonl", sweep_id="fsck")
    payload = report.describe()
    payload["pruned_journals"] = pruned_journals
    fsck_log.append("fsck", report=payload)

    if report.problems and not args.prune:
        print(f"fsck: {len(report.problems)} defective entr"
              f"{'y' if len(report.problems) == 1 else 'ies'} remain "
              "(re-run with --prune to remove)", file=sys.stderr)
        return 1
    unpruned = [name for name, _why in report.problems
                if name not in report.pruned]
    return 1 if unpruned else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="result-store maintenance (integrity check and repair)",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)
    fsck = sub.add_parser(
        "fsck",
        help="verify every store entry's integrity; --prune removes failures",
    )
    fsck.add_argument("--cache-dir", default=None,
                      help="result-store directory (default ~/.cache/repro "
                           "or $REPRO_CACHE_DIR)")
    fsck.add_argument("--prune", action="store_true",
                      help="remove defective entries, stale temps and "
                           "finished sweep journals")
    fsck.add_argument("--migrate", action="store_true",
                      help="move flat-layout entries into their hash-prefix "
                           "shards before scanning (idempotent, atomic per "
                           "entry)")
    args = parser.parse_args(argv)
    if args.subcommand == "fsck":
        return _cmd_fsck(args)
    parser.error(f"unknown subcommand {args.subcommand!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
