"""Declarative run identity: everything one simulation needs, hashed.

A :class:`RunSpec` is the *complete* description of one simulation —
benchmark, mechanism (with variant keyword arguments), full
:class:`~repro.core.config.MachineConfig`, trace length, trace selection
and warm-up fraction.  Two specs are the same run if and only if their
``content_hash`` matches, and the hash is derived from the actual field
values (the config is serialised field by field), never from a label a
caller made up.  That property is what makes result caching across
exhibits — and across processes, via :mod:`repro.exec.store` — sound.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.config import MachineConfig, baseline_config
from repro.core.simulation import (
    DEFAULT_INSTRUCTIONS,
    WARMUP_FRACTION,
    RunResult,
    run_trace,
)
from repro.mechanisms.registry import BASELINE, create
from repro.trace.sampling import window
from repro.trace.simpoint import simpoint_trace
from repro.workloads.registry import build as build_workload

#: Trace-selection kinds understood by :meth:`RunSpec.execute`.
SELECT_WINDOW = "window"
SELECT_SIMPOINT = "simpoint"


@dataclass(frozen=True)
class RunSpec:
    """One simulation, fully specified and content-addressable.

    ``mechanism_kwargs`` is stored as a sorted tuple of ``(name, value)``
    pairs so that specs are hashable, picklable and order-insensitive; a
    plain dict is accepted and canonicalised.

    ``selection`` describes how the simulated slice is taken from a
    generated trace of ``trace_length`` (default: ``n_instructions``)
    instructions:

    * ``None`` — simulate the first ``n_instructions`` of the trace;
    * ``("window", skip)`` — the paper's "skip some, simulate a lot"
      habit: ``n_instructions`` starting at ``skip`` (shifted back when
      the trace is too short, as :func:`repro.trace.sampling.window`);
    * ``("simpoint", interval)`` — SimPoint selection of the
      representative ``n_instructions`` slice using ``interval``-sized
      basic-block vectors.

    ``fast`` arms the trace-speculation fast path
    (:mod:`repro.cpu.fastpath`).  Results are bit-identical either way —
    the equivalence is pinned by the golden-fingerprint tests — but the
    knob is part of run identity (and so of ``content_hash``) because it
    selects which code path produced the numbers.
    """

    benchmark: str
    mechanism: str = BASELINE
    config: MachineConfig = field(default_factory=baseline_config)
    n_instructions: int = DEFAULT_INSTRUCTIONS
    mechanism_kwargs: Tuple[Tuple[str, object], ...] = ()
    trace_length: Optional[int] = None
    selection: Optional[Tuple[Any, ...]] = None
    warmup_fraction: float = WARMUP_FRACTION
    fast: bool = True

    def __post_init__(self) -> None:
        kwargs = self.mechanism_kwargs
        if kwargs is None:
            kwargs = ()
        if isinstance(kwargs, Mapping):
            kwargs = kwargs.items()
        canonical = tuple(sorted((str(k), v) for k, v in kwargs))
        object.__setattr__(self, "mechanism_kwargs", canonical)
        if self.selection is not None:
            selection = tuple(self.selection)
            if len(selection) != 2 or selection[0] not in (
                SELECT_WINDOW, SELECT_SIMPOINT
            ):
                raise ValueError(f"bad trace selection {self.selection!r}")
            object.__setattr__(self, "selection", selection)
        if self.n_instructions <= 0:
            raise ValueError(f"n_instructions must be > 0, got {self.n_instructions}")
        total = self.trace_length
        if total is not None and total < self.n_instructions:
            raise ValueError(
                f"trace_length {total} shorter than n_instructions "
                f"{self.n_instructions}"
            )

    # -- identity -------------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """A JSON-ready dict of every field that defines run identity."""
        return {
            "benchmark": self.benchmark,
            "mechanism": self.mechanism,
            "mechanism_kwargs": [[k, v] for k, v in self.mechanism_kwargs],
            "config": dataclasses.asdict(self.config),
            "n_instructions": self.n_instructions,
            "trace_length": self.trace_length,
            "selection": list(self.selection) if self.selection else None,
            "warmup_fraction": self.warmup_fraction,
            "fast": self.fast,
        }

    @cached_property
    def content_hash(self) -> str:
        """SHA-256 over the canonical serialisation of :meth:`describe`."""
        payload = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- execution ------------------------------------------------------------

    def execute(self, checkpoint=None) -> RunResult:
        """Run the simulation this spec describes on a fresh machine.

        ``checkpoint`` is an optional mid-run checkpointer (see
        :class:`repro.exec.checkpoint.Checkpointer`), forwarded to
        :func:`run_trace`.  It is deliberately *not* a spec field: a
        resumed run's result is bit-identical to an uninterrupted one, so
        checkpointing must never perturb ``content_hash``.
        """
        total = self.trace_length or self.n_instructions
        trace, image = build_workload(self.benchmark, total)
        if self.selection is None:
            selected = trace if total == self.n_instructions else list(
                trace[:self.n_instructions]
            )
        elif self.selection[0] == SELECT_WINDOW:
            selected = window(trace, self.selection[1], self.n_instructions)
        else:  # SELECT_SIMPOINT, validated in __post_init__
            selected = simpoint_trace(
                trace, self.n_instructions, interval=self.selection[1]
            )
        mechanism = create(self.mechanism, **dict(self.mechanism_kwargs))
        return run_trace(
            selected,
            mechanism,
            self.config,
            image,
            benchmark=self.benchmark,
            mechanism_name=self.mechanism,
            warmup_fraction=self.warmup_fraction,
            fast=self.fast,
            checkpoint=checkpoint,
        )
