"""The Executor: batches of RunSpecs in, RunResults out, in order.

Resolution order per unique spec hash:

1. **memo** — results already resolved by this executor (process memory);
2. **store** — the on-disk content-addressed store, when configured;
3. **simulate** — in-process when ``jobs == 1`` (deterministic
   single-process debugging), else fanned out over a
   :class:`concurrent.futures.ProcessPoolExecutor`.

Duplicate specs within a batch are simulated once and every caller
position gets the same result object.  Freshly simulated results are
written back to the store, so the next process — or the next exhibit in
the same ``python -m repro all`` — never pays for the same cell twice.

Fault tolerance
---------------
Long fan-outs must survive partial failure: one worker exception, hang
or pool death must not destroy a multi-hour sweep.  Execution is
therefore governed by a :class:`~repro.exec.policy.RetryPolicy`:

* failing attempts are retried up to ``retries`` times with a
  deterministic exponential backoff (seeded jitter, no ``random``);
* a watchdog enforces the per-attempt ``timeout`` on pool runs — hung
  workers are killed, their specs requeued and charged an attempt;
* a broken pool (a worker died mid-task) is rebuilt and its in-flight
  specs resubmitted without charge; after ``max_pool_rebuilds``
  consecutive deaths the executor degrades to in-process execution;
* a spec that exhausts every attempt becomes a
  :class:`~repro.exec.policy.FailedRun` hole in the batch (``strict``
  mode raises :class:`~repro.exec.policy.SpecExhausted` instead), so
  ``run``/``run_sweep`` return complete grids with annotated holes.

Every recovery path is exercisable on a deterministic schedule via
``REPRO_FAULTS`` (see :mod:`repro.exec.faults`).

Durability
----------
Workers failing is one half of the problem; the *driver* dying (OOM
kill, SIGTERM, Ctrl-C, host reboot) is the other.  When ``journal_dir``
is configured, every multi-spec batch is backed by a crash-safe
write-ahead journal (:mod:`repro.exec.journal`): per-spec lifecycle
transitions are fsync'd before and after each unit of work, so a killed
driver leaves an exact record of what finished.  ``resume=True``
replays that record — finished specs are served from the journal +
store, persisted :class:`FailedRun` holes are honoured instead of
silently re-running exhausted specs (``retry_failed=True`` opts back
in) — and a ``shutdown`` manager turns SIGINT/SIGTERM into a graceful
stop: dispatch halts, in-flight attempts drain within a deadline, the
journal is flushed, and :class:`~repro.exec.shutdown.SweepInterrupted`
carries the conventional exit code up to the CLI.
"""

from __future__ import annotations

import sys
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.config import MachineConfig, baseline_config
from repro.core.results import ResultSet
from repro.core.simulation import DEFAULT_INSTRUCTIONS, RunResult
from repro.exec.checkpoint import Checkpointer, discard_checkpoints
from repro.exec.faults import (
    KILL_ORCHESTRATOR_EXIT,
    FaultPlan,
    InjectedHang,
    active_plan,
    inject_attempt_faults,
    maybe_corrupt_store_entry,
    should_kill_orchestrator,
)
from repro.exec.journal import (
    JournalState,
    SweepJournal,
    hint_incomplete,
    journal_path,
    read_state,
    sweep_identity,
)
from repro.exec.policy import (
    FailedRun,
    RetryPolicy,
    SpecExhausted,
    SpecTimeout,
)
from repro.exec.runspec import RunSpec
from repro.exec.shutdown import SHUTDOWN, ShutdownManager, SweepInterrupted
from repro.exec.store import ResultStore
from repro.exec.telemetry import (
    SOURCE_FAILED,
    SOURCE_JOURNAL,
    SOURCE_MEMO,
    SOURCE_SIMULATED,
    SOURCE_STORE,
    RunRecord,
    Telemetry,
)
from repro.mechanisms.registry import ALL_MECHANISMS, BASELINE
from repro.obs.tracing import TRACER
from repro.workloads.registry import ALL_BENCHMARKS

#: progress(completed_simulations, total_simulations, spec_just_finished)
ProgressFn = Callable[[int, int, RunSpec], None]

#: One resolved batch entry: a result, or the hole a failed spec left.
Resolved = Union[RunResult, FailedRun]

#: What the worker entry point returns per attempt; the final element is
#: ``(checkpoints cut, resumed-from-checkpoint)`` for the telemetry.
_WorkerReturn = Tuple[str, RunResult, float, Tuple[int, int]]

#: (spec, attempt number) waiting to run.
_QueueItem = Tuple[RunSpec, int]


def _execute_timed(
    spec: RunSpec,
    attempt: int = 1,
    plan: Optional[FaultPlan] = None,
    in_process: bool = True,
    checkpoint_every: int = 0,
    ckpt_root: Optional[str] = None,
) -> _WorkerReturn:
    """Worker entry point: run one spec attempt, report its wall time.

    Fault injection (when ``plan`` is armed) happens *before* the traced
    region so a crashing attempt never leaves an unbalanced span.

    When checkpointing is on, later attempts of the same spec resume
    from the newest sound mid-run snapshot under ``ckpt_root``.  The
    ``kill-midrun`` chaos kind always takes the survivable
    :class:`~repro.exec.faults.InjectedCrash` flavour here: a pool
    worker's ``os._exit`` would break the whole pool, and the executor
    requeues broken-pool casualties *without* charging an attempt — the
    one-shot (spec, attempt 1) schedule would fire forever.  The raise
    is charged, so the retry carries attempt 2, skips the schedule and
    converges.  Real ``os._exit`` kills are exercised by the fleet
    workers (:mod:`repro.serve.worker`), whose lease counts do advance.
    """
    inject_attempt_faults(plan, spec.content_hash, attempt, in_process)
    ckpt = None
    if checkpoint_every and ckpt_root is not None:
        ckpt = Checkpointer(
            Path(ckpt_root), spec.content_hash, checkpoint_every,
            attempt=attempt, plan=plan, kill_exit=None,
        )
    tracing = TRACER.enabled
    if tracing:
        TRACER.begin("exec.simulate", cat="exec",
                     benchmark=spec.benchmark, mechanism=spec.mechanism)
    start = time.perf_counter()
    result = spec.execute(checkpoint=ckpt)
    seconds = time.perf_counter() - start
    if tracing:
        TRACER.end(seconds=round(seconds, 6))
    ckpt_counts = (ckpt.cuts, ckpt.resumed) if ckpt is not None else (0, 0)
    return spec.content_hash, result, seconds, ckpt_counts


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: kill workers, cancel queued work, no wait.

    ``shutdown(wait=True)`` — what the ``with`` statement does — blocks
    until every in-flight future completes, which for a hung worker is
    forever.  Worker handles only exist on the private ``_processes``
    map, so the access is guarded against interpreter variation.
    """
    processes = getattr(pool, "_processes", None)
    if processes:
        for proc in list(processes.values()):
            try:
                proc.terminate()
            # simlint: allow[SIM601] the worker already died; nothing to kill
            except (OSError, ValueError):
                pass
    pool.shutdown(wait=False, cancel_futures=True)


class Executor:
    """Run batches of :class:`RunSpec`, deduplicated, cached and retried.

    ``jobs=1`` executes in-process (no pool, bit-for-bit reproducible
    stepping under a debugger); ``jobs>1`` uses a process pool of that
    many workers.  ``jobs=None`` defaults to ``os.cpu_count()``.

    ``policy`` defaults to the fail-fast library behaviour (no retries,
    no timeout, strict); the CLI's ``--retries/--timeout/--strict``
    flags build a lenient one.  ``faults`` defaults to the process-wide
    ``REPRO_FAULTS`` plan and exists as a parameter so chaos tests can
    inject deterministic failure schedules without touching the
    environment.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Optional[ResultStore] = None,
        telemetry: Optional[Telemetry] = None,
        progress: Optional[ProgressFn] = None,
        policy: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        retry_failed: bool = False,
        shutdown: Optional[ShutdownManager] = None,
        checkpoint_every: int = 0,
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.store = store
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.progress = progress
        self.policy = policy if policy is not None else RetryPolicy()
        self.faults = faults if faults is not None else active_plan()
        #: Where multi-spec batches journal their progress; None disables
        #: the write-ahead journal (the library default — importing must
        #: not write to disk).  The CLI wires it to ``store.journal_dir``.
        self.journal_dir = (Path(journal_dir) if journal_dir is not None
                            else None)
        #: Serve finished/failed specs from an existing journal instead
        #: of re-dispatching them (``--resume``).
        self.resume = resume
        #: Re-run specs the journal recorded as exhausted (``--retry-failed``).
        self.retry_failed = retry_failed
        #: Consulted between waves; the never-installed process singleton
        #: is inert, so library use pays nothing.
        self.shutdown = shutdown if shutdown is not None else SHUTDOWN
        #: Cut a durable mid-run snapshot every N trace records (0 = off,
        #: the default: the disabled path adds nothing to the record
        #: loop).  Checkpoints live under the store's ``ckpt/`` tree, so
        #: checkpointing requires a configured store.
        self.checkpoint_every = max(0, int(checkpoint_every))
        self._ckpt_root = (store.ckpt_root
                           if store is not None and self.checkpoint_every
                           else None)
        self._memo: Dict[str, Resolved] = {}
        self._sweep_memo: Dict[Tuple[str, ...], ResultSet] = {}
        #: monotonic() at each spec's first attempt (for FailedRun.elapsed).
        self._first_attempt_at: Dict[str, float] = {}
        self._store_corrupt_base = store.corrupt_reads if store else 0
        #: The current batch's write-ahead journal and its replayed state.
        self._journal: Optional[SweepJournal] = None
        self._journal_state: Optional[JournalState] = None
        #: Live pool, killed by the shutdown manager's second-signal path.
        self._active_pool: Optional[ProcessPoolExecutor] = None

    # -- batch execution ------------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> List[Resolved]:
        """Resolve every spec; results align with ``specs`` by position.

        Under the default strict policy a failing spec raises (after any
        configured retries).  Under a lenient policy (``strict=False``)
        an exhausted spec resolves to a :class:`FailedRun` in its batch
        position, and the rest of the batch completes normally.
        """
        tracing = TRACER.enabled
        if tracing:
            TRACER.begin("exec.batch", cat="exec", specs=len(specs))
        start = time.perf_counter()
        order: List[str] = []
        unique: Dict[str, RunSpec] = {}
        for spec in specs:
            key = spec.content_hash
            order.append(key)
            if key not in unique:
                unique[key] = spec

        self._journal, self._journal_state = self._open_journal(order, unique)
        try:
            to_simulate: List[RunSpec] = []
            for key, spec in unique.items():
                if key in self._memo:
                    self._record(spec, SOURCE_MEMO)
                    self._journal_resolved(spec, SOURCE_MEMO)
                    continue
                if self._serve_from_journal(spec):
                    continue
                stored = self.store.get(spec) if self.store is not None else None
                if stored is not None:
                    self._memo[key] = stored
                    self._record(spec, SOURCE_STORE)
                    self._journal_resolved(spec, SOURCE_STORE)
                    continue
                to_simulate.append(spec)
            if self.store is not None:
                self.telemetry.store_corrupt = (
                    self.store.corrupt_reads - self._store_corrupt_base
                )

            if to_simulate:
                self._simulate(to_simulate)

            # Reaching here means every spec resolved (strict exhaustion
            # and graceful shutdown raise past this): the journal is done.
            if self._journal is not None:
                self._journal.complete(len(unique))
        finally:
            self._journal = None
            self._journal_state = None

        self.telemetry.record_batch(
            len(specs), len(unique), time.perf_counter() - start
        )
        if tracing:
            TRACER.end(unique=len(unique), simulated=len(to_simulate))
        return [self._memo[key] for key in order]

    # -- durability (journal, resume, shutdown, driver kill) ------------------

    def _open_journal(
        self, order: List[str], unique: Dict[str, RunSpec]
    ) -> Tuple[Optional[SweepJournal], Optional[JournalState]]:
        """The write-ahead journal for this batch, plus any resume state.

        Journaling covers every multi-spec batch when a journal
        directory is configured.  Resuming reuses the existing file
        (its replayed state serves finished specs); a fresh run
        overwrites it, hinting on stderr first when the old journal
        was left incomplete by a killed run.
        """
        if self.journal_dir is None or len(order) < 2:
            return None, None
        sweep_id = sweep_identity(order, self.policy)
        path = journal_path(self.journal_dir, sweep_id)
        state = read_state(path)
        if self.resume and state is not None:
            return (
                SweepJournal(path, sweep_id, plan=self.faults,
                             seq=state.lines),
                state,
            )
        if state is not None and not state.complete:
            hint_incomplete(state)
        path.unlink(missing_ok=True)
        journal = SweepJournal(path, sweep_id, plan=self.faults)
        journal.start(len(unique), len(order), self.policy)
        for key, spec in unique.items():
            journal.planned(key, spec.benchmark, spec.mechanism)
        return journal, None

    def _serve_from_journal(self, spec: RunSpec) -> bool:
        """Resolve ``spec`` from the replayed journal, when it can be.

        A ``done`` record means the result is in the store under the
        spec's hash — re-read it rather than re-dispatching.  A
        persisted failure is served as its :class:`FailedRun` hole so a
        resumed lenient sweep never silently re-runs an exhausted spec
        (``retry_failed`` opts back in; strict mode always re-runs, an
        honoured failure would have to raise anyway).
        """
        state = self._journal_state
        if state is None:
            return False
        key = spec.content_hash
        if key in state.done and self.store is not None:
            stored = self.store.get(spec)
            if stored is not None:
                self._memo[key] = stored
                self._record(spec, SOURCE_JOURNAL)
                return True
            # Journaled done but the entry rotted away: fall through and
            # re-simulate (the store's corrupt-read warning already fired).
        failure = state.failures.get(key)
        if (failure is not None and not self.policy.strict
                and not self.retry_failed):
            self._memo[key] = failure
            self._record(spec, SOURCE_JOURNAL)
            return True
        return False

    def _journal_resolved(self, spec: RunSpec, source: str) -> None:
        """Journal a spec that resolved without dispatching (memo/store)."""
        if self._journal is None:
            return
        resolved = self._memo[spec.content_hash]
        if isinstance(resolved, FailedRun):
            self._journal.failed(resolved)
        else:
            self._journal.done(spec.content_hash, spec.benchmark,
                               spec.mechanism, source)

    def _shutdown_signal(self) -> Optional[int]:
        """The pending shutdown signal, or None to keep going."""
        if self.shutdown is None:
            return None
        return self.shutdown.requested

    def _interrupt(self, signum: int) -> None:
        """Journal the graceful stop and raise it out of the batch."""
        if self._journal is not None:
            self._journal.interrupted(signum)
        raise SweepInterrupted(signum)

    def _emergency_kill_pool(self) -> None:
        """Second-signal path: the shutdown manager kills the live pool."""
        pool = self._active_pool
        if pool is not None:
            _terminate_pool(pool)

    def _maybe_kill_orchestrator(
        self, key: str, pool: Optional[ProcessPoolExecutor] = None
    ) -> None:
        """Chaos mode: die like an OOM-killed driver, between waves.

        Runs driver-side only, right after ``key`` was absorbed —
        stored and journaled ``done`` — so the sweep provably advances
        by at least one spec per resumed run and the resume loop
        converges.  The pool is torn down first so no workers outlive
        the "kill".
        """
        if not should_kill_orchestrator(self.faults, key):
            return
        print(
            "faults: injected orchestrator kill (journal flushed; "
            "resume with --resume)",
            file=sys.stderr,
        )
        if pool is not None:
            _terminate_pool(pool)
        os._exit(KILL_ORCHESTRATOR_EXIT)

    def _drain_and_stop(
        self,
        pool: ProcessPoolExecutor,
        pending: Dict["Future[_WorkerReturn]",
                      Tuple[RunSpec, int, Optional[float]]],
        signum: int,
    ) -> None:
        """Graceful shutdown of a pool batch: drain, flush, raise.

        Dispatching has stopped; in-flight attempts get the shutdown
        manager's grace deadline to finish, whatever completes is
        absorbed (stored and journaled) so the resume serves it, and
        the rest are terminated with the pool.  Always raises
        :class:`SweepInterrupted`.
        """
        grace = self.shutdown.grace if self.shutdown is not None else 0.0
        if pending and grace > 0:
            finished, _ = wait(set(pending), timeout=grace)
            for future in finished:
                spec, _attempt, _deadline = pending.pop(future)
                try:
                    key, result, seconds, ckpt_counts = future.result()
                # simlint: allow[SIM601] shutting down: the resumed run re-dispatches and accounts this attempt
                except BaseException:
                    continue
                self._count_checkpoints(ckpt_counts)
                self._absorb(spec, key, result, seconds, 0, 0)
        _terminate_pool(pool)
        self._interrupt(signum)

    # -- simulation fan-out ----------------------------------------------------

    def _simulate(self, specs: List[RunSpec]) -> None:
        total = len(specs)
        now = time.monotonic()
        for spec in specs:
            self._first_attempt_at.setdefault(spec.content_hash, now)
        queue: Deque[_QueueItem] = deque((spec, 1) for spec in specs)
        if self.jobs == 1 or total == 1:
            self._simulate_serial(queue, total, 0)
        else:
            self._simulate_pool(queue, total)

    # -- in-process execution -------------------------------------------------

    def _simulate_serial(
        self, queue: Deque[_QueueItem], total: int, done: int
    ) -> int:
        """Drain ``queue`` in-process; returns the completed count.

        The per-attempt timeout cannot preempt in-process execution, so
        only injected hangs surface as timeouts here; everything else of
        the policy (retries, backoff, strict/lenient) applies as in the
        pool path.
        """
        while queue:
            signum = self._shutdown_signal()
            if signum is not None:
                self._interrupt(signum)
            spec, attempt = queue.popleft()
            if self._journal is not None:
                self._journal.dispatched(spec.content_hash, attempt)
            try:
                key, result, seconds, ckpt_counts = _execute_timed(
                    spec, attempt, self.faults, in_process=True,
                    checkpoint_every=self.checkpoint_every,
                    ckpt_root=self._ckpt_str(),
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            # simlint: allow[SIM601] retried or converted to a FailedRun by _attempt_failed
            except BaseException as exc:
                retry = self._attempt_failed(spec, attempt, exc)
                if retry is None:
                    done += 1
                    self._note_progress(done, total, spec)
                else:
                    if retry > 0:
                        time.sleep(retry)
                    queue.append((spec, attempt + 1))
                continue
            done += 1
            self._count_checkpoints(ckpt_counts)
            self._absorb(spec, key, result, seconds, done, total)
            self._maybe_kill_orchestrator(key)
        return done

    # -- pool execution -------------------------------------------------------

    def _simulate_pool(self, queue: Deque[_QueueItem], total: int) -> None:
        """Drain ``queue`` over a process pool with watchdog and recovery.

        At most ``workers`` submissions are in flight at a time, so a
        submitted attempt starts (nearly) immediately and its deadline
        is measured from submission.  Retries waiting out their backoff
        sit in ``delayed`` and are promoted when due.  Any pool death —
        spontaneous (``BrokenProcessPool``) or deliberate (the watchdog
        killing hung workers) — requeues in-flight specs and rebuilds
        the pool; repeated consecutive deaths degrade to in-process
        execution so the batch always finishes.
        """
        workers = min(self.jobs, total)
        pool = ProcessPoolExecutor(max_workers=workers)
        pending: Dict["Future[_WorkerReturn]",
                      Tuple[RunSpec, int, Optional[float]]] = {}
        delayed: List[Tuple[float, RunSpec, int]] = []
        done = 0
        rebuilds = 0  # consecutive pool deaths without a completed attempt
        self._active_pool = pool
        if self.shutdown is not None:
            self.shutdown.add_emergency(self._emergency_kill_pool)
        try:
            while queue or pending or delayed:
                signum = self._shutdown_signal()
                if signum is not None:
                    self._drain_and_stop(pool, pending, signum)
                now = time.monotonic()
                if delayed:
                    due = [item for item in delayed if item[0] <= now]
                    if due:
                        delayed = [i for i in delayed if i[0] > now]
                        for _, spec, attempt in due:
                            queue.append((spec, attempt))
                broken = False
                while queue and len(pending) < workers:
                    spec, attempt = queue.popleft()
                    deadline = (now + self.policy.timeout
                                if self.policy.timeout is not None else None)
                    if self._journal is not None:
                        self._journal.dispatched(spec.content_hash, attempt)
                    try:
                        future = pool.submit(
                            _execute_timed, spec, attempt, self.faults, False,
                            self.checkpoint_every, self._ckpt_str(),
                        )
                    except BrokenProcessPool:
                        queue.appendleft((spec, attempt))
                        broken = True
                        break
                    pending[future] = (spec, attempt, deadline)
                if pending and not broken:
                    finished, _ = wait(
                        set(pending), timeout=self._wait_timeout(pending, delayed),
                        return_when=FIRST_COMPLETED,
                    )
                    for future in finished:
                        spec, attempt, _deadline = pending.pop(future)
                        try:
                            key, result, seconds, ckpt_counts = future.result()
                        except BrokenProcessPool:
                            # In flight when the pool died: requeue, no charge.
                            queue.appendleft((spec, attempt))
                            broken = True
                            continue
                        except (KeyboardInterrupt, SystemExit):
                            raise
                        # simlint: allow[SIM601] retried or converted to a FailedRun by _attempt_failed
                        except BaseException as exc:
                            rebuilds = 0
                            done = self._resolve_failure(
                                spec, attempt, exc, delayed, done, total
                            )
                            continue
                        done += 1
                        rebuilds = 0
                        self._count_checkpoints(ckpt_counts)
                        self._absorb(spec, key, result, seconds, done, total)
                        self._maybe_kill_orchestrator(key, pool)
                    # Watchdog: charge and requeue attempts past deadline,
                    # then kill the pool — a hung worker cannot be cancelled.
                    now = time.monotonic()
                    expired = [f for f, (_s, _a, dl) in pending.items()
                               if dl is not None and dl <= now]
                    for future in expired:
                        spec, attempt, _deadline = pending.pop(future)
                        timeout = self.policy.timeout or 0.0
                        exc: BaseException = SpecTimeout(
                            f"{spec.benchmark}/{spec.mechanism} attempt "
                            f"{attempt} exceeded {timeout:g}s"
                        )
                        done = self._resolve_failure(
                            spec, attempt, exc, delayed, done, total,
                            timed_out=True,
                        )
                    if expired:
                        broken = True
                elif not pending and not queue and delayed:
                    # Only backoff sleepers remain; wait for the earliest.
                    earliest = min(item[0] for item in delayed)
                    pause = earliest - time.monotonic()
                    if pause > 0:
                        time.sleep(pause)
                if broken:
                    for spec, attempt, _deadline in pending.values():
                        queue.appendleft((spec, attempt))
                    pending.clear()
                    _terminate_pool(pool)
                    self.telemetry.pool_rebuilds += 1
                    rebuilds += 1
                    if rebuilds > self.policy.max_pool_rebuilds:
                        print(
                            f"executor: pool died {rebuilds} times in a row; "
                            f"finishing {len(queue) + len(delayed)} spec(s) "
                            "in-process",
                            file=sys.stderr,
                        )
                        for _ready_at, spec, attempt in delayed:
                            queue.append((spec, attempt))
                        delayed.clear()
                        self._simulate_serial(queue, total, done)
                        return
                    pool = ProcessPoolExecutor(max_workers=workers)
                    self._active_pool = pool
        except BaseException:
            # Fatal exit (strict-mode exhaustion, ^C, a bug): cancel
            # queued work and kill workers rather than stranding a pool
            # whose implicit shutdown would block on in-flight futures.
            _terminate_pool(pool)
            raise
        finally:
            self._active_pool = None
            if self.shutdown is not None:
                self.shutdown.remove_emergency(self._emergency_kill_pool)
        pool.shutdown(wait=True)

    def _wait_timeout(
        self,
        pending: Dict["Future[_WorkerReturn]",
                      Tuple[RunSpec, int, Optional[float]]],
        delayed: List[Tuple[float, RunSpec, int]],
    ) -> Optional[float]:
        """How long ``wait`` may block before the watchdog must look.

        None (block until a future completes) when there are no
        deadlines to enforce and no backoff retries to promote.
        """
        times = [deadline for (_s, _a, deadline) in pending.values()
                 if deadline is not None]
        times.extend(ready_at for ready_at, _s, _a in delayed)
        if not times:
            return None
        return max(0.01, min(times) - time.monotonic())

    # -- attempt accounting ---------------------------------------------------

    def _resolve_failure(
        self,
        spec: RunSpec,
        attempt: int,
        exc: BaseException,
        delayed: List[Tuple[float, RunSpec, int]],
        done: int,
        total: int,
        timed_out: bool = False,
    ) -> int:
        """Pool-side bookkeeping for one failed attempt; returns ``done``."""
        retry = self._attempt_failed(spec, attempt, exc, timed_out=timed_out)
        if retry is None:
            done += 1
            self._note_progress(done, total, spec)
        else:
            delayed.append((time.monotonic() + retry, spec, attempt + 1))
        return done

    def _attempt_failed(
        self,
        spec: RunSpec,
        attempt: int,
        exc: BaseException,
        timed_out: bool = False,
    ) -> Optional[float]:
        """Account for one failed attempt.

        Returns the backoff delay in seconds when the spec should be
        retried.  Returns None when the spec is exhausted — in strict
        mode by raising :class:`SpecExhausted`, otherwise by recording a
        :class:`FailedRun` hole in the memo.
        """
        key = spec.content_hash
        timeout_like = timed_out or isinstance(exc, InjectedHang)
        if timeout_like:
            self.telemetry.timeouts += 1
        if attempt < self.policy.max_attempts:
            self.telemetry.retries += 1
            return self.policy.backoff_delay(key, attempt)
        started = self._first_attempt_at.pop(key, None)
        elapsed = time.monotonic() - started if started is not None else 0.0
        failure = FailedRun(
            spec_hash=key,
            benchmark=spec.benchmark,
            mechanism=spec.mechanism,
            attempts=attempt,
            error=repr(exc),
            elapsed=round(elapsed, 6),
            kind="timeout" if timeout_like else "error",
        )
        self.telemetry.failures += 1
        # Journal the exhaustion first: even a strict abort leaves a
        # record, and a resumed lenient sweep can honour the hole.
        if self._journal is not None:
            self._journal.failed(failure)
        if self.policy.strict:
            raise SpecExhausted(failure) from exc
        print(f"executor: giving up: {failure.summary()}", file=sys.stderr)
        self._memo[key] = failure
        self._record(spec, SOURCE_FAILED, failure.elapsed)
        return None

    def _note_progress(self, done: int, total: int, spec: RunSpec) -> None:
        if self.progress is not None:
            self.progress(done, total, spec)

    def _ckpt_str(self) -> Optional[str]:
        """The checkpoint root as a plain string (picklable submit arg)."""
        return str(self._ckpt_root) if self._ckpt_root is not None else None

    def _count_checkpoints(self, counts: Tuple[int, int]) -> None:
        self.telemetry.checkpoints += counts[0]
        self.telemetry.resumed_from_ckpt += counts[1]

    def _absorb(
        self,
        spec: RunSpec,
        key: str,
        result: RunResult,
        seconds: float,
        done: int,
        total: int,
    ) -> None:
        self._memo[key] = result
        self._first_attempt_at.pop(key, None)
        if self.store is not None:
            path = self.store.put(spec, result)
            # Chaos mode: a "torn write" lands now, is discovered (and
            # counted) by whoever reads the entry next.
            maybe_corrupt_store_entry(self.faults, path, key, 1)
            if self._ckpt_root is not None:
                # The result is durable; the spec's mid-run snapshots are
                # now pure disk waste.
                discard_checkpoints(self._ckpt_root / key)
        self._record(spec, SOURCE_SIMULATED, seconds)
        # Journal *after* the store write: a ``done`` record promises the
        # result is re-readable, so the promise must land last.
        if self._journal is not None:
            self._journal.done(key, spec.benchmark, spec.mechanism,
                               SOURCE_SIMULATED, seconds)
        self._note_progress(done, total, spec)

    def _record(self, spec: RunSpec, source: str, seconds: float = 0.0) -> None:
        if TRACER.enabled:
            TRACER.instant("exec.resolve", cat="exec",
                           benchmark=spec.benchmark,
                           mechanism=spec.mechanism, source=source)
        self.telemetry.record(RunRecord(
            spec_hash=spec.content_hash,
            benchmark=spec.benchmark,
            mechanism=spec.mechanism,
            source=source,
            seconds=seconds,
        ))

    # -- grids ----------------------------------------------------------------

    def run_sweep(
        self,
        config: Optional[MachineConfig] = None,
        benchmarks: Sequence[str] = ALL_BENCHMARKS,
        mechanisms: Sequence[str] = ALL_MECHANISMS,
        n_instructions: int = DEFAULT_INSTRUCTIONS,
        mechanism_kwargs: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> ResultSet:
        """The mechanism x benchmark grid as a :class:`ResultSet`.

        The baseline is always included (speedup queries need it).  The
        assembled ResultSet is memoised by the tuple of spec hashes, so
        exhibits sharing a grid share the object too.  Under a lenient
        policy, exhausted specs land in the grid as annotated
        :class:`FailedRun` holes (see :meth:`ResultSet.add_failure`)
        rather than aborting the sweep.
        """
        mechanisms = list(mechanisms)
        if BASELINE not in mechanisms:
            mechanisms.insert(0, BASELINE)
        config = config or baseline_config()
        variants = mechanism_kwargs or {}
        specs = [
            RunSpec(
                benchmark=benchmark,
                mechanism=mechanism,
                config=config,
                n_instructions=n_instructions,
                mechanism_kwargs=variants.get(mechanism) or (),
            )
            for mechanism in mechanisms
            for benchmark in benchmarks
        ]
        key = tuple(spec.content_hash for spec in specs)
        if key in self._sweep_memo:
            for spec in specs:
                self._record(spec, SOURCE_MEMO)
            self.telemetry.record_batch(len(specs), len(specs), 0.0)
            return self._sweep_memo[key]
        results = self.run(specs)
        grid = ResultSet()
        for result in results:
            if isinstance(result, FailedRun):
                grid.add_failure(result)
            else:
                grid.add(result)
        self._sweep_memo[key] = grid
        return grid
