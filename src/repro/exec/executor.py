"""The Executor: batches of RunSpecs in, RunResults out, in order.

Resolution order per unique spec hash:

1. **memo** — results already resolved by this executor (process memory);
2. **store** — the on-disk content-addressed store, when configured;
3. **simulate** — in-process when ``jobs == 1`` (deterministic
   single-process debugging), else fanned out over a
   :class:`concurrent.futures.ProcessPoolExecutor`.

Duplicate specs within a batch are simulated once and every caller
position gets the same result object.  Freshly simulated results are
written back to the store, so the next process — or the next exhibit in
the same ``python -m repro all`` — never pays for the same cell twice.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig, baseline_config
from repro.core.results import ResultSet
from repro.core.simulation import DEFAULT_INSTRUCTIONS, RunResult
from repro.exec.runspec import RunSpec
from repro.exec.store import ResultStore
from repro.exec.telemetry import (
    SOURCE_MEMO,
    SOURCE_SIMULATED,
    SOURCE_STORE,
    RunRecord,
    Telemetry,
)
from repro.mechanisms.registry import ALL_MECHANISMS, BASELINE
from repro.obs.tracing import TRACER
from repro.workloads.registry import ALL_BENCHMARKS

#: progress(completed_simulations, total_simulations, spec_just_finished)
ProgressFn = Callable[[int, int, RunSpec], None]


def _execute_timed(spec: RunSpec) -> Tuple[str, RunResult, float]:
    """Worker entry point: run one spec, report its wall time."""
    tracing = TRACER.enabled
    if tracing:
        TRACER.begin("exec.simulate", cat="exec",
                     benchmark=spec.benchmark, mechanism=spec.mechanism)
    start = time.perf_counter()
    result = spec.execute()
    seconds = time.perf_counter() - start
    if tracing:
        TRACER.end(seconds=round(seconds, 6))
    return spec.content_hash, result, seconds


class Executor:
    """Run batches of :class:`RunSpec`, deduplicated and cached.

    ``jobs=1`` executes in-process (no pool, bit-for-bit reproducible
    stepping under a debugger); ``jobs>1`` uses a process pool of that
    many workers.  ``jobs=None`` defaults to ``os.cpu_count()``.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Optional[ResultStore] = None,
        telemetry: Optional[Telemetry] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.store = store
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.progress = progress
        self._memo: Dict[str, RunResult] = {}
        self._sweep_memo: Dict[Tuple[str, ...], ResultSet] = {}

    # -- batch execution ------------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Resolve every spec; results align with ``specs`` by position."""
        tracing = TRACER.enabled
        if tracing:
            TRACER.begin("exec.batch", cat="exec", specs=len(specs))
        start = time.perf_counter()
        order: List[str] = []
        unique: Dict[str, RunSpec] = {}
        for spec in specs:
            key = spec.content_hash
            order.append(key)
            if key not in unique:
                unique[key] = spec

        to_simulate: List[RunSpec] = []
        for key, spec in unique.items():
            if key in self._memo:
                self._record(spec, SOURCE_MEMO)
                continue
            stored = self.store.get(spec) if self.store is not None else None
            if stored is not None:
                self._memo[key] = stored
                self._record(spec, SOURCE_STORE)
                continue
            to_simulate.append(spec)

        if to_simulate:
            self._simulate(to_simulate)

        self.telemetry.record_batch(
            len(specs), len(unique), time.perf_counter() - start
        )
        if tracing:
            TRACER.end(unique=len(unique), simulated=len(to_simulate))
        return [self._memo[key] for key in order]

    def _simulate(self, specs: List[RunSpec]) -> None:
        total = len(specs)
        if self.jobs == 1 or total == 1:
            for done, spec in enumerate(specs, 1):
                key, result, seconds = _execute_timed(spec)
                self._absorb(spec, key, result, seconds, done, total)
            return
        workers = min(self.jobs, total)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {pool.submit(_execute_timed, spec): spec for spec in specs}
            done = 0
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    spec = pending.pop(future)
                    key, result, seconds = future.result()
                    done += 1
                    self._absorb(spec, key, result, seconds, done, total)

    def _absorb(
        self,
        spec: RunSpec,
        key: str,
        result: RunResult,
        seconds: float,
        done: int,
        total: int,
    ) -> None:
        self._memo[key] = result
        if self.store is not None:
            self.store.put(spec, result)
        self._record(spec, SOURCE_SIMULATED, seconds)
        if self.progress is not None:
            self.progress(done, total, spec)

    def _record(self, spec: RunSpec, source: str, seconds: float = 0.0) -> None:
        if TRACER.enabled:
            TRACER.instant("exec.resolve", cat="exec",
                           benchmark=spec.benchmark,
                           mechanism=spec.mechanism, source=source)
        self.telemetry.record(RunRecord(
            spec_hash=spec.content_hash,
            benchmark=spec.benchmark,
            mechanism=spec.mechanism,
            source=source,
            seconds=seconds,
        ))

    # -- grids ----------------------------------------------------------------

    def run_sweep(
        self,
        config: Optional[MachineConfig] = None,
        benchmarks: Sequence[str] = ALL_BENCHMARKS,
        mechanisms: Sequence[str] = ALL_MECHANISMS,
        n_instructions: int = DEFAULT_INSTRUCTIONS,
        mechanism_kwargs: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> ResultSet:
        """The mechanism x benchmark grid as a :class:`ResultSet`.

        The baseline is always included (speedup queries need it).  The
        assembled ResultSet is memoised by the tuple of spec hashes, so
        exhibits sharing a grid share the object too.
        """
        mechanisms = list(mechanisms)
        if BASELINE not in mechanisms:
            mechanisms.insert(0, BASELINE)
        config = config or baseline_config()
        variants = mechanism_kwargs or {}
        specs = [
            RunSpec(
                benchmark=benchmark,
                mechanism=mechanism,
                config=config,
                n_instructions=n_instructions,
                mechanism_kwargs=variants.get(mechanism) or (),
            )
            for mechanism in mechanisms
            for benchmark in benchmarks
        ]
        key = tuple(spec.content_hash for spec in specs)
        if key in self._sweep_memo:
            for spec in specs:
                self._record(spec, SOURCE_MEMO)
            self.telemetry.record_batch(len(specs), len(specs), 0.0)
            return self._sweep_memo[key]
        results = self.run(specs)
        grid = ResultSet()
        for result in results:
            grid.add(result)
        self._sweep_memo[key] = grid
        return grid
