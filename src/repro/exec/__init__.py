"""Declarative execution layer: RunSpec -> Executor -> RunResult.

Run identity is the content of a :class:`~repro.exec.runspec.RunSpec`
(never a caller-chosen label); execution, deduplication, parallel
fan-out, persistent caching and instrumentation live in
:class:`~repro.exec.executor.Executor`.  The harness drivers and the CLI
all submit their runs through one shared executor, obtained from
:func:`get_default_executor` unless a caller passes its own.

The module-level default starts life serial (``jobs=1``) and memory-only
— importing the library never spawns processes or writes to disk.  The
CLI upgrades it (``--jobs``, ``--cache-dir``) via
:func:`set_default_executor`.

Fault tolerance: a :class:`~repro.exec.policy.RetryPolicy` governs
retries, per-attempt timeouts and strict-vs-degraded failure handling;
exhausted specs surface as :class:`~repro.exec.policy.FailedRun` holes
(or :class:`~repro.exec.policy.SpecExhausted` in strict mode).  Every
recovery path is exercisable deterministically via ``REPRO_FAULTS``
(:mod:`repro.exec.faults`).

Durability: multi-spec batches are backed by a crash-safe write-ahead
journal (:mod:`repro.exec.journal`) when a journal directory is
configured, ``--resume`` replays it, SIGINT/SIGTERM shut down
gracefully through :class:`~repro.exec.shutdown.ShutdownManager`, and
``python -m repro.exec fsck`` verifies store integrity.
"""

from __future__ import annotations

from typing import Optional

from repro.exec.executor import Executor
from repro.exec.faults import (
    FaultPlan,
    active_plan,
    parse_fault_spec,
    set_active_plan,
)
from repro.exec.journal import (
    JournalState,
    SweepJournal,
    read_state,
    scan_journals,
    sweep_identity,
)
from repro.exec.policy import (
    ExecutionError,
    FailedRun,
    RetryPolicy,
    SpecExhausted,
    SpecTimeout,
)
from repro.exec.runspec import RunSpec
from repro.exec.shutdown import (
    SHUTDOWN,
    ShutdownManager,
    SweepInterrupted,
)
from repro.exec.store import FsckReport, ResultStore, default_cache_dir
from repro.exec.telemetry import RunRecord, Telemetry

__all__ = [
    "ExecutionError",
    "Executor",
    "FailedRun",
    "FaultPlan",
    "FsckReport",
    "JournalState",
    "ResultStore",
    "RetryPolicy",
    "RunRecord",
    "RunSpec",
    "SHUTDOWN",
    "ShutdownManager",
    "SpecExhausted",
    "SpecTimeout",
    "SweepInterrupted",
    "SweepJournal",
    "Telemetry",
    "active_plan",
    "default_cache_dir",
    "get_default_executor",
    "parse_fault_spec",
    "read_state",
    "reset_default_executor",
    "scan_journals",
    "set_active_plan",
    "set_default_executor",
    "sweep_identity",
]

_default_executor: Optional[Executor] = None


def get_default_executor() -> Executor:
    """The process-wide shared executor (created on first use)."""
    global _default_executor
    if _default_executor is None:
        _default_executor = Executor(jobs=1)
    return _default_executor


def set_default_executor(executor: Executor) -> Executor:
    """Install ``executor`` as the process-wide default; returns it."""
    global _default_executor
    _default_executor = executor
    return executor


def reset_default_executor() -> None:
    """Drop the default executor (and its memo); tests use this."""
    global _default_executor
    _default_executor = None
