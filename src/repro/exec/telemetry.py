"""Executor instrumentation: where every result came from, and how fast.

The executor records one :class:`RunRecord` per *resolved* spec — whether
it was simulated, answered from the in-process memo, or read from the
on-disk store — plus batch wall-clock time.  ``summary_line()`` is the
one-line accounting the CLI prints after ``python -m repro all``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: Result provenance values.
SOURCE_SIMULATED = "simulated"
SOURCE_MEMO = "memo"
SOURCE_STORE = "store"
SOURCE_FAILED = "failed"   # every attempt failed; resolved to a FailedRun
SOURCE_JOURNAL = "journal"  # --resume served it from the sweep journal


@dataclass(frozen=True)
class RunRecord:
    """Provenance and cost of one resolved spec."""

    spec_hash: str
    benchmark: str
    mechanism: str
    source: str            # one of the SOURCE_* values
    seconds: float = 0.0   # simulation wall time (0 for cache answers)


@dataclass
class Telemetry:
    """Counters accumulated across an executor's lifetime."""

    records: List[RunRecord] = field(default_factory=list)
    results_returned: int = 0   # includes in-batch duplicates
    deduped: int = 0            # duplicate specs folded within batches
    batches: int = 0
    wall_time: float = 0.0      # total batch wall-clock, seconds
    # -- fault tolerance (see repro.exec.policy / repro.exec.faults) ----------
    retries: int = 0            # re-attempts after a failed/hung attempt
    failures: int = 0           # specs that exhausted every attempt
    timeouts: int = 0           # attempts killed or reported by the watchdog
    pool_rebuilds: int = 0      # process pools rebuilt after breaking
    store_corrupt: int = 0      # defective store entries read as misses
    # -- fleet service (see repro.serve) --------------------------------------
    leased: int = 0             # specs this client's submission enqueued
    shared: int = 0             # specs answered by another client's in-flight work
    shed: int = 0               # overloaded refusals absorbed before admission
    quarantined: int = 0        # holes resolved by a poison-quarantine record
    expired: int = 0            # holes resolved by a deadline-expiry record
    # -- mid-run checkpointing (see repro.exec.checkpoint) --------------------
    checkpoints: int = 0        # mid-run snapshots cut to disk
    resumed_from_ckpt: int = 0  # attempts that resumed from a snapshot

    # -- recording ------------------------------------------------------------

    def record(self, record: RunRecord) -> None:
        self.records.append(record)

    def record_batch(self, n_specs: int, n_unique: int, seconds: float) -> None:
        self.batches += 1
        self.results_returned += n_specs
        self.deduped += n_specs - n_unique
        self.wall_time += seconds

    # -- accounting -----------------------------------------------------------

    def _count(self, source: str) -> int:
        return sum(1 for r in self.records if r.source == source)

    @property
    def simulated(self) -> int:
        return self._count(SOURCE_SIMULATED)

    @property
    def memo_hits(self) -> int:
        return self._count(SOURCE_MEMO)

    @property
    def store_hits(self) -> int:
        return self._count(SOURCE_STORE)

    @property
    def failed(self) -> int:
        return self._count(SOURCE_FAILED)

    @property
    def journal_served(self) -> int:
        """Specs a resumed run answered from the sweep journal — a
        finished result re-read from the store without re-dispatch, or
        a persisted FailedRun hole served instead of re-running an
        exhausted spec."""
        return self._count(SOURCE_JOURNAL)

    @property
    def cache_hits(self) -> int:
        """Everything answered without simulating (memo + store + dedupe)."""
        return self.memo_hits + self.store_hits + self.deduped

    @property
    def sim_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def summary_line(self) -> str:
        """One-line accounting, rendered through the obs metrics registry.

        ``repro.obs.metrics.executor_summary_line`` harvests the counters
        into the default registry and formats the exact line this method
        has always printed — one code path for ``--jobs`` batches and
        single runs alike.  (Imported here, not at module top, so the
        executor package stays importable without ``repro.obs``.)
        """
        from repro.obs.metrics import executor_summary_line

        return executor_summary_line(self)
