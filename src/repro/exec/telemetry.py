"""Executor instrumentation: where every result came from, and how fast.

The executor records one :class:`RunRecord` per *resolved* spec — whether
it was simulated, answered from the in-process memo, or read from the
on-disk store — plus batch wall-clock time.  ``summary_line()`` is the
one-line accounting the CLI prints after ``python -m repro all``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: Result provenance values.
SOURCE_SIMULATED = "simulated"
SOURCE_MEMO = "memo"
SOURCE_STORE = "store"


@dataclass(frozen=True)
class RunRecord:
    """Provenance and cost of one resolved spec."""

    spec_hash: str
    benchmark: str
    mechanism: str
    source: str            # one of the SOURCE_* values
    seconds: float = 0.0   # simulation wall time (0 for cache answers)


@dataclass
class Telemetry:
    """Counters accumulated across an executor's lifetime."""

    records: List[RunRecord] = field(default_factory=list)
    results_returned: int = 0   # includes in-batch duplicates
    deduped: int = 0            # duplicate specs folded within batches
    batches: int = 0
    wall_time: float = 0.0      # total batch wall-clock, seconds

    # -- recording ------------------------------------------------------------

    def record(self, record: RunRecord) -> None:
        self.records.append(record)

    def record_batch(self, n_specs: int, n_unique: int, seconds: float) -> None:
        self.batches += 1
        self.results_returned += n_specs
        self.deduped += n_specs - n_unique
        self.wall_time += seconds

    # -- accounting -----------------------------------------------------------

    def _count(self, source: str) -> int:
        return sum(1 for r in self.records if r.source == source)

    @property
    def simulated(self) -> int:
        return self._count(SOURCE_SIMULATED)

    @property
    def memo_hits(self) -> int:
        return self._count(SOURCE_MEMO)

    @property
    def store_hits(self) -> int:
        return self._count(SOURCE_STORE)

    @property
    def cache_hits(self) -> int:
        """Everything answered without simulating (memo + store + dedupe)."""
        return self.memo_hits + self.store_hits + self.deduped

    @property
    def sim_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def summary_line(self) -> str:
        parts = [
            f"{self.results_returned} results",
            f"{self.simulated} simulated",
            f"{self.cache_hits} cache hits "
            f"({self.memo_hits} memo, {self.store_hits} store, "
            f"{self.deduped} deduped)",
            f"wall {self.wall_time:.2f}s",
        ]
        if self.simulated:
            parts.append(f"avg {self.sim_seconds / self.simulated:.3f}s/sim")
        return "executor: " + ", ".join(parts)
