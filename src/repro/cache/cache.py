"""Set-associative cache with MSHRs, ports and a stalling tag pipeline.

This is the MicroLib cache model of Section 2.2.  The four behaviours that
distinguish it from SimpleScalar's cache — and that the paper shows account
for most of the 6.8% average IPC difference — are all implemented and all
switchable via ``precise`` / ``infinite_mshr``:

1. the MSHR has finite capacity (8 entries x 4 merged reads);
2. the tag pipeline can stall (a second miss to an in-flight line whose
   merge budget is spent, and the one-cycle MSHR-allocation bubble, both
   delay subsequent requests);
3. back-pressure reaches the LSQ (a stalled pipeline pushes every later
   request's grant time out, which the core observes);
4. refills consume real ports (with ``ports=2``, a refill cycle admits only
   one demand access).

A *mechanism* (see :mod:`repro.mechanisms.base`) may be attached to a cache;
the cache invokes its hooks at well-defined points: ``probe`` on a miss
(victim-cache-style side structures), ``on_access`` after every lookup,
``on_miss`` after a genuine miss, ``on_refill`` when a fill completes (with
the victim, for correlation learners), ``on_evict`` when a victim is
discarded (return ``True`` to capture the line and its writeback duty).
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.core.config import CacheConfig
from repro.kernel.module import Component
from repro.kernel.resources import MultiPortResource, PipelinedResource
from repro.cache.mshr import MSHRFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mechanisms.base import Mechanism


class CacheLine:
    """One resident line.  ``ready`` > now means the fill is still in flight."""

    __slots__ = ("tag", "dirty", "prefetched", "ready", "last_touch", "birth")

    def __init__(self, tag: int, ready: int, prefetched: bool = False):
        self.tag = tag
        self.dirty = False
        self.prefetched = prefetched
        self.ready = ready
        self.last_touch = ready
        self.birth = ready


# Fetch callback signature: (byte_addr, time, pc, is_prefetch) -> ready time.
FetchFn = Callable[[int, int, int, bool], int]
# Writeback callback signature: (byte_addr, time) -> None.
WritebackFn = Callable[[int, int], None]


class Cache(Component):
    """A single cache level (L1 data or unified L2)."""

    def __init__(
        self,
        config: CacheConfig,
        precise: bool = True,
        infinite_mshr: bool = False,
        name: Optional[str] = None,
        parent: Optional[Component] = None,
    ):
        super().__init__(name or config.name, parent)
        self.config = config
        self.precise = precise
        line = config.line_size
        if line & (line - 1):
            raise ValueError(f"line size must be a power of two, got {line}")
        self.line_bits = line.bit_length() - 1
        self.n_sets = config.n_sets
        self._set_mask = self.n_sets - 1
        self._sets: List[List[CacheLine]] = [[] for _ in range(self.n_sets)]
        self.ports = MultiPortResource(config.ports)
        self.pipeline = PipelinedResource(1)
        mshr_capacity = None if infinite_mshr else config.mshr_entries
        self.mshr = MSHRFile(mshr_capacity, config.mshr_reads)
        self.mechanism: Optional["Mechanism"] = None
        self._mech_suspended = False  # instruction fill in progress
        self.fetch_next: Optional[FetchFn] = None
        self.writeback_next: Optional[WritebackFn] = None

        self.st_reads = self.add_stat("reads")
        self.st_writes = self.add_stat("writes")
        self.st_read_misses = self.add_stat("read_misses")
        self.st_write_misses = self.add_stat("write_misses")
        self.st_writebacks = self.add_stat("writebacks")
        self.st_evictions = self.add_stat("evictions")
        self.st_prefetch_fills = self.add_stat("prefetch_fills")
        self.st_useful_prefetches = self.add_stat(
            "useful_prefetches", "demand hits on prefetched lines"
        )
        self.st_aux_hits = self.add_stat(
            "aux_hits", "misses satisfied by an attached side structure"
        )

    # -- address helpers -----------------------------------------------------

    def block_of(self, addr: int) -> int:
        return addr >> self.line_bits

    def addr_of(self, block: int) -> int:
        return block << self.line_bits

    def _set_index(self, block: int) -> int:
        return block & self._set_mask

    # -- lookup without side effects ------------------------------------------

    def peek(self, addr: int) -> Optional[CacheLine]:
        """Return the resident line for ``addr`` without touching LRU state."""
        block = self.block_of(addr)
        tag = block >> 0
        for line in self._sets[self._set_index(block)]:
            if line.tag == tag:
                return line
        return None

    def contains(self, addr: int) -> bool:
        return self.peek(addr) is not None

    def in_flight(self, addr: int, time: int) -> bool:
        """True when a fill for ``addr``'s block is pending in the MSHR."""
        return self.mshr.occupancy(time) > 0 and (
            self.mshr._entries.get(self.block_of(addr)) is not None
        )

    # -- the access path -------------------------------------------------------

    def access(self, pc: int, addr: int, time: int, is_write: bool) -> int:
        """Perform a demand access; return the cycle the data is available.

        For writes the returned time is when the line is owned and dirty;
        the core does not wait on it (write buffer) but the traffic is real.
        """
        block = self.block_of(addr)
        set_idx = self._set_index(block)
        if self.precise:
            t = self.pipeline.acquire(time)
            t = self.ports.acquire(t)
        else:
            t = self.ports.acquire(time)
        if is_write:
            self.st_writes.add()
        else:
            self.st_reads.add()

        lines = self._sets[set_idx]
        # Instruction-side traffic (pc == -1) shares the unified L2 but is
        # invisible to the attached *data*-cache mechanism, as in the
        # original study's wrappers.
        mech = self.mechanism if pc != -1 else None
        for i, line in enumerate(lines):
            if line.tag == block:
                if i:
                    del lines[i]
                    lines.insert(0, line)
                was_prefetched = line.prefetched
                if was_prefetched:
                    line.prefetched = False
                    self.st_useful_prefetches.add()
                line.last_touch = t
                if is_write:
                    line.dirty = True
                ready = t + self.config.latency
                if line.ready > ready:
                    ready = line.ready
                if mech is not None:
                    mech.on_access(pc, block, True, was_prefetched, t)
                return ready

        # Miss.  Give the mechanism's side structure a chance first.
        if is_write:
            self.st_write_misses.add()
        else:
            self.st_read_misses.add()
        if mech is not None:
            mech.on_access(pc, block, False, False, t)
            probe = mech.probe(block, t)
            if probe is not None:
                self.st_aux_hits.add()
                ready = t + self.config.latency + probe.latency
                line = self._install(block, ready, t, prefetched=False)
                line.dirty = probe.dirty or is_write
                return ready

        # In-flight fill for this block?
        rejects_before = self.mshr.merge_rejects
        merged_ready = self.mshr.lookup(block, t)
        if merged_ready is not None:
            if self.precise and self.mshr.merge_rejects > rejects_before:
                # A same-line miss past the merge budget stalls the cache
                # until the fill returns (Section 2.2, first bullet).
                self.pipeline.stall_until(merged_ready)
            ready = max(merged_ready, t + self.config.latency)
            # The merged read sees the line once filled; mark dirty on write.
            filled = self.peek(addr)
            if filled is not None and is_write:
                filled.dirty = True
            return ready

        # Genuine miss: allocate an MSHR (may stall when full) and fetch.
        alloc_t = self.mshr.allocate_time(t)
        if self.precise:
            if alloc_t > t:
                self.pipeline.stall_until(alloc_t)
            # "upon receiving a request the MSHR is not available for one
            # cycle" — the allocation bubble.
            self.pipeline.stall_until(alloc_t + 1)
        if self.fetch_next is None:
            raise RuntimeError(f"{self.path}: no next level bound")
        fill_ready = self.fetch_next(
            self.addr_of(block), alloc_t + self.config.latency, pc, False
        )
        self.mshr.insert(block, fill_ready)
        if pc == -1:
            self._mech_suspended = True
        try:
            line = self._install(block, fill_ready, alloc_t, prefetched=False)
        finally:
            self._mech_suspended = False
        if is_write:
            line.dirty = True
        if mech is not None:
            mech.on_miss(pc, block, alloc_t)
        return fill_ready

    # -- fills ---------------------------------------------------------------

    def can_accept_prefetch(self, time: int) -> bool:
        """True when an MSHR entry is free for a prefetch fill at ``time``.

        Checked *before* the prefetch pays for bus and DRAM bandwidth: a
        real prefetcher arbitrates for an MSHR at issue, not at fill.
        """
        return (
            self.mshr.capacity is None
            or self.mshr.occupancy(time) < self.mshr.capacity
        )

    def insert_prefetch(self, addr: int, ready: int, time: int) -> bool:
        """Install a prefetched line (fill completes at ``ready``).

        Returns False (and does nothing) when the block is already resident,
        or when every MSHR is busy with demand misses — a real machine drops
        the prefetch rather than stall for it.  (With the SimpleScalar-style
        infinite MSHR, prefetches are never dropped — one of the ways the
        imprecise model flatters prefetchers, Figure 9.)
        """
        block = self.block_of(addr)
        for line in self._sets[self._set_index(block)]:
            if line.tag == block:
                return False
        if (
            self.mshr.capacity is not None
            and self.mshr.occupancy(time) >= self.mshr.capacity
        ):
            return False
        self.mshr.insert(block, ready)
        self.st_prefetch_fills.add()
        self._install(block, ready, time, prefetched=True)
        return True

    def _install(self, block: int, ready: int, time: int, prefetched: bool) -> CacheLine:
        """Insert ``block`` at MRU, evicting the LRU victim if needed."""
        set_idx = self._set_index(block)
        lines = self._sets[set_idx]
        victim_block = None
        mechanism = None if self._mech_suspended else self.mechanism
        if len(lines) >= self.config.assoc:
            victim = lines.pop()
            victim_block = victim.tag
            self.st_evictions.add()
            captured = False
            if mechanism is not None:
                live = (ready - victim.last_touch) < self._liveness_window()
                captured = mechanism.on_evict(
                    victim.tag, victim.dirty, live, ready
                )
            if victim.dirty and not captured:
                self.st_writebacks.add()
                if self.writeback_next is not None:
                    self.writeback_next(self.addr_of(victim.tag), ready)
        if self.precise:
            # The refill consumes a real port cycle when it arrives.
            self.ports.acquire(ready)
        line = CacheLine(block, ready, prefetched)
        lines.insert(0, line)
        if mechanism is not None:
            mechanism.on_refill(block, victim_block, ready, prefetched)
        return line

    def _liveness_window(self) -> int:
        """Window (cycles) within which an evicted line counts as "live"."""
        return 1023  # matches the TK threshold of Table 3

    # -- maintenance -----------------------------------------------------------

    def evict_block(self, block: int, time: int) -> bool:
        """Evict ``block`` now (with writeback if dirty); True if resident.

        Used by timekeeping-style mechanisms that reclaim a predicted-dead
        line's frame for a prefetch instead of displacing a live LRU victim.
        """
        lines = self._sets[self._set_index(block)]
        for i, line in enumerate(lines):
            if line.tag == block:
                del lines[i]
                self.st_evictions.add()
                captured = False
                if self.mechanism is not None:
                    captured = self.mechanism.on_evict(
                        block, line.dirty, False, time
                    )
                if line.dirty and not captured:
                    self.st_writebacks.add()
                    if self.writeback_next is not None:
                        self.writeback_next(self.addr_of(block), time)
                return True
        return False

    def invalidate(self, addr: int) -> None:
        """Drop the line for ``addr`` if resident (no writeback)."""
        block = self.block_of(addr)
        lines = self._sets[self._set_index(block)]
        for i, line in enumerate(lines):
            if line.tag == block:
                del lines[i]
                return

    def resident_blocks(self) -> List[int]:
        """All resident block numbers (test/debug helper)."""
        return [line.tag for lines in self._sets for line in lines]

    @property
    def miss_rate(self) -> float:
        accesses = self.st_reads.value + self.st_writes.value
        if not accesses:
            return 0.0
        misses = self.st_read_misses.value + self.st_write_misses.value
        return misses / accesses

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]
        self.ports.reset()
        self.pipeline.reset()
        self.mshr.reset()
        self.reset_stats()
