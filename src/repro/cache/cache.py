"""Set-associative cache with MSHRs, ports and a stalling tag pipeline.

This is the MicroLib cache model of Section 2.2.  The four behaviours that
distinguish it from SimpleScalar's cache — and that the paper shows account
for most of the 6.8% average IPC difference — are all implemented and all
switchable via ``precise`` / ``infinite_mshr``:

1. the MSHR has finite capacity (8 entries x 4 merged reads);
2. the tag pipeline can stall (a second miss to an in-flight line whose
   merge budget is spent, and the one-cycle MSHR-allocation bubble, both
   delay subsequent requests);
3. back-pressure reaches the LSQ (a stalled pipeline pushes every later
   request's grant time out, which the core observes);
4. refills consume real ports (with ``ports=2``, a refill cycle admits only
   one demand access).

A *mechanism* (see :mod:`repro.mechanisms.base`) may be attached to a cache;
the cache invokes its hooks at well-defined points: ``probe`` on a miss
(victim-cache-style side structures), ``on_access`` after every lookup,
``on_miss`` after a genuine miss, ``on_refill`` when a fill completes (with
the victim, for correlation learners), ``on_evict`` when a victim is
discarded (return ``True`` to capture the line and its writeback duty).

Tag-store layout
----------------
Line metadata lives in four flat parallel lists indexed by
``set * assoc + way`` — ``_tags`` (block number, ``-1`` invalid),
``_ready``, ``_touch`` and ``_flags`` (bit 0 dirty, bit 1 prefetched) —
instead of per-line objects.  Within a set's slice, valid ways are packed
at the front in MRU→LRU order, so the hit scan is one C-level
``list.index`` over the slice and an LRU promotion is a slice rotation.
:class:`CacheLine` is a write-through *view* of one slot, which keeps the
``peek``/``access``/``insert_prefetch``/``evict_block`` API (and every
mechanism built on it) unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.core.config import CacheConfig
from repro.hotpath import hotpath
from repro.kernel.module import Component
from repro.kernel.resources import MultiPortResource, PipelinedResource
from repro.kernel.state import snapshot_fields
from repro.cache.mshr import MSHRFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mechanisms.base import Mechanism

#: ``_flags`` bits.
DIRTY = 1
PREFETCHED = 2

#: ``_tags`` sentinel for an empty way.
INVALID = -1


class CacheLine:
    """Write-through view of one resident line in the flat tag store.

    ``ready`` > now means the fill is still in flight.  The view reads and
    writes the cache's parallel metadata lists directly, so mechanisms that
    mutate a peeked line (e.g. eager writeback clearing ``dirty``) behave
    exactly as they did with per-line objects.  Views are positional: use
    them promptly, before another access reorders the set.
    """

    __slots__ = ("_cache", "_slot")

    def __init__(self, cache: "Cache", slot: int) -> None:
        self._cache = cache
        self._slot = slot

    @property
    def tag(self) -> int:
        return self._cache._tags[self._slot]

    @property
    def ready(self) -> int:
        return self._cache._ready[self._slot]

    @ready.setter
    def ready(self, value: int) -> None:
        self._cache._ready[self._slot] = value

    @property
    def last_touch(self) -> int:
        return self._cache._touch[self._slot]

    @last_touch.setter
    def last_touch(self, value: int) -> None:
        self._cache._touch[self._slot] = value

    @property
    def dirty(self) -> bool:
        return bool(self._cache._flags[self._slot] & DIRTY)

    @dirty.setter
    def dirty(self, value: bool) -> None:
        flags = self._cache._flags
        if value:
            flags[self._slot] |= DIRTY
        else:
            flags[self._slot] &= ~DIRTY

    @property
    def prefetched(self) -> bool:
        return bool(self._cache._flags[self._slot] & PREFETCHED)

    @prefetched.setter
    def prefetched(self, value: bool) -> None:
        flags = self._cache._flags
        if value:
            flags[self._slot] |= PREFETCHED
        else:
            flags[self._slot] &= ~PREFETCHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CacheLine tag={self.tag} ready={self.ready} "
                f"dirty={self.dirty} prefetched={self.prefetched}>")


# Fetch callback signature: (byte_addr, time, pc, is_prefetch) -> ready time.
FetchFn = Callable[[int, int, int, bool], int]
# Writeback callback signature: (byte_addr, time) -> None.
WritebackFn = Callable[[int, int], None]


class Cache(Component):
    """A single cache level (L1 data or unified L2)."""

    #: The flat metadata lists are the run state; ports/pipeline/mshr
    #: snapshot themselves (composite handling in :meth:`snapshot`) and
    #: the mechanism is snapshotted by the hierarchy, never per cache.
    SNAPSHOT_FIELDS = ("_tags", "_ready", "_touch", "_flags",
                       "ports", "pipeline", "mshr")
    SNAPSHOT_EXEMPT = ("config", "precise", "line_bits", "n_sets", "assoc",
                       "_set_mask", "mechanism", "_mech_suspended",
                       "fetch_next", "writeback_next")

    def __init__(
        self,
        config: CacheConfig,
        precise: bool = True,
        infinite_mshr: bool = False,
        name: Optional[str] = None,
        parent: Optional[Component] = None,
    ):
        super().__init__(name or config.name, parent)
        self.config = config
        self.precise = precise
        line = config.line_size
        if line & (line - 1):
            raise ValueError(f"line size must be a power of two, got {line}")
        self.line_bits = line.bit_length() - 1
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self._set_mask = self.n_sets - 1
        n_slots = self.n_sets * self.assoc
        self._tags: List[int] = [INVALID] * n_slots
        self._ready: List[int] = [0] * n_slots
        self._touch: List[int] = [0] * n_slots
        self._flags: List[int] = [0] * n_slots
        self.ports = MultiPortResource(config.ports)
        self.pipeline = PipelinedResource(1)
        mshr_capacity = None if infinite_mshr else config.mshr_entries
        self.mshr = MSHRFile(mshr_capacity, config.mshr_reads)
        self.mechanism: Optional["Mechanism"] = None
        self._mech_suspended = False  # instruction fill in progress
        self.fetch_next: Optional[FetchFn] = None
        self.writeback_next: Optional[WritebackFn] = None

        self.st_reads = self.add_stat("reads")
        self.st_writes = self.add_stat("writes")
        self.st_read_misses = self.add_stat("read_misses")
        self.st_write_misses = self.add_stat("write_misses")
        self.st_writebacks = self.add_stat("writebacks")
        self.st_evictions = self.add_stat("evictions")
        self.st_prefetch_fills = self.add_stat("prefetch_fills")
        self.st_useful_prefetches = self.add_stat(
            "useful_prefetches", "demand hits on prefetched lines"
        )
        self.st_aux_hits = self.add_stat(
            "aux_hits", "misses satisfied by an attached side structure"
        )

    # -- address helpers -----------------------------------------------------

    def block_of(self, addr: int) -> int:
        return addr >> self.line_bits

    def addr_of(self, block: int) -> int:
        return block << self.line_bits

    def _set_index(self, block: int) -> int:
        return block & self._set_mask

    # -- lookup without side effects ------------------------------------------

    def _find(self, block: int) -> int:
        """Slot index of ``block``'s line, or -1 when not resident."""
        base = (block & self._set_mask) * self.assoc
        try:
            return self._tags.index(block, base, base + self.assoc)
        except ValueError:
            return -1

    def peek(self, addr: int) -> Optional[CacheLine]:
        """Return the resident line for ``addr`` without touching LRU state."""
        slot = self._find(addr >> self.line_bits)
        if slot < 0:
            return None
        return CacheLine(self, slot)

    def contains(self, addr: int) -> bool:
        return self._find(addr >> self.line_bits) >= 0

    def in_flight(self, addr: int, time: int) -> bool:
        """True when a fill for ``addr``'s block is pending in the MSHR."""
        return self.mshr.occupancy(time) > 0 and (
            self.mshr._entries.get(self.block_of(addr)) is not None
        )

    # -- the access path -------------------------------------------------------

    @hotpath
    def access(self, pc: int, addr: int, time: int, is_write: bool) -> int:
        """Perform a demand access; return the cycle the data is available.

        For writes the returned time is when the line is owned and dirty;
        the core does not wait on it (write buffer) but the traffic is real.
        """
        block = addr >> self.line_bits
        assoc = self.assoc
        base = (block & self._set_mask) * assoc
        if self.precise:
            t = self.pipeline.acquire(time)
            t = self.ports.acquire(t)
        else:
            t = self.ports.acquire(time)
        if is_write:
            self.st_writes.value += 1
        else:
            self.st_reads.value += 1

        tags = self._tags
        # Instruction-side traffic (pc == -1) shares the unified L2 but is
        # invisible to the attached *data*-cache mechanism, as in the
        # original study's wrappers.
        mech = self.mechanism if pc != -1 else None
        # simlint: allow[SIM703] list.index raising ValueError IS the probe; an LBYL scan would be O(assoc) in Python
        try:
            slot = tags.index(block, base, base + assoc)
        except ValueError:
            slot = -1
        if slot >= 0:
            ready_arr = self._ready
            touch = self._touch
            flags = self._flags
            if slot != base:
                # Promote to MRU: rotate the set's slice one slot right.
                line_ready = ready_arr[slot]
                line_flags = flags[slot]
                tags[base + 1:slot + 1] = tags[base:slot]
                tags[base] = block
                ready_arr[base + 1:slot + 1] = ready_arr[base:slot]
                ready_arr[base] = line_ready
                touch[base + 1:slot + 1] = touch[base:slot]
                flags[base + 1:slot + 1] = flags[base:slot]
                flags[base] = line_flags
            else:
                line_ready = ready_arr[base]
                line_flags = flags[base]
            was_prefetched = line_flags & PREFETCHED
            if was_prefetched:
                line_flags &= ~PREFETCHED
                self.st_useful_prefetches.value += 1
            if is_write:
                line_flags |= DIRTY
            flags[base] = line_flags
            touch[base] = t
            ready = t + self.config.latency
            if line_ready > ready:
                ready = line_ready
            if mech is not None:
                mech.on_access(pc, block, True, bool(was_prefetched), t)
            return ready

        # Miss.  Give the mechanism's side structure a chance first.
        if is_write:
            self.st_write_misses.value += 1
        else:
            self.st_read_misses.value += 1
        if mech is not None:
            mech.on_access(pc, block, False, False, t)
            probe = mech.probe(block, t)
            if probe is not None:
                self.st_aux_hits.value += 1
                ready = t + self.config.latency + probe.latency
                line = self._install(block, ready, t, prefetched=False)
                line.dirty = probe.dirty or is_write
                return ready

        # In-flight fill for this block?
        rejects_before = self.mshr.merge_rejects
        merged_ready = self.mshr.lookup(block, t)
        if merged_ready is not None:
            if self.precise and self.mshr.merge_rejects > rejects_before:
                # A same-line miss past the merge budget stalls the cache
                # until the fill returns (Section 2.2, first bullet).
                self.pipeline.stall_until(merged_ready)
            ready = max(merged_ready, t + self.config.latency)
            # The merged read sees the line once filled; mark dirty on write.
            if is_write:
                filled = self._find(block)
                if filled >= 0:
                    self._flags[filled] |= DIRTY
            return ready

        # Genuine miss: allocate an MSHR (may stall when full) and fetch.
        alloc_t = self.mshr.allocate_time(t)
        if self.precise:
            if alloc_t > t:
                self.pipeline.stall_until(alloc_t)
            # "upon receiving a request the MSHR is not available for one
            # cycle" — the allocation bubble.
            self.pipeline.stall_until(alloc_t + 1)
        if self.fetch_next is None:
            raise RuntimeError(f"{self.path}: no next level bound")
        fill_ready = self.fetch_next(
            block << self.line_bits, alloc_t + self.config.latency, pc, False
        )
        self.mshr.insert(block, fill_ready)
        if pc == -1:
            self._mech_suspended = True
        # simlint: allow[SIM703] miss path only; the suspension flag must clear even if a hook raises
        try:
            line = self._install(block, fill_ready, alloc_t, prefetched=False)
        finally:
            self._mech_suspended = False
        if is_write:
            line.dirty = True
        if mech is not None:
            mech.on_miss(pc, block, alloc_t)
        return fill_ready

    # -- fills ---------------------------------------------------------------

    def can_accept_prefetch(self, time: int) -> bool:
        """True when an MSHR entry is free for a prefetch fill at ``time``.

        Checked *before* the prefetch pays for bus and DRAM bandwidth: a
        real prefetcher arbitrates for an MSHR at issue, not at fill.
        """
        return (
            self.mshr.capacity is None
            or self.mshr.occupancy(time) < self.mshr.capacity
        )

    @hotpath
    def insert_prefetch(self, addr: int, ready: int, time: int) -> bool:
        """Install a prefetched line (fill completes at ``ready``).

        Returns False (and does nothing) when the block is already resident,
        or when every MSHR is busy with demand misses — a real machine drops
        the prefetch rather than stall for it.  (With the SimpleScalar-style
        infinite MSHR, prefetches are never dropped — one of the ways the
        imprecise model flatters prefetchers, Figure 9.)
        """
        block = addr >> self.line_bits
        if self._find(block) >= 0:
            return False
        if (
            self.mshr.capacity is not None
            and self.mshr.occupancy(time) >= self.mshr.capacity
        ):
            return False
        self.mshr.insert(block, ready)
        self.st_prefetch_fills.value += 1
        self._install(block, ready, time, prefetched=True)
        return True

    @hotpath
    def _install(self, block: int, ready: int, time: int, prefetched: bool) -> CacheLine:
        """Insert ``block`` at MRU, evicting the LRU victim if needed."""
        assoc = self.assoc
        base = (block & self._set_mask) * assoc
        limit = base + assoc
        last = limit - 1
        tags = self._tags
        ready_arr = self._ready
        touch = self._touch
        flags = self._flags
        victim_block = None
        mechanism = None if self._mech_suspended else self.mechanism
        if tags[last] != INVALID:
            # Set full: the LRU way (packed last) is the victim.  Remove it
            # before the hooks run, exactly as the list model popped it.
            victim_tag = tags[last]
            victim_dirty = flags[last] & DIRTY
            victim_touch = touch[last]
            tags[last] = INVALID
            end = last
            victim_block = victim_tag
            self.st_evictions.value += 1
            captured = False
            if mechanism is not None:
                live = (ready - victim_touch) < self._liveness_window()
                captured = mechanism.on_evict(
                    victim_tag, bool(victim_dirty), live, ready
                )
            if victim_dirty and not captured:
                self.st_writebacks.value += 1
                if self.writeback_next is not None:
                    self.writeback_next(victim_tag << self.line_bits, ready)
        else:
            end = tags.index(INVALID, base, limit)
        if self.precise:
            # The refill consumes a real port cycle when it arrives.
            self.ports.acquire(ready)
        if end != base:
            # Shift the set's valid ways one slot toward LRU.
            tags[base + 1:end + 1] = tags[base:end]
            ready_arr[base + 1:end + 1] = ready_arr[base:end]
            touch[base + 1:end + 1] = touch[base:end]
            flags[base + 1:end + 1] = flags[base:end]
        tags[base] = block
        ready_arr[base] = ready
        touch[base] = ready
        flags[base] = PREFETCHED if prefetched else 0
        if mechanism is not None:
            mechanism.on_refill(block, victim_block, ready, prefetched)
        return CacheLine(self, base)

    def _liveness_window(self) -> int:
        """Window (cycles) within which an evicted line counts as "live"."""
        return 1023  # matches the TK threshold of Table 3

    # -- maintenance -----------------------------------------------------------

    def _remove(self, slot: int) -> None:
        """Drop the line at ``slot``, keeping the set's valid ways packed."""
        assoc = self.assoc
        limit = (slot // assoc) * assoc + assoc
        last = limit - 1
        for arr in (self._tags, self._ready, self._touch, self._flags):
            arr[slot:last] = arr[slot + 1:limit]
        self._tags[last] = INVALID
        self._flags[last] = 0

    def evict_block(self, block: int, time: int) -> bool:
        """Evict ``block`` now (with writeback if dirty); True if resident.

        Used by timekeeping-style mechanisms that reclaim a predicted-dead
        line's frame for a prefetch instead of displacing a live LRU victim.
        """
        slot = self._find(block)
        if slot < 0:
            return False
        dirty = self._flags[slot] & DIRTY
        self._remove(slot)
        self.st_evictions.value += 1
        captured = False
        if self.mechanism is not None:
            captured = self.mechanism.on_evict(block, bool(dirty), False, time)
        if dirty and not captured:
            self.st_writebacks.value += 1
            if self.writeback_next is not None:
                self.writeback_next(block << self.line_bits, time)
        return True

    def invalidate(self, addr: int) -> None:
        """Drop the line for ``addr`` if resident (no writeback)."""
        slot = self._find(addr >> self.line_bits)
        if slot >= 0:
            self._remove(slot)

    def resident_blocks(self) -> List[int]:
        """All resident block numbers (test/debug helper)."""
        return [tag for tag in self._tags if tag != INVALID]

    @property
    def _sets(self) -> List[List[CacheLine]]:
        """Per-set line views, MRU→LRU (test/debug compatibility helper)."""
        tags = self._tags
        assoc = self.assoc
        return [
            [
                CacheLine(self, slot)
                for slot in range(base, base + assoc)
                if tags[slot] != INVALID
            ]
            for base in range(0, self.n_sets * assoc, assoc)
        ]

    @property
    def miss_rate(self) -> float:
        accesses = self.st_reads.value + self.st_writes.value
        if not accesses:
            return 0.0
        misses = self.st_read_misses.value + self.st_write_misses.value
        return misses / accesses

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "arrays": snapshot_fields(
                self, ("_tags", "_ready", "_touch", "_flags")),
            "ports": self.ports.snapshot(),
            "pipeline": self.pipeline.snapshot(),
            "mshr": self.mshr.snapshot(),
            "stats": self.snapshot_stats(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        arrays = state["arrays"]
        # Spliced in place: the fast path binds these lists by identity
        # (same contract as :meth:`reset`).
        self._tags[:] = arrays["_tags"]
        self._ready[:] = arrays["_ready"]
        self._touch[:] = arrays["_touch"]
        self._flags[:] = arrays["_flags"]
        self.ports.restore(state["ports"])
        self.pipeline.restore(state["pipeline"])
        self.mshr.restore(state["mshr"])
        self.restore_stats(state["stats"])

    def reset(self) -> None:
        n_slots = self.n_sets * self.assoc
        # In-place so long-lived references to the metadata lists (e.g. the
        # trace-speculation guards in repro.cpu.fastpath) stay valid.
        self._tags[:] = [INVALID] * n_slots
        self._ready[:] = [0] * n_slots
        self._touch[:] = [0] * n_slots
        self._flags[:] = [0] * n_slots
        self.ports.reset()
        self.pipeline.reset()
        self.mshr.reset()
        self.reset_stats()
