"""Miss Status Holding Registers (the miss address file).

SimpleScalar's MSHR "has unlimited capacity" (Section 2.2); the MicroLib
model gives it the Table 1 limits: 8 entries, each able to merge 4 reads.
An entry is occupied from the cycle the miss is issued until its refill
completes.  When all entries are busy, the next miss stalls until the
earliest in-flight refill returns — and that stall propagates backwards into
the cache pipeline and the LSQ.

``capacity=None`` gives the SimpleScalar behaviour (never stalls, unlimited
merging).
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

from repro.kernel.state import restore_fields, snapshot_fields


class MSHRFile:
    """Tracks in-flight line fills keyed by block address."""

    SNAPSHOT_FIELDS = ("_entries", "_completions", "merges", "merge_rejects",
                       "full_stalls")
    SNAPSHOT_EXEMPT = ("capacity", "reads_per_entry")

    def __init__(self, capacity: Optional[int], reads_per_entry: int = 4):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        if reads_per_entry < 1:
            raise ValueError(f"reads_per_entry must be >= 1, got {reads_per_entry}")
        self.capacity = capacity
        self.reads_per_entry = reads_per_entry
        # block -> [ready_time, merged_reads]
        self._entries: Dict[int, List[int]] = {}
        self._completions: List[Tuple[int, int]] = []  # (ready_time, block) heap
        self.merges = 0
        self.merge_rejects = 0
        self.full_stalls = 0

    def _expire(self, time: int) -> None:
        """Drop entries whose refill completed at or before ``time``."""
        while self._completions and self._completions[0][0] <= time:
            ready, block = heapq.heappop(self._completions)
            entry = self._entries.get(block)
            if entry is not None and entry[0] == ready:
                del self._entries[block]

    def occupancy(self, time: int) -> int:
        """Number of entries still in flight at ``time``."""
        self._expire(time)
        return len(self._entries)

    def lookup(self, block: int, time: int) -> Optional[int]:
        """If ``block`` is already in flight, try to merge.

        Returns the in-flight refill's ready time when the read merges, or
        ``None`` when there is no live entry.  When the entry exists but its
        merge budget is spent the read cannot merge; it still completes with
        the refill, but only after stalling the pipeline — the caller
        handles that via :attr:`merge_rejects`.
        """
        self._expire(time)
        entry = self._entries.get(block)
        if entry is None:
            return None
        if self.capacity is not None and entry[1] >= self.reads_per_entry:
            self.merge_rejects += 1
            return entry[0]
        entry[1] += 1
        self.merges += 1
        return entry[0]

    def allocate_time(self, time: int) -> int:
        """Earliest cycle a new entry can be allocated at/after ``time``."""
        if self.capacity is None:
            return time
        self._expire(time)
        if len(self._entries) < self.capacity:
            return time
        # Wait for the earliest live completion.
        while self._completions:
            ready, block = self._completions[0]
            entry = self._entries.get(block)
            if entry is None or entry[0] != ready:
                heapq.heappop(self._completions)
                continue
            self.full_stalls += 1
            return max(time, ready)
        return time  # pragma: no cover - entries imply completions

    def insert(self, block: int, ready_time: int) -> None:
        """Record a newly issued miss completing at ``ready_time``."""
        self._entries[block] = [ready_time, 1]
        heapq.heappush(self._completions, (ready_time, block))

    def snapshot(self) -> Dict[str, Any]:
        return snapshot_fields(self)

    def restore(self, state: Dict[str, Any]) -> None:
        # ``_completions`` restores as a list splice: the saved heap order
        # is the heap order (deepcopy of a valid heap is a valid heap).
        restore_fields(self, state)

    def reset(self) -> None:
        self._entries.clear()
        self._completions.clear()
        self.merges = 0
        self.merge_rejects = 0
        self.full_stalls = 0
