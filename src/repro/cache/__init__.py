"""The MicroLib data-cache substrate.

This package is the heart of the reproduction: a cache model precise enough
to exhibit the contention phenomena the paper shows SimpleScalar's cache
hides (Section 2.2):

* finite MSHRs (8 entries, 4 merged reads each) that stall the cache — and
  through it the LSQ — when exhausted;
* a tag pipeline that stalls on structural hazards;
* strict port accounting, including refills consuming ports;
* writeback + allocate-on-write policies with real dirty-victim traffic.

Setting ``precise=False`` (or building from
``MachineConfig.with_simplescalar_cache()``) disables all four refinements,
reproducing the imprecise SimpleScalar behaviour for the Figure 1 and
Figure 9 experiments.
"""

from repro.cache.cache import Cache, CacheLine
from repro.cache.mshr import MSHRFile
from repro.cache.hierarchy import AccessResult, MemoryHierarchy

__all__ = ["AccessResult", "Cache", "CacheLine", "MemoryHierarchy", "MSHRFile"]
