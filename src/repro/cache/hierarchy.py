"""The two-level memory hierarchy of Table 1.

Wires together the L1 data cache, the unified L2, the 32-byte L1/L2 bus, the
64-byte 400 MHz memory bus, and one of the three main-memory models.  At
most one mechanism is attached per run (as in the paper's study); it lands
on L1 or L2 according to its ``LEVEL``.

Prefetch draining
-----------------
Mechanisms emit prefetches into their bounded request queue.  The hierarchy
drains the queue at every demand access: each queued prefetch seizes the
appropriate bus (L1/L2 bus for L1 mechanisms, the memory bus for L2
mechanisms) in FIFO order with demand traffic.  This is exactly the
contention channel through which the paper's SDRAM experiment (Figure 8)
punishes bandwidth-hungry prefetchers, and through which an over-large
prefetch queue "will seize the bus whenever it is available, increasing the
probability that normal miss requests are delayed" (Section 3.4, the
``lucas``/TCP discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.cache.cache import Cache
from repro.core.config import (
    MEMORY_CONSTANT,
    MEMORY_SDRAM,
    MEMORY_SDRAM_FAST,
    MachineConfig,
    sdram70_config,
)
from repro.dram.constant import ConstantLatencyMemory
from repro.dram.controller import SDRAMController
from repro.kernel.engine import Simulator
from repro.kernel.module import Component
from repro.kernel.resources import Bus
from repro.mechanisms.base import Mechanism
from repro.obs.tracing import TRACER
from repro.sanitize import SANITIZE, sanitize_failure


@dataclass(frozen=True)
class AccessResult:
    """Where a probe would be satisfied (debug/teaching helper)."""

    level: str  # "l1" | "l2" | "memory"


class MemoryHierarchy(Component):
    """L1D + unified L2 + buses + main memory, with one optional mechanism."""

    #: Snapshot protocol declarations.  The composite sub-models are run
    #: state (each serialized through its own snapshot in :meth:`snapshot`);
    #: the exempt names are frozen config, hoisted aliases of mechanism
    #: queues, and the sanitizer fingerprint.
    SNAPSHOT_FIELDS = ("sim", "l1d", "l1i", "l2", "l1_l2_bus", "l1_l2_cmd",
                       "memory_bus", "memory_cmd", "memory", "mechanism",
                       "image")
    SNAPSHOT_EXEMPT = ("config", "_mech_queues", "_config_fingerprint")

    def __init__(
        self,
        config: MachineConfig,
        mechanism: Optional[Mechanism] = None,
        image=None,
        name: str = "memory",
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        self.image = image
        self.sim = Simulator()

        self.l1d = Cache(
            config.l1d,
            precise=config.precise_cache,
            infinite_mshr=config.infinite_mshr,
            parent=self,
        )
        self.l1i = Cache(
            config.l1i,
            precise=config.precise_cache,
            infinite_mshr=config.infinite_mshr,
            parent=self,
        )
        self.l2 = Cache(
            config.l2,
            precise=config.precise_cache,
            infinite_mshr=config.infinite_mshr,
            parent=self,
        )
        # Split-transaction buses: a one-cycle command/address channel and a
        # width-limited data-return channel.  An in-flight refill therefore
        # blocks the *data* channel only, not new requests.
        self.l1_l2_bus = Bus(config.l1_l2_bus.cpu_cycles_per_transfer)
        self.l1_l2_cmd = Bus(1)
        self.memory_bus = Bus(config.memory_bus.cpu_cycles_per_transfer)
        self.memory_cmd = Bus(1)

        if config.memory_model == MEMORY_SDRAM:
            self.memory = SDRAMController(
                config.sdram, scheme=config.dram_interleave,
                page_policy=config.dram_page_policy, parent=self,
            )
        elif config.memory_model == MEMORY_SDRAM_FAST:
            self.memory = SDRAMController(
                sdram70_config(), scheme=config.dram_interleave,
                page_policy=config.dram_page_policy, parent=self,
            )
        elif config.memory_model == MEMORY_CONSTANT:
            self.memory = ConstantLatencyMemory(
                config.constant_memory_latency, parent=self
            )
        else:
            raise ValueError(f"unknown memory model {config.memory_model!r}")

        self.l1d.fetch_next = self._fetch_from_l2
        self.l1d.writeback_next = self._writeback_to_l2
        # Instructions are read-only: fills from the unified L2, no
        # writebacks, and no mechanism slot (the study is data caches).
        self.l1i.fetch_next = self._fetch_from_l2
        self.l1i.writeback_next = None
        self.l2.fetch_next = self._fetch_from_memory
        self.l2.writeback_next = self._writeback_to_memory

        self.mechanism = mechanism
        if mechanism is not None:
            target = self.l1d if mechanism.LEVEL == "l1" else self.l2
            mechanism.attach(target, self)
            if mechanism.parent is None:
                self.children.append(mechanism)
                mechanism.parent = self
        # Raw deques behind the mechanism's prefetch queues.  They are
        # created at mechanism construction and never replaced, so advance()
        # can gate the whole drain call on their truthiness instead of
        # paying a generator walk per demand access.
        self._mech_queues = (
            tuple(q._queue for q in mechanism.iter_queues())
            if mechanism is not None else ()
        )

        self.st_loads = self.add_stat("loads")
        self.st_stores = self.add_stat("stores")
        self.st_prefetches_issued = self.add_stat("prefetches_issued")
        self.st_prefetches_redundant = self.add_stat(
            "prefetches_redundant", "prefetches for already-resident lines"
        )
        # Bus accounting mirrored into StatCounters at end of run (see
        # finalize_stats) so stats_report — and through it the obs metrics
        # pipeline's occupancy rates — sees the bus traffic.
        self.st_l1_l2_bus_busy = self.add_stat(
            "l1_l2_bus_busy_cycles", "cycles the L1/L2 data bus was seized"
        )
        self.st_l1_l2_bus_transfers = self.add_stat("l1_l2_bus_transfers")
        self.st_memory_bus_busy = self.add_stat(
            "memory_bus_busy_cycles", "cycles the memory data bus was seized"
        )
        self.st_memory_bus_transfers = self.add_stat("memory_bus_transfers")

        #: Sanitizer freeze fingerprint: the frozen MachineConfig's repr is
        #: deterministic, so any post-construction mutation (a back door
        #: around frozen=True, e.g. object.__setattr__) is detectable at
        #: run end by sanitize_verify().
        self._config_fingerprint = repr(config) if SANITIZE else None

    # -- demand interface (called by the core) ------------------------------------

    def load(self, pc: int, addr: int, time: int) -> int:
        """Issue a load; return the cycle its data is ready."""
        self.advance(time)
        self.st_loads.value += 1
        return self.l1d.access(pc, addr, time, is_write=False)

    #: Sentinel PC marking instruction-side traffic: the data-cache
    #: mechanisms of the study never see it (their wrappers sat on the
    #: data path), even though the unified L2 carries it.
    INSTRUCTION_PC = -1

    def fetch_instruction(self, pc: int, time: int) -> int:
        """Front-end fetch of the line holding ``pc``; return ready cycle."""
        self.advance(time)
        return self.l1i.access(self.INSTRUCTION_PC, pc, time, is_write=False)

    def store(self, pc: int, addr: int, value: int, time: int) -> int:
        """Issue a store (post-commit, from the write buffer)."""
        self.advance(time)
        self.st_stores.value += 1
        if self.image is not None:
            self.image.write(addr, value)
        return self.l1d.access(pc, addr, time, is_write=True)

    def advance(self, time: int) -> None:
        """Bring deferred work (decay events, queued prefetches) up to ``time``.

        This runs once per demand access, so it reads the kernel's bucket
        heap directly (``run_until`` skips cancelled buckets itself) and
        only enters the drain routine when some prefetch queue is
        non-empty.
        """
        sim = self.sim
        times = sim._times
        if times and times[0] <= time:
            sim.run_until(time)
        elif time > sim.now:
            sim.now = time
        for queue in self._mech_queues:
            if queue:
                self._drain_prefetches(self.mechanism, time)
                break

    # -- inter-level plumbing ---------------------------------------------------

    def _fetch_from_l2(self, addr: int, time: int, pc: int, is_prefetch: bool) -> int:
        """L1 miss: command to L2, L2 access, data back over the data bus."""
        tracing = TRACER.enabled
        if tracing:
            TRACER.begin("cache.l1_fill", cat="cache")
        _, request_at = self.l1_l2_cmd.acquire(time)
        ready = self.l2.access(pc, addr, request_at, is_write=False)
        _, arrival = self.l1_l2_bus.acquire(ready)
        if tracing:
            TRACER.end(cycles=arrival - time, prefetch=is_prefetch)
        return arrival

    def _writeback_to_l2(self, addr: int, time: int) -> None:
        """Dirty L1 victim: one data-bus transfer, then an L2 write access."""
        _, arrival = self.l1_l2_bus.acquire(time)
        self.l2.access(0, addr, arrival, is_write=True)

    def _fetch_from_memory(self, addr: int, time: int, pc: int, is_prefetch: bool) -> int:
        """L2 miss: command over the memory bus, DRAM, data return transfer."""
        tracing = TRACER.enabled
        if tracing:
            TRACER.begin("cache.l2_fill", cat="cache")
        if isinstance(self.memory, ConstantLatencyMemory):
            # SimpleScalar-style memory: fixed latency, infinite bandwidth.
            arrival = self.memory.access(addr, time)
        else:
            _, request_at = self.memory_cmd.acquire(time)
            ready = self.memory.access(addr, request_at)
            _, arrival = self.memory_bus.acquire(ready)
        if tracing:
            TRACER.end(cycles=arrival - time, prefetch=is_prefetch)
        return arrival

    def _writeback_to_memory(self, addr: int, time: int) -> None:
        if isinstance(self.memory, ConstantLatencyMemory):
            self.memory.access(addr, time, is_write=True)
            return
        _, arrival = self.memory_bus.acquire(time)
        self.memory.access(addr, arrival, is_write=True)

    # -- prefetch issue ------------------------------------------------------------

    def _drain_prefetches(self, mech: Mechanism, time: int) -> None:
        """Issue queued prefetches while the target bus is idle.

        Prefetches wait in their queue "until the bus is idle and a request
        can be sent" (Section 3.4): an L2 prefetch issues only while the
        memory controller has comfortable headroom (under three quarters of
        its 32 request slots in flight), at most a few per drain.  A
        congested memory system leaves the remainder queued for the next
        drain; a full queue meanwhile drops new requests.
        """
        throttle = None
        if (
            self.config.prefetch_throttle
            and mech.LEVEL == "l2"
            and isinstance(self.memory, SDRAMController)
        ):
            limit = (self.memory.config.queue_entries * 3) // 4
            throttle = lambda: self.memory.occupancy(time) >= limit
        budget = 4
        drained = 0
        for queue in mech.iter_queues():
            if SANITIZE and len(queue) > queue.capacity:
                raise sanitize_failure(
                    f"{mech.path}: prefetch queue holds {len(queue)} entries, "
                    f"capacity {queue.capacity} (Table 3 bound violated)"
                )
            while queue and budget:
                if throttle is not None and throttle():
                    budget = 0
                    break
                budget -= 1
                request = queue.pop()
                drained += 1
                if mech.LEVEL == "l2":
                    self._issue_l2_prefetch(mech, request.addr, time, request.depth)
                else:
                    self._issue_l1_prefetch(mech, request.addr, time, request.depth)
        if drained and TRACER.enabled:
            TRACER.instant("cache.prefetch_drain", cat="cache",
                           drained=drained, cycle=time)

    def _issue_l2_prefetch(self, mech: Mechanism, addr: int, time: int, depth: int) -> None:
        if self.l2.contains(addr) or not self.l2.can_accept_prefetch(time):
            self.st_prefetches_redundant.add()
            return
        ready = self._fetch_from_memory(addr, time, 0, True)
        if mech.deliver_prefetch(addr, ready, time):
            self.st_prefetches_issued.add()
            mech.on_prefetch_fill(self.l2.block_of(addr), depth, ready)
        else:
            self.st_prefetches_redundant.add()

    def _issue_l1_prefetch(self, mech: Mechanism, addr: int, time: int, depth: int) -> None:
        if self.l1d.contains(addr):
            self.st_prefetches_redundant.add()
            return
        if mech.PREFETCH_FROM_L2_ONLY and not self.l2.contains(addr):
            self.st_prefetches_redundant.add()
            return
        if not mech.USES_PREFETCH_BUFFER and not self.l1d.can_accept_prefetch(time):
            self.st_prefetches_redundant.add()
            return
        ready = self._fetch_from_l2(addr, time, 0, True)
        if mech.deliver_prefetch(addr, ready, time):
            self.st_prefetches_issued.add()
            mech.on_prefetch_fill(self.l1d.block_of(addr), depth, ready)
        else:
            self.st_prefetches_redundant.add()

    # -- end-of-run accounting -----------------------------------------------------

    def finalize_stats(self) -> None:
        """Mirror bus counters into StatCounters before reporting.

        The buses are deliberately bare (no Component machinery on the
        per-transfer path); run_trace calls this once at end of run so
        ``stats_report()`` — and the obs metrics pipeline's occupancy
        rates — still see the traffic.  Idempotent.
        """
        self.st_l1_l2_bus_busy.value = self.l1_l2_bus.busy_cycles
        self.st_l1_l2_bus_transfers.value = self.l1_l2_bus.transfers
        self.st_memory_bus_busy.value = self.memory_bus.busy_cycles
        self.st_memory_bus_transfers.value = self.memory_bus.transfers

    # -- checkpointing --------------------------------------------------------------

    #: The four buses, in a fixed serialization order.
    _BUS_NAMES = ("l1_l2_bus", "l1_l2_cmd", "memory_bus", "memory_cmd")

    def _event_owner_components(self):
        """Components whose bound methods may sit in the event queue.

        Only mechanisms schedule kernel events (decay checks, quiet-line
        checks), and a mechanism's subtree enumerates deterministically in
        construction order, so ``m<i>`` keys are stable across the save
        and restore processes.
        """
        if self.mechanism is None:
            return []
        return list(self.mechanism.walk())

    def snapshot(self) -> Dict[str, Any]:
        """Serialize every piece of run state into picklable primitives."""
        owner_keys = {
            id(comp): f"m{i}"
            for i, comp in enumerate(self._event_owner_components())
        }
        return {
            "sim": self.sim.snapshot(owner_keys),
            "l1d": self.l1d.snapshot(),
            "l1i": self.l1i.snapshot(),
            "l2": self.l2.snapshot(),
            "buses": {name: getattr(self, name).snapshot()
                      for name in self._BUS_NAMES},
            "memory": self.memory.snapshot(),
            "mechanism": (self.mechanism.snapshot()
                          if self.mechanism is not None else None),
            "image": self.image.snapshot() if self.image is not None else None,
            "stats": self.snapshot_stats(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`snapshot` into this (identically built) hierarchy.

        The mechanism restores before the event queue so re-bound events
        close over fully restored component state, though each event only
        runs at its scheduled cycle either way.
        """
        if state["mechanism"] is not None:
            self.mechanism.restore(state["mechanism"])
        owners = {
            f"m{i}": comp
            for i, comp in enumerate(self._event_owner_components())
        }
        self.sim.restore(state["sim"], owners)
        self.l1d.restore(state["l1d"])
        self.l1i.restore(state["l1i"])
        self.l2.restore(state["l2"])
        for name in self._BUS_NAMES:
            getattr(self, name).restore(state["buses"][name])
        self.memory.restore(state["memory"])
        if state["image"] is not None:
            self.image.restore(state["image"])
        self.restore_stats(state["stats"])

    # -- sanitizer -----------------------------------------------------------------

    def sanitize_verify(self) -> None:
        """End-of-run invariant sweep (no-op unless ``REPRO_SANITIZE=1``).

        Checks that the frozen config was never mutated behind the
        hierarchy's back, that the mechanism wiring is still reciprocal,
        and that every prefetch queue respects its declared capacity.
        """
        if self._config_fingerprint is None:
            return
        if repr(self.config) != self._config_fingerprint:
            raise sanitize_failure(
                "MachineConfig mutated after hierarchy construction; the "
                "RunSpec content hash no longer describes this run"
            )
        mech = self.mechanism
        if mech is not None:
            target = self.l1d if mech.LEVEL == "l1" else self.l2
            if mech.cache is not target or target.mechanism is not mech:
                raise sanitize_failure(
                    f"{mech.path}: attach wiring is not reciprocal with "
                    f"{target.path}"
                )
            for queue in mech.iter_queues():
                if len(queue) > queue.capacity:
                    raise sanitize_failure(
                        f"{mech.path}: prefetch queue holds {len(queue)} "
                        f"entries, capacity {queue.capacity}"
                    )

    # -- introspection -------------------------------------------------------------

    def classify(self, addr: int) -> AccessResult:
        """Which level currently holds ``addr`` (no state change)."""
        if self.l1d.contains(addr):
            return AccessResult("l1")
        if self.l2.contains(addr):
            return AccessResult("l2")
        return AccessResult("memory")

    def read_line_values(self, addr: int, line_size: int):
        """Words of the line containing ``addr`` from the functional image."""
        if self.image is None:
            return ()
        line_addr = addr & ~(line_size - 1)
        return self.image.read_line(line_addr, line_size)

    def reset(self) -> None:
        self.sim.reset()
        self.l1d.reset()
        self.l1i.reset()
        self.l2.reset()
        self.l1_l2_bus.reset()
        self.memory_bus.reset()
        self.memory.reset()
        self.reset_stats()
