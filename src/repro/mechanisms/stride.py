"""SP — Stride Prefetching (Chen & Baer 1992 formulation).  L2, Table 3:
512 PC entries, request queue 1.

A PC-indexed reference-prediction table records each load's last address and
last stride with a two-bit confidence state.  When a load's stride has been
confirmed (two consecutive accesses with the same delta), the next line
along the stride is prefetched.  The paper finds SP the *second best*
mechanism for raw performance and — because every miss induces exactly one
table lookup and at most one prefetch — the best overall once power and
cost are considered (Section 3.1: "SP seems like a clear winner").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.mechanisms.base import Mechanism, StructureSpec

# Two-bit confidence states of the reference prediction table.
_INITIAL, _TRANSIENT, _STEADY = 0, 1, 2


class StridePrefetcher(Mechanism):
    """Classic per-PC stride detection with a two-bit state machine."""

    LEVEL = "l2"
    ACRONYM = "SP"
    YEAR = 1992
    QUEUE_SIZE = 1
    PC_ENTRIES = 512
    SNAPSHOT_FIELDS = ("_table",)

    def __init__(self, name: Optional[str] = None, parent=None):
        super().__init__(name, parent)
        # pc -> [last_addr, stride, state], LRU-ordered, capped.
        self._table: "OrderedDict[int, List[int]]" = OrderedDict()

    def on_access(
        self, pc: int, block: int, hit: bool, was_prefetched: bool, time: int
    ) -> None:
        if pc == 0:  # writebacks and prefetch traffic carry no PC
            return
        addr = self.cache.addr_of(block)
        self.count_table_access()
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.PC_ENTRIES:
                self._table.popitem(last=False)
            self._table[pc] = [addr, 0, _INITIAL]
            return
        self._table.move_to_end(pc)
        last_addr, stride, state = entry
        delta = addr - last_addr
        if delta == 0:
            return
        if delta == stride:
            entry[0] = addr
            entry[2] = _STEADY
            self.emit_prefetch(addr + stride, time)
        else:
            entry[0] = addr
            entry[1] = delta
            entry[2] = _TRANSIENT if state == _INITIAL else _INITIAL

    def structures(self) -> List[StructureSpec]:
        # 512 entries x (tag + addr + stride + state) ~ 16 bytes.
        return [
            StructureSpec("sp_rpt", size_bytes=self.PC_ENTRIES * 16, assoc=1),
            StructureSpec("sp_request_queue", size_bytes=self.QUEUE_SIZE * 8),
        ]
