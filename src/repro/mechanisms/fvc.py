"""FVC — Frequent Value Cache (Zhang, Yang & Gupta, ASPLOS 2000).  L1,
Table 3: 1024 lines, 7 frequent values + the "unknown" code.

A victim-buffer-like structure that only admits lines whose words can be
*compressed*: each word is replaced by a 3-bit index into a table of the
seven most frequent program values (the eighth code meaning "not
compressible"); a line qualifies when enough of its words are frequent
values.  Because entries are compressed, 1024 lines fit in a fraction of
the SRAM a real victim cache of that reach would need.

The frequent-value table is learned online from the words of evicted lines
and frozen after a warm-up sample, following the dynamic variant of the
original paper.  The study's observation (Section 3.1) is that FVC, which
looked strong under a *miss-ratio* metric in its article, "seems to perform
less favorably in a full processor environment" — an IPC-vs-miss-ratio
methodology effect this reproduction shows as well.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import List, Optional, Tuple

from repro.mechanisms.base import Mechanism, ProbeResult, StructureSpec


class FrequentValueCache(Mechanism):
    """Compressed victim buffer admitting only value-compressible lines."""

    LEVEL = "l1"
    ACRONYM = "FVC"
    YEAR = 2000
    N_LINES = 1024
    N_FREQUENT = 7
    #: Fraction of a line's words that must be frequent values to qualify.
    COMPRESSIBLE_FRACTION = 0.75
    #: Words sampled before the frequent-value table freezes.
    WARMUP_SAMPLES = 4096
    SNAPSHOT_FIELDS = ("_entries", "_counts", "_sampled", "_frequent")

    def __init__(self, name: Optional[str] = None, parent=None):
        super().__init__(name, parent)
        self._entries: "OrderedDict[int, bool]" = OrderedDict()  # block -> dirty
        self._counts: Counter = Counter()
        self._sampled = 0
        self._frequent: Optional[frozenset] = None
        self.st_captures = self.add_stat("captures", "compressible victims stored")
        self.st_incompressible = self.add_stat(
            "incompressible", "victims rejected as not value-compressible"
        )

    # -- frequent-value learning ---------------------------------------------------

    def _observe(self, words: Tuple[int, ...]) -> None:
        if self._frequent is not None:
            return
        self._counts.update(words)
        self._sampled += len(words)
        if self._sampled >= self.WARMUP_SAMPLES:
            top = [value for value, _ in self._counts.most_common(self.N_FREQUENT)]
            self._frequent = frozenset(top)
            self._counts.clear()

    def frequent_values(self) -> frozenset:
        """The current frequent-value set (pre-freeze: best guess so far)."""
        if self._frequent is not None:
            return self._frequent
        return frozenset(
            value for value, _ in self._counts.most_common(self.N_FREQUENT)
        )

    def _compressible(self, words: Tuple[int, ...]) -> bool:
        if not words:
            return False
        frequent = self.frequent_values()
        if not frequent:
            return False
        hits = sum(1 for word in words if word in frequent)
        return hits >= len(words) * self.COMPRESSIBLE_FRACTION

    # -- hooks ----------------------------------------------------------------------

    def on_evict(self, block: int, dirty: bool, live: bool, time: int) -> bool:
        if self.hierarchy is None or self.hierarchy.image is None:
            return False
        line_size = self.cache.config.line_size
        words = self.hierarchy.read_line_values(
            self.cache.addr_of(block), line_size
        )
        self.count_table_access(len(words))
        self._observe(words)
        if not self._compressible(words):
            self.st_incompressible.add()
            return False
        if block in self._entries:
            self._entries[block] = self._entries[block] or dirty
            self._entries.move_to_end(block)
            return True
        while len(self._entries) >= self.N_LINES:
            old_block, old_dirty = self._entries.popitem(last=False)
            if old_dirty:
                self.cache.st_writebacks.add()
                if self.cache.writeback_next is not None:
                    self.cache.writeback_next(self.cache.addr_of(old_block), time)
        self._entries[block] = dirty
        self.st_captures.add()
        return True

    def probe(self, block: int, time: int) -> Optional[ProbeResult]:
        self.count_table_access()
        dirty = self._entries.pop(block, None)
        if dirty is None:
            return None
        self.st_probe_hits.add()
        # Decompression adds a cycle on top of the swap.
        return ProbeResult(latency=2, dirty=dirty)

    def __len__(self) -> int:
        return len(self._entries)

    def structures(self) -> List[StructureSpec]:
        line = self.cache.config.line_size if self.cache else 32
        words_per_line = line // 8
        # 3 bits per word plus a tag per line, and the tiny value table.
        compressed_line_bits = words_per_line * 3 + 32
        return [
            StructureSpec(
                "fvc_lines",
                size_bytes=self.N_LINES * compressed_line_bits // 8,
                assoc=8,
            ),
            StructureSpec("fvc_value_table", size_bytes=self.N_FREQUENT * 8),
        ]
