"""TK / TKVC — Timekeeping in the memory system (Hu, Kaxiras & Martonosi,
ISCA 2002).  L1.

Timekeeping techniques watch the *time* a cache line spends idle.  A line
untouched for more than a threshold (Table 3: 1023 cycles, observed with a
coarse 512-cycle refresh tick) is predicted dead.

**TK (prefetcher)** combines death prediction with an address-correlation
table (Table 3: 8 KB, 8-way) recording, per block, which block historically
replaced it.  When a resident line is predicted dead, the replacement
successor is prefetched *before* the demand miss arrives — a timely
prefetch into L1.  Request queue: 128 entries.

**TKVC (victim-cache filter)** uses the same liveness signal to decide
which victims deserve a slot in the 512-byte victim cache: lines evicted
while still "live" are probable conflict victims and are kept; dead lines
are bypassed.

The decay clock is implemented with deferred events on the hierarchy's
simulator: each refill/touch schedules a check ``threshold`` cycles out;
the check fires only if the line has genuinely been idle.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.hotpath import hotpath
from repro.mechanisms.base import Mechanism, StructureSpec
from repro.mechanisms.victim import VictimCache


class TimekeepingPrefetcher(Mechanism):
    """Dead-line prediction + replacement-correlation prefetch into L1."""

    LEVEL = "l1"
    ACRONYM = "TK"
    YEAR = 2002
    QUEUE_SIZE = 128
    #: TK hides L2 latency with timely L1 fills; a predicted successor not
    #: resident in L2 is not worth a DRAM round trip.
    PREFETCH_FROM_L2_ONLY = True
    #: The paper's Table 3 uses a 512-cycle refresh and a 1023-cycle death
    #: threshold for 500M-instruction traces.  Our traces are ~10^4 times
    #: shorter, so per-line inter-touch gaps (in cycles) are several times
    #: sparser; the same *semantics* — "dead after ~a few average reuse
    #: intervals" — requires a proportionally larger threshold, or every
    #: merely-sleepy hot line gets declared dead and evicted.
    REFRESH = 2048         # decay-counter tick, cycles
    THRESHOLD = 8191       # idle cycles after which a line is dead
    CORR_BYTES = 8 << 10   # address-correlation table size
    CORR_ASSOC = 8
    SNAPSHOT_FIELDS = ("_corr", "_last_touch", "_frame_of")
    SNAPSHOT_EXEMPT = Mechanism.SNAPSHOT_EXEMPT + (
        "reverse_engineered", "threshold")

    def __init__(
        self,
        name: Optional[str] = None,
        parent=None,
        reverse_engineered: bool = False,
    ):
        super().__init__(name, parent)
        #: The "reverse-engineered" variant models a plausible misreading of
        #: the article (Figure 2): the threshold is taken as the refresh
        #: interval and dead-line checks are not re-armed on touches.
        self.reverse_engineered = reverse_engineered
        self.threshold = self.REFRESH if reverse_engineered else self.THRESHOLD
        self._corr: "OrderedDict[int, int]" = OrderedDict()  # victim -> successor
        self._last_touch: Dict[int, int] = {}
        # successor block -> the dead block whose frame it should reuse
        self._frame_of: Dict[int, int] = {}
        self.st_dead_predictions = self.add_stat("dead_predictions")
        self.st_corr_entries = self.add_stat("corr_learned")

    @property
    def corr_capacity(self) -> int:
        return self.CORR_BYTES // 8

    def _quantize(self, time: int) -> int:
        return (time // self.REFRESH) * self.REFRESH

    # -- learning -----------------------------------------------------------------

    def on_refill(
        self, block: int, victim_block: Optional[int], time: int,
        prefetched: bool = False,
    ) -> None:
        if victim_block is not None:
            self.count_table_access()
            entry = self._corr.get(victim_block)
            if entry is None:
                if len(self._corr) >= self.corr_capacity:
                    self._corr.popitem(last=False)
                self._corr[victim_block] = [block, 1]
            else:
                self._corr.move_to_end(victim_block)
                if entry[0] == block:
                    entry[1] = min(entry[1] + 1, 3)
                else:
                    entry[1] -= 1
                    if entry[1] <= 0:
                        entry[0] = block
                        entry[1] = 1
            self.st_corr_entries.add()
        if prefetched:
            # Our own prefetch fills are not decay-tracked until a demand
            # touch proves them useful; tracking them would let dead
            # predictions regenerate prefetches forever, a feedback loop a
            # real TK's demand-driven counters do not have.
            return
        self._touch(block, time)

    def on_access(
        self, pc: int, block: int, hit: bool, was_prefetched: bool, time: int
    ) -> None:
        if hit:
            self._touch(block, time)

    def on_evict(self, block: int, dirty: bool, live: bool, time: int) -> bool:
        self._last_touch.pop(block, None)
        return False

    # -- decay machinery ------------------------------------------------------------

    @hotpath
    def _touch(self, block: int, time: int) -> None:
        quantized = time - time % self.REFRESH
        last_touch = self._last_touch
        prev = last_touch.get(block)
        if prev == quantized:
            # Same decay quantum as the previous touch: the pending check
            # for (block, quantized) already covers this touch (it fires at
            # quantized + threshold + 1, still in the future), so a second
            # identical event would only fire as a no-op.  Skipping it cuts
            # the kernel's event traffic for hot lines by an order of
            # magnitude without changing a single prediction.
            return
        last_touch[block] = quantized
        if self.hierarchy is None:
            return
        if prev is None or not self.reverse_engineered:
            self.hierarchy.sim.schedule(
                quantized + self.threshold + 1, self._check_dead, block, quantized
            )

    @hotpath
    def _check_dead(self, block: int, touch_seen: int) -> None:
        last = self._last_touch.get(block)
        if last is None or last != touch_seen:
            return  # evicted or touched since; the newer check covers it
        if not self.cache.contains(self.cache.addr_of(block)):
            self._last_touch.pop(block, None)
            return
        self.st_dead_predictions.add()
        self.count_table_access()
        entry = self._corr.get(block)
        # Only a *confirmed* replacement correlation (reinforced at least
        # once) is worth a prefetch and the dead frame's reuse: in a
        # direct-mapped L1 every insertion evicts the set's resident, so a
        # speculative fill must be likelier right than wrong.
        successor = entry[0] if entry is not None and entry[1] >= 2 else None
        if (
            successor is not None
            and successor != block
            and not self.cache.contains(self.cache.addr_of(successor))
        ):
            # The prefetch will reuse the dead line's frame, not an LRU
            # victim's: timekeeping prefetch never displaces live data.
            if len(self._frame_of) > 4096:
                self._frame_of.clear()  # entries orphaned by dropped prefetches
            self._frame_of[successor] = block
            self.emit_prefetch(
                self.cache.addr_of(successor), self.hierarchy.sim.now
            )
        # Line is dead: stop tracking until it is touched again.
        self._last_touch.pop(block, None)

    def deliver_prefetch(self, addr: int, ready: int, time: int) -> bool:
        block = self.cache.block_of(addr)
        dead = self._frame_of.pop(block, None)
        if dead is not None and dead != block:
            self.cache.evict_block(dead, time)
        return super().deliver_prefetch(addr, ready, time)

    def structures(self) -> List[StructureSpec]:
        n_lines = self.cache.config.n_lines if self.cache else 1024
        return [
            StructureSpec(
                "tk_correlation", size_bytes=self.CORR_BYTES, assoc=self.CORR_ASSOC
            ),
            StructureSpec("tk_decay_counters", size_bytes=n_lines // 2),
            StructureSpec("tk_request_queue", size_bytes=self.QUEUE_SIZE * 8),
        ]


class TimekeepingVictimCache(VictimCache):
    """Victim cache admitting only lines evicted while still live."""

    ACRONYM = "TKVC"
    YEAR = 2002
    SNAPSHOT_EXEMPT = Mechanism.SNAPSHOT_EXEMPT + ("reverse_engineered",)

    def __init__(
        self,
        name: Optional[str] = None,
        parent=None,
        reverse_engineered: bool = False,
    ):
        super().__init__(name, parent)
        #: The reverse-engineered variant inverts the filter's intent in a
        #: plausible way: it stores lines that were *dead* at eviction
        #: (reading "will be used again" as "has not been used recently").
        self.reverse_engineered = reverse_engineered
        self.st_bypassed = self.add_stat("bypassed", "victims not captured")

    def should_capture(self, live: bool) -> bool:
        capture = (not live) if self.reverse_engineered else live
        if not capture:
            self.st_bypassed.add()
        return capture

    def structures(self) -> List[StructureSpec]:
        specs = super().structures()
        n_lines = self.cache.config.n_lines if self.cache else 1024
        specs.append(StructureSpec("tkvc_decay_counters", size_bytes=n_lines // 2))
        return specs
