"""SB — Stream Buffers (Jouppi, ISCA 1990).  L1.  *Library extension.*

Not one of the paper's twelve mechanisms: stream buffers come from the same
Jouppi paper as the victim cache, and the MicroLib project's stated goal is
that researchers keep *populating the library* with additional models.
This module is that story enacted — a thirteenth mechanism written against
the same plug-in interface, compared with the same harness.

Four FIFO buffers, each four entries deep.  An L1 miss that matches no
buffer *head* allocates a new buffer (round-robin over the least recently
used) and starts prefetching the successive lines.  A miss that matches a
head pops it — the line moves into L1 with a one-cycle penalty — and the
buffer tops itself up from the next sequential line.  Only heads are
compared, as in the original design.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.mechanisms.base import Mechanism, ProbeResult, StructureSpec


class _Stream:
    __slots__ = ("entries", "next_block", "last_use")

    def __init__(self) -> None:
        self.entries: Deque[Tuple[int, int]] = deque()  # (block, ready)
        self.next_block: Optional[int] = None
        self.last_use = 0


class StreamBuffers(Mechanism):
    """Jouppi's sequential stream buffers in front of the L1."""

    LEVEL = "l1"
    ACRONYM = "SB"
    YEAR = 1990
    QUEUE_SIZE = 16
    USES_PREFETCH_BUFFER = True
    N_BUFFERS = 4
    DEPTH = 4
    #: ``_pending`` values alias ``_streams`` entries; both fields ride one
    #: deepcopy call in the generic snapshot, so the memo preserves the
    #: aliasing through the round trip.
    SNAPSHOT_FIELDS = ("_streams", "_pending")

    def __init__(self, name: Optional[str] = None, parent=None):
        super().__init__(name, parent)
        self._streams: List[_Stream] = [_Stream() for _ in range(self.N_BUFFERS)]
        # block -> stream awaiting that fill
        self._pending: Dict[int, _Stream] = {}
        self.st_allocations = self.add_stat("stream_allocations")
        self.st_head_hits = self.add_stat("head_hits")

    # -- stream management ------------------------------------------------------

    def _top_up(self, stream: _Stream, time: int) -> None:
        """Keep the stream DEPTH entries deep (counting in-flight fills)."""
        while (
            stream.next_block is not None
            and len(stream.entries) + self._in_flight(stream) < self.DEPTH
        ):
            block = stream.next_block
            stream.next_block = block + 1
            if self.cache.contains(self.cache.addr_of(block)):
                continue
            if len(self._pending) > 64:
                self._pending.clear()  # orphaned by dropped prefetches
            self._pending[block] = stream
            if not self.emit_prefetch(self.cache.addr_of(block), time):
                self._pending.pop(block, None)
                break

    def _in_flight(self, stream: _Stream) -> int:
        return sum(1 for s in self._pending.values() if s is stream)

    # -- hooks ----------------------------------------------------------------------

    def probe(self, block: int, time: int) -> Optional[ProbeResult]:
        self.count_table_access()
        for stream in self._streams:
            if stream.entries and stream.entries[0][0] == block:
                _, ready = stream.entries.popleft()
                stream.last_use = time
                self.st_head_hits.add()
                self.st_probe_hits.add()
                self._top_up(stream, time)
                extra = 1 if ready <= time else (ready - time)
                return ProbeResult(latency=extra, dirty=False)
        return None

    def on_miss(self, pc: int, block: int, time: int) -> None:
        # The probe already failed: allocate the LRU stream for this miss.
        stream = min(self._streams, key=lambda s: s.last_use)
        for pending_block in [b for b, s in self._pending.items() if s is stream]:
            del self._pending[pending_block]
        stream.entries.clear()
        stream.next_block = block + 1
        stream.last_use = time
        self.st_allocations.add()
        self._top_up(stream, time)

    def deliver_prefetch(self, addr: int, ready: int, time: int) -> bool:
        block = self.cache.block_of(addr)
        stream = self._pending.pop(block, None)
        if stream is None:
            return False
        stream.entries.append((block, ready))
        return True

    def structures(self) -> List[StructureSpec]:
        line = self.cache.config.line_size if self.cache else 32
        return [
            StructureSpec(
                "sb_buffers",
                size_bytes=self.N_BUFFERS * self.DEPTH * line,
                assoc=self.N_BUFFERS,
            ),
            StructureSpec("sb_request_queue", size_bytes=self.QUEUE_SIZE * 8),
        ]
