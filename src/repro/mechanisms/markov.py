"""Markov — Markov Prefetcher (Joseph & Grunwald, ISCA 1997).  L1,
Table 3: 1 MB prediction table, 4 predictions per entry, request queue 16,
128-line prefetch buffer.

Models the miss-address stream as a Markov chain: a prediction table maps a
miss address to the (up to four) addresses that most recently followed it.
On a miss, all recorded successors are prefetched — not into the cache, but
into a small fully-associative *prefetch buffer* probed in parallel with
L1, so wrong predictions never pollute the cache.

The paper's Section 3.2 highlights Markov as the benchmark-selection
cautionary tale: dreadful on average (rank 13 of 13 on all 26 benchmarks)
yet the outright winner on ``gzip`` and ``ammp``, whose miss sequences
repeat almost exactly; it "can perform well for up to 9-benchmark
selections".  Its megabyte-scale table also makes it the cost/power extreme
of Figure 5.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.mechanisms.base import Mechanism, ProbeResult, StructureSpec


class MarkovPrefetcher(Mechanism):
    """Miss-successor correlation with a dedicated prefetch buffer."""

    LEVEL = "l1"
    ACRONYM = "Markov"
    YEAR = 1997
    QUEUE_SIZE = 16
    USES_PREFETCH_BUFFER = True
    TABLE_BYTES = 1 << 20
    PREDICTIONS_PER_ENTRY = 4
    BUFFER_LINES = 128
    SNAPSHOT_FIELDS = ("_table", "_buffer", "_last_miss")

    def __init__(self, name: Optional[str] = None, parent=None):
        super().__init__(name, parent)
        # miss block -> MRU list of successor blocks (most recent first).
        self._table: "OrderedDict[int, List[int]]" = OrderedDict()
        # prefetch buffer: block -> fill-ready time.
        self._buffer: "OrderedDict[int, int]" = OrderedDict()
        self._last_miss: Optional[int] = None
        self.st_predictions = self.add_stat("predictions_made")
        self.st_buffer_hits = self.add_stat("buffer_hits")

    @property
    def table_capacity(self) -> int:
        # Entry: tag (8B) + 4 predictions (8B each) = 40 bytes.
        return self.TABLE_BYTES // (8 + 8 * self.PREDICTIONS_PER_ENTRY)

    # -- prediction -----------------------------------------------------------------

    def on_access(
        self, pc: int, block: int, hit: bool, was_prefetched: bool, time: int
    ) -> None:
        # Train on every L1 miss *event*, including misses the prefetch
        # buffer will satisfy — a covered miss still extends the Markov
        # chain, otherwise successful prediction would starve the trigger.
        if not hit:
            self._train(block, time)

    def on_miss(self, pc: int, block: int, time: int) -> None:
        pass  # handled in on_access so buffer hits train too

    def _train(self, block: int, time: int) -> None:
        self.count_table_access()
        previous = self._last_miss
        self._last_miss = block
        if previous is not None and previous != block:
            successors = self._table.get(previous)
            if successors is None:
                if len(self._table) >= self.table_capacity:
                    self._table.popitem(last=False)
                self._table[previous] = [block]
            else:
                self._table.move_to_end(previous)
                if block in successors:
                    successors.remove(block)
                successors.insert(0, block)
                del successors[self.PREDICTIONS_PER_ENTRY:]
        predictions = self._table.get(block)
        if predictions:
            self._table.move_to_end(block)
            self.count_table_access()
            for successor in predictions:
                addr = self.cache.addr_of(successor)
                if successor in self._buffer or self.cache.contains(addr):
                    continue
                self.st_predictions.add()
                self.emit_prefetch(addr, time)

    # -- the prefetch buffer -----------------------------------------------------------

    def deliver_prefetch(self, addr: int, ready: int, time: int) -> bool:
        block = self.cache.block_of(addr)
        if block in self._buffer:
            return False
        while len(self._buffer) >= self.BUFFER_LINES:
            self._buffer.popitem(last=False)
        self._buffer[block] = ready
        return True

    def probe(self, block: int, time: int) -> Optional[ProbeResult]:
        self.count_table_access()
        ready = self._buffer.pop(block, None)
        if ready is None:
            return None
        self.st_probe_hits.add()
        self.st_buffer_hits.add()
        # A late prefetch still saves part of the miss latency.
        extra = 1 if ready <= time else (ready - time)
        return ProbeResult(latency=extra, dirty=False)

    def buffer_blocks(self) -> List[int]:
        """Blocks currently in the prefetch buffer (test helper)."""
        return list(self._buffer)

    def structures(self) -> List[StructureSpec]:
        line = self.cache.config.line_size if self.cache else 32
        return [
            StructureSpec("markov_table", size_bytes=self.TABLE_BYTES, assoc=4),
            StructureSpec(
                "markov_buffer", size_bytes=self.BUFFER_LINES * line,
                assoc=self.BUFFER_LINES,
            ),
            StructureSpec("markov_request_queue", size_bytes=self.QUEUE_SIZE * 8),
        ]
