"""The reproduced data-cache mechanisms (Table 2 of the paper).

Twelve hardware optimizations published in ISCA/MICRO/ASPLOS/HPCA, plus the
baseline, all implemented against the uniform plug-in interface of
:class:`repro.mechanisms.base.Mechanism` with the Table 3 parameters:

========  =====================================  =====  ==========
Acronym   Mechanism                              Level  Published
========  =====================================  =====  ==========
TP        Tagged Prefetching                     L2     1982
VC        Victim Cache                           L1     1990
SP        Stride Prefetching                     L2     1992
Markov    Markov Prefetcher                      L1     1997
FVC       Frequent Value Cache                   L1     2000
DBCP      Dead-Block Correlating Prefetcher      L1     2001
TK        Timekeeping Prefetcher                 L1     2002
TKVC      Timekeeping Victim Cache               L1     2002
CDP       Content-Directed Data Prefetching      L2     2002
CDPSP     CDP + SP                               L2     2002
TCP       Tag Correlating Prefetching            L2     2003
GHB       Global History Buffer                  L2     2004
========  =====================================  =====  ==========

Use :func:`repro.mechanisms.registry.create` to instantiate by acronym, and
:data:`repro.mechanisms.registry.ALL_MECHANISMS` for the canonical study
order (chronological, as in the paper's figures).
"""

from repro.mechanisms.base import (
    Mechanism,
    PrefetchQueue,
    PrefetchRequest,
    ProbeResult,
    StructureSpec,
)
from repro.mechanisms.registry import (
    ALL_MECHANISMS,
    BASELINE,
    create,
    mechanism_info,
)

__all__ = [
    "ALL_MECHANISMS",
    "BASELINE",
    "Mechanism",
    "PrefetchQueue",
    "PrefetchRequest",
    "ProbeResult",
    "StructureSpec",
    "create",
    "mechanism_info",
]
