"""TCP — Tag Correlating Prefetching (Hu, Martonosi & Kaxiras, HPCA 2003).
L2, Table 3: THT 1024 sets direct-mapped holding the 2 previous tags,
PHT 8 KB / 256 sets / 8-way, request queue 128.

Per cache *set*, a tag-history table (THT) remembers the last two miss
tags; the pair indexes a pattern-history table (PHT) that predicts the tag
of the *next* miss in that set, which is prefetched at the same set index.
Tag sequences repeat across sets for regular programs, so correlating on
tags instead of full addresses keeps the tables tiny.

This mechanism carries the paper's **second-guessing** experiment
(Section 3.4, Figure 10): the article never says how prefetch requests
reach memory.  The ``queue_size`` parameter reproduces the two readings —
a 1-entry buffer (prefetches dropped whenever one is pending) versus the
128-entry buffer the authors eventually matched against the article's
numbers, which "always contains pending prefetch requests and will seize
the bus whenever it is available", hurting ``lucas``-like memory-bound
programs while helping others.

A ``reverse_engineered`` build models a plausible misreading for Figure 2:
the PHT is indexed by the raw tag pair without folding in the set index,
creating cross-set aliasing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.mechanisms.base import Mechanism, PrefetchQueue, StructureSpec


class TagCorrelatingPrefetcher(Mechanism):
    """Per-set tag-pair -> next-tag correlation prefetcher."""

    LEVEL = "l2"
    ACRONYM = "TCP"
    YEAR = 2003
    QUEUE_SIZE = 128
    THT_SETS = 1024
    PHT_BYTES = 8 << 10
    PHT_ASSOC = 8
    SNAPSHOT_FIELDS = ("_tht", "_pht")
    SNAPSHOT_EXEMPT = Mechanism.SNAPSHOT_EXEMPT + ("reverse_engineered",)

    def __init__(
        self,
        name: Optional[str] = None,
        parent=None,
        queue_size: Optional[int] = None,
        reverse_engineered: bool = False,
    ):
        super().__init__(name, parent)
        if queue_size is not None:
            if queue_size < 1:
                raise ValueError(f"queue_size must be >= 1, got {queue_size}")
            self.queue = PrefetchQueue(queue_size)
        self.reverse_engineered = reverse_engineered
        # THT: set index -> (tag_{-1}, tag_{-2}).
        self._tht: Dict[int, Tuple[int, int]] = {}
        # PHT: pattern key -> [predicted next tag, confidence], LRU-capped.
        # A pattern predicts only once confirmed (confidence >= 1): a
        # first-sighting guess is as likely to waste a DRAM access as not.
        self._pht: "OrderedDict[int, list]" = OrderedDict()
        self.st_predictions = self.add_stat("tag_predictions")

    @property
    def pht_capacity(self) -> int:
        return self.PHT_BYTES // 8

    def _set_and_tag(self, block: int) -> Tuple[int, int]:
        n_sets = self.cache.n_sets
        return block & (n_sets - 1), block >> (n_sets.bit_length() - 1)

    def _pattern_key(self, set_idx: int, tag1: int, tag2: int) -> int:
        key = (tag1 << 20) ^ tag2
        if not self.reverse_engineered:
            key = (key << 10) ^ set_idx % 1021
        return key

    def on_miss(self, pc: int, block: int, time: int) -> None:
        set_idx, tag = self._set_and_tag(block)
        tht_idx = set_idx % self.THT_SETS
        self.count_table_access()  # THT read
        history = self._tht.get(tht_idx)
        if history is not None:
            tag1, tag2 = history
            key = self._pattern_key(set_idx, tag1, tag2)
            self.count_table_access()  # PHT update
            entry = self._pht.get(key)
            if entry is None:
                if len(self._pht) >= self.pht_capacity:
                    self._pht.popitem(last=False)
                self._pht[key] = [tag, 0]
            else:
                self._pht.move_to_end(key)
                if entry[0] == tag:
                    entry[1] = min(entry[1] + 1, 3)
                else:
                    entry[1] -= 1
                    if entry[1] < 0:
                        entry[0] = tag
                        entry[1] = 0

            # Predict the *next* miss tag from the new most-recent pair.
            next_key = self._pattern_key(set_idx, tag, tag1)
            predicted = self._pht.get(next_key)
            self.count_table_access()  # PHT probe
            if predicted is not None and predicted[1] >= 1 and predicted[0] != tag:
                n_sets = self.cache.n_sets
                target_block = (predicted[0] << (n_sets.bit_length() - 1)) | set_idx
                target_addr = self.cache.addr_of(target_block)
                if not self.cache.contains(target_addr):
                    self.st_predictions.add()
                    self.emit_prefetch(target_addr, time)
            self._tht[tht_idx] = (tag, tag1)
        else:
            self._tht[tht_idx] = (tag, tag)

    def structures(self) -> List[StructureSpec]:
        queue_entries = self.queue.capacity if self.queue else self.QUEUE_SIZE
        return [
            StructureSpec("tcp_tht", size_bytes=self.THT_SETS * 8, assoc=1),
            StructureSpec("tcp_pht", size_bytes=self.PHT_BYTES, assoc=self.PHT_ASSOC),
            StructureSpec("tcp_request_queue", size_bytes=queue_entries * 8),
        ]
