"""Mechanism registry: instantiate any of Table 2's mechanisms by acronym.

The registry is the MicroLib "library index": experiment code asks for
mechanisms by acronym (optionally with variant keyword arguments, e.g.
``create("DBCP", variant="initial")`` or ``create("TCP", queue_size=1)``)
and never imports implementation modules directly.

``ALL_MECHANISMS`` follows the paper's figure/table column order
(chronological by publication): Base, TP, VC, SP, Markov, FVC, DBCP, TKVC,
TK, CDP, CDPSP, TCP, GHB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.mechanisms.base import Mechanism
from repro.mechanisms.cdp import ContentDirectedPrefetcher
from repro.mechanisms.cdpsp import CDPPlusSP
from repro.mechanisms.dbcp import DeadBlockCorrelatingPrefetcher
from repro.mechanisms.eagerwb import EagerWriteback
from repro.mechanisms.fvc import FrequentValueCache
from repro.mechanisms.ghb import GlobalHistoryBuffer
from repro.mechanisms.markov import MarkovPrefetcher
from repro.mechanisms.streambuf import StreamBuffers
from repro.mechanisms.stride import StridePrefetcher
from repro.mechanisms.tagged import TaggedPrefetcher
from repro.mechanisms.tcp import TagCorrelatingPrefetcher
from repro.mechanisms.timekeeping import (
    TimekeepingPrefetcher,
    TimekeepingVictimCache,
)
from repro.mechanisms.victim import VictimCache

BASELINE = "Base"

#: Paper column order (Table 6/7): baseline first, then chronological.
ALL_MECHANISMS: Tuple[str, ...] = (
    BASELINE, "TP", "VC", "SP", "Markov", "FVC", "DBCP", "TKVC", "TK",
    "CDP", "CDPSP", "TCP", "GHB",
)

#: Models added beyond the paper's twelve — the "populate the library"
#: goal of Section 4.  Not part of the reproduced figures/tables.
EXTENSIONS: Tuple[str, ...] = ("SB", "EW")


@dataclass(frozen=True)
class MechanismInfo:
    """Catalogue entry (Table 2 row)."""

    acronym: str
    level: str
    year: int
    description: str


_FACTORIES: Dict[str, Callable[..., Mechanism]] = {
    "TP": TaggedPrefetcher,
    "VC": VictimCache,
    "SP": StridePrefetcher,
    "Markov": MarkovPrefetcher,
    "FVC": FrequentValueCache,
    "DBCP": DeadBlockCorrelatingPrefetcher,
    "TKVC": TimekeepingVictimCache,
    "TK": TimekeepingPrefetcher,
    "CDP": ContentDirectedPrefetcher,
    "CDPSP": CDPPlusSP,
    "TCP": TagCorrelatingPrefetcher,
    "GHB": GlobalHistoryBuffer,
    "SB": StreamBuffers,
    "EW": EagerWriteback,
}

_INFO: Dict[str, MechanismInfo] = {
    BASELINE: MechanismInfo(BASELINE, "-", 0, "Table 1 caches, no mechanism"),
    "TP": MechanismInfo("TP", "l2", 1982, "prefetch next line on miss or on "
                        "hit to a prefetched line"),
    "VC": MechanismInfo("VC", "l1", 1990, "small fully associative cache for "
                        "evicted lines; absorbs conflict misses"),
    "SP": MechanismInfo("SP", "l2", 1992, "per-PC load stride detection and "
                        "prefetch"),
    "Markov": MechanismInfo("Markov", "l1", 1997, "miss-successor correlation "
                            "into a prefetch buffer"),
    "FVC": MechanismInfo("FVC", "l1", 2000, "compressed victim buffer for "
                         "frequent-value lines"),
    "DBCP": MechanismInfo("DBCP", "l1", 2001, "per-line PC-trace signatures "
                          "predicting death and the replacement block"),
    "TKVC": MechanismInfo("TKVC", "l1", 2002, "victim cache filtered by "
                          "timekeeping liveness"),
    "TK": MechanismInfo("TK", "l1", 2002, "decay-based dead-line prediction "
                        "with replacement-correlation prefetch"),
    "CDP": MechanismInfo("CDP", "l2", 2002, "scan fills for pointers and "
                         "prefetch them, depth <= 3"),
    "CDPSP": MechanismInfo("CDPSP", "l2", 2002, "CDP combined with SP"),
    "TCP": MechanismInfo("TCP", "l2", 2003, "per-set tag-pair correlation "
                         "prefetch"),
    "GHB": MechanismInfo("GHB", "l2", 2004, "global history buffer "
                         "delta-correlation, degree 4"),
    "SB": MechanismInfo("SB", "l1", 1990, "sequential stream buffers "
                        "(library extension, not in the paper's study)"),
    "EW": MechanismInfo("EW", "l1", 2000, "eager writeback of quiet dirty "
                        "lines (library extension; the paper excluded it "
                        "for lack of bandwidth-bound benchmarks)"),
}


def create(name: str, **kwargs) -> Optional[Mechanism]:
    """Instantiate mechanism ``name`` (``"Base"`` returns ``None``).

    Variant keyword arguments are forwarded to the implementation, e.g.
    ``create("DBCP", variant="initial")``, ``create("TCP", queue_size=1)``,
    ``create("TK", reverse_engineered=True)``.
    """
    if name == BASELINE:
        if kwargs:
            raise ValueError("the baseline takes no arguments")
        return None
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown mechanism {name!r}; known: {', '.join(ALL_MECHANISMS)}"
        ) from None
    return factory(**kwargs)


def mechanism_info(name: str) -> MechanismInfo:
    """Catalogue metadata for ``name`` (raises KeyError when unknown)."""
    return _INFO[name]
