"""VC — Victim Cache (Jouppi, 1990).  L1, Table 3: 512 bytes, fully assoc.

A small fully-associative buffer that catches lines evicted from the
direct-mapped L1: conflict misses that would otherwise pay an L2 round trip
are satisfied with a one-cycle swap.  With 32-byte L1 lines the 512-byte
budget holds 16 victims.

The victim cache *owns* captured lines: their writeback obligation moves
with them and is honoured only when the victim cache itself evicts a dirty
line (or never, if the line is swapped back into L1 first).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.mechanisms.base import Mechanism, ProbeResult, StructureSpec


class VictimCache(Mechanism):
    """Fully-associative victim buffer with LRU replacement."""

    LEVEL = "l1"
    ACRONYM = "VC"
    YEAR = 1990
    SIZE_BYTES = 512
    SNAPSHOT_FIELDS = ("_entries",)

    def __init__(self, name: Optional[str] = None, parent=None):
        super().__init__(name, parent)
        self._entries: "OrderedDict[int, bool]" = OrderedDict()  # block -> dirty
        self.st_captures = self.add_stat("captures", "victims stored")
        self.st_writebacks = self.add_stat("writebacks", "dirty victims aged out")

    @property
    def capacity(self) -> int:
        line = self.cache.config.line_size if self.cache else 32
        return max(1, self.SIZE_BYTES // line)

    def should_capture(self, live: bool) -> bool:
        """The plain victim cache captures every victim (TKVC overrides)."""
        return True

    def on_evict(self, block: int, dirty: bool, live: bool, time: int) -> bool:
        self.count_table_access()
        if not self.should_capture(live):
            return False
        if block in self._entries:
            self._entries[block] = self._entries[block] or dirty
            self._entries.move_to_end(block)
            return True
        while len(self._entries) >= self.capacity:
            old_block, old_dirty = self._entries.popitem(last=False)
            if old_dirty:
                self.st_writebacks.add()
                self.cache.st_writebacks.add()
                if self.cache.writeback_next is not None:
                    self.cache.writeback_next(self.cache.addr_of(old_block), time)
        self._entries[block] = dirty
        self.st_captures.add()
        return True

    def probe(self, block: int, time: int) -> Optional[ProbeResult]:
        self.count_table_access()
        dirty = self._entries.pop(block, None)
        if dirty is None:
            return None
        self.st_probe_hits.add()
        return ProbeResult(latency=1, dirty=dirty)

    def __len__(self) -> int:
        return len(self._entries)

    def structures(self) -> List[StructureSpec]:
        line = self.cache.config.line_size if self.cache else 32
        return [
            StructureSpec(
                "vc_data", size_bytes=self.SIZE_BYTES,
                assoc=max(1, self.SIZE_BYTES // line),
            ),
        ]
