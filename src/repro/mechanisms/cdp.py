"""CDP — Content-Directed Data Prefetching (Cooksey, Jourdan & Grunwald,
ASPLOS 2002).  L2, Table 3: prefetch depth threshold 3, request queue 128.

A *stateless* prefetcher for pointer-based structures: every line fetched
into L2 is scanned, and any word that looks like an address (aligned, and
falling within the program's data region) is prefetched immediately; lines
fetched by CDP itself are scanned too, up to a chase depth of 3.

The scan uses the functional memory image — the same values a real machine
would see on the fill path.  The paper's Section 3.1 discussion is directly
reproducible here:

* benchmarks with clean leading next pointers (``twolf``, ``equake``)
  speed up;
* ``mcf``, whose nodes are full of plausible-but-unfollowed pointers,
  *slows down* as CDP saturates the memory bus;
* ``ammp`` fails systematically because the next pointer sits 88 bytes
  into a structure fetched in 64-byte lines — the pointer is simply never
  in the scanned line.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mechanisms.base import Mechanism, StructureSpec


class ContentDirectedPrefetcher(Mechanism):
    """Scan fills for pointer-looking words; chase up to DEPTH levels."""

    LEVEL = "l2"
    ACRONYM = "CDP"
    YEAR = 2002
    QUEUE_SIZE = 128
    DEPTH_THRESHOLD = 3
    #: Cap on candidates prefetched per scanned line, to mirror the
    #: original's per-fill issue bandwidth.  With recursive chasing to
    #: depth 3 the fan-out is geometric, so this cap is the lever that
    #: keeps CDP's bandwidth appetite at the original's scale.
    MAX_CANDIDATES_PER_LINE = 2

    def __init__(self, name: Optional[str] = None, parent=None):
        super().__init__(name, parent)
        self.st_lines_scanned = self.add_stat("lines_scanned")
        self.st_candidates = self.add_stat("pointer_candidates")

    def _scan(self, block: int, depth: int, time: int) -> None:
        if self.hierarchy is None or self.hierarchy.image is None:
            return
        if depth >= self.DEPTH_THRESHOLD:
            return
        image = self.hierarchy.image
        line_size = self.cache.config.line_size
        words = self.hierarchy.read_line_values(
            self.cache.addr_of(block), line_size
        )
        self.st_lines_scanned.add()
        self.count_table_access(len(words))
        emitted = 0
        # Recursive (depth > 0) scans narrow to a single candidate so the
        # chase fan-out stays linear in depth, not geometric.
        limit = self.MAX_CANDIDATES_PER_LINE if depth == 0 else 1
        own_block = block
        for word in words:
            if not image.looks_like_pointer(word):
                continue
            target_block = self.cache.block_of(word)
            if target_block == own_block:
                continue
            if self.cache.contains(self.cache.addr_of(target_block)):
                continue
            self.st_candidates.add()
            self.emit_prefetch(self.cache.addr_of(target_block), time, depth + 1)
            emitted += 1
            if emitted >= limit:
                break

    def on_refill(
        self, block: int, victim_block: Optional[int], time: int,
        prefetched: bool = False,
    ) -> None:
        if not prefetched:
            self._scan(block, 0, time)

    def on_prefetch_fill(self, block: int, depth: int, time: int) -> None:
        self._scan(block, depth, time)

    def structures(self) -> List[StructureSpec]:
        # Stateless: just the scanner datapath and the request queue.
        return [
            StructureSpec("cdp_scanner", size_bytes=64),
            StructureSpec("cdp_request_queue", size_bytes=self.QUEUE_SIZE * 8),
        ]
