"""DBCP — Dead-Block Correlating Prefetcher (Lai, Fide & Falsafi,
ISCA 2001).  L1, Table 3: 1K-entry history, 2 MB 8-way correlation table,
request queue 128.

Every resident line carries a *signature*: an encoding of the sequence of
load/store instruction addresses that touched it since its fill.  When a
line dies, the (block, death-signature) pair is correlated with the block
that replaced it.  The next time the same block accumulates the same
signature, the line is predicted dead on the spot and its historical
successor is prefetched.

Two build variants reproduce the paper's Figure 3 case study in
reverse-engineering risk.  The authors' own first implementation was off by
38% until the DBCP authors helped them find three unstated details; the
``initial`` variant re-introduces exactly those defects:

* PCs are **not prehashed** before being folded into the signature, causing
  aliasing conflicts in the correlation table;
* the correlation table has **half** the correct number of entries (a
  misreading of the article's sizing text);
* confidence counters are **never decreased** when a signature stops
  inducing misses, so stale entries pollute the table.

The ``fixed`` variant (default) implements all three correctly.  In the
paper's fixed form DBCP outperforms TK by a wide margin — opposite to the
ranking published in the TK article, whose authors had reverse-engineered
DBCP themselves.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.mechanisms.base import Mechanism, StructureSpec

_SIG_MASK = (1 << 24) - 1


def _prehash_pc(pc: int) -> int:
    """Knuth multiplicative mix — the unstated prehash of the article."""
    return ((pc * 2654435761) >> 8) & _SIG_MASK


class DeadBlockCorrelatingPrefetcher(Mechanism):
    """Per-line PC-trace signatures correlated with replacement blocks."""

    LEVEL = "l1"
    ACRONYM = "DBCP"
    YEAR = 2001
    QUEUE_SIZE = 128
    #: Dead-block prefetches hide L2 latency; successors not L2-resident
    #: are not worth a speculative DRAM round trip.
    PREFETCH_FROM_L2_ONLY = True
    HISTORY_ENTRIES = 1024
    CORR_BYTES = 2 << 20
    CORR_ASSOC = 8
    CONFIDENCE_MAX = 3
    CONFIDENCE_THRESHOLD = 2
    #: ``_evicting_frame`` is exempt: it is only True inside the
    #: ``deliver_prefetch`` try/finally, never across trace records, so a
    #: between-records checkpoint always sees it False.
    SNAPSHOT_FIELDS = ("_signatures", "_pending_pc", "_frame_of",
                       "_history", "_corr")
    SNAPSHOT_EXEMPT = Mechanism.SNAPSHOT_EXEMPT + (
        "variant", "prehash", "confidence_decay", "corr_capacity",
        "_evicting_frame")

    def __init__(
        self,
        name: Optional[str] = None,
        parent=None,
        variant: str = "fixed",
    ):
        super().__init__(name, parent)
        if variant not in ("fixed", "initial"):
            raise ValueError(f"variant must be 'fixed' or 'initial', got {variant!r}")
        self.variant = variant
        self.prehash = variant == "fixed"
        self.confidence_decay = variant == "fixed"
        entries = self.CORR_BYTES // 16
        self.corr_capacity = entries if variant == "fixed" else entries // 2
        # live signature per resident block
        self._signatures: Dict[int, int] = {}
        # miss PC awaiting the refill that starts the new generation
        self._pending_pc: Dict[int, int] = {}
        # successor block -> predicted-dead block whose frame it reuses
        self._frame_of: Dict[int, int] = {}
        # suppress death-history learning during our own frame evictions
        self._evicting_frame = False
        # recently dead blocks: block -> death signature (bounded history)
        self._history: "OrderedDict[int, int]" = OrderedDict()
        # correlation: (block, signature) -> [successor_block, confidence]
        self._corr: "OrderedDict[Tuple[int, int], List[int]]" = OrderedDict()
        self.st_predictions = self.add_stat("dead_predictions")
        self.st_corr_hits = self.add_stat("corr_hits")
        self.st_confidence_drops = self.add_stat("confidence_drops")

    # -- signature maintenance -----------------------------------------------------

    def _fold(self, signature: int, pc: int) -> int:
        token = _prehash_pc(pc) if self.prehash else (pc & 0xFFFF)
        return ((signature * 33) ^ token) & _SIG_MASK

    def on_access(
        self, pc: int, block: int, hit: bool, was_prefetched: bool, time: int
    ) -> None:
        if pc == 0:
            return
        if not hit:
            # The miss-causing access opens the new generation's signature;
            # its PC is folded in once the fill installs (on_refill).
            self._pending_pc[block] = pc
            return
        signature = self._fold(self._signatures.get(block, 0), pc)
        self._signatures[block] = signature
        self._predict(block, signature, time)

    # -- correlation-table access -------------------------------------------------
    #
    # The fixed build stores fully-tagged entries; the initial build models
    # the untagged/undersized table a misreading produces: entries live at
    # ``hash % capacity`` with no tag check, so aliasing silently returns
    # other blocks' predictions — the paper's "aliasing conflicts in the
    # correlation table" defect.

    def _corr_key(self, block: int, signature: int):
        if self.variant == "fixed":
            return (block, signature)
        return ((block * 31) ^ signature) % self.corr_capacity

    def _corr_lookup(self, block: int, signature: int) -> Optional[List[int]]:
        return self._corr.get(self._corr_key(block, signature))

    def _predict(self, block: int, signature: int, time: int) -> None:
        self.count_table_access()
        entry = self._corr_lookup(block, signature)
        if entry is None:
            return
        self.st_corr_hits.add()
        successor, confidence = entry
        if confidence >= self.CONFIDENCE_THRESHOLD:
            if self.cache.contains(self.cache.addr_of(successor)):
                return
            self.st_predictions.add()
            # The block is predicted dead *now*: the prefetched successor
            # will occupy its frame, never displacing live data — the
            # "prefetch into dead blocks" half of the DBCP idea.
            if len(self._frame_of) > 4096:
                self._frame_of.clear()
            self._frame_of[successor] = block
            self.emit_prefetch(self.cache.addr_of(successor), time)

    def deliver_prefetch(self, addr: int, ready: int, time: int) -> bool:
        block = self.cache.block_of(addr)
        dead = self._frame_of.pop(block, None)
        if dead is not None and dead != block:
            self._evicting_frame = True
            try:
                self.cache.evict_block(dead, time)
            finally:
                self._evicting_frame = False
        return super().deliver_prefetch(addr, ready, time)

    # -- learning ------------------------------------------------------------------

    def on_evict(self, block: int, dirty: bool, live: bool, time: int) -> bool:
        signature = self._signatures.pop(block, None)
        if signature is not None and not self._evicting_frame:
            # A frame eviction we caused is not a natural death: recording
            # its (shorter) signature would entrench premature predictions.
            if len(self._history) >= self.HISTORY_ENTRIES:
                self._history.popitem(last=False)
            self._history[block] = signature
        return False

    def on_refill(
        self, block: int, victim_block: Optional[int], time: int,
        prefetched: bool = False,
    ) -> None:
        pending = self._pending_pc.pop(block, None)
        signature = self._fold(0, pending) if pending is not None else 0
        self._signatures[block] = signature
        if pending is not None:
            # Predict on the fill access too: lines touched once per
            # generation reach their death signature immediately.
            self._predict(block, signature, time)
        if victim_block is None:
            return
        death_sig = self._history.get(victim_block)
        if death_sig is None:
            return
        self.count_table_access()
        key = self._corr_key(victim_block, death_sig)
        entry = self._corr.get(key)
        if entry is None:
            if len(self._corr) >= self.corr_capacity:
                self._corr.popitem(last=False)
            self._corr[key] = [block, 1]
        else:
            self._corr.move_to_end(key)
            if entry[0] == block:
                if entry[1] < self.CONFIDENCE_MAX:
                    entry[1] += 1
            else:
                if self.confidence_decay:
                    entry[1] -= 1
                    self.st_confidence_drops.add()
                    if entry[1] <= 0:
                        entry[0] = block
                        entry[1] = 1
                else:
                    entry[0] = block
                    entry[1] = max(entry[1], 1)

    def structures(self) -> List[StructureSpec]:
        return [
            StructureSpec("dbcp_history", size_bytes=self.HISTORY_ENTRIES * 8),
            StructureSpec(
                "dbcp_correlation",
                size_bytes=self.CORR_BYTES if self.variant == "fixed"
                else self.CORR_BYTES // 2,
                assoc=self.CORR_ASSOC,
            ),
            StructureSpec("dbcp_request_queue", size_bytes=self.QUEUE_SIZE * 8),
        ]
