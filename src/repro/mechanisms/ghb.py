"""GHB — Global History Buffer (Nesbit & Smith, HPCA 2004).  L2, Table 3:
IT 256 entries, GHB 256 entries, request queue 4.

The global history buffer decouples *history storage* from *indexing*: an
index table (IT) maps a load PC to the head of a linked list threaded
through a small circular buffer of recent misses (the GHB).  On each miss
the prefetcher walks the list, recovers the PC's recent miss addresses,
and, when the deltas agree, issues up to ``DEGREE`` stride prefetches.

The paper finds GHB the best raw performer (Figure 4) but also — despite
its tiny tables — one of the most *power-hungry* mechanisms (Figure 5):
"each miss can induce up to 4 requests, and a table is scanned repeatedly".
The repeated list walk is exactly what :meth:`count_table_access` records,
and its aggressiveness is why the detailed SDRAM model hurts GHB more than
SP (Figure 8: "GHB increases memory pressure and is therefore sensitive to
stricter memory access rules").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mechanisms.base import Mechanism, StructureSpec


class GlobalHistoryBuffer(Mechanism):
    """PC-localised delta-correlating prefetcher over a global miss buffer."""

    LEVEL = "l2"
    ACRONYM = "GHB"
    YEAR = 2004
    QUEUE_SIZE = 4
    IT_ENTRIES = 256
    GHB_ENTRIES = 256
    DEGREE = 4          # prefetches issued per detected stride
    WALK_DEPTH = 3      # miss addresses recovered per walk
    SNAPSHOT_FIELDS = ("_buffer", "_head", "_count", "_index")

    def __init__(self, name: Optional[str] = None, parent=None):
        super().__init__(name, parent)
        # Circular buffer entries: [miss_addr, prev_index_for_same_pc].
        self._buffer: List[List[int]] = [[0, -1] for _ in range(self.GHB_ENTRIES)]
        self._head = 0
        self._count = 0
        self._index: Dict[int, int] = {}  # pc -> newest buffer slot

    def on_access(
        self, pc: int, block: int, hit: bool, was_prefetched: bool, time: int
    ) -> None:
        # A demand hit on a prefetched line is a miss the prefetcher hid;
        # feeding it back keeps the delta stream continuous so a stream
        # stays locked instead of re-detecting after every burst.
        if hit and was_prefetched:
            self._train(pc, block, time)

    def on_miss(self, pc: int, block: int, time: int) -> None:
        self._train(pc, block, time)

    def _train(self, pc: int, block: int, time: int) -> None:
        if pc == 0:
            return
        addr = self.cache.addr_of(block)
        slot = self._head
        prev = self._index.get(pc, -1)
        # A slot that has wrapped no longer belongs to this PC's chain.
        if prev == slot:
            prev = -1
        self._buffer[slot][0] = addr
        self._buffer[slot][1] = prev
        self._index[pc] = slot
        if len(self._index) > self.IT_ENTRIES:
            # Index table is full: drop an arbitrary (oldest-inserted) entry.
            self._index.pop(next(iter(self._index)))
        self._head = (self._head + 1) % self.GHB_ENTRIES
        self._count += 1
        self.count_table_access(2)  # IT read + GHB insert

        # Walk the PC's chain to recover recent miss addresses.
        history: List[int] = [addr]
        cursor = prev
        age = 0
        while cursor >= 0 and len(history) < self.WALK_DEPTH and age < self.GHB_ENTRIES:
            self.count_table_access()  # each link followed is a GHB read
            history.append(self._buffer[cursor][0])
            cursor = self._buffer[cursor][1]
            age += 1
        if len(history) < 3:
            return
        delta1 = history[0] - history[1]
        delta2 = history[1] - history[2]
        if delta1 == 0 or delta1 != delta2:
            return
        for k in range(1, self.DEGREE + 1):
            target = addr + delta1 * k
            if not self.cache.contains(target):
                self.emit_prefetch(target, time)

    def structures(self) -> List[StructureSpec]:
        return [
            StructureSpec("ghb_index_table", size_bytes=self.IT_ENTRIES * 8),
            StructureSpec("ghb_buffer", size_bytes=self.GHB_ENTRIES * 12),
            StructureSpec("ghb_request_queue", size_bytes=self.QUEUE_SIZE * 8),
        ]
