"""The mechanism plug-in interface — MicroLib's module contract.

A *mechanism* is a hardware data-cache optimization packaged as a component
that attaches to one cache level and reacts to that cache's events.  The
contract is deliberately small so that a mechanism written against it can be
"downloaded and plugged in" (the paper's MicroLib vision):

``LEVEL``
    ``"l1"`` or ``"l2"`` — which cache the mechanism attaches to.
``probe(block, time)``
    Called on a miss *before* the next level is consulted.  Return a
    :class:`ProbeResult` when a side structure (victim cache, frequent-value
    cache, Markov prefetch buffer) holds the line, or ``None``.
``on_access(pc, block, hit, was_prefetched, time)``
    Called after every lookup of the attached cache.
``on_miss(pc, block, time)``
    Called after a genuine miss (one that goes to the next level).
``on_refill(block, victim_block, time)``
    Called when a fill installs ``block``, evicting ``victim_block`` (or
    ``None``) — the learning point for correlation prefetchers.
``on_evict(block, dirty, live, time)``
    Called when a victim leaves the cache.  Return ``True`` to *capture* the
    line (victim-cache-style structures), which also transfers writeback
    duty to the mechanism.
``on_prefetch_fill(block, depth, time)``
    Called when one of this mechanism's prefetches lands (lets CDP chase
    pointers transitively).

Prefetches are *emitted* into the mechanism's bounded request queue (sized
per Table 3) via :meth:`Mechanism.emit_prefetch`; the hierarchy drains the
queue onto the appropriate bus.  Every table the mechanism adds to the chip
is declared as a :class:`StructureSpec` so the CACTI-style cost model and
the XCACTI-style power model (Figure 5) can price it; dynamic activity is
recorded with :meth:`Mechanism.count_table_access`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, List, Optional, TYPE_CHECKING

from repro.kernel.module import Component
from repro.kernel.state import restore_fields, snapshot_fields
from repro.sanitize import SANITIZE, sanitize_failure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.cache import Cache
    from repro.cache.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of a successful side-structure probe.

    ``latency`` is the extra cycles beyond the cache's own latency needed to
    move the line in; ``dirty`` restores the captured line's dirty state.
    """

    latency: int = 1
    dirty: bool = False


@dataclass(frozen=True)
class PrefetchRequest:
    """A queued prefetch: byte address, emission cycle, chase depth."""

    addr: int
    time: int
    depth: int = 0


@dataclass(frozen=True)
class StructureSpec:
    """A hardware table added by a mechanism, for the cost/power models."""

    name: str
    size_bytes: int
    assoc: int = 1
    ports: int = 1


class PrefetchQueue:
    """Bounded FIFO of outstanding prefetch requests (Table 3 sizes).

    When full, new requests are *dropped* — the paper's Section 3.4 shows
    that this single sizing choice (1 vs 128 for TCP) swings per-benchmark
    performance dramatically in both directions.
    """

    SNAPSHOT_FIELDS = ("_queue", "pushed", "dropped")
    SNAPSHOT_EXEMPT = ("capacity",)

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: Deque[PrefetchRequest] = deque()
        self.pushed = 0
        self.dropped = 0

    def push(self, request: PrefetchRequest) -> bool:
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        self._queue.append(request)
        self.pushed += 1
        return True

    def pop(self) -> PrefetchRequest:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def clear(self) -> None:
        self._queue.clear()


class Mechanism(Component):
    """Base class for every data-cache optimization."""

    #: Snapshot protocol defaults.  Subclasses with tables extend
    #: ``SNAPSHOT_FIELDS`` with their own state; the base class owns no
    #: mutable run state beyond its stats and queue, which the generic
    #: :meth:`snapshot` captures through their own protocols.
    SNAPSHOT_FIELDS: tuple = ()
    SNAPSHOT_EXEMPT: tuple = ("cache", "hierarchy", "queue")

    #: Which cache level the mechanism attaches to: ``"l1"`` or ``"l2"``.
    LEVEL = "l1"
    #: Acronym used in figures/tables (set by subclasses).
    ACRONYM = "?"
    #: Publication year, for the "are we making progress" axis of Figure 4.
    YEAR = 0
    #: Request-queue capacity (Table 3); ``None`` means no prefetch queue.
    QUEUE_SIZE: Optional[int] = None
    #: L1 mechanisms only: when True, prefetches that miss in L2 are dropped
    #: instead of escalating to main memory (a timeliness prefetcher that
    #: hides L2 latency, like TK, never pays DRAM bandwidth).
    PREFETCH_FROM_L2_ONLY = False
    #: True when deliver_prefetch fills a dedicated buffer (Markov) rather
    #: than the cache itself — such fills do not arbitrate for cache MSHRs.
    USES_PREFETCH_BUFFER = False

    def __init__(
        self, name: Optional[str] = None, parent: Optional[Component] = None
    ) -> None:
        super().__init__(name or type(self).__name__.lower(), parent)
        self.cache: Optional["Cache"] = None
        self.hierarchy: Optional["MemoryHierarchy"] = None
        self.queue: Optional[PrefetchQueue] = (
            PrefetchQueue(self.QUEUE_SIZE) if self.QUEUE_SIZE else None
        )
        self.st_table_accesses = self.add_stat(
            "table_accesses", "reads/writes of mechanism tables (power model)"
        )
        self.st_prefetches = self.add_stat("prefetches_emitted")
        self.st_probe_hits = self.add_stat("probe_hits")

    # -- wiring ---------------------------------------------------------------

    def attach(self, cache: "Cache", hierarchy: "MemoryHierarchy") -> None:
        """Bind to a cache level; called once by the hierarchy."""
        if self.cache is not None:
            raise RuntimeError(f"{self.path} already attached")
        self.cache = cache
        self.hierarchy = hierarchy
        cache.mechanism = self

    # -- hooks (no-op defaults) --------------------------------------------------

    def probe(self, block: int, time: int) -> Optional[ProbeResult]:
        return None

    def on_access(
        self, pc: int, block: int, hit: bool, was_prefetched: bool, time: int
    ) -> None:
        pass

    def on_miss(self, pc: int, block: int, time: int) -> None:
        pass

    def on_refill(
        self,
        block: int,
        victim_block: Optional[int],
        time: int,
        prefetched: bool = False,
    ) -> None:
        pass

    def on_evict(self, block: int, dirty: bool, live: bool, time: int) -> bool:
        return False

    def on_prefetch_fill(self, block: int, depth: int, time: int) -> None:
        pass

    # -- services for subclasses ---------------------------------------------------

    def iter_queues(self) -> Iterator[PrefetchQueue]:
        """All prefetch queues this mechanism owns (composites override)."""
        if self.queue is not None:
            yield self.queue

    def emit_prefetch(self, addr: int, time: int, depth: int = 0) -> bool:
        """Queue a prefetch for byte address ``addr``; False when dropped."""
        if self.queue is None:
            raise RuntimeError(f"{self.path} declares no prefetch queue")
        if SANITIZE and (addr < 0 or time < 0 or depth < 0):
            raise sanitize_failure(
                f"{self.path}: emit_prefetch(addr={addr}, time={time}, "
                f"depth={depth}) has a negative field"
            )
        accepted = self.queue.push(PrefetchRequest(addr, time, depth))
        if accepted:
            self.st_prefetches.add()
        return accepted

    def count_table_access(self, n: int = 1) -> None:
        """Record ``n`` mechanism-table accesses for the power model."""
        self.st_table_accesses.add(n)

    def deliver_prefetch(self, addr: int, ready: int, time: int) -> bool:
        """Install a completed prefetch.

        The default inserts the line into the attached cache; mechanisms
        with a dedicated prefetch buffer (Markov) override this to fill the
        buffer instead.  Returns False when the line was already resident.
        """
        if self.cache is None:
            raise RuntimeError(f"{self.path} not attached")
        return self.cache.insert_prefetch(addr, ready, time)

    # -- checkpointing ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Generic recursive snapshot covering every registered mechanism.

        Declared fields, own stats, every owned prefetch queue (in
        :meth:`iter_queues` order) and child components (in construction
        order), so composites like CDP+SP serialize without bespoke code.
        """
        return {
            "fields": snapshot_fields(self),
            "stats": self.snapshot_stats(),
            "queues": [snapshot_fields(q) for q in self.iter_queues()],
            "children": [child.snapshot() for child in self.children],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        restore_fields(self, state["fields"])
        self.restore_stats(state["stats"])
        for queue, saved in zip(self.iter_queues(), state["queues"]):
            restore_fields(queue, saved)
        for child, saved in zip(self.children, state["children"]):
            child.restore(saved)

    # -- cost model ------------------------------------------------------------

    def structures(self) -> List[StructureSpec]:
        """Hardware tables this mechanism adds (empty for the baseline)."""
        return []

    # -- introspection ------------------------------------------------------------

    @property
    def useful_prefetches(self) -> float:
        """Demand hits on lines this mechanism prefetched."""
        if self.cache is None:
            return 0.0
        return self.cache.st_useful_prefetches.value
