"""EW — Eager Writeback (Lee, Tyson & Farrens, MICRO 2000).
L1.  *Library extension.*

One of the mechanisms the paper collected but could **not** evaluate:
"eager writeback [15] ... is designed for and tested on memory-bandwidth
bound programs which were not available" (Section 1).  Our synthetic suite
has exactly such programs (``swim``, ``lucas``), so the reproduction can go
one step beyond the original study — the MicroLib vision working as
intended.

The idea: do not wait for eviction to write a dirty line back.  When a
dirty line has gone quiet (it left the MRU position and has not been
written for a while), write it back *during bus idle time* and mark it
clean.  Evictions of such lines then cost nothing at the moment of maximum
bus pressure; the writeback bandwidth is moved into the gaps.

Implementation: store hits arm a deferred check (via the hierarchy's event
simulator, like TK's decay clock); when the check fires and the line has
not been re-written since, its writeback is emitted ahead of time and the
line is marked clean.  Correctness follows the writeback protocol: a clean
line re-written later simply becomes dirty again (and re-arms).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mechanisms.base import Mechanism, StructureSpec


class EagerWriteback(Mechanism):
    """Write quiet dirty lines back early; evict them for free later."""

    LEVEL = "l1"
    ACRONYM = "EW"
    YEAR = 2000
    #: Cycles a dirty line must stay un-written before the eager writeback.
    QUIET_CYCLES = 512
    SNAPSHOT_FIELDS = ("_last_write",)

    def __init__(self, name: Optional[str] = None, parent=None):
        super().__init__(name, parent)
        self._last_write: Dict[int, int] = {}
        self.st_eager_writebacks = self.add_stat("eager_writebacks")
        self.st_free_evictions = self.add_stat(
            "free_evictions", "evictions whose line was already cleaned"
        )

    # -- hooks --------------------------------------------------------------------

    def on_access(
        self, pc: int, block: int, hit: bool, was_prefetched: bool, time: int
    ) -> None:
        if not hit:
            return
        line = self.cache.peek(self.cache.addr_of(block))
        if line is not None and line.dirty:
            self._arm(block, time)

    def on_refill(
        self, block: int, victim_block: Optional[int], time: int,
        prefetched: bool = False,
    ) -> None:
        # The dirty bit for an allocating store is set *after* this hook
        # runs, so arm unconditionally — the quiet check verifies dirtiness
        # before doing anything.
        if not prefetched:
            self._arm(block, time)

    def on_evict(self, block: int, dirty: bool, live: bool, time: int) -> bool:
        if not dirty and block in self._last_write:
            self.st_free_evictions.add()
        self._last_write.pop(block, None)
        return False

    # -- the quiet clock ---------------------------------------------------------

    def _arm(self, block: int, time: int) -> None:
        self._last_write[block] = time
        if self.hierarchy is not None:
            self.hierarchy.sim.schedule(
                time + self.QUIET_CYCLES + 1, self._check_quiet, block, time
            )

    def _check_quiet(self, block: int, write_seen: int) -> None:
        last = self._last_write.get(block)
        if last is None or last != write_seen:
            return  # re-written since, or evicted; a newer check covers it
        cache = self.cache
        line = cache.peek(cache.addr_of(block))
        if line is None or not line.dirty:
            self._last_write.pop(block, None)
            return
        now = self.hierarchy.sim.now
        # Use the bus only when it is genuinely idle — the whole point.
        if not self.hierarchy.l1_l2_bus.idle_at(now):
            # Busy: try again after another quiet interval.
            self.hierarchy.sim.schedule(
                now + self.QUIET_CYCLES, self._check_quiet, block, write_seen
            )
            return
        self.count_table_access()
        self.st_eager_writebacks.add()
        line.dirty = False
        if cache.writeback_next is not None:
            cache.writeback_next(cache.addr_of(block), now)

    def structures(self) -> List[StructureSpec]:
        n_lines = self.cache.config.n_lines if self.cache else 1024
        # One quiet-counter (a few bits) per line.
        return [StructureSpec("ew_quiet_counters", size_bytes=n_lines // 2)]
