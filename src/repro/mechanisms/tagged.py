"""TP — Tagged Prefetching (Smith, 1982).  L2, Table 3: queue 16.

One of the very first prefetching techniques: on a miss, prefetch the next
sequential line; on the first demand hit to a *prefetched* line (the "tag"
bit), prefetch the next line again.  The tag bit is what keeps a sequential
stream exactly one line ahead without flooding on random traffic.

Despite its age the paper finds TP performs "quite well", and — once CACTI
cost is factored in (Figure 5) — looks like one of the most attractive
mechanisms, a centrepiece of the "are we making progress?" discussion.
"""

from __future__ import annotations

from typing import List

from repro.mechanisms.base import Mechanism, StructureSpec


class TaggedPrefetcher(Mechanism):
    """Next-line prefetch on miss or on first hit to a prefetched line."""

    LEVEL = "l2"
    ACRONYM = "TP"
    YEAR = 1982
    QUEUE_SIZE = 16

    def _prefetch_next(self, block: int, time: int) -> None:
        self.count_table_access()
        target = self.cache.addr_of(block + 1)
        if not self.cache.contains(target):
            self.emit_prefetch(target, time)

    def on_miss(self, pc: int, block: int, time: int) -> None:
        self._prefetch_next(block, time)

    def on_access(
        self, pc: int, block: int, hit: bool, was_prefetched: bool, time: int
    ) -> None:
        if hit and was_prefetched:
            self._prefetch_next(block, time)

    def structures(self) -> List[StructureSpec]:
        # One tag bit per L2 line plus the request queue.
        n_lines = self.cache.config.n_lines if self.cache else (1 << 20) // 64
        return [
            StructureSpec("tp_tag_bits", size_bytes=n_lines // 8),
            StructureSpec("tp_request_queue", size_bytes=self.QUEUE_SIZE * 8),
        ]
