"""CDPSP — CDP + SP combination, as proposed in the CDP article.  L2,
Table 3: SP queue 1, CDP queue 128, SP PC entries 512, CDP depth 3.

The stride prefetcher covers the regular streams content-directed
prefetching is blind to, and CDP covers the pointer chains strides cannot
express.  The paper notes the combination "can be appropriate for a larger
range of benchmarks" than either part (Table 6); under the SDRAM model it
also inherits CDP's bandwidth appetite (Figure 8).

Implemented by composition: private :class:`StridePrefetcher` and
:class:`ContentDirectedPrefetcher` instances attached to the same cache,
with the composite forwarding every hook and exposing both request queues.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mechanisms.base import Mechanism, StructureSpec
from repro.mechanisms.cdp import ContentDirectedPrefetcher
from repro.mechanisms.stride import StridePrefetcher


class CDPPlusSP(Mechanism):
    """Composite of stride prefetching and content-directed prefetching."""

    LEVEL = "l2"
    ACRONYM = "CDPSP"
    YEAR = 2002
    QUEUE_SIZE = None  # queues live in the two sub-mechanisms
    #: ``sp``/``cdp`` are children (constructed with ``parent=self``), so
    #: the generic snapshot's child recursion covers their state.
    SNAPSHOT_EXEMPT = Mechanism.SNAPSHOT_EXEMPT + ("sp", "cdp")

    def __init__(self, name: Optional[str] = None, parent=None):
        super().__init__(name, parent)
        self.sp = StridePrefetcher(name="cdpsp_sp", parent=self)
        self.cdp = ContentDirectedPrefetcher(name="cdpsp_cdp", parent=self)

    def attach(self, cache, hierarchy) -> None:
        super().attach(cache, hierarchy)
        # Sub-mechanisms share the cache but do not claim its hook slot.
        self.sp.cache = cache
        self.sp.hierarchy = hierarchy
        self.cdp.cache = cache
        self.cdp.hierarchy = hierarchy

    def iter_queues(self):
        yield self.sp.queue
        yield self.cdp.queue

    # -- forwarded hooks --------------------------------------------------------

    def on_access(
        self, pc: int, block: int, hit: bool, was_prefetched: bool, time: int
    ) -> None:
        self.sp.on_access(pc, block, hit, was_prefetched, time)

    def on_miss(self, pc: int, block: int, time: int) -> None:
        self.sp.on_miss(pc, block, time)
        self.cdp.on_miss(pc, block, time)

    def on_refill(
        self, block: int, victim_block: Optional[int], time: int,
        prefetched: bool = False,
    ) -> None:
        self.cdp.on_refill(block, victim_block, time, prefetched)

    def on_prefetch_fill(self, block: int, depth: int, time: int) -> None:
        self.cdp.on_prefetch_fill(block, depth, time)

    # -- aggregated accounting -----------------------------------------------------

    @property
    def total_table_accesses(self) -> float:
        return (
            self.st_table_accesses.value
            + self.sp.st_table_accesses.value
            + self.cdp.st_table_accesses.value
        )

    def structures(self) -> List[StructureSpec]:
        return self.sp.structures() + self.cdp.structures()
