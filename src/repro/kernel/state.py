"""Generic snapshot/restore helpers for the checkpoint protocol.

Every stateful simulation class declares two class attributes:

* ``SNAPSHOT_FIELDS`` — the instance attributes that constitute its
  mutable run state.  :func:`snapshot_fields` deep-copies exactly these;
  :func:`restore_fields` writes them back.
* ``SNAPSHOT_EXEMPT`` — attributes assigned in ``__init__`` that are
  deliberately *not* checkpointed: immutable configuration, wiring to
  other components (which snapshot themselves), and transient flags that
  are provably quiescent between trace records.

The split is enforced by the SIM9xx snapshot-completeness lint
(:mod:`repro.analysis.snapshot`): every ``self.x = ...`` in a declaring
class's ``__init__`` must land in one of the two tuples, so adding a new
piece of state without deciding its checkpoint story is a CI failure,
not a silently-unserialized heisenbug.

Restores are **in place** wherever the container type allows it: lists
are spliced (``cur[:] = new``), dicts/sets cleared and refilled, deques
cleared and extended.  That automatically honours every identity
contract in the simulator — the flat tag arrays, the port ledger, the
kernel's times heap and the speculation counter block are all bound by
reference into generated fast-path code, and a restore must mutate the
object those bindings close over, never replace it.

One :func:`copy.deepcopy` call covers a whole object's field dict, so
identity sharing *within* an object (e.g. the stream-buffer's pending
map aliasing entries of its stream list) survives the round trip via
the deepcopy memo.
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Any, Dict, Optional, Tuple


def snapshot_fields(obj: Any, names: Optional[Tuple[str, ...]] = None) -> Dict[str, Any]:
    """Deep-copy ``obj``'s declared snapshot fields into a plain dict.

    ``names`` defaults to ``type(obj).SNAPSHOT_FIELDS``.  The whole field
    dict goes through one ``deepcopy`` call so aliasing between fields is
    preserved in the copy.
    """
    if names is None:
        names = type(obj).SNAPSHOT_FIELDS
    return copy.deepcopy({name: getattr(obj, name) for name in names})


def restore_fields(obj: Any, state: Dict[str, Any]) -> None:
    """Write a :func:`snapshot_fields` dict back onto ``obj``, in place.

    The incoming state is deep-copied first (a checkpoint may be restored
    more than once — e.g. a retry loop — and the live simulator must never
    mutate the caller's saved copy), then each field is restored into the
    *existing* container where one exists, preserving object identity for
    anything bound by reference elsewhere.
    """
    state = copy.deepcopy(state)
    for name, value in state.items():
        current = getattr(obj, name, None)
        if isinstance(current, list):
            current[:] = value
        elif isinstance(current, deque):
            current.clear()
            current.extend(value)
        elif isinstance(current, dict):
            # Covers OrderedDict and Counter too (both dict subclasses);
            # clear-then-update on a zeroed Counter reproduces the saved
            # counts exactly, and update order restores OrderedDict order.
            current.clear()
            current.update(value)
        elif isinstance(current, set) and isinstance(value, set):
            # Mutable sets restore in place.  frozenset is not a set
            # subclass, so immutable snapshots (e.g. FVC's frequent-value
            # set) fall through to plain assignment — correct, since
            # nothing binds a frozenset by identity.
            current.clear()
            current.update(value)
        else:
            setattr(obj, name, value)
