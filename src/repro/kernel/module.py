"""The MicroLib component model.

The original MicroLib distributes simulator *models* as SystemC modules with
typed ports, so a data-cache mechanism written by one group can be plugged
into another group's processor model through a wrapper.  This module provides
the Python rendition of that idea:

* :class:`Component` — named, hierarchical simulation module with declared
  parameters and statistics.
* :class:`Port` — a typed connection point; binding two ports wires a
  producer to a consumer.
* :class:`StatCounter` — a named statistic that aggregates into the component
  hierarchy report.

Everything in :mod:`repro.cache`, :mod:`repro.dram`, :mod:`repro.cpu` and
:mod:`repro.mechanisms` derives from :class:`Component`, which is what makes
the "plug a downloaded mechanism into your simulator" story of the paper
work: mechanisms are discovered through a registry and attached to cache
levels through a uniform hook interface (see
:class:`repro.mechanisms.base.Mechanism`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional


class StatCounter:
    """A named integer/float statistic owned by a component.

    Supports ``+=``-style accumulation through :meth:`add` and direct
    assignment through :attr:`value`.
    """

    __slots__ = ("name", "desc", "value")

    def __init__(self, name: str, desc: str = "", value: float = 0) -> None:
        self.name = name
        self.desc = desc
        self.value = value

    def add(self, amount: float = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stat {self.name}={self.value}>"


class Port:
    """A connection point between two components.

    A port is bound to at most one peer.  Calling the port forwards to the
    peer component's handler, which keeps inter-module traffic explicit —
    the Python equivalent of a SystemC ``sc_port``.
    """

    __slots__ = ("name", "owner", "peer")

    def __init__(self, name: str, owner: "Component") -> None:
        self.name = name
        self.owner = owner
        self.peer: Optional["Port"] = None

    def bind(self, other: "Port") -> None:
        """Bind this port to ``other`` (and ``other`` back to this)."""
        if self.peer is not None or other.peer is not None:
            raise ValueError(
                f"port already bound: {self.qualified_name} or {other.qualified_name}"
            )
        self.peer = other
        other.peer = self

    @property
    def bound(self) -> bool:
        return self.peer is not None

    @property
    def qualified_name(self) -> str:
        return f"{self.owner.path}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self.peer.qualified_name if self.peer else "unbound"
        return f"<Port {self.qualified_name} -> {peer}>"


class Component:
    """Base class for every simulator model in the library.

    Provides hierarchical naming (``parent.path + '.' + name``), parameter
    book-keeping, port creation, and statistics aggregation.  Subclasses call
    :meth:`add_stat` / :meth:`add_port` during construction and use the
    returned objects directly.
    """

    def __init__(self, name: str, parent: Optional["Component"] = None) -> None:
        self.name = name
        self.parent = parent
        self.children: List["Component"] = []
        self.ports: Dict[str, Port] = {}
        self.stats: Dict[str, StatCounter] = {}
        self.params: Dict[str, Any] = {}
        if parent is not None:
            parent.children.append(self)

    # -- hierarchy ---------------------------------------------------------

    @property
    def path(self) -> str:
        """Dot-separated path from the root component."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def walk(self) -> Iterator["Component"]:
        """Yield this component and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # -- declaration helpers -----------------------------------------------

    def add_port(self, name: str) -> Port:
        if name in self.ports:
            raise ValueError(f"duplicate port {name!r} on {self.path}")
        port = Port(name, self)
        self.ports[name] = port
        return port

    def add_stat(self, name: str, desc: str = "") -> StatCounter:
        if name in self.stats:
            raise ValueError(f"duplicate stat {name!r} on {self.path}")
        stat = StatCounter(name, desc)
        self.stats[name] = stat
        return stat

    def set_param(self, name: str, value: Any) -> None:
        self.params[name] = value

    # -- reporting ----------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero every statistic in this subtree."""
        for component in self.walk():
            for stat in component.stats.values():
                stat.reset()

    # -- checkpointing -------------------------------------------------------

    def snapshot_stats(self) -> Dict[str, float]:
        """This component's *own* stat values, ``{name: value}``.

        Deliberately non-recursive: each component's :meth:`snapshot`
        captures its own counters and delegates children to their own
        snapshots, so a subtree is never double-counted.
        """
        return {name: stat.value for name, stat in self.stats.items()}

    def restore_stats(self, values: Dict[str, float]) -> None:
        """Write a :meth:`snapshot_stats` dict back onto this component."""
        for name, value in values.items():
            self.stats[name].value = value

    def stats_report(self) -> Dict[str, float]:
        """Flatten the subtree's statistics into ``{qualified_name: value}``."""
        report: Dict[str, float] = {}
        for component in self.walk():
            for stat in component.stats.values():
                report[f"{component.path}.{stat.name}"] = stat.value
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.path}>"
