"""Timestamp-algebra resource primitives.

A *resource* here is anything with limited per-cycle throughput: cache ports,
the cache tag pipeline, the L1/L2 bus, the memory bus, a DRAM bank, a pool of
functional units.  Instead of simulating each cycle, a resource records when
it is next free and answers *acquire* requests with the cycle at which the
request is actually granted.  Provided requests are presented in
(approximately) nondecreasing time order — which the in-order trace drive
guarantees — this reproduces the same schedules a per-cycle model would
produce, at a tiny fraction of the cost.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.kernel.state import restore_fields, snapshot_fields


class MultiPortResource:
    """``n_ports`` identical ports, each usable once per cycle.

    Models cache read/write ports and functional-unit pools: with 4 ports,
    four requests are granted in the same cycle and the fifth slips to the
    next cycle.

    Grants are tracked in a sparse per-cycle ledger rather than a next-free
    heap, because requests do *not* arrive in time order: an out-of-order
    core issues younger instructions early, and cache refills reserve their
    port at a future completion cycle.  A future reservation must consume
    exactly its own cycle — never block an earlier request — which a
    next-free-time representation cannot express.

    >>> ports = MultiPortResource(2)
    >>> [ports.acquire(10) for _ in range(3)]
    [10, 10, 11]
    >>> ports.acquire(100)  # future reservation...
    100
    >>> ports.acquire(11)   # ...does not block earlier cycles
    11
    """

    __slots__ = ("n_ports", "_ledger", "grants", "_floor")

    SNAPSHOT_FIELDS = ("_ledger", "grants", "_floor")
    SNAPSHOT_EXEMPT = ("n_ports",)

    #: Ledger entries older than this many grants trigger a prune sweep.
    _PRUNE_EVERY = 8192

    def __init__(self, n_ports: int, hold: int = 1) -> None:
        if n_ports < 1:
            raise ValueError(f"need at least one port, got {n_ports}")
        if hold != 1:
            raise ValueError("only single-cycle port occupancy is supported")
        self.n_ports = n_ports
        self._ledger: Dict[int, int] = {}
        self.grants = 0
        self._floor = 0  # cycles below this are assumed fully drained

    def acquire(self, time: int) -> int:
        """Reserve a port at or after ``time``; return the granted cycle."""
        ledger = self._ledger
        grant = time if time > self._floor else self._floor
        count = ledger.get(grant)
        if count is None:
            # Untouched cycle — the common case on the hot path: one dict
            # probe, one store.
            ledger[grant] = 1
        else:
            n = self.n_ports
            while count is not None and count >= n:
                grant += 1
                count = ledger.get(grant)
            ledger[grant] = 1 if count is None else count + 1
        self.grants += 1
        if len(ledger) > self._PRUNE_EVERY:
            self._prune(grant)
        return grant

    def _prune(self, current: int) -> None:
        """Drop ledger entries far in the past (they can never matter).

        Mutates the ledger dict *in place*: the trace-speculation fast path
        and the core's inlined acquire bind ``_ledger`` once per run, so the
        dict's identity must survive pruning (same contract as the kernel's
        heap compaction and ``Cache.reset``).
        """
        horizon = current - 2048
        if horizon <= self._floor:
            return
        ledger = self._ledger
        stale = [cycle for cycle in ledger if cycle < horizon]
        for cycle in stale:
            del ledger[cycle]
        self._floor = max(self._floor, 0)

    def earliest_grant(self, time: int) -> int:
        """Cycle at which an acquire at ``time`` would be granted (no reserve)."""
        grant = time if time > self._floor else self._floor
        while self._ledger.get(grant, 0) >= self.n_ports:
            grant += 1
        return grant

    def would_be_free(self, time: int) -> bool:
        """True if an acquire at ``time`` would be granted immediately."""
        return self.earliest_grant(time) == time

    def snapshot(self) -> Dict[str, Any]:
        return snapshot_fields(self)

    def restore(self, state: Dict[str, Any]) -> None:
        # In place: the fast path binds ``_ledger`` by identity (same
        # contract as ``_prune``), which ``restore_fields`` honours.
        restore_fields(self, state)

    def reset(self) -> None:
        self._ledger.clear()
        self.grants = 0
        self._floor = 0


class PipelinedResource:
    """A pipeline accepting one request per ``initiation_interval`` cycles.

    Also supports explicit *stalls*: the cache model stalls its pipeline for
    a few cycles on structural hazards (e.g. a second miss to a line already
    being refilled, or the one-cycle MSHR-allocation bubble the paper
    describes), which delays every subsequent request.
    """

    __slots__ = ("initiation_interval", "_next_start", "accepts", "stall_cycles")

    SNAPSHOT_FIELDS = ("_next_start", "accepts", "stall_cycles")
    SNAPSHOT_EXEMPT = ("initiation_interval",)

    def __init__(self, initiation_interval: int = 1) -> None:
        if initiation_interval < 1:
            raise ValueError(
                f"initiation interval must be >= 1, got {initiation_interval}"
            )
        self.initiation_interval = initiation_interval
        self._next_start = 0
        self.accepts = 0
        self.stall_cycles = 0

    def acquire(self, time: int) -> int:
        """Enter the pipeline at or after ``time``; return the entry cycle."""
        start = time if self._next_start <= time else self._next_start
        self._next_start = start + self.initiation_interval
        self.accepts += 1
        return start

    def stall_until(self, time: int) -> None:
        """Block the pipeline so no request enters before ``time``."""
        if time > self._next_start:
            self.stall_cycles += time - self._next_start
            self._next_start = time

    @property
    def next_free(self) -> int:
        return self._next_start

    def snapshot(self) -> Dict[str, Any]:
        return snapshot_fields(self)

    def restore(self, state: Dict[str, Any]) -> None:
        restore_fields(self, state)

    def reset(self) -> None:
        self._next_start = 0
        self.accepts = 0
        self.stall_cycles = 0


class Bus:
    """A shared FIFO bus transferring one packet per ``transfer_cycles``.

    ``acquire`` returns ``(start, arrival)``: the cycle the packet seizes the
    bus and the cycle it is fully delivered.  ``idle_at`` lets prefetchers
    implement the "send prefetches only when the bus is idle" policy that the
    paper identifies as a critical unstated implementation choice
    (Section 3.4).
    """

    __slots__ = ("transfer_cycles", "_next_free", "busy_cycles", "transfers")

    SNAPSHOT_FIELDS = ("_next_free", "busy_cycles", "transfers")
    SNAPSHOT_EXEMPT = ("transfer_cycles",)

    def __init__(self, transfer_cycles: int) -> None:
        if transfer_cycles < 1:
            raise ValueError(f"transfer must take >= 1 cycle, got {transfer_cycles}")
        self.transfer_cycles = transfer_cycles
        self._next_free = 0
        self.busy_cycles = 0
        self.transfers = 0

    def acquire(self, time: int) -> Tuple[int, int]:
        """Reserve the bus at or after ``time``; return (start, arrival)."""
        start = time if self._next_free <= time else self._next_free
        arrival = start + self.transfer_cycles
        self._next_free = arrival
        self.busy_cycles += self.transfer_cycles
        self.transfers += 1
        return start, arrival

    def idle_at(self, time: int) -> bool:
        """True when the bus has no pending transfer at ``time``."""
        return self._next_free <= time

    @property
    def next_free(self) -> int:
        return self._next_free

    def snapshot(self) -> Dict[str, Any]:
        return snapshot_fields(self)

    def restore(self, state: Dict[str, Any]) -> None:
        restore_fields(self, state)

    def reset(self) -> None:
        self._next_free = 0
        self.busy_cycles = 0
        self.transfers = 0
