"""Simulation kernel: the MicroLib component model and timing primitives.

The original MicroLib is a library of SystemC modules.  This package provides
the Python equivalent: a :class:`Component` base class with named ports and
hierarchical statistics, an event :class:`Simulator` for deferred callbacks,
and *timestamp-algebra* resource primitives (:class:`MultiPortResource`,
:class:`PipelinedResource`, :class:`Bus`) that model contention by reserving
cycle timestamps instead of ticking every cycle.  The latter is what makes a
cycle-level study of 13 mechanisms x 26 benchmarks feasible in pure Python
(see DESIGN.md section 5).
"""

from repro.kernel.engine import Event, Simulator
from repro.kernel.module import Component, Port, StatCounter
from repro.kernel.resources import Bus, MultiPortResource, PipelinedResource

__all__ = [
    "Bus",
    "Component",
    "Event",
    "MultiPortResource",
    "PipelinedResource",
    "Port",
    "Simulator",
    "StatCounter",
]
