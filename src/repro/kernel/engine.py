"""Discrete-event scheduler.

Most of the memory-system timing in this library is computed synchronously
with timestamp algebra (see :mod:`repro.kernel.resources`), but a few things
are naturally deferred callbacks: MSHR entry release, write-buffer drains,
prefetch-queue retirement.  The :class:`Simulator` provides the event queue
for those.

The queue is *flattened*: instead of one binary heap of events, events are
bucketed per cycle (``{time: [events in seq order]}``) with a small heap of
bucket times.  Draining a cycle then walks one list — a run of same-cycle
events costs one heap pop total instead of one per event, and events a
callback schedules *for the cycle being drained* are appended to the live
bucket and fired in the same sweep, exactly where ``(time, seq)`` ordering
puts them.  Scheduling order within a cycle is append order, which is seq
order, so the observable firing sequence is identical to the classic heap.

Cancelled events are skipped at drain time as before, but the queue also
*compacts* itself: when cancelled entries outnumber live ones (they exceed
half the queue), the buckets are rebuilt without them, so workloads with
heavy MSHR/prefetch cancellation stop paying drain tax on dead events.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.hotpath import hotpath
from repro.obs.tracing import TRACER
from repro.sanitize import SANITIZE, sanitize_failure


class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so simultaneous events fire in
    scheduling order, which keeps runs deterministic.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., object],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time arrives."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} #{self.seq}{state} {self.fn!r}>"


class Simulator:
    """Bucketed discrete-event simulator with integer cycle time.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10, fired.append, "a")
    >>> _ = sim.schedule(5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    10
    """

    #: Snapshot protocol declarations (see :mod:`repro.kernel.state` and
    #: the SIM9xx lint).  ``_buckets``/``_times`` are custom-serialized by
    #: :meth:`snapshot` (events hold bound methods, which don't pickle),
    #: but they are run state and belong in the declared set.
    SNAPSHOT_FIELDS = ("now", "_seq", "_buckets", "_times", "_live",
                       "_cancelled")
    SNAPSHOT_EXEMPT = ("_draining",)

    def __init__(self) -> None:
        self._buckets: Dict[int, List[Event]] = {}
        self._times: List[int] = []  # heap of bucket cycle numbers
        self._seq = 0  # next event sequence number (plain int: snapshotable)
        self._live = 0
        self._cancelled = 0
        self._draining = False
        self.now: int = 0

    @hotpath
    def schedule(self, time: int, fn: Callable[..., object], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute cycle ``time``.

        Scheduling in the past is clamped to *now*: the caller computed a
        completion timestamp that has already been passed by the driving
        clock, so the effect is immediate at the next drain.
        """
        if SANITIZE and not isinstance(time, int):
            raise sanitize_failure(
                f"non-integral event time {time!r} scheduled for {fn!r}; "
                "cycle times must be ints or replay order is ill-defined"
            )
        if time < self.now:
            time = self.now
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        bucket = self._buckets.get(time)
        if bucket is None:
            # simlint: allow[SIM702] first event of a cycle must open its bucket list
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        self._live += 1
        return event

    def schedule_in(self, delay: int, fn: Callable[..., object], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule(self.now + delay, fn, *args)

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return self._live + self._cancelled

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` when the queue is empty."""
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets.get(time)
            if bucket:
                for event in bucket:
                    if not event.cancelled:
                        return time
                # A bucket of nothing but cancelled events can be dropped
                # whole (the classic heap popped them one by one here).
                self._cancelled -= len(bucket)
            del buckets[time]
            heapq.heappop(times)
        return None

    # -- the drain loop ---------------------------------------------------------

    def run_until(self, time: int) -> None:
        """Fire every event scheduled at or before ``time``; advance *now*.

        *now* ends at ``time`` even if the queue drains earlier, so resource
        models can rely on it as the driving clock's current cycle.
        """
        times = self._times
        if times and times[0] <= time:
            self._drain(time)
        if time > self.now:
            self.now = time

    def run(self) -> None:
        """Fire all pending events."""
        if self._times:
            self._drain(None)

    @hotpath
    def _drain(self, limit: Optional[int]) -> None:
        """Fire buckets in time order up to ``limit`` (``None`` = everything).

        The tracer/sanitizer guards and the heap accessor are hoisted out of
        the loop; each cycle's events run off one list, including any the
        callbacks append for the cycle being drained (they carry larger
        sequence numbers than everything already in the bucket, so append
        order *is* ``(time, seq)`` order).
        """
        if self._draining:
            raise RuntimeError(
                "reentrant Simulator drain: an event callback called "
                "run()/run_until(); schedule follow-up work instead"
            )
        tracing = TRACER.enabled
        if tracing:
            TRACER.begin("kernel.drain", cat="kernel")
        fired = 0
        times = self._times
        buckets = self._buckets
        pop_time = heapq.heappop
        sanitize = SANITIZE
        self._draining = True
        try:
            while times and (limit is None or times[0] <= limit):
                time = times[0]
                bucket = buckets.get(time)
                if not bucket:
                    if bucket is not None:
                        del buckets[time]
                    pop_time(times)
                    continue
                if sanitize and time < self.now:
                    raise sanitize_failure(
                        f"event-time monotonicity broken: firing t={time} "
                        f"with now={self.now}"
                    )
                self.now = time
                index = 0
                while index < len(bucket):
                    event = bucket[index]
                    index += 1
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    self._live -= 1
                    event.fn(*event.args)
                    fired += 1
                del buckets[time]
                pop_time(times)
        finally:
            self._draining = False
        if self._cancelled > self._live:
            self._compact()
        if tracing:
            TRACER.end(events=fired, now=self.now)

    # -- cancellation compaction ---------------------------------------------------

    def _note_cancelled(self) -> None:
        """Book-keeping hook called by :meth:`Event.cancel`."""
        self._cancelled += 1
        self._live -= 1
        if self._cancelled > self._live and not self._draining:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the queue without cancelled entries.

        Triggered when cancelled events exceed half the queue, so long runs
        with heavy MSHR/prefetch cancellation stop paying drain tax on dead
        events.  Live events keep their buckets and relative order, so the
        firing sequence is unchanged.
        """
        buckets = self._buckets
        survivors: Dict[int, List[Event]] = {}
        for time, bucket in buckets.items():
            live = [event for event in bucket if not event.cancelled]
            if live:
                survivors[time] = live
        self._buckets = survivors
        # In-place so long-lived references to the times heap (e.g. the
        # trace-speculation guards in repro.cpu.fastpath) stay valid.
        self._times[:] = survivors
        heapq.heapify(self._times)
        self._cancelled = 0

    # -- checkpointing --------------------------------------------------------

    def snapshot(self, owner_keys: Mapping[int, str]) -> Dict[str, Any]:
        """Serialize the queue into picklable primitives.

        Every pending event in this simulator is a bound method of a
        long-lived component with integer arguments (MSHR release,
        eager-writeback quiet checks, dead-block checks), so an event
        serializes as ``(time, seq, owner_key, method_name, args)`` where
        ``owner_key`` names the owning component in ``owner_keys``
        (``{id(component): key}``, built by the hierarchy from its stable
        walk order).  Cancelled events are dropped — exactly what
        :meth:`_compact` does, and compaction is unobservable by design
        (live events keep their buckets and relative order).
        """
        events: List[Tuple[int, int, str, str, Tuple[Any, ...]]] = []
        for time in sorted(self._buckets):
            for event in self._buckets[time]:
                if event.cancelled:
                    continue
                fn = event.fn
                owner = getattr(fn, "__self__", None)
                key = owner_keys.get(id(owner)) if owner is not None else None
                if key is None:
                    raise ValueError(
                        f"cannot checkpoint event {event!r}: callback owner "
                        "is not a registered component (only bound methods "
                        "of snapshot-registered components are serializable)"
                    )
                events.append((event.time, event.seq, key, fn.__name__,
                               event.args))
        return {"now": self.now, "seq": self._seq, "events": events}

    def restore(self, state: Dict[str, Any], owners: Mapping[str, Any]) -> None:
        """Rebuild the queue from a :meth:`snapshot` dict.

        ``owners`` is the inverse of the snapshot's ``owner_keys`` map:
        ``{key: component}`` for the *restored* hierarchy.  The times heap
        is refilled in place (generated fast-path code binds it by
        reference) and the cancellation counter restarts at zero, matching
        the post-compaction state the snapshot encodes.
        """
        self._buckets.clear()
        for time, seq, key, method_name, args in state["events"]:
            event = Event(time, seq, getattr(owners[key], method_name),
                          tuple(args), self)
            bucket = self._buckets.get(time)
            if bucket is None:
                # simlint: allow[SIM702] first event of a cycle must open its bucket list
                self._buckets[time] = [event]
            else:
                bucket.append(event)
        self._times[:] = self._buckets
        heapq.heapify(self._times)
        self._live = len(state["events"])
        self._cancelled = 0
        self.now = state["now"]
        self._seq = state["seq"]

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to cycle 0."""
        self._buckets.clear()
        self._times.clear()
        self._live = 0
        self._cancelled = 0
        self.now = 0
