"""Discrete-event scheduler.

Most of the memory-system timing in this library is computed synchronously
with timestamp algebra (see :mod:`repro.kernel.resources`), but a few things
are naturally deferred callbacks: MSHR entry release, write-buffer drains,
prefetch-queue retirement.  The :class:`Simulator` provides a conventional
heap-based event queue for those.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.tracing import TRACER
from repro.sanitize import SANITIZE, sanitize_failure


class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so simultaneous events fire in
    scheduling order, which keeps runs deterministic.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., object],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time arrives."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} #{self.seq}{state} {self.fn!r}>"


class Simulator:
    """Heap-based discrete-event simulator with integer cycle time.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10, fired.append, "a")
    >>> _ = sim.schedule(5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    10
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self.now: int = 0

    def schedule(self, time: int, fn: Callable[..., object], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute cycle ``time``.

        Scheduling in the past is clamped to *now*: the caller computed a
        completion timestamp that has already been passed by the driving
        clock, so the effect is immediate at the next drain.
        """
        if SANITIZE and not isinstance(time, int):
            raise sanitize_failure(
                f"non-integral event time {time!r} scheduled for {fn!r}; "
                "cycle times must be ints or replay order is ill-defined"
            )
        if time < self.now:
            time = self.now
        event = Event(time, next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: int, fn: Callable[..., object], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule(self.now + delay, fn, *args)

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return len(self._queue)

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` when the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def run_until(self, time: int) -> None:
        """Fire every event scheduled at or before ``time``; advance *now*.

        *now* ends at ``time`` even if the queue drains earlier, so resource
        models can rely on it as the driving clock's current cycle.
        """
        tracing = TRACER.enabled
        if tracing:
            TRACER.begin("kernel.drain", cat="kernel")
        fired = 0
        while self._queue and self._queue[0].time <= time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if SANITIZE and event.time < self.now:
                raise sanitize_failure(
                    f"event-time monotonicity broken: firing t={event.time} "
                    f"with now={self.now}"
                )
            self.now = event.time
            event.fn(*event.args)
            fired += 1
        if time > self.now:
            self.now = time
        if tracing:
            TRACER.end(events=fired, now=self.now)

    def run(self) -> None:
        """Fire all pending events."""
        tracing = TRACER.enabled
        if tracing:
            TRACER.begin("kernel.drain", cat="kernel")
        fired = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if SANITIZE and event.time < self.now:
                raise sanitize_failure(
                    f"event-time monotonicity broken: firing t={event.time} "
                    f"with now={self.now}"
                )
            self.now = event.time
            event.fn(*event.args)
            fired += 1
        if tracing:
            TRACER.end(events=fired, now=self.now)

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to cycle 0."""
        self._queue.clear()
        self.now = 0
