"""A SimpleScalar-style facade over the MicroLib hierarchy.

SimpleScalar's cache interface is a single call::

    lat = cache_access(cp, cmd, baddr, NULL, bsize, now, NULL, NULL);

returning the access latency in cycles.  :class:`SimpleScalarCacheShim`
reproduces that calling convention on top of
:class:`repro.cache.hierarchy.MemoryHierarchy`, which is exactly what the
original project's SimpleScalar wrapper did in the other direction ("all
the experiments presented in this article actually correspond to MicroLib
data cache hardware simulators plugged into SimpleScalar through a
wrapper").  Host code written against the classic API — the paper's
``sim-outorder`` being the canonical example — can therefore drive these
models without knowing anything about components, hooks or queues.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import MachineConfig
from repro.mechanisms.base import Mechanism

#: SimpleScalar's ``mem_cmd`` values.
CACHE_READ = "Read"
CACHE_WRITE = "Write"


class SimpleScalarCacheShim:
    """``cache_access``-style access to a MicroLib memory hierarchy."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        mechanism: Optional[Mechanism] = None,
        image=None,
    ):
        from repro.core.config import baseline_config
        self.hierarchy = MemoryHierarchy(
            config or baseline_config(), mechanism=mechanism, image=image
        )
        self.accesses = 0

    def cache_access(
        self,
        cmd: str,
        baddr: int,
        bsize: int,
        now: int,
        pc: int = 0,
        value: int = 0,
    ) -> int:
        """Perform one access; return its latency in cycles (SimpleScalar's
        contract: the number of cycles until the data is available).

        ``bsize`` is accepted for interface fidelity; accesses are aligned
        to the hierarchy's line handling exactly as SimpleScalar's block
        addresses were.
        """
        if cmd == CACHE_READ:
            ready = self.hierarchy.load(pc, baddr, now)
        elif cmd == CACHE_WRITE:
            ready = self.hierarchy.store(pc, baddr, value, now)
        else:
            raise ValueError(f"unknown mem_cmd {cmd!r}")
        self.accesses += 1
        latency = ready - now
        return latency if latency > 0 else 1

    # -- the handful of SimpleScalar stats hosts conventionally read ------------

    @property
    def misses(self) -> float:
        l1 = self.hierarchy.l1d
        return l1.st_read_misses.value + l1.st_write_misses.value

    @property
    def hits(self) -> float:
        l1 = self.hierarchy.l1d
        total = l1.st_reads.value + l1.st_writes.value
        return total - self.misses

    @property
    def writebacks(self) -> float:
        return self.hierarchy.l1d.st_writebacks.value
