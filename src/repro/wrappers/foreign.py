"""Adapter for foreign prefetcher models.

Standalone prefetcher models — the kind researchers exchange as single
files — usually expose some variant of::

    class MyPrefetcher:
        def train(self, pc, addr, hit):
            ...
            return [prefetch_addr, ...]

:class:`ForeignPrefetcherAdapter` wraps any such object as a native
:class:`repro.mechanisms.base.Mechanism`, so the comparison harness, the
cost model and the prefetch plumbing all work unchanged.  This is the
import half of the paper's federation goal: models written against other
interfaces join the library through a wrapper instead of a rewrite.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mechanisms.base import Mechanism, StructureSpec


class ForeignPrefetcherAdapter(Mechanism):
    """Host a ``train(pc, addr, hit) -> [addresses]`` model as a Mechanism.

    Parameters
    ----------
    model:
        The foreign prefetcher.  Must provide ``train``; may provide
        ``table_bytes`` (for the cost model) and ``name``.
    level:
        Cache level to attach to (``"l1"`` or ``"l2"``).
    queue_size:
        Request-queue capacity (prefetches past it are dropped).
    """

    ACRONYM = "Foreign"
    YEAR = 0

    def __init__(
        self,
        model,
        level: str = "l2",
        queue_size: int = 16,
        name: Optional[str] = None,
        parent=None,
    ):
        if not hasattr(model, "train"):
            raise TypeError(
                f"foreign model {model!r} has no train(pc, addr, hit) method"
            )
        if level not in ("l1", "l2"):
            raise ValueError(f"level must be 'l1' or 'l2', got {level!r}")
        self.LEVEL = level
        self.QUEUE_SIZE = queue_size
        super().__init__(name or getattr(model, "name", "foreign"), parent)
        self.model = model
        self.ACRONYM = getattr(model, "name", "Foreign")

    def on_access(
        self, pc: int, block: int, hit: bool, was_prefetched: bool, time: int
    ) -> None:
        if pc == 0:
            return
        self.count_table_access()
        addresses = self.model.train(pc, self.cache.addr_of(block), hit)
        for addr in addresses or ():
            if not self.cache.contains(addr):
                self.emit_prefetch(int(addr), time)

    def structures(self) -> List[StructureSpec]:
        table_bytes = int(getattr(self.model, "table_bytes", 256))
        return [
            StructureSpec("foreign_table", size_bytes=table_bytes),
            StructureSpec("foreign_queue", size_bytes=self.QUEUE_SIZE * 8),
        ]
