"""Interoperability wrappers — Section 4's federation story.

The original MicroLib ran all of this paper's experiments through a
*SimpleScalar wrapper*: their SystemC cache modules plugged into
SimpleScalar's ``cache_access`` interface, so an existing simulator could
host library components unchanged.  This package provides both directions
of that idea for the Python library:

* :class:`SimpleScalarCacheShim` — exposes this library's hierarchy
  through a SimpleScalar-style ``cache_access(cmd, addr, now) -> latency``
  call, so code written against that classic interface can drive MicroLib
  models;
* :class:`ForeignPrefetcherAdapter` — wraps a *foreign* prefetcher
  (any object with a ``train(pc, addr, hit) -> [addresses]`` method, the
  common shape of standalone prefetcher models) as a native
  :class:`repro.mechanisms.base.Mechanism`, so third-party models can be
  compared by the harness without rewriting them.
"""

from repro.wrappers.simplescalar import (
    CACHE_READ,
    CACHE_WRITE,
    SimpleScalarCacheShim,
)
from repro.wrappers.foreign import ForeignPrefetcherAdapter

__all__ = [
    "CACHE_READ",
    "CACHE_WRITE",
    "ForeignPrefetcherAdapter",
    "SimpleScalarCacheShim",
]
