"""Out-of-order processor core (the ``sim-outorder`` stand-in).

A one-pass timeline model of the Table 1 core: 8-wide fetch/issue/commit,
128-entry RUU, 128-entry LSQ, the Table 1 functional-unit pools, dependence
chains, branch-mispredict front-end squashes, and a store write buffer.  See
DESIGN.md section 2 for why this substitution preserves the study's
behaviour: IPC differences between cache mechanisms come from memory-system
timing interacting with window occupancy, both of which are modelled.
"""

from repro.cpu.ooo import CoreStats, OoOCore

__all__ = ["CoreStats", "OoOCore"]
