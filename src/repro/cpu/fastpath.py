"""Guarded trace-speculation fast path for the simulation hot loop.

Modeled on the CS6120 lesson-12 trace-speculation harness (SNIPPETS.md):
record a hot *linear* instruction sequence once, replay it behind guard
predicates, and abort to the general path the moment a guard fails.  Here
the "program" is the simulator itself and the hot linear sequence is the
(fetch → L1-hit) chain a record takes when it misses nothing:

    advance clock → tag-pipeline slot → port grant → tag match →
    LRU promote → stat bumps → hit latency

:class:`TraceSpeculator.` *records* that sequence at construction — it walks
the hierarchy once and compiles the chain into closures over the flat tag
stores, resource state and stat counters (the analogue of ``speculate``
blocks being injected ahead of the original code).  A due kernel event
(MSHR release, eager-writeback drain, dead-block check) is not a reason
to abort: the replay runs the kernel's ``run_until`` first — exactly the
drain :meth:`~repro.cache.hierarchy.MemoryHierarchy.advance` would
perform — and then re-runs the recorded sequence under two guards,
evaluated *after* that drain so anything the events mutated is seen:

* **no queued prefetch** — a non-empty mechanism request queue means the
  hierarchy would drain traffic onto the buses before this access;
* **the line is resident** — a tag mismatch is a miss, which belongs to
  the MSHR/bus/DRAM slow path.

Any failed guard returns ``None`` — the abort — and the caller falls back
to ``hierarchy.load`` / ``store`` / ``fetch_instruction``, which performs
the identical work the long way.  A successful replay performs *exactly*
the side effects of the slow path's hit case (same stat bumps, same LRU
rotation, same resource acquisitions, same mechanism ``on_access`` hook at
the same point), so results are bit-identical with the fast path on or
off; the golden-fingerprint tests in ``tests/test_fastpath.py`` pin that
across every registered mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.cache.cache import DIRTY, PREFETCHED
from repro.cpu import codecache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.hierarchy import MemoryHierarchy

#: Indices into the speculation counter block.
COMMITS = 0
EVENT_DRAINS = 1
ABORT_QUEUED_PREFETCH = 2
ABORT_MISS = 3

#: Bump whenever the emitters change *semantics* without changing the
#: emitted source text — what a binding name refers to, what the exec
#: namespace carries, where the caller splices the block.  The constant is
#: folded into the disk code-cache key (:mod:`repro.cpu.codecache`), so an
#: emitter edit can never replay a stale generated code object written by
#: an older emitter under the same source digest.
EMITTER_VERSION = 2

ReplayFn = Callable[..., Optional[int]]


# -- machine-readable emitter metadata -----------------------------------------
#
# The SIM8xx guard-completeness verifier (repro.analysis.fastpath) parses
# the *emitted* source and proves, per machine shape, that every piece of
# simulator state the generated code touches is covered.  These tables are
# the proof obligations' vocabulary; they live here, next to the emitters,
# so the two evolve in one diff.

@dataclass(frozen=True)
class GuardSpec:
    """One guard the emitters bake into every replay sequence.

    ``counter`` is the ``counts_`` slot the guard bumps when it fires
    (the verifier checks the baked index), and ``protects`` names the
    canonical states whose premise-read the guard re-validates at replay
    time — state protected by no guard and not provably invariant is a
    SIM801 violation.
    """

    name: str
    counter: int
    protects: Tuple[str, ...]


#: The guards, in the order the emitters lay them out: due kernel events
#: are drained first, then the prefetch queues are checked, then the tag
#: probe.  The verifier requires exactly this order — the queue and tag
#: guards are only sound *after* the drain has run whatever the events
#: would have mutated.
GUARDS: Tuple[GuardSpec, ...] = (
    GuardSpec("event-drain", EVENT_DRAINS, ("kernel.events", "kernel.clock")),
    GuardSpec("queued-prefetch", ABORT_QUEUED_PREFETCH, ("mechanism.queue",)),
    GuardSpec("resident", ABORT_MISS,
              ("cache.tags", "cache.ready", "cache.touch", "cache.flags")),
)

#: Canonical simulator state per emitter binding name (prefixes such as
#: ``ld_`` stripped; ``queue<N>`` bindings map to ``mechanism.queue`` by
#: pattern).  A name the emitted source references that resolves to no
#: entry here is *unaccounted state* — SIM801.
STATE_OF_BINDING: Dict[str, str] = {
    "tags": "cache.tags",
    "tags_index": "cache.tags",
    "ready_arr": "cache.ready",
    "touch": "cache.touch",
    "flags": "cache.flags",
    "pipe": "cache.pipeline",
    "ports": "cache.ports",
    "ledger": "cache.ports",
    "ledger_get": "cache.ports",
    "st_kind": "cache.stat.kind",
    "st_useful": "cache.stat.useful",
    "st_outer": "hierarchy.stat",
    "image_write": "image",
    "hook": "mechanism.hook",
    "sim": "kernel.clock",
    "event_times": "kernel.events",
    "run_until": "kernel.events",
    "counts_": "speculation.counters",
    # Bindings of the generated run loop (repro.cpu.ooo._emit_fast_loop).
    "latency": "core.tables",
    "fu_of": "core.tables",
    "h_load": "hierarchy.slowpath",
    "h_store": "hierarchy.slowpath",
    "h_fetch": "hierarchy.slowpath",
    "deque": "local",
    "sampler_sample": "obs.sampler",
}

#: States the fast path may touch without a guard because it only touches
#: them in the commit region, performing exactly the writes the slow
#: path's hit case performs (the SIM802 sequence check pins that): stat
#: bumps, resource ledgers, the write-through image, the mechanism hook,
#: and the speculation counters (diagnostics, not part of any result).
INVARIANT_STATES = frozenset({
    "cache.ports", "cache.pipeline", "cache.stat.kind", "cache.stat.useful",
    "hierarchy.stat", "image", "mechanism.hook", "speculation.counters",
    "core.tables", "hierarchy.slowpath", "obs.sampler", "local",
})


def _guard_tag(spec: GuardSpec) -> str:
    """The comment line tagging one emitted guard with what it protects."""
    return f"# guard[{spec.name}] protects: {', '.join(spec.protects)}"


def _emit_hit(cache, is_write, is_ifetch, hierarchy, queued, *, prefix,
              pc, addr, time, value, on_abort, on_commit, indent):
    """Emit the linear hit-replay source for one cache.

    Returns ``(lines, bindings)``: the statement lines (already indented by
    ``indent``) and the names the generated code expects bound in its
    namespace.  ``pc``/``addr``/``time``/``value`` are *expressions* pasted
    into the source, so the same emitter serves two consumers:

    * :class:`TraceSpeculator` wraps the body in a ``def`` (``on_abort``
      returns a ``return None``, ``on_commit`` a ``return``);
    * the generated run loop (:meth:`repro.cpu.ooo.OoOCore.run`) embeds the
      body inline at each call site inside a ``while True:``/``break``
      frame, with all locals and bindings renamed through ``prefix`` so the
      three sites coexist in one function scope.

    Either way the emitted sequence is the same recorded trace, so the two
    consumers cannot drift apart.
    """
    pipe = cache.pipeline
    if pipe.initiation_interval != 1:  # pragma: no cover - config guard
        raise RuntimeError("fast path assumes a 1-cycle tag pipeline")
    ports = cache.ports
    p = prefix
    i0 = indent
    i1 = indent + "    "
    i2 = indent + "        "

    bindings = {
        "counts_": None,  # caller substitutes the live counter block
        "sim": hierarchy.sim,
        "event_times": hierarchy.sim._times,
        "run_until": hierarchy.sim.run_until,
        f"{p}tags": cache._tags,
        f"{p}tags_index": cache._tags.index,
        f"{p}ready_arr": cache._ready,
        f"{p}touch": cache._touch,
        f"{p}flags": cache._flags,
        f"{p}pipe": pipe,
        f"{p}ports": ports,
        f"{p}ledger": ports._ledger,
        f"{p}ledger_get": ports._ledger.get,
        f"{p}st_kind": cache.st_writes if is_write else cache.st_reads,
        f"{p}st_useful": cache.st_useful_prefetches,
    }
    for qi, q in enumerate(queued):
        bindings[f"queue{qi}"] = q

    lines = [
        # A due kernel event (bucket time at or before the access cycle) is
        # *drained*, not aborted on: advance() would run exactly this drain
        # before the access proceeds.  The queue and tag guards below run
        # after it, so anything the events mutate is seen.
        f"{i0}{_guard_tag(GUARDS[0])}",
        f"{i0}if event_times and event_times[0] <= {time}:",
        f"{i1}run_until({time})",
        f"{i1}counts_[{EVENT_DRAINS}] += 1",
    ]
    # -- guards (pure: a failed guard leaves no trace beyond the drain the
    # slow path would also have run) ------------------------------------------
    for qi in range(len(queued)):
        lines.append(f"{i0}{_guard_tag(GUARDS[1])}")
        lines.append(f"{i0}if queue{qi}:")
        lines.append(f"{i1}counts_[{ABORT_QUEUED_PREFETCH}] += 1")
        lines += [i1 + s for s in on_abort()]
    assoc = cache.assoc
    lines += [
        f"{i0}{p}block = {addr} >> {cache.line_bits}",
        f"{i0}{p}base = ({p}block & {cache._set_mask}) * {assoc}",
        f"{i0}{_guard_tag(GUARDS[2])}",
        f"{i0}try:",
        f"{i1}{p}slot = {p}tags_index({p}block, {p}base, {p}base + {assoc})",
        f"{i0}except ValueError:",
        f"{i1}counts_[{ABORT_MISS}] += 1",
        *[i1 + s for s in on_abort()],
        # -- commit: replay the recorded sequence ------------------------------
        # advance(): nothing to drain, just drive the clock.
        f"{i0}if {time} > sim.now:",
        f"{i1}sim.now = {time}",
    ]
    if is_write:
        bindings[f"{p}st_outer"] = hierarchy.st_stores
        lines.append(f"{i0}{p}st_outer.value += 1")
        if hierarchy.image is not None:
            bindings[f"{p}image_write"] = hierarchy.image.write
            lines.append(f"{i0}{p}image_write({addr}, {value})")
    elif not is_ifetch:
        bindings[f"{p}st_outer"] = hierarchy.st_loads
        lines.append(f"{i0}{p}st_outer.value += 1")
    if cache.precise:
        # pipeline.acquire inlined (initiation interval is 1).
        lines += [
            f"{i0}{p}next_start = {p}pipe._next_start",
            f"{i0}{p}t = {time} if {p}next_start <= {time} else {p}next_start",
            f"{i0}{p}pipe._next_start = {p}t + 1",
            f"{i0}{p}pipe.accepts += 1",
        ]
    else:
        lines.append(f"{i0}{p}t = {time}")
    lines += [
        # ports.acquire inlined: one ledger probe on the untouched-cycle
        # common case (_prune keeps the dict identity stable).
        f"{i0}{p}floor = {p}ports._floor",
        f"{i0}if {p}t < {p}floor:",
        f"{i1}{p}t = {p}floor",
        f"{i0}{p}count = {p}ledger_get({p}t)",
        f"{i0}if {p}count is None:",
        f"{i1}{p}ledger[{p}t] = 1",
        f"{i0}else:",
        f"{i1}while {p}count is not None and {p}count >= {ports.n_ports}:",
        f"{i2}{p}t += 1",
        f"{i2}{p}count = {p}ledger_get({p}t)",
        f"{i1}{p}ledger[{p}t] = 1 if {p}count is None else {p}count + 1",
        f"{i0}{p}ports.grants += 1",
        f"{i0}if len({p}ledger) > {ports._PRUNE_EVERY}:",
        f"{i1}{p}ports._prune({p}t)",
        f"{i0}{p}st_kind.value += 1",
        # LRU promotion by slice rotation, as in Cache.access.
        f"{i0}if {p}slot != {p}base:",
        f"{i1}{p}line_ready = {p}ready_arr[{p}slot]",
        f"{i1}{p}line_flags = {p}flags[{p}slot]",
        f"{i1}{p}tags[{p}base + 1:{p}slot + 1] = {p}tags[{p}base:{p}slot]",
        f"{i1}{p}tags[{p}base] = {p}block",
        f"{i1}{p}ready_arr[{p}base + 1:{p}slot + 1] = {p}ready_arr[{p}base:{p}slot]",
        f"{i1}{p}ready_arr[{p}base] = {p}line_ready",
        f"{i1}{p}touch[{p}base + 1:{p}slot + 1] = {p}touch[{p}base:{p}slot]",
        f"{i1}{p}flags[{p}base + 1:{p}slot + 1] = {p}flags[{p}base:{p}slot]",
        f"{i0}else:",
        f"{i1}{p}line_ready = {p}ready_arr[{p}base]",
        f"{i1}{p}line_flags = {p}flags[{p}base]",
        f"{i0}{p}was_prefetched = {p}line_flags & {PREFETCHED}",
        f"{i0}if {p}was_prefetched:",
        f"{i1}{p}line_flags &= {~PREFETCHED}",
        f"{i1}{p}st_useful.value += 1",
    ]
    if is_write:
        lines.append(f"{i0}{p}line_flags |= {DIRTY}")
    lines += [
        f"{i0}{p}flags[{p}base] = {p}line_flags",
        f"{i0}{p}touch[{p}base] = {p}t",
        f"{i0}{p}ready = {p}t + {cache.config.latency}",
        f"{i0}if {p}line_ready > {p}ready:",
        f"{i1}{p}ready = {p}line_ready",
    ]
    if not is_ifetch and cache.mechanism is not None:
        bindings[f"{p}hook"] = cache.mechanism.on_access
        lines.append(
            f"{i0}{p}hook({pc}, {p}block, True, bool({p}was_prefetched), {p}t)"
        )
    lines.append(f"{i0}counts_[{COMMITS}] += 1")
    lines += [i0 + s for s in on_commit(f"{p}ready")]
    return lines, bindings


def emit_replay_source(hierarchy, kind):
    """Emit one replay closure's full source for ``kind`` on ``hierarchy``.

    ``kind`` is ``"load"``, ``"store"`` or ``"ifetch"``.  Returns
    ``(source, bindings)`` where ``source`` is a complete
    ``def replay(pc, addr, time, value=None):`` definition and ``bindings``
    maps every free name the source references to the live object it must
    be bound to (``counts_`` is left ``None`` for the caller to fill).

    This is the single emission path shared by :class:`TraceSpeculator`
    (which compiles and executes the source) and the SIM8xx
    guard-completeness verifier (:mod:`repro.analysis.fastpath`, which
    parses it) — whatever the speculator runs is, by construction, exactly
    what the verifier proves things about.
    """
    mech = hierarchy.mechanism
    queued = tuple(q._queue for q in mech.iter_queues()) if mech else ()
    cache = hierarchy.l1i if kind == "ifetch" else hierarchy.l1d
    lines, bindings = _emit_hit(
        cache,
        is_write=(kind == "store"),
        is_ifetch=(kind == "ifetch"),
        hierarchy=hierarchy,
        queued=queued,
        prefix="",
        pc="pc", addr="addr", time="time", value="value",
        on_abort=lambda: ["return None"],
        on_commit=lambda ready: [f"return {ready}"],
        indent="    ",
    )
    source = "\n".join(["def replay(pc, addr, time, value=None):"] + lines)
    return source, bindings


def emit_hit_inline(counts, hierarchy, kind, *, prefix, result,
                    pc, addr, time, value="None", indent):
    """Emit an inline replay block for embedding in a generated loop.

    The block assigns the hit-ready cycle to ``result``, or leaves it
    ``None`` on a guard abort — the caller follows it with the slow-path
    fallback (``if result is None: ...``).  ``counts`` is the live
    speculation counter list (shared with the :class:`TraceSpeculator`
    closures, so introspection sees inline and closure replays alike).
    """
    queued = (tuple(q._queue for q in hierarchy.mechanism.iter_queues())
              if hierarchy.mechanism else ())
    cache = hierarchy.l1i if kind == "ifetch" else hierarchy.l1d
    lines, bindings = _emit_hit(
        cache,
        is_write=(kind == "store"),
        is_ifetch=(kind == "ifetch"),
        hierarchy=hierarchy,
        queued=queued,
        prefix=prefix,
        pc=pc, addr=addr, time=time, value=value,
        on_abort=lambda: ["break"],
        on_commit=lambda ready: [f"{result} = {ready}", "break"],
        indent=indent + "    ",
    )
    bindings["counts_"] = counts
    block = [f"{indent}{result} = None", f"{indent}while True:"]
    block += lines
    return block, bindings


class TraceSpeculator:
    """Records the linear fetch→L1-hit sequence of one hierarchy and
    replays it under guards.

    Construct one per run, after the hierarchy is fully wired (mechanism
    attached, queues created): recording binds the live tag stores, the
    kernel's time heap and the mechanism queues, all of which the engine
    and cache maintain in place for exactly this reason.
    """

    __slots__ = ("counts", "_hierarchy", "_compiled")

    def __init__(self, hierarchy: "MemoryHierarchy") -> None:
        self.counts = [0, 0, 0, 0]
        self._hierarchy = hierarchy
        #: The replay closures, compiled on first use: the generated run
        #: loop embeds the same sequences inline (emit_hit_inline) and
        #: never calls them, so eager compilation would tax every run to
        #: serve only direct callers (tests, exploratory use).
        self._compiled = None

    # -- introspection -------------------------------------------------------

    @property
    def commits(self) -> int:
        """Replays that ran to completion on the fast path."""
        return self.counts[COMMITS]

    @property
    def aborts(self) -> int:
        """Replays that bailed to the slow path (any guard)."""
        return (self.counts[ABORT_QUEUED_PREFETCH]
                + self.counts[ABORT_MISS])

    @property
    def event_drains(self) -> int:
        """Replays that first drained due kernel events (not aborts: the
        drain is exactly what the slow path's ``advance`` would run)."""
        return self.counts[EVENT_DRAINS]

    def abort_reasons(self) -> dict:
        return {
            "queued_prefetch": self.counts[ABORT_QUEUED_PREFETCH],
            "miss": self.counts[ABORT_MISS],
        }

    # -- the replay closures (compiled on demand) -----------------------------

    @property
    def replay_load(self) -> ReplayFn:
        return self._closures()[0]

    @property
    def replay_store(self) -> ReplayFn:
        return self._closures()[1]

    @property
    def replay_ifetch(self) -> ReplayFn:
        return self._closures()[2]

    def _closures(self):
        if self._compiled is None:
            self._compiled = self._record(self._hierarchy)
        return self._compiled

    # -- recording -----------------------------------------------------------

    def _record(self, hierarchy: "MemoryHierarchy") -> None:
        """Walk the hierarchy once and compile the replay closures.

        Everything a replay touches is bound here — no attribute chains
        survive into the per-record path.  The bindings rely on three
        stability guarantees: :meth:`Cache.reset` and the kernel's
        ``_compact`` mutate their lists in place,
        :meth:`MultiPortResource._prune` mutates its ledger dict in place,
        and mechanism queues are created at construction and never replaced.

        Each replay variant is *generated* as straight-line source and
        compiled with :func:`exec` — the configuration-dependent branches
        (write vs read, data vs instruction fetch, precise vs imprecise
        timing, mechanism hook present or not, how many prefetch queues to
        guard) are resolved here, at record time, so the per-call path
        carries no dead conditionals.  This is the trace-speculation
        analogue of emitting the speculated block: the recorded sequence
        *is* the compiled function body.
        """
        def compile_hit(kind):
            """Generate + compile the linear hit sequence for one kind."""
            source, namespace = emit_replay_source(hierarchy, kind)
            namespace["counts_"] = self.counts
            code = codecache.load_or_compile(
                source, "<repro.cpu.fastpath>", version=EMITTER_VERSION
            )
            exec(code, namespace)  # noqa: S102 - closed namespace, own source
            return namespace["replay"]

        # All three share the ``(pc, addr, time, value=None)`` signature so
        # callers pay no adapter frame.  Instruction fetch passes the PC as
        # the address and never reaches a mechanism hook (emit_replay_source
        # drops the hook for the ifetch case, mirroring the INSTRUCTION_PC
        # rule).
        return (
            compile_hit("load"),
            compile_hit("store"),
            compile_hit("ifetch"),
        )
