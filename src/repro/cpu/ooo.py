"""One-pass out-of-order core timeline model.

Each trace record is processed exactly once, in program order, computing the
cycle at which it fetches, dispatches, issues, completes and commits.  The
machine's structural limits appear as ``max`` terms on those timestamps:

* **fetch** — at most ``fetch_width`` records per cycle; stalled after a
  mispredicted branch until it resolves plus the refill penalty;
* **dispatch** — one cycle after fetch; waits for a free RUU entry (the
  RUU entry of the oldest in-flight instruction frees when it commits) and,
  for memory ops, a free LSQ entry;
* **issue** — waits for operands (the completion time of the producer
  ``DEP`` records earlier) and a functional unit from the right pool;
* **complete** — FU latency, or the memory hierarchy's answer for loads;
* **commit** — in order, at most ``commit_width`` per cycle, not before
  completion.

Loads enter the cache at issue time, so cache/LSQ back-pressure (a stalled
cache pipeline pushes the load's grant time out) directly delays completion
and, through the RUU-full term, every subsequent instruction — the paper's
"cache stalls (plus MSHR full) can temporarily stall the LSQ" behaviour.
Stores write the cache at commit time (write buffer) without blocking
commit, but their port/bus/MSHR traffic is real.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.config import CoreConfig
from repro.isa.instr import FU_LATENCY, FU_POOL, Op
from repro.kernel.module import Component
from repro.kernel.resources import MultiPortResource
from repro.obs.tracing import TRACER

#: Completion-history ring size for dependence lookups.
_RING = 512

#: Sampling threshold meaning "never" (no sampler attached).
_NO_SAMPLE = 1 << 62


@dataclass
class CoreStats:
    """Outcome of one simulated trace."""

    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0
    load_latency_total: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    @property
    def avg_load_latency(self) -> float:
        if not self.loads:
            return 0.0
        return self.load_latency_total / self.loads


class OoOCore(Component):
    """Trace-driven out-of-order core bound to one memory hierarchy."""

    def __init__(
        self,
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        name: str = "core",
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.config = config
        self.hierarchy = hierarchy
        self.fu = {
            "int_alu": MultiPortResource(config.int_alu),
            "int_mul": MultiPortResource(config.int_mul),
            "fp_alu": MultiPortResource(config.fp_alu),
            "fp_mul": MultiPortResource(config.fp_mul),
            "lsu": MultiPortResource(config.lsu),
        }

    def run(self, trace: Sequence, measure_from: int = 0,
            sampler=None) -> CoreStats:
        """Simulate ``trace`` to completion; return the run's statistics.

        ``measure_from`` marks the end of the warm-up window: IPC is
        reported over instructions ``measure_from..end`` only (caches and
        predictors stay warm across the boundary), the standard discipline
        for short traces where cold misses would otherwise dominate.

        ``sampler`` is an optional :class:`repro.obs.IntervalSampler`:
        every ``sampler.interval`` records it snapshots the hierarchy's
        statistics for per-interval rate breakdowns.  It only observes —
        a sampled run's result is identical to an unsampled one — and
        when absent costs one integer comparison per record.
        """
        tracing = TRACER.enabled
        if tracing:
            TRACER.begin("cpu.run", cat="cpu")
        sample_every = sampler.interval if sampler is not None else 0
        next_sample = sample_every if sample_every else _NO_SAMPLE
        cfg = self.config
        hierarchy = self.hierarchy
        load_op = int(Op.LOAD)
        store_op = int(Op.STORE)
        branch_op = int(Op.BRANCH)
        latency = {int(op): lat for op, lat in FU_LATENCY.items()}
        pool_of = {int(op): self.fu[pool] for op, pool in FU_POOL.items()}

        fetch_cycle = 0
        fetch_slots = 0
        squash_until = 0
        # Instruction-cache state: one lookup per fetched line, not per
        # instruction — sequential fetch within a resident line is free.
        icache_line_bits = hierarchy.l1i.line_bits
        last_fetch_block = -1
        ruu = deque()
        lsq = deque()
        ruu_size = cfg.ruu_size
        lsq_size = cfg.lsq_size
        fetch_width = cfg.fetch_width
        commit_width = cfg.commit_width
        penalty = cfg.mispredict_penalty
        commit_cycle = 0
        commit_slots = 0
        ring = [0] * _RING
        ring_pos = 0

        stats = CoreStats()
        n_loads = 0
        n_stores = 0
        n_branches = 0
        n_mispredicts = 0
        load_latency_total = 0
        warmup_end_cycle = 0
        index = 0

        for record in trace:
            if index == measure_from:
                warmup_end_cycle = commit_cycle
            index += 1
            op, pc, addr, dep, extra = record

            # Fetch: width-limited, squash-gated, instruction-cache-gated.
            if squash_until > fetch_cycle:
                fetch_cycle = squash_until
                fetch_slots = 0
            fetch_block = pc >> icache_line_bits
            if fetch_block != last_fetch_block:
                last_fetch_block = fetch_block
                line_ready = hierarchy.fetch_instruction(pc, fetch_cycle)
                if line_ready > fetch_cycle + 1:
                    fetch_cycle = line_ready - 1
                    fetch_slots = 0
            if fetch_slots >= fetch_width:
                fetch_cycle += 1
                fetch_slots = 0
            fetch_slots += 1

            # Dispatch: decode bubble + RUU (and LSQ) availability.
            dispatch = fetch_cycle + 1
            if len(ruu) >= ruu_size:
                oldest = ruu.popleft()
                if oldest > dispatch:
                    dispatch = oldest
            is_mem = op == load_op or op == store_op
            if is_mem and len(lsq) >= lsq_size:
                oldest = lsq.popleft()
                if oldest > dispatch:
                    dispatch = oldest

            # Operand readiness through the completion ring.
            ready = dispatch
            if dep and dep < _RING:
                producer = ring[(ring_pos - dep) % _RING]
                if producer > ready:
                    ready = producer

            # Issue: functional unit from the right pool.
            start = pool_of[op].acquire(ready)

            # Complete.
            if op == load_op:
                complete = hierarchy.load(pc, addr, start)
                load_latency_total += complete - start
                n_loads += 1
            else:
                complete = start + latency[op]
                if op == store_op:
                    n_stores += 1
                elif op == branch_op:
                    n_branches += 1
                    if extra:
                        n_mispredicts += 1
                        resolve = complete
                        if squash_until < resolve + penalty:
                            squash_until = resolve + penalty

            # Commit: in order, width-limited.
            commit = complete + 1
            if commit > commit_cycle:
                commit_cycle = commit
                commit_slots = 1
            else:
                commit_slots += 1
                if commit_slots > commit_width:
                    commit_cycle += 1
                    commit_slots = 1
                commit = commit_cycle

            if op == store_op:
                # The write buffer performs the store after commit.
                hierarchy.store(pc, addr, extra, commit)

            ruu.append(commit)
            if is_mem:
                lsq.append(commit)
            ring[ring_pos] = complete
            ring_pos = (ring_pos + 1) % _RING
            stats.instructions += 1
            if index >= next_sample:
                sampler.sample(index, commit_cycle)
                next_sample += sample_every

        if measure_from and stats.instructions > measure_from:
            stats.instructions -= measure_from
            stats.cycles = commit_cycle - warmup_end_cycle
        else:
            stats.cycles = commit_cycle if stats.instructions else 0
        stats.loads = n_loads
        stats.stores = n_stores
        stats.branches = n_branches
        stats.mispredicts = n_mispredicts
        stats.load_latency_total = load_latency_total
        if sampler is not None:
            sampler.finish(index, commit_cycle)
        if tracing:
            TRACER.end(instructions=stats.instructions, cycles=stats.cycles)
        return stats

    def reset(self) -> None:
        for pool in self.fu.values():
            pool.reset()
